//! Property tests for the stride prefetcher (cmpsim-harness port —
//! same invariants as the proptest suite).

use cmpsim_cache::BlockAddr;
use cmpsim_harness::{gen, prop::check, prop_assert, prop_assert_eq};
use cmpsim_prefetch::{PrefetchThrottle, PrefetcherConfig, StridePrefetcher};

/// Bursts never exceed the requested degree or the configured
/// ceiling, and all burst addresses lie on the detected stride.
#[test]
fn bursts_respect_degree_and_stride() {
    let cases = gen::triple(
        gen::u64s(0..1_000_000),
        gen::select(vec![1i64, -1, 2, 3, -7, 12]),
        gen::u8s(0..40),
    );
    check("bursts_respect_degree_and_stride", &cases, |&(start, stride, degree)| {
        let mut pf = StridePrefetcher::new(PrefetcherConfig::l1());
        let mut burst = Vec::new();
        for k in 0..4 {
            burst = pf.on_miss(BlockAddr(start.wrapping_add((k * stride) as u64)), degree);
        }
        let cap = degree.min(PrefetcherConfig::l1().startup_prefetches);
        prop_assert!(burst.len() <= usize::from(cap));
        let last_miss = start.wrapping_add((3 * stride) as u64);
        for (i, addr) in burst.iter().enumerate() {
            let expect = last_miss.wrapping_add(((i as i64 + 1) * stride) as u64);
            prop_assert_eq!(addr.0, expect, "burst address off the stride");
        }
        Ok(())
    });
}

/// The throttle counter stays within [0, max] under any feedback
/// sequence.
#[test]
fn throttle_stays_in_range() {
    let cases = gen::pair(gen::u8s(1..30), gen::vec_of(gen::bools(), 0..500));
    check("throttle_stays_in_range", &cases, |(max, events)| {
        let mut t = PrefetchThrottle::new(*max);
        for &good in events {
            let _ = if good { t.record_useful() } else { t.record_bad() };
            prop_assert!(t.degree() <= *max);
        }
        Ok(())
    });
}

/// Random (non-strided) miss sequences never allocate streams, no
/// matter how long they run.
#[test]
fn noise_never_confirms() {
    let seeds = gen::vec_of(gen::u64s(0..1_000_000_000), 20..150);
    check("noise_never_confirms", &seeds, |seeds| {
        // Force distinct, far-apart addresses (beyond max_stride).
        let mut pf = StridePrefetcher::new(PrefetcherConfig::l2());
        let mut prev = 0u64;
        for (i, s) in seeds.iter().enumerate() {
            let addr = prev + 100 + (s % 1_000_000) + i as u64;
            prev = addr;
            let burst = pf.on_miss(BlockAddr(addr), 25);
            prop_assert!(burst.is_empty(), "noise at {addr} produced prefetches");
        }
        prop_assert_eq!(pf.stats().streams_allocated, 0);
        Ok(())
    });
}
