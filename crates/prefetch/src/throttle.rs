//! The paper's adaptive prefetching counter (§3).
//!
//! One saturating counter per cache scales the number of startup
//! prefetches per stream. It begins at its maximum (normal prefetching),
//! is incremented by useful prefetches and decremented by useless/harmful
//! ones, and **disables prefetching completely when it reaches zero**.

/// Saturating per-cache prefetch throttle.
///
/// # Examples
///
/// ```
/// use cmpsim_prefetch::PrefetchThrottle;
/// let mut t = PrefetchThrottle::new(6);
/// assert_eq!(t.degree(), 6);
/// t.record_bad();
/// assert_eq!(t.degree(), 5);
/// t.record_useful();
/// assert_eq!(t.degree(), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchThrottle {
    counter: u8,
    max: u8,
    ups: u64,
    downs: u64,
}

impl PrefetchThrottle {
    /// A throttle saturating at `max` (the cache's startup-prefetch
    /// ceiling: 6 for L1, 25 for L2), starting saturated.
    pub fn new(max: u8) -> Self {
        PrefetchThrottle { counter: max, max, ups: 0, downs: 0 }
    }

    /// Current startup-prefetch degree; 0 disables the prefetcher.
    pub fn degree(&self) -> u8 {
        self.counter
    }

    /// Whether the prefetcher is currently disabled.
    pub fn is_disabled(&self) -> bool {
        self.counter == 0
    }

    /// Useful prefetch observed (first demand hit on a prefetched line).
    /// Returns true when the counter actually moved (was not saturated).
    pub fn record_useful(&mut self) -> bool {
        if self.counter < self.max {
            self.counter += 1;
            self.ups += 1;
            true
        } else {
            false
        }
    }

    /// Useless or harmful prefetch observed. Returns true when the
    /// counter actually moved (was not already zero).
    pub fn record_bad(&mut self) -> bool {
        if self.counter > 0 {
            self.counter -= 1;
            self.downs += 1;
            true
        } else {
            false
        }
    }

    /// Counter increments that actually moved the degree up.
    pub fn ups(&self) -> u64 {
        self.ups
    }

    /// Counter decrements that actually moved the degree down.
    pub fn downs(&self) -> u64 {
        self.downs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_saturated() {
        let t = PrefetchThrottle::new(25);
        assert_eq!(t.degree(), 25);
        assert!(!t.is_disabled());
    }

    #[test]
    fn saturates_both_ends() {
        let mut t = PrefetchThrottle::new(3);
        t.record_useful();
        assert_eq!(t.degree(), 3, "already at max");
        for _ in 0..10 {
            t.record_bad();
        }
        assert_eq!(t.degree(), 0);
        assert!(t.is_disabled());
        t.record_bad();
        assert_eq!(t.degree(), 0, "never underflows");
    }

    #[test]
    fn counts_only_moves_that_change_the_degree() {
        let mut t = PrefetchThrottle::new(2);
        assert!(!t.record_useful(), "already saturated");
        assert!(t.record_bad());
        assert!(t.record_bad());
        assert!(!t.record_bad(), "already zero");
        assert!(t.record_useful());
        assert_eq!(t.ups(), 1);
        assert_eq!(t.downs(), 2);
    }

    #[test]
    fn recovers_one_step_at_a_time() {
        let mut t = PrefetchThrottle::new(6);
        for _ in 0..6 {
            t.record_bad();
        }
        t.record_useful();
        t.record_useful();
        assert_eq!(t.degree(), 2);
    }
}
