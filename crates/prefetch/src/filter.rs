//! The three miss-stream filter tables (positive unit, negative unit,
//! non-unit stride).
//!
//! Filter tables watch the demand-miss address stream and confirm a
//! candidate stream once `confirm_threshold` fixed-stride misses have been
//! observed (4 in the paper's Table 1). Confirmation hands the stream off
//! to the [`crate::StreamTable`] and frees the filter entry.

use cmpsim_cache::BlockAddr;

/// Which filter table a stride belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrideClass {
    /// +1 line.
    PositiveUnit,
    /// −1 line.
    NegativeUnit,
    /// Any other stride within the learnable window.
    NonUnit,
}

impl StrideClass {
    /// Classifies a stride in lines.
    ///
    /// Returns `None` for zero strides (same-line re-miss, not a stream).
    pub fn of(stride: i64) -> Option<Self> {
        match stride {
            0 => None,
            1 => Some(StrideClass::PositiveUnit),
            -1 => Some(StrideClass::NegativeUnit),
            _ => Some(StrideClass::NonUnit),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct FilterEntry {
    last: BlockAddr,
    /// Learned stride; 0 in a non-unit entry that has seen one miss only.
    stride: i64,
    /// Fixed-stride misses observed so far (including the first).
    count: u8,
    lru: u64,
}

#[derive(Debug, Clone)]
struct Table {
    entries: Vec<FilterEntry>,
    capacity: usize,
}

impl Table {
    fn new(capacity: usize) -> Self {
        Table { entries: Vec::with_capacity(capacity), capacity }
    }

    fn insert(&mut self, e: FilterEntry) {
        if self.entries.len() < self.capacity {
            self.entries.push(e);
            return;
        }
        if let Some(victim) = self.entries.iter_mut().min_by_key(|x| x.lru) {
            *victim = e;
        }
    }
}

/// The per-prefetcher trio of filter tables.
#[derive(Debug, Clone)]
pub struct FilterTables {
    pos: Table,
    neg: Table,
    non: Table,
    max_stride: i64,
    clock: u64,
}

impl FilterTables {
    /// Creates the three tables, each with `entries_per_table` entries;
    /// the non-unit table learns strides up to `max_stride` lines.
    pub fn new(entries_per_table: usize, max_stride: i64) -> Self {
        FilterTables {
            pos: Table::new(entries_per_table),
            neg: Table::new(entries_per_table),
            non: Table::new(entries_per_table),
            max_stride,
            clock: 0,
        }
    }

    /// Observes a demand miss. Returns `Some(stride)` when a stream is
    /// confirmed (`confirm_threshold` fixed-stride misses); the caller
    /// then allocates a stream-table entry.
    pub fn train(&mut self, addr: BlockAddr, confirm_threshold: u8) -> Option<i64> {
        self.clock += 1;
        let clock = self.clock;

        // 1. Unit-stride tables: exact next-line match.
        for (table, stride) in [(&mut self.pos, 1i64), (&mut self.neg, -1i64)] {
            if let Some(i) = table
                .entries
                .iter()
                .position(|e| e.last.offset(stride) == addr)
            {
                let e = &mut table.entries[i];
                e.last = addr;
                e.count += 1;
                e.lru = clock;
                if e.count >= confirm_threshold {
                    table.entries.swap_remove(i);
                    return Some(stride);
                }
                return None;
            }
        }

        // 2. Non-unit table: match a learned stride, or learn one.
        if let Some(i) = self
            .non
            .entries
            .iter()
            .position(|e| e.stride != 0 && e.last.offset(e.stride) == addr)
        {
            let e = &mut self.non.entries[i];
            e.last = addr;
            e.count += 1;
            e.lru = clock;
            if e.count >= confirm_threshold {
                let stride = e.stride;
                self.non.entries.swap_remove(i);
                return Some(stride);
            }
            return None;
        }
        let max_stride = self.max_stride;
        if let Some(i) = self.non.entries.iter().position(|e| {
            e.stride == 0 && {
                let delta = addr.0 as i64 - e.last.0 as i64;
                delta != 0 && delta.abs() != 1 && delta.abs() <= max_stride
            }
        }) {
            let e = &mut self.non.entries[i];
            e.stride = addr.0 as i64 - e.last.0 as i64;
            e.last = addr;
            e.count = 2;
            e.lru = clock;
            debug_assert!(confirm_threshold > 2, "threshold 4 in the paper");
            return None;
        }

        // 3. No match anywhere: seed fresh candidates in all three tables.
        self.pos.insert(FilterEntry { last: addr, stride: 1, count: 1, lru: clock });
        self.neg.insert(FilterEntry { last: addr, stride: -1, count: 1, lru: clock });
        self.non.insert(FilterEntry { last: addr, stride: 0, count: 1, lru: clock });
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn confirm(f: &mut FilterTables, lines: &[u64]) -> Option<i64> {
        let mut got = None;
        for &l in lines {
            got = f.train(BlockAddr(l), 4);
        }
        got
    }

    #[test]
    fn positive_unit_confirms_on_fourth_miss() {
        let mut f = FilterTables::new(32, 64);
        assert_eq!(confirm(&mut f, &[10, 11, 12]), None);
        assert_eq!(f.train(BlockAddr(13), 4), Some(1));
    }

    #[test]
    fn negative_unit() {
        let mut f = FilterTables::new(32, 64);
        assert_eq!(confirm(&mut f, &[50, 49, 48, 47]), Some(-1));
    }

    #[test]
    fn non_unit_positive_and_negative() {
        let mut f = FilterTables::new(32, 64);
        assert_eq!(confirm(&mut f, &[0, 4, 8, 12]), Some(4));
        let mut f = FilterTables::new(32, 64);
        assert_eq!(confirm(&mut f, &[100, 93, 86, 79]), Some(-7));
    }

    #[test]
    fn stride_beyond_window_never_confirms() {
        let mut f = FilterTables::new(32, 64);
        assert_eq!(confirm(&mut f, &[0, 100, 200, 300, 400]), None);
    }

    #[test]
    fn interleaved_streams_confirm_independently() {
        let mut f = FilterTables::new(32, 64);
        let seq = [10, 500, 11, 501, 12, 502, 13];
        let mut confirmed = Vec::new();
        for &l in &seq {
            if let Some(s) = f.train(BlockAddr(l), 4) {
                confirmed.push((l, s));
            }
        }
        assert_eq!(confirmed, vec![(13, 1)]);
        assert_eq!(f.train(BlockAddr(503), 4), Some(1));
    }

    #[test]
    fn confirmation_frees_the_entry() {
        let mut f = FilterTables::new(32, 64);
        confirm(&mut f, &[10, 11, 12, 13]);
        // The stream is gone from the filter: a fresh stream (far enough
        // away not to alias stale non-unit candidates) needs 4 misses.
        assert_eq!(f.train(BlockAddr(1000), 4), None);
        assert_eq!(f.train(BlockAddr(1001), 4), None);
        assert_eq!(f.train(BlockAddr(1002), 4), None);
        assert_eq!(f.train(BlockAddr(1003), 4), Some(1));
    }

    #[test]
    fn lru_replacement_under_pressure() {
        let mut f = FilterTables::new(2, 64);
        // Three unrelated misses: first candidate evicted.
        f.train(BlockAddr(1000), 4);
        f.train(BlockAddr(2000), 4);
        f.train(BlockAddr(3000), 4);
        // Continue the first stream: entry is gone, so no confirmation
        // even after 3 more misses (needs 4 fresh ones).
        assert_eq!(f.train(BlockAddr(1001), 4), None);
        assert_eq!(f.train(BlockAddr(1002), 4), None);
        assert_eq!(f.train(BlockAddr(1003), 4), None);
        assert_eq!(f.train(BlockAddr(1004), 4), Some(1));
    }

    #[test]
    fn same_line_re_miss_is_not_a_stream() {
        let mut f = FilterTables::new(32, 64);
        assert_eq!(confirm(&mut f, &[5, 5, 5, 5, 5]), None);
    }

    #[test]
    fn stride_class() {
        assert_eq!(StrideClass::of(1), Some(StrideClass::PositiveUnit));
        assert_eq!(StrideClass::of(-1), Some(StrideClass::NegativeUnit));
        assert_eq!(StrideClass::of(17), Some(StrideClass::NonUnit));
        assert_eq!(StrideClass::of(0), None);
    }
}
