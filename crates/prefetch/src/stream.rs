//! The 8-entry stream table that issues prefetches for confirmed streams.

use cmpsim_cache::BlockAddr;

/// Stream table geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamTableConfig {
    /// Number of concurrently tracked streams (8 in Table 1).
    pub entries: usize,
}

#[derive(Debug, Clone, Copy)]
struct StreamEntry {
    /// Next line the demand stream is expected to reference.
    expected: BlockAddr,
    /// Stride in lines.
    stride: i64,
    /// Next line to prefetch when the stream advances.
    next_prefetch: BlockAddr,
    lru: u64,
}

/// Active prefetch streams with LRU replacement.
///
/// On allocation a stream launches its startup burst; afterwards each
/// demand access that matches the stream's expected next address issues
/// one more prefetch, keeping the prefetch front a constant distance
/// ahead (the Power4 "ramp" behaviour).
#[derive(Debug, Clone)]
pub struct StreamTable {
    cfg: StreamTableConfig,
    entries: Vec<StreamEntry>,
    clock: u64,
}

impl StreamTable {
    /// An empty stream table.
    pub fn new(cfg: StreamTableConfig) -> Self {
        StreamTable { cfg, entries: Vec::with_capacity(cfg.entries), clock: 0 }
    }

    /// Number of active streams.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no streams are active.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Allocates a stream confirmed at `addr` with `stride`, returning the
    /// startup burst of `degree` prefetch addresses
    /// (`addr+stride ..= addr+degree*stride`).
    pub fn allocate(&mut self, addr: BlockAddr, stride: i64, degree: u8) -> Vec<BlockAddr> {
        debug_assert!(stride != 0, "zero-stride streams are filtered earlier");
        self.clock += 1;
        let burst: Vec<BlockAddr> =
            (1..=i64::from(degree)).map(|k| addr.offset(k * stride)).collect();
        let entry = StreamEntry {
            expected: addr.offset(stride),
            stride,
            next_prefetch: addr.offset((i64::from(degree) + 1) * stride),
            lru: self.clock,
        };
        if self.entries.len() < self.cfg.entries {
            self.entries.push(entry);
        } else if let Some(victim) = self.entries.iter_mut().min_by_key(|e| e.lru) {
            *victim = entry;
        }
        burst
    }

    /// Checks whether `addr` is the next expected reference of any stream;
    /// if so the stream advances and returns the next line to prefetch.
    pub fn advance(&mut self, addr: BlockAddr) -> Option<BlockAddr> {
        self.clock += 1;
        let clock = self.clock;
        let e = self.entries.iter_mut().find(|e| e.expected == addr)?;
        e.expected = addr.offset(e.stride);
        e.lru = clock;
        let pf = e.next_prefetch;
        e.next_prefetch = pf.offset(e.stride);
        Some(pf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(entries: usize) -> StreamTable {
        StreamTable::new(StreamTableConfig { entries })
    }

    #[test]
    fn startup_burst_contents() {
        let mut t = table(8);
        let burst = t.allocate(BlockAddr(100), 2, 3);
        assert_eq!(burst, [102, 104, 106].map(BlockAddr).to_vec());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn zero_degree_allocates_without_prefetching() {
        let mut t = table(8);
        let burst = t.allocate(BlockAddr(100), 1, 0);
        assert!(burst.is_empty());
        // Stream still tracks; next_prefetch starts right after the
        // (empty) burst, i.e. at line 101 itself.
        assert_eq!(t.advance(BlockAddr(101)), Some(BlockAddr(101)));
    }

    #[test]
    fn advance_keeps_constant_distance() {
        let mut t = table(8);
        t.allocate(BlockAddr(0), 1, 6); // prefetched 1..=6, next_prefetch=7
        assert_eq!(t.advance(BlockAddr(1)), Some(BlockAddr(7)));
        assert_eq!(t.advance(BlockAddr(2)), Some(BlockAddr(8)));
        assert_eq!(t.advance(BlockAddr(3)), Some(BlockAddr(9)));
        // Skipping breaks the chain: line 5 is not expected (4 is).
        assert_eq!(t.advance(BlockAddr(5)), None);
    }

    #[test]
    fn negative_stride_streams() {
        let mut t = table(8);
        let burst = t.allocate(BlockAddr(100), -1, 2);
        assert_eq!(burst, [99, 98].map(BlockAddr).to_vec());
        assert_eq!(t.advance(BlockAddr(99)), Some(BlockAddr(97)));
    }

    #[test]
    fn lru_eviction_of_streams() {
        let mut t = table(2);
        t.allocate(BlockAddr(0), 1, 1);
        t.allocate(BlockAddr(1000), 1, 1);
        t.advance(BlockAddr(1)); // stream 0 is now MRU
        t.allocate(BlockAddr(2000), 1, 1); // evicts stream 1000
        assert_eq!(t.advance(BlockAddr(1001)), None, "evicted stream dead");
        assert!(t.advance(BlockAddr(2)).is_some(), "stream 0 alive");
        assert!(t.advance(BlockAddr(2001)).is_some(), "new stream alive");
    }

    #[test]
    fn independent_streams_advance_independently() {
        let mut t = table(8);
        t.allocate(BlockAddr(0), 1, 2);
        t.allocate(BlockAddr(1000), 4, 2);
        assert_eq!(t.advance(BlockAddr(1)), Some(BlockAddr(3)));
        assert_eq!(t.advance(BlockAddr(1004)), Some(BlockAddr(1012)));
    }
}
