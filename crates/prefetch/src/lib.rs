//! Hardware stride-based prefetching, modeled on the IBM Power4
//! implementation the paper uses (§2, Table 1), plus the paper's own
//! contribution: the **adaptive prefetching throttle** (§3).
//!
//! Each cache (L1I, L1D, L2 — per core) gets a [`StridePrefetcher`] with
//! three 32-entry *filter tables* (positive unit stride, negative unit
//! stride, non-unit stride) feeding an 8-entry *stream table*. A filter
//! entry that observes 4 fixed-stride misses allocates a stream, which
//! launches a burst of *startup prefetches* (up to 6 ahead for L1
//! prefetchers, 25 for the L2 prefetcher) and then advances one line per
//! confirming demand access.
//!
//! The [`PrefetchThrottle`] is the adaptive mechanism: a saturating
//! counter per cache that scales the startup degree and, at zero, disables
//! prefetching entirely. It is driven by three events the cache structures
//! detect with their prefetch bits and (compression-provided) victim tags:
//! useful prefetch (+1), useless prefetch evicted untouched (−1), and
//! harmful prefetch that displaced a still-needed line (−1).

mod filter;
mod stream;
mod throttle;

pub use filter::{FilterTables, StrideClass};
pub use stream::{StreamTable, StreamTableConfig};
pub use throttle::PrefetchThrottle;

use cmpsim_cache::BlockAddr;

/// Configuration of one cache's prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetcherConfig {
    /// Entries per filter table (32 in Table 1).
    pub filter_entries: usize,
    /// Stream table entries (8 in Table 1).
    pub stream_entries: usize,
    /// Fixed-stride misses required to allocate a stream (4 in Table 1).
    pub confirm_threshold: u8,
    /// Startup prefetches launched on stream allocation (6 for L1, 25 for
    /// L2; "at most" this many under the adaptive scheme).
    pub startup_prefetches: u8,
    /// Largest non-unit stride (in lines) the filter will learn.
    pub max_stride: i64,
}

impl PrefetcherConfig {
    /// Table 1 configuration for an L1 (I or D) prefetcher.
    pub fn l1() -> Self {
        PrefetcherConfig {
            filter_entries: 32,
            stream_entries: 8,
            confirm_threshold: 4,
            startup_prefetches: 6,
            max_stride: 64,
        }
    }

    /// Table 1 configuration for a per-core L2 prefetcher.
    pub fn l2() -> Self {
        PrefetcherConfig { startup_prefetches: 25, ..Self::l1() }
    }
}

/// Counters for one prefetcher.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Prefetch addresses emitted (before MSHR/duplicate filtering).
    pub issued: u64,
    /// Streams allocated from confirmed filter entries.
    pub streams_allocated: u64,
    /// Stream advances triggered by confirming demand accesses.
    pub stream_advances: u64,
}

/// A complete per-cache stride prefetcher: filter tables + stream table.
///
/// The owning cache controller calls [`StridePrefetcher::on_miss`] for
/// demand misses and [`StridePrefetcher::on_access`] for demand accesses
/// (to advance streams), and forwards the returned prefetch addresses into
/// the memory hierarchy.
///
/// The startup `degree` is passed in on every call because the paper's
/// adaptive throttle (§3) is a *per-cache* counter: the eight per-core L2
/// prefetchers share one [`PrefetchThrottle`], while each L1 prefetcher
/// has its own. Non-adaptive configurations simply pass the fixed ceiling
/// ([`PrefetcherConfig::startup_prefetches`]).
///
/// # Examples
///
/// ```
/// use cmpsim_prefetch::{PrefetcherConfig, StridePrefetcher};
/// use cmpsim_cache::BlockAddr;
///
/// let mut pf = StridePrefetcher::new(PrefetcherConfig::l1());
/// // Four consecutive misses confirm a +1 stream…
/// assert!(pf.on_miss(BlockAddr(10), 6).is_empty());
/// assert!(pf.on_miss(BlockAddr(11), 6).is_empty());
/// assert!(pf.on_miss(BlockAddr(12), 6).is_empty());
/// let burst = pf.on_miss(BlockAddr(13), 6);
/// // …which launches the 6 startup prefetches for lines 14..=19.
/// assert_eq!(burst, (14..20).map(BlockAddr).collect::<Vec<_>>());
/// ```
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    cfg: PrefetcherConfig,
    filters: FilterTables,
    streams: StreamTable,
    stats: PrefetchStats,
}

impl StridePrefetcher {
    /// Creates a prefetcher with the given geometry.
    pub fn new(cfg: PrefetcherConfig) -> Self {
        StridePrefetcher {
            cfg,
            filters: FilterTables::new(cfg.filter_entries, cfg.max_stride),
            streams: StreamTable::new(StreamTableConfig {
                entries: cfg.stream_entries,
            }),
            stats: PrefetchStats::default(),
        }
    }

    /// The configured startup degree ceiling.
    pub fn config(&self) -> PrefetcherConfig {
        self.cfg
    }

    /// Counters.
    pub fn stats(&self) -> &PrefetchStats {
        &self.stats
    }

    /// Resets counters (end of warmup) without forgetting learned streams.
    pub fn reset_stats(&mut self) {
        self.stats = PrefetchStats::default();
    }

    /// Observes a demand miss at `addr`; returns prefetches to launch,
    /// capped by the current startup `degree` (0 disables prefetching).
    pub fn on_miss(&mut self, addr: BlockAddr, degree: u8) -> Vec<BlockAddr> {
        // A miss *within* a tracked stream advances it (the prefetches
        // lagged the demand stream), rather than re-training the filters.
        if let Some(next) = self.streams.advance(addr) {
            if degree == 0 {
                return Vec::new();
            }
            self.stats.stream_advances += 1;
            self.stats.issued += 1;
            return vec![next];
        }
        let Some(stride) = self.filters.train(addr, self.cfg.confirm_threshold) else {
            return Vec::new();
        };
        if degree == 0 {
            return Vec::new();
        }
        self.stats.streams_allocated += 1;
        let burst = self.streams.allocate(addr, stride, degree.min(self.cfg.startup_prefetches));
        self.stats.issued += burst.len() as u64;
        burst
    }

    /// Observes a demand access (hit) at `addr`; a confirming access on a
    /// tracked stream issues the stream's next prefetch. Gated by the same
    /// `degree` (0 disables).
    pub fn on_access(&mut self, addr: BlockAddr, degree: u8) -> Option<BlockAddr> {
        if degree == 0 {
            return None;
        }
        let next = self.streams.advance(addr)?;
        self.stats.stream_advances += 1;
        self.stats.issued += 1;
        Some(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: u8 = 6;

    fn miss_seq(
        pf: &mut StridePrefetcher,
        degree: u8,
        lines: impl IntoIterator<Item = u64>,
    ) -> Vec<BlockAddr> {
        let mut out = Vec::new();
        for l in lines {
            out.extend(pf.on_miss(BlockAddr(l), degree));
        }
        out
    }

    #[test]
    fn negative_unit_stream() {
        let mut pf = StridePrefetcher::new(PrefetcherConfig::l1());
        let burst = miss_seq(&mut pf, FULL, [100, 99, 98, 97]);
        assert_eq!(burst, (91..=96).rev().map(BlockAddr).collect::<Vec<_>>());
    }

    #[test]
    fn non_unit_stream() {
        let mut pf = StridePrefetcher::new(PrefetcherConfig::l1());
        // Stride +3: 10, 13, 16, 19 → prefetch 22,25,28,31,34,37.
        let burst = miss_seq(&mut pf, FULL, [10, 13, 16, 19]);
        assert_eq!(burst, [22, 25, 28, 31, 34, 37].map(BlockAddr).to_vec());
    }

    #[test]
    fn l2_startup_degree_is_25() {
        let mut pf = StridePrefetcher::new(PrefetcherConfig::l2());
        let burst = miss_seq(&mut pf, 25, [0, 1, 2, 3]);
        assert_eq!(burst.len(), 25);
        assert_eq!(burst[0], BlockAddr(4));
        assert_eq!(burst[24], BlockAddr(28));
    }

    #[test]
    fn stream_advances_on_access() {
        let mut pf = StridePrefetcher::new(PrefetcherConfig::l1());
        miss_seq(&mut pf, FULL, [0, 1, 2, 3]); // prefetched 4..=9
        // Demand touches line 4 → stream issues line 10.
        assert_eq!(pf.on_access(BlockAddr(4), FULL), Some(BlockAddr(10)));
        assert_eq!(pf.on_access(BlockAddr(5), FULL), Some(BlockAddr(11)));
        // Unrelated access does not advance anything.
        assert_eq!(pf.on_access(BlockAddr(500), FULL), None);
    }

    #[test]
    fn random_misses_never_confirm() {
        let mut pf = StridePrefetcher::new(PrefetcherConfig::l1());
        let burst = miss_seq(&mut pf, FULL, [7, 300, 22, 9000, 41, 1234567]);
        assert!(burst.is_empty());
        assert_eq!(pf.stats().streams_allocated, 0);
    }

    #[test]
    fn throttled_degree_shrinks_bursts_and_zero_disables() {
        let mut pf = StridePrefetcher::new(PrefetcherConfig::l1());
        // Degree 0: a confirmed stream launches nothing.
        let burst = miss_seq(&mut pf, 0, [0, 1, 2, 3]);
        assert!(burst.is_empty());
        // Degree 1 on a fresh region: a single startup prefetch. Use a
        // region far away so stale non-unit candidates cannot alias.
        let burst = miss_seq(&mut pf, 1, [500, 501, 502, 503]);
        assert_eq!(burst.len(), 1, "degree 1 → single startup prefetch");
    }

    #[test]
    fn degree_is_capped_by_configured_ceiling() {
        let mut pf = StridePrefetcher::new(PrefetcherConfig::l1());
        let burst = miss_seq(&mut pf, 200, [0, 1, 2, 3]);
        assert_eq!(burst.len(), 6, "burst never exceeds the config ceiling");
    }

    #[test]
    fn zero_degree_access_does_not_advance() {
        let mut pf = StridePrefetcher::new(PrefetcherConfig::l1());
        miss_seq(&mut pf, FULL, [0, 1, 2, 3]);
        assert_eq!(pf.on_access(BlockAddr(4), 0), None);
    }

    #[test]
    fn miss_within_stream_advances_instead_of_retraining() {
        let mut pf = StridePrefetcher::new(PrefetcherConfig::l1());
        miss_seq(&mut pf, FULL, [0, 1, 2, 3]); // stream expects 4 next
        // Line 4 missed (prefetch was too late): stream still advances.
        let more = pf.on_miss(BlockAddr(4), FULL);
        assert_eq!(more, vec![BlockAddr(10)]);
        assert_eq!(pf.stats().stream_advances, 1);
    }
}
