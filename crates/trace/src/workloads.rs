//! The eight benchmark parameter sets.
//!
//! Each spec is calibrated against what the paper publishes about the real
//! workload: Table 3 compression ratio, Table 4 prefetch rate / coverage /
//! accuracy per cache, Figure 3 miss reduction, Figure 4 bandwidth demand,
//! and the qualitative descriptions of §4. The comments on each function
//! record the calibration targets.
//!
//! Shape summary we must hit (see DESIGN.md §4):
//! - commercial: compressible (1.4–1.8), big instruction footprints,
//!   moderate/short streams, read-write sharing, and — crucially — hot
//!   working sets sized just above the 4 MB L2 (they fit once compression
//!   raises the effective capacity); naive prefetching ranges from mildly
//!   helpful (zeus) to disastrous (jbb);
//! - SPEComp: barely compressible (1.01–1.19), tiny hot loops, long
//!   accurate streams over grids that either re-sweep near the cache
//!   boundary (art, apsi) or stream far past it (fma3d, mgrid).

use crate::spec::{WorkloadClass, WorkloadSpec};
use crate::values::LineClass;

const COMMERCIAL_STRIDES: &[i64] = &[1, 1, 1, -1, 2];
const JBB_STRIDES: &[i64] = &[1, 1, -1, 3];
const UNIT_STRIDES: &[i64] = &[1];
const ART_STRIDES: &[i64] = &[1, 1, 1, -1];
const APSI_STRIDES: &[i64] = &[1, 2, 4];
const FMA3D_STRIDES: &[i64] = &[1, 1, 1, 2];

/// Apache: static web serving (SURGE clients).
///
/// Calibration targets: compression ratio ≈ 1.75 (Table 3); ~20 % L2 miss
/// reduction under cache compression (Fig 3); prefetching alone ≈ −1 %
/// (Table 5) — streams exist but are short; the paper's highest
/// commercial bandwidth demand (8.8 GB/s, Fig 4).
fn apache() -> WorkloadSpec {
    WorkloadSpec {
        name: "apache",
        class: WorkloadClass::Commercial,
        inst_footprint_lines: 8192, // 512 KB of code
        inst_hot_lines: 1536,       // 96 KB hot paths > 64 KB L1I
        inst_hot_fraction: 0.90,
        inst_run_mean_lines: 6.0,
        mem_ratio: 0.30,
        store_fraction: 0.30,
        dependent_fraction: 0.45,
        stride_fraction: 0.05,
        shared_fraction: 0.35,
        pool_run_mean: 10.0,
        streams_per_core: 4,
        stream_len_lines: 32,
        accesses_per_line: 8,
        stride_choices: COMMERCIAL_STRIDES,
        stream_region_lines: 1 << 16, // 4 MB of scanned buffers per core
        shared_pool_lines: 1 << 17,   // 8 MB shared file cache
        shared_tier1_lines: 512,      // 32 KB per-request state
        shared_tier1_fraction: 0.90,
        shared_hot_lines: 20_480, // 1.28 MB hot documents
        shared_hot_fraction: 0.085,
        shared_store_fraction: 0.12,
        private_pool_lines: 1 << 15, // 2 MB per-core heap
        private_tier1_lines: 512,
        private_tier1_fraction: 0.945,
        private_hot_lines: 6_144, // 384 KB × 8 cores = 3 MB hot
        private_hot_fraction: 0.045,
        value_classes: &[
            (LineClass::Zero, 0.15),
            (LineClass::SmallInt, 0.30),
            (LineClass::Pointer, 0.30),
            (LineClass::Random, 0.25),
        ],
    }
}

/// Zeus: event-driven web server, same data set as apache.
///
/// Targets: ratio ≈ 1.6; the commercial workload where plain prefetching
/// helps most (+21 %, Table 5) — longer, more accurate streams (L1D
/// accuracy 79 %, Table 4); working set like apache's.
fn zeus() -> WorkloadSpec {
    WorkloadSpec {
        name: "zeus",
        class: WorkloadClass::Commercial,
        inst_footprint_lines: 6144, // event loop: smaller code than apache
        inst_hot_lines: 1280,
        inst_hot_fraction: 0.90,
        inst_run_mean_lines: 7.0,
        mem_ratio: 0.30,
        store_fraction: 0.28,
        dependent_fraction: 0.4,
        stride_fraction: 0.06,
        shared_fraction: 0.30,
        pool_run_mean: 16.0,
        streams_per_core: 4,
        stream_len_lines: 64,
        accesses_per_line: 8,
        stride_choices: COMMERCIAL_STRIDES,
        stream_region_lines: 1 << 16,
        shared_pool_lines: 1 << 17,
        shared_tier1_lines: 512,
        shared_tier1_fraction: 0.938,
        shared_hot_lines: 18_432, // 1.15 MB
        shared_hot_fraction: 0.050,
        shared_store_fraction: 0.10,
        private_pool_lines: 1 << 15,
        private_tier1_lines: 512,
        private_tier1_fraction: 0.962,
        private_hot_lines: 5_632, // 352 KB × 8 = 2.75 MB
        private_hot_fraction: 0.030,
        value_classes: &[
            (LineClass::Zero, 0.12),
            (LineClass::SmallInt, 0.25),
            (LineClass::Pointer, 0.33),
            (LineClass::Random, 0.30),
        ],
    }
}

/// OLTP: TPC-C on DB2.
///
/// Targets: ratio ≈ 1.5; the paper's biggest instruction footprint (L1I
/// prefetch rate 13.5/1k, Table 4); almost no useful data streams (L1D
/// coverage 6.6 %); prefetching alone ≈ 0 % speedup; heavy shared
/// (buffer-pool/lock) traffic.
fn oltp() -> WorkloadSpec {
    WorkloadSpec {
        name: "oltp",
        class: WorkloadClass::Commercial,
        inst_footprint_lines: 32_768, // 2 MB of DBMS code
        inst_hot_lines: 2_048,        // 128 KB hot — far beyond the L1I
        inst_hot_fraction: 0.85,
        inst_run_mean_lines: 4.0, // branchy
        mem_ratio: 0.30,
        store_fraction: 0.28,
        dependent_fraction: 0.5,
        stride_fraction: 0.03,
        shared_fraction: 0.45,
        pool_run_mean: 2.5,
        streams_per_core: 2,
        stream_len_lines: 16,
        accesses_per_line: 4,
        stride_choices: COMMERCIAL_STRIDES,
        stream_region_lines: 1 << 15,
        shared_pool_lines: 1 << 17, // 8 MB buffer pool
        shared_tier1_lines: 512,
        shared_tier1_fraction: 0.940,
        shared_hot_lines: 24_576, // 1.5 MB hot pages
        shared_hot_fraction: 0.050,
        shared_store_fraction: 0.15,
        private_pool_lines: 1 << 15,
        private_tier1_lines: 512,
        private_tier1_fraction: 0.970,
        private_hot_lines: 4_608, // 288 KB × 8 = 2.25 MB
        private_hot_fraction: 0.025,
        value_classes: &[
            (LineClass::Zero, 0.10),
            (LineClass::SmallInt, 0.22),
            (LineClass::Pointer, 0.30),
            (LineClass::Random, 0.38),
        ],
    }
}

/// SPECjbb2000 on a server JVM.
///
/// Targets: ratio ≈ 1.4; the prefetching disaster case (−24.5 %, Table 5;
/// L2 accuracy 32 %, Table 4): short object-walk streams waste the 25-deep
/// L2 startup burst and pollute a tight ~4.5 MB heap working set.
fn jbb() -> WorkloadSpec {
    WorkloadSpec {
        name: "jbb",
        class: WorkloadClass::Commercial,
        inst_footprint_lines: 12_288, // JIT code cache
        inst_hot_lines: 1_024,        // 64 KB hot traces ≈ L1I size
        inst_hot_fraction: 0.92,
        inst_run_mean_lines: 6.0,
        mem_ratio: 0.30,
        store_fraction: 0.30,
        dependent_fraction: 0.55,
        stride_fraction: 0.04,
        shared_fraction: 0.15, // warehouses are mostly thread-private
        pool_run_mean: 4.0,
        streams_per_core: 4,
        stream_len_lines: 8, // short object scans → inaccurate streams
        accesses_per_line: 2,
        stride_choices: JBB_STRIDES,
        stream_region_lines: 1 << 14, // 1 MB/core of object scans: misses the L2
        shared_pool_lines: 1 << 16,
        shared_tier1_lines: 512,
        shared_tier1_fraction: 0.930,
        shared_hot_lines: 8_192, // 512 KB
        shared_hot_fraction: 0.060,
        shared_store_fraction: 0.12,
        private_pool_lines: 1 << 16, // 4 MB per-warehouse heap
        private_tier1_lines: 512,
        private_tier1_fraction: 0.940,
        private_hot_lines: 8_192, // 512 KB × 8 = 4 MB live objects
        private_hot_fraction: 0.055,
        value_classes: &[
            (LineClass::Zero, 0.08),
            (LineClass::SmallInt, 0.20),
            (LineClass::Pointer, 0.28),
            (LineClass::Random, 0.44),
        ],
    }
}

/// art (SPEComp): neural-network image recognition.
///
/// Targets: ratio ≈ 1.15; tiny code; torrential but *cache-resident*
/// streams (the paper's highest L1D prefetch rate, 56/1k; its ~4 MB
/// working set re-sweeps, so it sits exactly on the capacity edge where
/// compression still helps a little, +3.1 % in Table 5).
fn art() -> WorkloadSpec {
    WorkloadSpec {
        name: "art",
        class: WorkloadClass::Scientific,
        inst_footprint_lines: 64, // 4 KB loop kernels
        inst_hot_lines: 64,
        inst_hot_fraction: 1.0,
        inst_run_mean_lines: 16.0,
        mem_ratio: 0.38,
        store_fraction: 0.20,
        dependent_fraction: 0.15,
        stride_fraction: 0.85,
        shared_fraction: 0.0,
        pool_run_mean: 1.0,
        streams_per_core: 8,
        stream_len_lines: 512,
        accesses_per_line: 2,
        stride_choices: ART_STRIDES,
        stream_region_lines: 4_608, // 384 KB/core → 3 MB total, re-swept
        shared_pool_lines: 1,
        shared_tier1_lines: 1,
        shared_tier1_fraction: 0.0,
        shared_hot_lines: 1,
        shared_hot_fraction: 0.0,
        shared_store_fraction: 0.0,
        private_pool_lines: 1_024,
        private_tier1_lines: 256,
        private_tier1_fraction: 0.70,
        private_hot_lines: 256,
        private_hot_fraction: 0.25,
        value_classes: &[
            (LineClass::Zero, 0.05),
            (LineClass::Fp { zero_word_permille: 250 }, 0.60),
            (LineClass::Fp { zero_word_permille: 100 }, 0.35),
        ],
    }
}

/// apsi (SPEComp): pollutant-distribution weather code.
///
/// Targets: ratio ≈ 1.01 (the incompressible extreme); its grid slabs fit
/// in the L2 after warmup → the paper's lowest L2 prefetch rate (4.6/1k)
/// at near-perfect coverage/accuracy (95.8 % / 97.6 %).
fn apsi() -> WorkloadSpec {
    WorkloadSpec {
        name: "apsi",
        class: WorkloadClass::Scientific,
        inst_footprint_lines: 128,
        inst_hot_lines: 128,
        inst_hot_fraction: 1.0,
        inst_run_mean_lines: 16.0,
        mem_ratio: 0.35,
        store_fraction: 0.25,
        dependent_fraction: 0.1,
        stride_fraction: 0.30,
        shared_fraction: 0.0,
        pool_run_mean: 1.0,
        streams_per_core: 4,
        stream_len_lines: 4_096,
        accesses_per_line: 8,
        stride_choices: APSI_STRIDES,
        stream_region_lines: 1 << 15, // 256 KB/core → 2 MB total: L2-resident
        shared_pool_lines: 1,
        shared_tier1_lines: 1,
        shared_tier1_fraction: 0.0,
        shared_hot_lines: 1,
        shared_hot_fraction: 0.0,
        shared_store_fraction: 0.0,
        private_pool_lines: 2_048,
        private_tier1_lines: 256,
        private_tier1_fraction: 0.70,
        private_hot_lines: 512,
        private_hot_fraction: 0.27,
        value_classes: &[
            (LineClass::Zero, 0.01),
            (LineClass::Fp { zero_word_permille: 30 }, 0.99),
        ],
    }
}

/// fma3d (SPEComp): crash-simulation finite elements.
///
/// Targets: ratio ≈ 1.19; the bandwidth hog (27.7 GB/s demand, Fig 4;
/// link compression alone gives it a 23 % speedup, Fig 5); giant
/// streamed meshes → compression saves no misses; write-heavy.
fn fma3d() -> WorkloadSpec {
    WorkloadSpec {
        name: "fma3d",
        class: WorkloadClass::Scientific,
        inst_footprint_lines: 256,
        inst_hot_lines: 256,
        inst_hot_fraction: 1.0,
        inst_run_mean_lines: 14.0,
        mem_ratio: 0.33,
        store_fraction: 0.35,
        dependent_fraction: 0.05,
        stride_fraction: 0.60,
        shared_fraction: 0.0,
        pool_run_mean: 1.0,
        streams_per_core: 6,
        stream_len_lines: 2_048,
        accesses_per_line: 8, // gathers touch most of each fetched line
        stride_choices: FMA3D_STRIDES,
        stream_region_lines: 1 << 20, // 64 MB/core: pure streaming
        shared_pool_lines: 1,
        shared_tier1_lines: 1,
        shared_tier1_fraction: 0.0,
        shared_hot_lines: 1,
        shared_hot_fraction: 0.0,
        shared_store_fraction: 0.0,
        private_pool_lines: 2_048,
        private_tier1_lines: 256,
        private_tier1_fraction: 0.70,
        private_hot_lines: 512,
        private_hot_fraction: 0.27,
        value_classes: &[
            (LineClass::Zero, 0.10),
            (LineClass::Fp { zero_word_permille: 250 }, 0.55),
            (LineClass::Fp { zero_word_permille: 100 }, 0.35),
        ],
    }
}

/// mgrid (SPEComp): multi-grid solver.
///
/// Targets: ratio ≈ 1.08; the unit-stride showcase (80 % L1D coverage at
/// 94 % accuracy, Table 4; +19 % from prefetching alone, Table 5); dense
/// sweeps over grids much larger than the L2.
fn mgrid() -> WorkloadSpec {
    WorkloadSpec {
        name: "mgrid",
        class: WorkloadClass::Scientific,
        inst_footprint_lines: 128,
        inst_hot_lines: 128,
        inst_hot_fraction: 1.0,
        inst_run_mean_lines: 16.0,
        mem_ratio: 0.26,
        store_fraction: 0.30,
        dependent_fraction: 0.05,
        stride_fraction: 0.42,
        shared_fraction: 0.0,
        pool_run_mean: 1.0,
        streams_per_core: 4,
        stream_len_lines: 8_192,
        accesses_per_line: 8, // dense double-precision unit sweep
        stride_choices: UNIT_STRIDES,
        stream_region_lines: 1 << 19, // 32 MB/core grids
        shared_pool_lines: 1,
        shared_tier1_lines: 1,
        shared_tier1_fraction: 0.0,
        shared_hot_lines: 1,
        shared_hot_fraction: 0.0,
        shared_store_fraction: 0.0,
        private_pool_lines: 2_048,
        private_tier1_lines: 256,
        private_tier1_fraction: 0.70,
        private_hot_lines: 512,
        private_hot_fraction: 0.25,
        value_classes: &[
            (LineClass::Zero, 0.05),
            (LineClass::Fp { zero_word_permille: 250 }, 0.35),
            (LineClass::Fp { zero_word_permille: 100 }, 0.60),
        ],
    }
}

/// Looks up a workload by its paper name.
///
/// # Examples
///
/// ```
/// use cmpsim_trace::workload;
/// assert!(workload("zeus").is_some());
/// assert!(workload("doom").is_none());
/// ```
pub fn workload(name: &str) -> Option<WorkloadSpec> {
    all_workloads().into_iter().find(|w| w.name == name)
}

/// All eight benchmarks in the paper's presentation order.
pub fn all_workloads() -> Vec<WorkloadSpec> {
    vec![apache(), zeus(), oltp(), jbb(), art(), apsi(), fma3d(), mgrid()]
}

/// The four Wisconsin commercial workloads.
pub fn commercial_workloads() -> Vec<WorkloadSpec> {
    all_workloads()
        .into_iter()
        .filter(|w| w.class == WorkloadClass::Commercial)
        .collect()
}

/// The four SPEComp benchmarks.
pub fn scientific_workloads() -> Vec<WorkloadSpec> {
    all_workloads()
        .into_iter()
        .filter(|w| w.class == WorkloadClass::Scientific)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 3 calibration targets for the value mixtures.
    const RATIO_TARGETS: &[(&str, f64)] = &[
        ("apache", 1.75),
        ("zeus", 1.60),
        ("oltp", 1.50),
        ("jbb", 1.40),
        ("art", 1.15),
        ("apsi", 1.01),
        ("fma3d", 1.19),
        ("mgrid", 1.08),
    ];

    #[test]
    fn all_specs_validate() {
        for w in all_workloads() {
            w.validate();
        }
    }

    #[test]
    fn names_are_unique_and_ordered() {
        let names: Vec<_> = all_workloads().iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            ["apache", "zeus", "oltp", "jbb", "art", "apsi", "fma3d", "mgrid"]
        );
    }

    #[test]
    fn families_split_four_four() {
        assert_eq!(commercial_workloads().len(), 4);
        assert_eq!(scientific_workloads().len(), 4);
    }

    #[test]
    fn value_mixtures_hit_table3_targets() {
        for (name, target) in RATIO_TARGETS {
            let w = workload(name).unwrap();
            let ratio = w.value_profile(17).expected_ratio(6_000);
            assert!(
                (ratio - target).abs() < 0.15,
                "{name}: expected ratio ≈ {target}, model gives {ratio:.3}"
            );
        }
    }

    #[test]
    fn commercial_compresses_better_than_scientific() {
        let worst_commercial = commercial_workloads()
            .iter()
            .map(|w| w.value_profile(3).expected_ratio(3_000))
            .fold(f64::INFINITY, f64::min);
        let best_scientific = scientific_workloads()
            .iter()
            .map(|w| w.value_profile(3).expected_ratio(3_000))
            .fold(0.0, f64::max);
        assert!(worst_commercial > best_scientific);
    }

    #[test]
    fn commercial_hot_sets_straddle_the_l2(){
        // The compression lever: tier-1 + hot working set (shared + all
        // cores' private + hot code) must exceed 4 MB but fit within the
        // workload's compressed effective capacity.
        for w in commercial_workloads() {
            let hot_lines = w.shared_hot_lines
                + w.shared_tier1_lines
                + 8 * (w.private_hot_lines + w.private_tier1_lines)
                + w.inst_hot_lines;
            let hot_bytes = hot_lines * 64;
            let l2 = 4 * 1024 * 1024;
            assert!(hot_bytes > l2, "{}: hot set {hot_bytes} fits uncompressed", w.name);
            let ratio = w.value_profile(1).expected_ratio(2_000);
            let effective = (l2 as f64 * ratio) as u64;
            assert!(
                hot_bytes < effective + l2 / 2,
                "{}: hot set {hot_bytes} unreachable even compressed ({effective})",
                w.name
            );
        }
    }

    #[test]
    fn lookup_is_case_sensitive_paper_names() {
        assert!(workload("APACHE").is_none());
        assert_eq!(workload("mgrid").unwrap().name, "mgrid");
    }
}
