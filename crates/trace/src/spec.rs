//! Workload specifications: every knob a synthetic benchmark exposes.

use crate::values::{LineClass, ValueProfile};

/// The paper's two benchmark families (they behave very differently under
/// both compression and prefetching — see §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadClass {
    /// Wisconsin commercial workload suite (oltp, jbb, apache, zeus).
    Commercial,
    /// SPEComp2001 (art, apsi, fma3d, mgrid).
    Scientific,
}

/// A contiguous region of the line-number address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First line number of the region.
    pub base: u64,
    /// Region length in lines.
    pub lines: u64,
}

impl Region {
    /// The line at `offset` within the region (wraps around).
    pub fn line(&self, offset: u64) -> u64 {
        self.base + offset % self.lines
    }

    /// Whether `line` falls inside the region.
    pub fn contains(&self, line: u64) -> bool {
        (self.base..self.base + self.lines).contains(&line)
    }
}

/// Base line number of the (shared, read-only) instruction region.
pub const INST_BASE: u64 = 0x1_0000_0000;
/// Base line number of the shared data region.
pub const SHARED_BASE: u64 = 0x2_0000_0000;

/// Base line number of core `c`'s private data pool.
///
/// The per-core stagger is deliberately *not* a multiple of any plausible
/// L2 set count: power-of-two-aligned bases would map every core's pool
/// onto the same cache sets and manufacture conflict misses that real
/// heaps (allocated at effectively random offsets) do not have.
pub fn private_base(core: u8) -> u64 {
    0x4_0000_0000 + u64::from(core) * 0x0433_1337
}

/// Base line number of core `c`'s strided-stream region (staggered for
/// the same reason as [`private_base`]).
pub fn stream_base(core: u8) -> u64 {
    0x100_0000_0000 + u64::from(core) * 0x1_0234_5677
}

/// Full parameter set of one synthetic benchmark.
///
/// The per-field comments say which published characteristic each knob is
/// calibrated against; the concrete values live in
/// [`crate::workloads`].
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Benchmark name as the paper prints it (e.g. `"zeus"`).
    pub name: &'static str,
    /// Commercial or scientific family.
    pub class: WorkloadClass,

    // ---- instruction stream (drives the L1I prefetcher, Table 4 left) ----
    /// Total instruction footprint in lines (commercial: large; SPEComp:
    /// tiny loop kernels).
    pub inst_footprint_lines: u64,
    /// Hot-code subset receiving `inst_hot_fraction` of jumps.
    pub inst_hot_lines: u64,
    /// Fraction of jump targets landing in the hot subset.
    pub inst_hot_fraction: f64,
    /// Mean sequential run length (lines) between jumps: sets L1I stream
    /// length and thus L1I prefetch coverage/accuracy.
    pub inst_run_mean_lines: f64,

    // ---- data access mixture ----
    /// Fraction of instructions that reference data (loads + stores).
    pub mem_ratio: f64,
    /// Fraction of data references that are stores.
    pub store_fraction: f64,
    /// Fraction of loads whose address depends on the previous load
    /// (pointer chasing): the core cannot run ahead past them, so their
    /// misses serialize. Commercial workloads are dependence-bound
    /// (B-trees, object graphs); scientific sweeps are not.
    pub dependent_fraction: f64,
    /// Fraction of data references served by strided streams (sets
    /// prefetch coverage, Table 4).
    pub stride_fraction: f64,
    /// Fraction of data references to the shared pool (coherence traffic;
    /// commercial only in practice).
    pub shared_fraction: f64,
    /// Mean sequential run length (in lines) of pool accesses. Real
    /// commercial accesses walk buffers, rows and objects spanning a few
    /// lines; these short runs are what the Power4-style prefetchers pick
    /// up (and overshoot) on commercial workloads — Table 4's moderate
    /// coverage at ~50 % accuracy. 1.0 means purely random lines.
    pub pool_run_mean: f64,

    // ---- strided streams (drive the L1D/L2 prefetchers) ----
    /// Concurrent streams per core.
    pub streams_per_core: usize,
    /// Lines a stream sweeps before re-seeding: long streams → high
    /// prefetch accuracy (SPEComp), short ones → overshoot waste (jbb).
    pub stream_len_lines: u64,
    /// Consecutive accesses to each line before advancing (spatial
    /// locality within the stream).
    pub accesses_per_line: u32,
    /// Stride choices in lines (mostly ±1; art/apsi add non-unit).
    pub stride_choices: &'static [i64],
    /// Per-core stream region size (≫ cache → streaming; ≈ cache →
    /// re-swept working set that compression can capture, like art).
    pub stream_region_lines: u64,

    // ---- pooled (non-strided) data ----
    //
    // Each pool has three locality tiers, mirroring the reuse structure
    // of real applications: a *tier-1* subset small enough to live in an
    // L1, a *hot* subset sized near the L2 boundary (the compression
    // lever: it fits at ratio > 1 but thrashes uncompressed), and the
    // full pool as the cold tail.
    /// Shared pool size in lines.
    pub shared_pool_lines: u64,
    /// Tier-1 (L1-resident) subset of the shared pool.
    pub shared_tier1_lines: u64,
    /// Fraction of shared references to the tier-1 subset.
    pub shared_tier1_fraction: f64,
    /// Hot (L2-edge) subset of the shared pool.
    pub shared_hot_lines: u64,
    /// Fraction of shared references to the hot subset.
    pub shared_hot_fraction: f64,
    /// Store fraction *within* shared references (read-write sharing
    /// intensity → invalidations and recalls).
    pub shared_store_fraction: f64,
    /// Private pool size in lines (per core).
    pub private_pool_lines: u64,
    /// Tier-1 (L1-resident) subset of the private pool.
    pub private_tier1_lines: u64,
    /// Fraction of private references to the tier-1 subset.
    pub private_tier1_fraction: f64,
    /// Hot (L2-edge) subset of the private pool.
    pub private_hot_lines: u64,
    /// Fraction of private references to the hot subset.
    pub private_hot_fraction: f64,

    // ---- values (drive FPC, Table 3) ----
    /// Weighted mixture of line classes for data regions.
    pub value_classes: &'static [(LineClass, f64)],
}

impl WorkloadSpec {
    /// Builds the value model for a run seeded with `seed`.
    ///
    /// Instruction lines are modeled as [`LineClass::Random`]-like content
    /// by the profile too; code compresses poorly under FPC, which matches
    /// the paper's data-centric compression discussion.
    pub fn value_profile(&self, seed: u64) -> ValueProfile {
        ValueProfile::new(self.value_classes, seed)
    }

    /// The instruction region (shared by all cores).
    pub fn inst_region(&self) -> Region {
        Region { base: INST_BASE, lines: self.inst_footprint_lines }
    }

    /// The shared data region.
    pub fn shared_region(&self) -> Region {
        Region { base: SHARED_BASE, lines: self.shared_pool_lines }
    }

    /// Core `c`'s private pool region.
    pub fn private_region(&self, core: u8) -> Region {
        Region { base: private_base(core), lines: self.private_pool_lines }
    }

    /// Core `c`'s stream region.
    pub fn stream_region(&self, core: u8) -> Region {
        Region { base: stream_base(core), lines: self.stream_region_lines }
    }

    /// Sanity-checks parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics (with the offending field) if a fraction is outside `[0,1]`,
    /// a hot subset exceeds its pool, or a required size is zero.
    pub fn validate(&self) {
        for (v, name) in [
            (self.inst_hot_fraction, "inst_hot_fraction"),
            (self.mem_ratio, "mem_ratio"),
            (self.store_fraction, "store_fraction"),
            (self.dependent_fraction, "dependent_fraction"),
            (self.stride_fraction, "stride_fraction"),
            (self.shared_fraction, "shared_fraction"),
            (self.shared_tier1_fraction, "shared_tier1_fraction"),
            (self.shared_hot_fraction, "shared_hot_fraction"),
            (self.shared_store_fraction, "shared_store_fraction"),
            (self.private_tier1_fraction, "private_tier1_fraction"),
            (self.private_hot_fraction, "private_hot_fraction"),
        ] {
            assert!((0.0..=1.0).contains(&v), "{name} = {v} out of [0,1]");
        }
        assert!(
            self.stride_fraction + self.shared_fraction <= 1.0,
            "stride + shared fractions exceed 1"
        );
        assert!(self.inst_footprint_lines > 0, "empty instruction footprint");
        assert!(self.inst_hot_lines <= self.inst_footprint_lines, "inst hot > footprint");
        assert!(self.shared_hot_lines <= self.shared_pool_lines, "shared hot > pool");
        assert!(self.shared_tier1_lines <= self.shared_hot_lines.max(1), "shared tier1 > hot");
        assert!(
            self.shared_tier1_fraction + self.shared_hot_fraction <= 1.0,
            "shared tier fractions exceed 1"
        );
        assert!(self.private_hot_lines <= self.private_pool_lines, "private hot > pool");
        assert!(self.private_tier1_lines <= self.private_hot_lines.max(1), "private tier1 > hot");
        assert!(
            self.private_tier1_fraction + self.private_hot_fraction <= 1.0,
            "private tier fractions exceed 1"
        );
        assert!(self.pool_run_mean >= 1.0, "pool_run_mean below 1");
        assert!(self.streams_per_core > 0, "need at least one stream");
        assert!(self.stream_len_lines > 0, "zero stream length");
        assert!(self.accesses_per_line > 0, "zero accesses per line");
        assert!(!self.stride_choices.is_empty(), "no stride choices");
        assert!(self.stream_region_lines > 0, "empty stream region");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        // Largest plausible sizes: 16 cores, 16M-line pools.
        let pools: Vec<(u64, u64)> = std::iter::once((INST_BASE, 1 << 24))
            .chain(std::iter::once((SHARED_BASE, 1 << 24)))
            .chain((0..16).map(|c| (private_base(c), 1 << 24)))
            .chain((0..16).map(|c| (stream_base(c), 1 << 24)))
            .collect();
        for (i, a) in pools.iter().enumerate() {
            for b in pools.iter().skip(i + 1) {
                let (a0, a1) = (a.0, a.0 + a.1);
                let (b0, b1) = (b.0, b.0 + b.1);
                assert!(a1 <= b0 || b1 <= a0, "regions overlap: {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn region_wraps() {
        let r = Region { base: 100, lines: 10 };
        assert_eq!(r.line(0), 100);
        assert_eq!(r.line(9), 109);
        assert_eq!(r.line(10), 100);
        assert!(r.contains(105));
        assert!(!r.contains(110));
    }
}
