//! Instruction-fetch line stream.
//!
//! Models a control-flow walk over the benchmark's instruction footprint:
//! sequential runs of cache lines (basic blocks / straight-line code)
//! separated by jumps whose targets favor a hot-code subset. Run length
//! sets how prefetchable the I-stream is; footprint size sets L1I
//! pressure (oltp's huge footprint gives it the paper's highest L1I
//! prefetch rate, 13.5/1k instructions).

use crate::rng::Rng;
use crate::spec::Region;

/// Generator of successive instruction-line addresses.
#[derive(Debug, Clone)]
pub struct InstStream {
    region: Region,
    hot_lines: u64,
    hot_fraction: f64,
    run_mean: f64,
    rng: Rng,
    offset: u64,
    run_left: u64,
}

impl InstStream {
    /// Creates a stream over `region` with the given hot subset and mean
    /// sequential run length (in lines).
    pub fn new(region: Region, hot_lines: u64, hot_fraction: f64, run_mean: f64, rng: Rng) -> Self {
        let mut s = InstStream {
            region,
            hot_lines: hot_lines.max(1),
            hot_fraction,
            run_mean: run_mean.max(1.0),
            rng,
            offset: 0,
            run_left: 0,
        };
        s.jump();
        s
    }

    fn jump(&mut self) {
        let pool = if self.rng.chance(self.hot_fraction) {
            self.hot_lines
        } else {
            self.region.lines
        };
        self.offset = self.rng.below(pool.max(1));
        // Mean run length `run_mean` ⇒ continue probability 1-1/mean.
        self.run_left = 1 + self.rng.geometric(1.0 / self.run_mean);
    }

    /// The line containing the next chunk of instructions; each call
    /// represents the fetch stream crossing into a new line.
    pub fn next_line(&mut self) -> u64 {
        if self.run_left == 0 {
            self.jump();
        }
        let line = self.region.line(self.offset);
        self.offset = (self.offset + 1) % self.region.lines;
        self.run_left -= 1;
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(footprint: u64, hot: u64, hf: f64, run: f64) -> InstStream {
        InstStream::new(
            Region { base: 1000, lines: footprint },
            hot,
            hf,
            run,
            Rng::new(42),
        )
    }

    #[test]
    fn lines_stay_in_region() {
        let mut s = stream(128, 16, 0.8, 6.0);
        for _ in 0..10_000 {
            let l = s.next_line();
            assert!((1000..1128).contains(&l));
        }
    }

    #[test]
    fn sequential_runs_exist() {
        let mut s = stream(1 << 16, 1 << 10, 0.5, 8.0);
        let lines: Vec<u64> = (0..10_000).map(|_| s.next_line()).collect();
        let sequential = lines.windows(2).filter(|w| w[1] == w[0] + 1).count();
        // Mean run 8 → ~7/8 of transitions sequential.
        let frac = sequential as f64 / (lines.len() - 1) as f64;
        assert!(frac > 0.75 && frac < 0.95, "sequential fraction {frac}");
    }

    #[test]
    fn hot_subset_dominates() {
        let mut s = stream(1 << 16, 1 << 8, 0.9, 4.0);
        let hot_hits = (0..20_000)
            .filter(|_| {
                let l = s.next_line() - 1000;
                l < (1 << 8) + 8 // hot subset plus run spill-over
            })
            .count();
        assert!(hot_hits as f64 / 20_000.0 > 0.6);
    }

    #[test]
    fn deterministic() {
        let mut a = stream(4096, 512, 0.8, 6.0);
        let mut b = stream(4096, 512, 0.8, 6.0);
        for _ in 0..1000 {
            assert_eq!(a.next_line(), b.next_line());
        }
    }
}
