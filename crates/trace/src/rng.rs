//! Small deterministic RNG for trace generation.
//!
//! A self-contained xorshift64* keeps the generators fast and exactly
//! reproducible across platforms (the simulator's results must be
//! deterministic for a given seed, mirroring the paper's seeded
//! space-variability methodology).

/// Deterministic xorshift64* generator.
///
/// # Examples
///
/// ```
/// use cmpsim_trace::Rng;
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from `seed` (any value; zero is remapped).
    pub fn new(seed: u64) -> Self {
        // SplitMix64 scramble so close seeds diverge immediately.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Rng { state: if z == 0 { 0x4d595df4d0f33173 } else { z } }
    }

    /// Derives an independent stream for a sub-component.
    pub fn fork(&mut self, tag: u64) -> Rng {
        Rng::new(self.next_u64() ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift bounded sampling (Lemire); bias is negligible for
        // the bounds used here.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Geometric gap: number of failures before a success with
    /// probability `p`, i.e. instructions until the next event.
    pub fn geometric(&mut self, p: f64) -> u64 {
        if p >= 1.0 {
            return 0;
        }
        if p <= 0.0 {
            return u64::MAX / 2;
        }
        let u = self.f64().max(f64::MIN_POSITIVE);
        (u.ln() / (1.0 - p).ln()).floor() as u64
    }

    /// Picks a random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot pick from an empty slice");
        &items[self.below(items.len() as u64) as usize]
    }
}

/// Stateless 64-bit hash used to derive per-address properties (line
/// classes, contents) without storing per-line state.
pub(crate) fn hash64(x: u64, seed: u64) -> u64 {
    let mut z = x ^ seed.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    z = (z ^ (z >> 32)).wrapping_mul(0xD6E8_FEB8_6659_FD93);
    z = (z ^ (z >> 32)).wrapping_mul(0xD6E8_FEB8_6659_FD93);
    z ^ (z >> 32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_is_in_range() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(4);
        for _ in 0..10_000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn geometric_mean_approx() {
        let mut r = Rng::new(5);
        let p = 0.25;
        let n = 50_000;
        let sum: u64 = (0..n).map(|_| r.geometric(p)).sum();
        let mean = sum as f64 / n as f64;
        let expected = (1.0 - p) / p; // 3.0
        assert!((mean - expected).abs() < 0.1, "mean {mean} vs {expected}");
    }

    #[test]
    fn chance_rate() {
        let mut r = Rng::new(6);
        let hits = (0..100_000).filter(|_| r.chance(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }

    #[test]
    fn hash_spreads() {
        let a = hash64(1, 9);
        let b = hash64(2, 9);
        let c = hash64(1, 10);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn forked_streams_differ() {
        let mut root = Rng::new(11);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
