//! Strided data streams.
//!
//! Each stream sweeps `stream_len_lines` lines of the core's stream
//! region at a fixed stride, touching every line `accesses_per_line`
//! times, then re-seeds at a fresh random position with a fresh stride.
//! Long streams make stride prefetching accurate and high-coverage
//! (SPEComp); short streams waste most of the L2's 25-deep startup burst
//! (jbb's 32% L2 accuracy).

use crate::rng::Rng;
use crate::spec::Region;

/// One active strided sweep.
#[derive(Debug, Clone)]
pub struct DataStream {
    region: Region,
    len_lines: u64,
    accesses_per_line: u32,
    stride_choices: &'static [i64],
    offset: u64,
    stride: i64,
    lines_left: u64,
    line_accesses_left: u32,
    rng: Rng,
}

impl DataStream {
    /// Creates and seeds a stream.
    pub fn new(
        region: Region,
        len_lines: u64,
        accesses_per_line: u32,
        stride_choices: &'static [i64],
        mut rng: Rng,
    ) -> Self {
        let mut s = DataStream {
            region,
            len_lines: len_lines.max(1),
            accesses_per_line: accesses_per_line.max(1),
            stride_choices,
            offset: 0,
            stride: 1,
            lines_left: 0,
            line_accesses_left: 0,
            rng: rng.fork(0xDA7A),
        };
        s.reseed();
        s
    }

    fn reseed(&mut self) {
        self.offset = self.rng.below(self.region.lines);
        self.stride = *self.rng.pick(self.stride_choices);
        self.lines_left = self.len_lines;
        self.line_accesses_left = self.accesses_per_line;
    }

    /// The line of the next access from this stream.
    pub fn next_line(&mut self) -> u64 {
        if self.lines_left == 0 {
            self.reseed();
        }
        let line = self.region.line(self.offset);
        self.line_accesses_left -= 1;
        if self.line_accesses_left == 0 {
            self.line_accesses_left = self.accesses_per_line;
            self.offset = self
                .offset
                .wrapping_add(self.stride as u64)
                .rem_euclid(self.region.lines.max(1));
            self.lines_left -= 1;
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> Region {
        Region { base: 10_000, lines: 1 << 16 }
    }

    #[test]
    fn unit_stride_sweep_touches_consecutive_lines() {
        const STRIDES: &[i64] = &[1];
        let mut s = DataStream::new(region(), 1000, 1, STRIDES, Rng::new(1));
        let lines: Vec<u64> = (0..100).map(|_| s.next_line()).collect();
        for w in lines.windows(2) {
            assert!(w[1] == w[0] + 1 || w[1] == region().base, "wrap or +1");
        }
    }

    #[test]
    fn accesses_per_line_repeat() {
        const STRIDES: &[i64] = &[1];
        let mut s = DataStream::new(region(), 1000, 4, STRIDES, Rng::new(2));
        let lines: Vec<u64> = (0..16).map(|_| s.next_line()).collect();
        for chunk in lines.chunks(4) {
            assert!(chunk.iter().all(|l| *l == chunk[0]), "4 touches per line");
        }
        assert_eq!(lines[4], lines[0] + 1);
    }

    #[test]
    fn reseed_after_len() {
        const STRIDES: &[i64] = &[1];
        let mut s = DataStream::new(region(), 8, 1, STRIDES, Rng::new(3));
        let first: Vec<u64> = (0..8).map(|_| s.next_line()).collect();
        let ninth = s.next_line();
        // After 8 lines the stream re-seeds; overwhelmingly likely to be
        // discontinuous with the previous sweep.
        assert_ne!(ninth, first[7] + 1);
    }

    #[test]
    fn negative_strides_stay_in_region() {
        const STRIDES: &[i64] = &[-1, -4];
        let mut s = DataStream::new(region(), 100, 1, STRIDES, Rng::new(4));
        for _ in 0..10_000 {
            let l = s.next_line();
            assert!(region().contains(l), "line {l} outside region");
        }
    }

    #[test]
    fn deterministic() {
        const STRIDES: &[i64] = &[1, 2];
        let mut a = DataStream::new(region(), 64, 2, STRIDES, Rng::new(9));
        let mut b = DataStream::new(region(), 64, 2, STRIDES, Rng::new(9));
        for _ in 0..1000 {
            assert_eq!(a.next_line(), b.next_line());
        }
    }
}
