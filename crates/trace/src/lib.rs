//! Synthetic workload generators standing in for the paper's benchmarks.
//!
//! The paper evaluates four Wisconsin commercial workloads (oltp/DB2,
//! SPECjbb2000, Apache, Zeus) and four SPEComp2001 codes (art, apsi,
//! fma3d, mgrid) under Simics full-system simulation. Those applications
//! and their setups are unobtainable, so each benchmark is replaced by a
//! **parameterized synthetic generator** calibrated against everything the
//! paper publishes about it:
//!
//! - value compressibility → Table 3 compression ratios (§4.2),
//! - strided-stream share, stream length and footprint → Table 4 prefetch
//!   rate / coverage / accuracy,
//! - hot-working-set size just above/below the 4 MB L2 → Figure 3 miss
//!   reductions and Figure 5 speedups,
//! - instruction footprints → commercial L1I pressure (§4.3).
//!
//! Each core runs a [`CoreGenerator`] producing an infinite, deterministic
//! stream of [`TimedEvent`]s (instruction-fetch line crossings and data
//! accesses separated by instruction gaps). Line *contents* come from the
//! per-benchmark [`ValueProfile`], so FPC sees the same statistical mix of
//! zeros / small integers / pointers / floating-point bits the real
//! applications would produce.

mod data;
mod generator;
mod inst;
mod rng;
mod spec;
mod values;
mod workloads;

pub use data::DataStream;
pub use generator::{CoreGenerator, TimedEvent, TraceEvent};
pub use inst::InstStream;
pub use rng::Rng;
pub use spec::{Region, WorkloadClass, WorkloadSpec};
pub use values::{LineClass, ValueProfile};
pub use workloads::{all_workloads, commercial_workloads, scientific_workloads, workload};
