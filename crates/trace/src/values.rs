//! Per-benchmark line-content models controlling FPC compressibility.
//!
//! §4.2 of the paper explains the compressibility landscape: commercial
//! workloads are rich in zeros, small integers and pointers (ratios up to
//! 1.8), while SPEComp's floating-point data barely compresses (1.01–1.19)
//! — "most of the benefit for floating-point applications comes from
//! compressing zeros". Each [`LineClass`] below synthesizes 64 bytes with
//! the corresponding statistics; a [`ValueProfile`] is a weighted mix of
//! classes assigned per line address (stationary, deterministic).

use crate::rng::hash64;
use cmpsim_fpc::{compressed_segments, CodecKind, LINE_BYTES};

/// The kind of data a cache line holds, driving its FPC size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LineClass {
    /// All zeros (freshly allocated pages, cleared buffers): 1 segment.
    Zero,
    /// Small signed integers (counters, lengths, enum fields): ~3 segments.
    SmallInt,
    /// 64-bit heap pointers with zero high words: ~5 segments.
    Pointer,
    /// Floating-point data with a given probability (per mille) of zero
    /// words; mostly incompressible mantissa bits: 7–8 segments.
    Fp {
        /// Probability (0..=1000, per mille) that a 32-bit word is zero.
        zero_word_permille: u16,
    },
    /// High-entropy bytes (ciphertext, compressed media, hashes): 8
    /// segments.
    Random,
}

impl LineClass {
    /// Fills a 64-byte line for this class, deterministically derived
    /// from `(addr_hash)` so repeated reads of a line agree.
    pub fn fill(self, addr_hash: u64, out: &mut [u8; LINE_BYTES]) {
        match self {
            LineClass::Zero => out.fill(0),
            LineClass::SmallInt => {
                for (i, chunk) in out.chunks_exact_mut(4).enumerate() {
                    let h = hash64(addr_hash, i as u64);
                    // Values in [-64, 191]: Signed8 territory with
                    // occasional zeros.
                    let v = if h % 5 == 0 { 0i32 } else { ((h >> 8) % 256) as i32 - 64 };
                    chunk.copy_from_slice(&(v as u32).to_le_bytes());
                }
            }
            LineClass::Pointer => {
                for (i, chunk) in out.chunks_exact_mut(8).enumerate() {
                    let h = hash64(addr_hash, 0x1000 + i as u64);
                    // Heap pointers below 4 GB, 8-byte aligned: the high
                    // word is zero (FPC zero-run), the low word is mostly
                    // entropy.
                    let ptr: u64 = (h & 0xFFFF_FFF8) as u64;
                    chunk.copy_from_slice(&ptr.to_le_bytes());
                }
            }
            LineClass::Fp { zero_word_permille } => {
                for (i, chunk) in out.chunks_exact_mut(4).enumerate() {
                    let h = hash64(addr_hash, 0x2000 + i as u64);
                    let w: u32 = if h % 1000 < u64::from(zero_word_permille) {
                        0
                    } else {
                        // Mantissa/exponent bits: high entropy, non-zero.
                        ((h >> 16) as u32) | 0x0010_0000
                    };
                    chunk.copy_from_slice(&w.to_le_bytes());
                }
            }
            LineClass::Random => {
                for (i, chunk) in out.chunks_exact_mut(4).enumerate() {
                    let h = hash64(addr_hash, 0x3000 + i as u64);
                    // Force incompressibility: high bits set, bytes differ.
                    let w = ((h >> 8) as u32) | 0x8080_0000 | (i as u32) << 1;
                    chunk.copy_from_slice(&w.to_le_bytes());
                }
            }
        }
    }
}

/// A weighted mixture of [`LineClass`]es assigned per line address.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueProfile {
    classes: Vec<(LineClass, f64)>,
    seed: u64,
}

impl ValueProfile {
    /// Builds a profile from `(class, weight)` pairs. Weights are
    /// normalized internally.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is empty or the total weight is non-positive.
    pub fn new(classes: &[(LineClass, f64)], seed: u64) -> Self {
        assert!(!classes.is_empty(), "profile needs at least one class");
        let total: f64 = classes.iter().map(|(_, w)| *w).sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut acc = 0.0;
        let classes = classes
            .iter()
            .map(|(c, w)| {
                acc += *w / total;
                (*c, acc)
            })
            .collect();
        ValueProfile { classes, seed }
    }

    /// The class assigned to a line (stationary per address).
    pub fn class_of(&self, line_number: u64) -> LineClass {
        let u = hash64(line_number, self.seed) as f64 / u64::MAX as f64;
        for (c, cum) in &self.classes {
            if u <= *cum {
                return *c;
            }
        }
        self.classes.last().expect("non-empty").0
    }

    /// Deterministic 64-byte contents of a line.
    pub fn line_bytes(&self, line_number: u64) -> [u8; LINE_BYTES] {
        let mut out = [0u8; LINE_BYTES];
        let h = hash64(line_number, self.seed ^ 0xABCD);
        self.class_of(line_number).fill(h, &mut out);
        out
    }

    /// FPC segment count of the line's contents (1..=8).
    pub fn segments_of(&self, line_number: u64) -> u8 {
        compressed_segments(&self.line_bytes(line_number))
    }

    /// Segment count of the line's contents under `codec`. The engine
    /// resolves [`CodecKind::segments_fn`] once instead and sizes
    /// [`line_bytes`](Self::line_bytes) directly; this is the convenient
    /// form for tables and calibration tools.
    pub fn segments_with(&self, line_number: u64, codec: CodecKind) -> u8 {
        (codec.segments_fn())(&self.line_bytes(line_number))
    }

    /// Monte-Carlo estimate of the effective-capacity compression ratio
    /// (`8 / mean segments`, capped at 2.0 by the VSC's 8-tags-per-4-lines
    /// structure), for calibration against Table 3.
    pub fn expected_ratio(&self, samples: u64) -> f64 {
        self.expected_ratio_with(CodecKind::Fpc, samples)
    }

    /// [`expected_ratio`](Self::expected_ratio) under an arbitrary codec,
    /// for the codec × workload comparison table.
    pub fn expected_ratio_with(&self, codec: CodecKind, samples: u64) -> f64 {
        let sizer = codec.segments_fn();
        let total: u64 = (0..samples)
            .map(|i| u64::from(sizer(&self.line_bytes(i * 977))))
            .sum();
        let mean = total as f64 / samples as f64;
        (8.0 / mean).min(2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_sizes_are_as_documented() {
        let mut buf = [0u8; LINE_BYTES];
        LineClass::Zero.fill(1, &mut buf);
        assert_eq!(compressed_segments(&buf), 1);

        LineClass::SmallInt.fill(1, &mut buf);
        assert!(compressed_segments(&buf) <= 3);

        LineClass::Pointer.fill(1, &mut buf);
        let p = compressed_segments(&buf);
        assert!((4..=6).contains(&p), "pointer line got {p} segments");

        LineClass::Random.fill(1, &mut buf);
        assert_eq!(compressed_segments(&buf), 8);

        LineClass::Fp { zero_word_permille: 0 }.fill(1, &mut buf);
        assert_eq!(compressed_segments(&buf), 8);
    }

    #[test]
    fn fp_zeros_increase_compressibility() {
        let dense = ValueProfile::new(&[(LineClass::Fp { zero_word_permille: 0 }, 1.0)], 1);
        let sparse =
            ValueProfile::new(&[(LineClass::Fp { zero_word_permille: 400 }, 1.0)], 1);
        assert!(sparse.expected_ratio(2000) > dense.expected_ratio(2000));
    }

    #[test]
    fn contents_are_stationary() {
        let p = ValueProfile::new(&[(LineClass::SmallInt, 1.0)], 7);
        assert_eq!(p.line_bytes(123), p.line_bytes(123));
        assert_ne!(p.line_bytes(123), p.line_bytes(124));
    }

    #[test]
    fn mixture_ratio_is_between_extremes() {
        let p = ValueProfile::new(
            &[(LineClass::Zero, 0.5), (LineClass::Random, 0.5)],
            3,
        );
        let r = p.expected_ratio(4000);
        // mean segments = 4.5 → ratio ≈ 1.78.
        assert!((1.6..=1.95).contains(&r), "ratio {r}");
    }

    #[test]
    fn codec_choice_changes_sizing_not_contents() {
        let p = ValueProfile::new(
            &[(LineClass::Zero, 0.3), (LineClass::SmallInt, 0.4), (LineClass::Random, 0.3)],
            5,
        );
        assert_eq!(p.segments_with(42, CodecKind::Fpc), p.segments_of(42));
        // ZCA only compresses zero lines, so every codec that also
        // catches zero lines dominates it on any mixture.
        let fpc = p.expected_ratio_with(CodecKind::Fpc, 2000);
        let bdi = p.expected_ratio_with(CodecKind::Bdi, 2000);
        let zca = p.expected_ratio_with(CodecKind::Zca, 2000);
        assert!(fpc >= zca, "fpc {fpc} vs zca {zca}");
        assert!(bdi >= zca, "bdi {bdi} vs zca {zca}");
        assert!(zca > 1.0, "the mixture has zero lines for zca to find");
    }

    #[test]
    fn seeds_change_assignment_not_statistics() {
        let a = ValueProfile::new(&[(LineClass::Zero, 0.5), (LineClass::Random, 0.5)], 1);
        let b = ValueProfile::new(&[(LineClass::Zero, 0.5), (LineClass::Random, 0.5)], 2);
        assert!((a.expected_ratio(4000) - b.expected_ratio(4000)).abs() < 0.1);
    }
}
