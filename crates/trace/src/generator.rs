//! The per-core event generator the simulator consumes.

use crate::data::DataStream;
use crate::inst::InstStream;
use crate::rng::Rng;
use crate::spec::WorkloadSpec;
use cmpsim_cache::{AccessKind, BlockAddr};

/// Instructions per 64-byte line (4-byte fixed-width instructions).
const INSTS_PER_LINE: u64 = 16;

/// A memory-relevant event in a core's instruction stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// The fetch stream crossed into a new instruction line.
    IFetch(BlockAddr),
    /// A load or store to a data line.
    Data {
        /// Load or store.
        kind: AccessKind,
        /// Target line.
        line: BlockAddr,
        /// Dependent load (address chained on the previous load): the
        /// core stalls on its completion instead of running ahead.
        dependent: bool,
    },
}

impl TraceEvent {
    /// The line this event touches.
    pub fn line(&self) -> BlockAddr {
        match *self {
            TraceEvent::IFetch(l) => l,
            TraceEvent::Data { line, .. } => line,
        }
    }
}

/// An event plus the number of instructions since the previous event.
///
/// The instruction identified by the event is *included* in the gap, so
/// summing `gap` over events reconstructs the instruction count exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedEvent {
    /// Instructions retired by this event (≥ 0; an `IFetch` coinciding
    /// with a data access has gap 0 on the second event).
    pub gap: u64,
    /// The event.
    pub event: TraceEvent,
}

/// Infinite, deterministic event stream for one core of a workload.
///
/// # Examples
///
/// ```
/// use cmpsim_trace::{workload, CoreGenerator};
///
/// let spec = workload("zeus").expect("known benchmark");
/// let mut g = CoreGenerator::new(&spec, 0, 42);
/// let ev = g.next_event();
/// assert!(ev.gap <= 16, "first events come quickly");
/// ```
/// Sequential walk state within one pool tier.
#[derive(Debug, Clone, Copy, Default)]
struct PoolWalk {
    /// Offset of the next line within the tier.
    offset: u64,
    /// Tier size in lines the walk wraps within.
    tier: u64,
    /// Base line number of the tier.
    base: u64,
    /// Remaining lines in the current run (0 = start a new one).
    left: u64,
}

#[derive(Debug, Clone)]
pub struct CoreGenerator {
    spec: WorkloadSpec,
    rng: Rng,
    inst: InstStream,
    streams: Vec<DataStream>,
    next_stream: usize,
    /// One walk per (pool, tier): [tier1, hot, cold] for shared/private.
    shared_walks: [PoolWalk; 3],
    private_walks: [PoolWalk; 3],
    core: u8,
    /// Absolute index of the last emitted event's instruction.
    last_at: u64,
    /// Absolute instruction index of the next data access.
    next_data_at: u64,
    /// Absolute instruction index of the next I-line crossing.
    next_icross_at: u64,
}

impl CoreGenerator {
    /// Builds the generator for `core` of the given workload, seeded so
    /// that every `(spec, core, seed)` triple reproduces exactly.
    pub fn new(spec: &WorkloadSpec, core: u8, seed: u64) -> Self {
        spec.validate();
        let mut rng = Rng::new(seed ^ (u64::from(core) << 32) ^ 0xC0DE);
        let inst = InstStream::new(
            spec.inst_region(),
            spec.inst_hot_lines,
            spec.inst_hot_fraction,
            spec.inst_run_mean_lines,
            rng.fork(1),
        );
        let streams = (0..spec.streams_per_core)
            .map(|i| {
                DataStream::new(
                    spec.stream_region(core),
                    spec.stream_len_lines,
                    spec.accesses_per_line,
                    spec.stride_choices,
                    rng.fork(100 + i as u64),
                )
            })
            .collect();
        let mut g = CoreGenerator {
            spec: spec.clone(),
            rng,
            inst,
            streams,
            next_stream: 0,
            shared_walks: [PoolWalk::default(); 3],
            private_walks: [PoolWalk::default(); 3],
            core,
            last_at: 0,
            next_data_at: 0,
            next_icross_at: 0,
        };
        g.next_data_at = 1 + g.sample_data_gap();
        g
    }

    fn sample_data_gap(&mut self) -> u64 {
        self.rng.geometric(self.spec.mem_ratio)
    }

    /// Next line of a pool walk: continues the current sequential run or
    /// re-seeds one in the tier selected by the caller.
    fn walk(walk: &mut PoolWalk, rng: &mut Rng, base: u64, tier: u64, run_mean: f64) -> u64 {
        if walk.left == 0 || walk.tier != tier || walk.base != base {
            *walk = PoolWalk {
                offset: rng.below(tier.max(1)),
                tier: tier.max(1),
                base,
                left: 1 + rng.geometric(1.0 / run_mean.max(1.0)),
            };
        }
        let line = base + walk.offset;
        walk.offset = (walk.offset + 1) % walk.tier;
        walk.left -= 1;
        line
    }

    fn pick_data(&mut self) -> TraceEvent {
        let u = self.rng.f64();
        let spec = &self.spec;
        let (line, store_p) = if u < spec.stride_fraction {
            let idx = self.next_stream;
            self.next_stream = (idx + 1) % self.streams.len();
            (self.streams[idx].next_line(), spec.store_fraction)
        } else if u < spec.stride_fraction + spec.shared_fraction {
            let r = spec.shared_region();
            let t = self.rng.f64();
            let (tier, pool) = if t < spec.shared_tier1_fraction {
                (0, spec.shared_tier1_lines.max(1))
            } else if t < spec.shared_tier1_fraction + spec.shared_hot_fraction {
                (1, spec.shared_hot_lines.max(1))
            } else {
                (2, r.lines)
            };
            let run_mean = spec.pool_run_mean;
            let line = Self::walk(
                &mut self.shared_walks[tier],
                &mut self.rng,
                r.base,
                pool,
                run_mean,
            );
            (line, spec.shared_store_fraction)
        } else {
            let r = spec.private_region(self.core);
            let t = self.rng.f64();
            let (tier, pool) = if t < spec.private_tier1_fraction {
                (0, spec.private_tier1_lines.max(1))
            } else if t < spec.private_tier1_fraction + spec.private_hot_fraction {
                (1, spec.private_hot_lines.max(1))
            } else {
                (2, r.lines)
            };
            let run_mean = spec.pool_run_mean;
            let line = Self::walk(
                &mut self.private_walks[tier],
                &mut self.rng,
                r.base,
                pool,
                run_mean,
            );
            (line, spec.store_fraction)
        };
        let kind = if self.rng.chance(store_p) { AccessKind::Store } else { AccessKind::Load };
        let dependent =
            kind == AccessKind::Load && self.rng.chance(self.spec.dependent_fraction);
        TraceEvent::Data { kind, line: BlockAddr(line), dependent }
    }

    /// Produces the next event in instruction order.
    pub fn next_event(&mut self) -> TimedEvent {
        if self.next_icross_at <= self.next_data_at {
            // Fetch precedes execution at the same index.
            let at = self.next_icross_at;
            let gap = at - self.last_at;
            self.last_at = at;
            self.next_icross_at = at + INSTS_PER_LINE;
            let line = BlockAddr(self.inst.next_line());
            TimedEvent { gap, event: TraceEvent::IFetch(line) }
        } else {
            let at = self.next_data_at;
            let gap = at - self.last_at;
            self.last_at = at;
            self.next_data_at = at + 1 + self.sample_data_gap();
            let event = self.pick_data();
            TimedEvent { gap, event }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::workload;

    fn gen(name: &str) -> CoreGenerator {
        CoreGenerator::new(&workload(name).unwrap(), 0, 7)
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = gen("apache");
        let mut b = gen("apache");
        for _ in 0..5_000 {
            assert_eq!(a.next_event(), b.next_event());
        }
    }

    #[test]
    fn cores_and_seeds_differ() {
        let spec = workload("apache").unwrap();
        let mut a = CoreGenerator::new(&spec, 0, 7);
        let mut b = CoreGenerator::new(&spec, 1, 7);
        let mut c = CoreGenerator::new(&spec, 0, 8);
        let ea: Vec<_> = (0..100).map(|_| a.next_event()).collect();
        let eb: Vec<_> = (0..100).map(|_| b.next_event()).collect();
        let ec: Vec<_> = (0..100).map(|_| c.next_event()).collect();
        assert_ne!(ea, eb);
        assert_ne!(ea, ec);
    }

    #[test]
    fn ifetch_cadence_is_sixteen_instructions() {
        let mut g = gen("mgrid");
        let mut insts = 0u64;
        let mut ifetches = 0u64;
        for _ in 0..20_000 {
            let ev = g.next_event();
            insts += ev.gap;
            if matches!(ev.event, TraceEvent::IFetch(_)) {
                ifetches += 1;
            }
        }
        let per = insts as f64 / ifetches as f64;
        assert!((15.0..17.0).contains(&per), "instructions per I-line: {per}");
    }

    #[test]
    fn data_rate_matches_mem_ratio() {
        let spec = workload("oltp").unwrap();
        let mut g = CoreGenerator::new(&spec, 0, 3);
        let mut insts = 0u64;
        let mut datas = 0u64;
        for _ in 0..40_000 {
            let ev = g.next_event();
            insts += ev.gap;
            if matches!(ev.event, TraceEvent::Data { .. }) {
                datas += 1;
            }
        }
        let rate = datas as f64 / insts as f64;
        assert!(
            (rate - spec.mem_ratio).abs() < 0.03,
            "data rate {rate} vs mem_ratio {}",
            spec.mem_ratio
        );
    }

    #[test]
    fn store_fraction_approximates_spec() {
        let spec = workload("fma3d").unwrap();
        let mut g = CoreGenerator::new(&spec, 0, 3);
        let (mut loads, mut stores) = (0u64, 0u64);
        for _ in 0..40_000 {
            if let TraceEvent::Data { kind, .. } = g.next_event().event {
                match kind {
                    AccessKind::Store => stores += 1,
                    _ => loads += 1,
                }
            }
        }
        let frac = stores as f64 / (loads + stores) as f64;
        assert!((frac - spec.store_fraction).abs() < 0.05, "store fraction {frac}");
    }

    #[test]
    fn addresses_stay_in_declared_regions() {
        let spec = workload("jbb").unwrap();
        let mut g = CoreGenerator::new(&spec, 2, 5);
        for _ in 0..20_000 {
            let ev = g.next_event();
            let line = ev.event.line().0;
            let ok = spec.inst_region().contains(line)
                || spec.shared_region().contains(line)
                || spec.private_region(2).contains(line)
                || spec.stream_region(2).contains(line);
            assert!(ok, "line {line:#x} outside all regions");
        }
    }
}
