//! System configuration: Table 1 defaults plus the paper's experiment
//! grid.

use cmpsim_fpc::CodecKind;
use cmpsim_link::LinkBandwidth;

/// Which prefetching scheme is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrefetchMode {
    /// No hardware prefetching.
    Off,
    /// The Power4-style stride prefetchers at full fixed degree.
    Stride,
    /// Stride prefetchers governed by the §3 adaptive throttles.
    Adaptive,
}

impl PrefetchMode {
    /// Whether any prefetcher is active.
    pub fn enabled(self) -> bool {
        !matches!(self, PrefetchMode::Off)
    }
}

/// Full static configuration of a simulated system.
///
/// [`SystemConfig::paper_default`] reproduces Table 1; the builder-style
/// `with_*` methods express every variant the evaluation sweeps (link
/// bandwidth, core counts, compression/prefetching combinations).
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Number of cores (the paper studies 1–16, default 8).
    pub cores: u8,
    /// Core clock in GHz (5 in Table 1).
    pub clock_ghz: u32,
    /// *Effective* issue width in instructions/cycle. Table 1 specifies
    /// 4-wide cores, but this simulator does not model branch
    /// mispredictions, dependence chains or the 11-stage pipeline, so a
    /// literal 4 would overstate compute throughput several-fold. The
    /// default of 1 calibrates the base system's aggregate IPC and pin
    /// bandwidth demand into the paper's regime relative to the 20 GB/s
    /// link — base commercial demand well below capacity, fma3d above it
    /// (see DESIGN.md, substitution 1).
    pub issue_width: u64,
    /// Reorder-buffer run-ahead limit in instructions (128).
    pub rob_size: u64,
    /// Outstanding memory requests per core (16).
    pub mshrs_per_core: usize,
    /// Private L1 (I and D each) capacity in bytes (64 KB).
    pub l1_bytes: usize,
    /// L1 associativity (4).
    pub l1_ways: usize,
    /// L1 access latency in cycles (3).
    pub l1_latency: u64,
    /// Shared L2 capacity in bytes (4 MB).
    pub l2_bytes: usize,
    /// L2 banks (8).
    pub l2_banks: usize,
    /// Uncompressed L2 hit latency, including bank access (15).
    pub l2_latency: u64,
    /// Decompression pipeline penalty (5) for the paper's FPC pipeline.
    /// The effective penalty is the configured [`codec`](Self::codec)'s
    /// latency model applied to this base (identity for FPC).
    pub decompression_latency: u64,
    /// Cache-line codec used for both cache and link compression. The
    /// engine resolves it once at construction (monomorphized sizing
    /// function, geometry, latency), so the per-access hot path carries
    /// no codec dispatch. Defaults to [`CodecKind::Fpc`], the paper's
    /// codec.
    pub codec: CodecKind,
    /// One-way on-chip hop between L1s and L2 banks (cycles).
    pub l1_to_l2_latency: u64,
    /// Extra round-trip for a coherence probe of a remote L1.
    pub probe_latency: u64,
    /// DRAM access latency (400).
    pub mem_latency: u64,
    /// Off-chip link bandwidth (20 GB/s; `Infinite` for EQ 1 demand runs).
    pub link: LinkBandwidth,
    /// Store compressed lines in the L2 (the VSC structure).
    pub cache_compression: bool,
    /// Use the ISCA'04 cost/benefit counter to gate compression of newly
    /// written lines (the paper keeps it on; it always chose to compress).
    pub adaptive_compression: bool,
    /// Compress data messages on the off-chip link.
    pub link_compression: bool,
    /// Prefetching scheme.
    pub prefetch: PrefetchMode,
    /// L2 startup-prefetch degree ceiling (25 in Table 1; exposed for
    /// the ablation benches).
    pub l2_prefetch_degree: u8,
    /// RNG seed for the workload generators (vary for confidence
    /// intervals, per the paper's space-variability methodology).
    pub seed: u64,
    /// Forward-progress watchdog: if no core retires an instruction for
    /// this many consecutive cycles, `System::run` aborts with
    /// [`SimError::Livelock`](crate::error::SimError::Livelock) instead
    /// of spinning forever. `0` disables the watchdog. The default
    /// (2 M cycles = 400 µs of simulated time at 5 GHz) is orders of
    /// magnitude beyond any legitimate quiet window (a fully backlogged
    /// link plus a DRAM access is thousands of cycles).
    pub livelock_cycle_budget: u64,
    /// Run sampled structural invariant checks (VSC segment accounting,
    /// directory owner/sharer consistency, link flit conservation) during
    /// simulation, turning corruption into
    /// [`SimError::InvariantViolation`](crate::error::SimError::InvariantViolation)
    /// even in release builds. Defaults from the `CMPSIM_CHECK=1`
    /// environment variable; costs a few percent of runtime when on.
    pub check_invariants: bool,
}

/// Whether `CMPSIM_CHECK=1` is set in the environment (the opt-in switch
/// for [`SystemConfig::check_invariants`]).
pub fn check_invariants_from_env() -> bool {
    std::env::var("CMPSIM_CHECK").map(|v| v == "1").unwrap_or(false)
}

impl SystemConfig {
    /// The Table 1 base system with `cores` processors: no compression,
    /// no prefetching, 20 GB/s pins.
    pub fn paper_default(cores: u8) -> Self {
        SystemConfig {
            cores,
            clock_ghz: 5,
            issue_width: 1,
            rob_size: 128,
            mshrs_per_core: 16,
            l1_bytes: 64 * 1024,
            l1_ways: 4,
            l1_latency: 3,
            l2_bytes: 4 * 1024 * 1024,
            l2_banks: 8,
            l2_latency: 15,
            decompression_latency: 5,
            codec: CodecKind::Fpc,
            l1_to_l2_latency: 2,
            probe_latency: 15,
            mem_latency: 400,
            link: LinkBandwidth::GBps(20),
            cache_compression: false,
            adaptive_compression: true,
            link_compression: false,
            prefetch: PrefetchMode::Off,
            l2_prefetch_degree: 25,
            seed: 1,
            livelock_cycle_budget: 2_000_000,
            check_invariants: check_invariants_from_env(),
        }
    }

    /// Returns a copy with cache and link compression set.
    pub fn with_compression(mut self, cache: bool, link: bool) -> Self {
        self.cache_compression = cache;
        self.link_compression = link;
        self
    }

    /// Returns a copy with the given prefetch mode.
    pub fn with_prefetch(mut self, mode: PrefetchMode) -> Self {
        self.prefetch = mode;
        self
    }

    /// Returns a copy with the given cache-line codec.
    pub fn with_codec(mut self, codec: CodecKind) -> Self {
        self.codec = codec;
        self
    }

    /// Returns a copy with the given link bandwidth.
    pub fn with_link(mut self, link: LinkBandwidth) -> Self {
        self.link = link;
        self
    }

    /// Returns a copy with the given seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with the given forward-progress watchdog budget in
    /// cycles (`0` disables the watchdog).
    pub fn with_livelock_budget(mut self, cycles: u64) -> Self {
        self.livelock_cycle_budget = cycles;
        self
    }

    /// Returns a copy with sampled invariant checking forced on or off,
    /// overriding the `CMPSIM_CHECK` environment default.
    pub fn with_invariant_checks(mut self, on: bool) -> Self {
        self.check_invariants = on;
        self
    }

    /// Whether the L2 must use the decoupled variable-segment structure:
    /// needed for compression *and* for the adaptive prefetcher's extra
    /// victim tags (§5.4: with compression off it still has 4 extra tags
    /// per set).
    pub fn uses_vsc(&self) -> bool {
        self.cache_compression || self.prefetch == PrefetchMode::Adaptive
    }

    /// Sanity-checks the configuration.
    ///
    /// # Panics
    ///
    /// Panics if a structural parameter is zero or inconsistent.
    pub fn validate(&self) {
        assert!(self.cores > 0, "need at least one core");
        assert!(self.issue_width > 0, "zero issue width");
        assert!(self.rob_size > 0, "zero ROB");
        assert!(self.mshrs_per_core > 0, "zero MSHRs");
        assert!(self.l2_banks.is_power_of_two(), "banks must be a power of two");
        assert!(self.clock_ghz > 0, "zero clock");
    }
}

/// The named configuration grid of the paper's evaluation (Figures 5–12,
/// Tables 3–5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// No compression, no prefetching.
    Base,
    /// Cache compression only (Fig 3/4/5).
    CacheCompression,
    /// Link compression only (Fig 4/5).
    LinkCompression,
    /// Cache + link compression ("Compression" in Figs 7/9/10, Table 5).
    BothCompression,
    /// Stride prefetching only.
    Prefetch,
    /// Adaptive prefetching only.
    AdaptivePrefetch,
    /// Stride prefetching + both compressions.
    PrefetchCompression,
    /// Adaptive prefetching + both compressions.
    AdaptivePrefetchCompression,
}

impl Variant {
    /// All variants in presentation order.
    pub fn all() -> [Variant; 8] {
        [
            Variant::Base,
            Variant::CacheCompression,
            Variant::LinkCompression,
            Variant::BothCompression,
            Variant::Prefetch,
            Variant::AdaptivePrefetch,
            Variant::PrefetchCompression,
            Variant::AdaptivePrefetchCompression,
        ]
    }

    /// Applies the variant to a base configuration.
    pub fn apply(self, cfg: SystemConfig) -> SystemConfig {
        match self {
            Variant::Base => cfg.with_compression(false, false).with_prefetch(PrefetchMode::Off),
            Variant::CacheCompression => {
                cfg.with_compression(true, false).with_prefetch(PrefetchMode::Off)
            }
            Variant::LinkCompression => {
                cfg.with_compression(false, true).with_prefetch(PrefetchMode::Off)
            }
            Variant::BothCompression => {
                cfg.with_compression(true, true).with_prefetch(PrefetchMode::Off)
            }
            Variant::Prefetch => {
                cfg.with_compression(false, false).with_prefetch(PrefetchMode::Stride)
            }
            Variant::AdaptivePrefetch => {
                cfg.with_compression(false, false).with_prefetch(PrefetchMode::Adaptive)
            }
            Variant::PrefetchCompression => {
                cfg.with_compression(true, true).with_prefetch(PrefetchMode::Stride)
            }
            Variant::AdaptivePrefetchCompression => {
                cfg.with_compression(true, true).with_prefetch(PrefetchMode::Adaptive)
            }
        }
    }

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Base => "base",
            Variant::CacheCompression => "cache-compr",
            Variant::LinkCompression => "link-compr",
            Variant::BothCompression => "compr",
            Variant::Prefetch => "pf",
            Variant::AdaptivePrefetch => "adaptive-pf",
            Variant::PrefetchCompression => "pf+compr",
            Variant::AdaptivePrefetchCompression => "adaptive-pf+compr",
        }
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults() {
        let c = SystemConfig::paper_default(8);
        c.validate();
        assert_eq!(c.cores, 8);
        assert_eq!(c.l1_bytes, 64 * 1024);
        assert_eq!(c.l2_bytes, 4 * 1024 * 1024);
        assert_eq!(c.mem_latency, 400);
        assert_eq!(c.link, LinkBandwidth::GBps(20));
        assert!(!c.uses_vsc());
    }

    #[test]
    fn codec_defaults_to_fpc_and_is_selectable() {
        let c = SystemConfig::paper_default(8);
        assert_eq!(c.codec, CodecKind::Fpc);
        assert_eq!(c.with_codec(CodecKind::Bdi).codec, CodecKind::Bdi);
    }

    #[test]
    fn vsc_selection() {
        let c = SystemConfig::paper_default(8);
        assert!(c.clone().with_compression(true, false).uses_vsc());
        assert!(c.clone().with_prefetch(PrefetchMode::Adaptive).uses_vsc());
        assert!(!c.clone().with_prefetch(PrefetchMode::Stride).uses_vsc());
        assert!(!c.with_compression(false, true).uses_vsc());
    }

    #[test]
    fn variants_apply() {
        let base = SystemConfig::paper_default(8);
        let v = Variant::PrefetchCompression.apply(base.clone());
        assert!(v.cache_compression && v.link_compression);
        assert_eq!(v.prefetch, PrefetchMode::Stride);
        let v = Variant::AdaptivePrefetch.apply(base);
        assert!(!v.cache_compression);
        assert_eq!(v.prefetch, PrefetchMode::Adaptive);
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = Variant::all().iter().map(|v| v.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 8);
    }
}
