//! Typed simulation failures.
//!
//! A future change that deadlocks the coherence protocol or corrupts the
//! VSC accounting must fail *loudly and partially*: the run that hit it
//! reports a [`SimError`] with a diagnostic dump, the surrounding sweep
//! keeps going, and the per-cell failure surfaces as a [`CellError`] in
//! `run_grid_resilient`'s output instead of poisoning the whole grid.

use crate::config::Variant;

/// A simulation aborted by a runtime safety net instead of completing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The forward-progress watchdog fired: no core retired an
    /// instruction for `window` consecutive cycles (the configured
    /// `livelock_cycle_budget`), or the event queue drained with
    /// unfinished cores.
    Livelock {
        /// Cycle at which the watchdog gave up.
        cycle: u64,
        /// Cycles observed without any instruction retiring.
        window: u64,
        /// Human-readable dump: per-core stall states and outstanding
        /// MSHRs, in-flight L2 fetch counts, link lane backlogs, and
        /// prefetch queue depths.
        diagnostic: String,
        /// The last events from the flight recorder (rendered), oldest
        /// first. Populated from the run's trace when `CMPSIM_TRACE` was
        /// on; otherwise the watchdog arms an emergency recorder for one
        /// extra quiet window so the error still carries the final
        /// event window. Empty only when no events could be captured
        /// (e.g. the event queue drained outright).
        recent_events: Vec<String>,
    },
    /// The opt-in invariant checker (`CMPSIM_CHECK=1`) found corrupted
    /// simulator state.
    InvariantViolation {
        /// Cycle at which the violation was detected.
        cycle: u64,
        /// Which structure failed (e.g. `"l2"`, `"link"`, `"core 3"`).
        subsystem: &'static str,
        /// Description of the violated invariant.
        detail: String,
    },
    /// A fault-recovery budget ran out under an armed chaos plan: a
    /// message (or line) failed every permitted retransmission attempt,
    /// so graceful degradation gives way to an explicit abort.
    FaultBudgetExhausted {
        /// Cycle at which the budget ran out.
        cycle: u64,
        /// The injection site (e.g. `"link-request"`, `"dir-message"`).
        site: &'static str,
        /// Block address of the doomed transfer or probe.
        addr: u64,
        /// Delivery attempts made before giving up.
        attempts: u32,
        /// The last flight-recorder events (rendered, oldest first);
        /// chaos arms a recorder-only trace, so the tail is populated
        /// even when `CMPSIM_TRACE` is off.
        recent_events: Vec<String>,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Livelock { cycle, window, diagnostic, recent_events } => {
                write!(
                    f,
                    "livelock at cycle {cycle}: no instruction retired for {window} cycles\n\
                     {diagnostic}"
                )?;
                if recent_events.is_empty() {
                    write!(f, "\n  (no flight-recorder events captured)")
                } else {
                    write!(f, "\n  last {} flight-recorder events:", recent_events.len())?;
                    for e in recent_events {
                        write!(f, "\n    {e}")?;
                    }
                    Ok(())
                }
            }
            SimError::InvariantViolation { cycle, subsystem, detail } => {
                write!(f, "invariant violation in {subsystem} at cycle {cycle}: {detail}")
            }
            SimError::FaultBudgetExhausted { cycle, site, addr, attempts, recent_events } => {
                write!(
                    f,
                    "fault-recovery budget exhausted at cycle {cycle}: {site} for block \
                     {addr:#x} failed all {attempts} delivery attempts"
                )?;
                if recent_events.is_empty() {
                    write!(f, "\n  (no flight-recorder events captured)")
                } else {
                    write!(f, "\n  last {} flight-recorder events:", recent_events.len())?;
                    for e in recent_events {
                        write!(f, "\n    {e}")?;
                    }
                    Ok(())
                }
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Why one `(workload, variant)` cell of a resilient grid sweep has no
/// result.
#[derive(Debug, Clone, PartialEq)]
pub enum CellError {
    /// The cell's simulation panicked (every permitted attempt).
    Panicked {
        /// Workload of the failed cell.
        workload: &'static str,
        /// Variant of the failed cell.
        variant: Variant,
        /// Rendered panic payload of the last attempt.
        payload: String,
        /// Attempts made (1 + retries).
        attempts: u32,
    },
    /// The cell exceeded the watchdog deadline and was abandoned.
    TimedOut {
        /// Workload of the failed cell.
        workload: &'static str,
        /// Variant of the failed cell.
        variant: Variant,
        /// Milliseconds the cell had been running when abandoned.
        elapsed_ms: u64,
    },
    /// The simulation failed with a typed error (livelock, invariant
    /// violation).
    Sim {
        /// Workload of the failed cell.
        workload: &'static str,
        /// Variant of the failed cell.
        variant: Variant,
        /// The underlying simulation error.
        error: SimError,
    },
    /// The journal's quarantine list says this cell already failed
    /// repeatedly in earlier runs, so resume skips it instead of
    /// retrying forever. Delete (or reset) the journal to try again.
    Quarantined {
        /// Workload of the quarantined cell.
        workload: &'static str,
        /// Variant of the quarantined cell.
        variant: Variant,
        /// Failures recorded in the journal before quarantine.
        failures: u32,
    },
}

impl CellError {
    /// The failed cell's workload name.
    pub fn workload(&self) -> &'static str {
        match self {
            CellError::Panicked { workload, .. }
            | CellError::TimedOut { workload, .. }
            | CellError::Sim { workload, .. }
            | CellError::Quarantined { workload, .. } => workload,
        }
    }

    /// The failed cell's variant.
    pub fn variant(&self) -> Variant {
        match self {
            CellError::Panicked { variant, .. }
            | CellError::TimedOut { variant, .. }
            | CellError::Sim { variant, .. }
            | CellError::Quarantined { variant, .. } => *variant,
        }
    }
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellError::Panicked { workload, variant, payload, attempts } => write!(
                f,
                "cell ({workload}, {}) panicked after {attempts} attempt(s): {payload}",
                variant.label()
            ),
            CellError::TimedOut { workload, variant, elapsed_ms } => write!(
                f,
                "cell ({workload}, {}) timed out after {elapsed_ms} ms",
                variant.label()
            ),
            CellError::Sim { workload, variant, error } => {
                write!(f, "cell ({workload}, {}) failed: {error}", variant.label())
            }
            CellError::Quarantined { workload, variant, failures } => write!(
                f,
                "cell ({workload}, {}) quarantined after {failures} journaled failure(s); \
                 delete the journal to retry it",
                variant.label()
            ),
        }
    }
}

impl std::error::Error for CellError {}
