//! Experiment drivers: run the paper's configuration grid over a
//! workload, with multiple seeds for confidence intervals.

use crate::config::{SystemConfig, Variant};
use crate::metrics;
use crate::stats::RunResult;
use crate::system::System;
use cmpsim_trace::WorkloadSpec;
use std::collections::HashMap;

/// Simulation length preset: instructions per core for warmup and
/// measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimLength {
    /// Warmup instructions per core (stats frozen).
    pub warmup: u64,
    /// Measured instructions per core (fixed work).
    pub measure: u64,
}

impl SimLength {
    /// Length used by the figure/table harnesses: long enough to warm the
    /// 4 MB L2 (capacity effects need ~1M instructions per core of
    /// warmup) and exercise steady state, short enough for minutes-scale
    /// regeneration of all results.
    pub fn standard() -> Self {
        SimLength { warmup: 1_200_000, measure: 600_000 }
    }

    /// Very short runs for integration tests.
    pub fn smoke() -> Self {
        SimLength { warmup: 20_000, measure: 60_000 }
    }
}

/// Runs one `(workload, variant)` cell and returns the measured result.
pub fn run_variant(
    spec: &WorkloadSpec,
    base: &SystemConfig,
    variant: Variant,
    len: SimLength,
) -> RunResult {
    let cfg = variant.apply(base.clone());
    let mut sys = System::new(cfg, spec);
    sys.run(len.warmup, len.measure)
}

/// Results for a set of variants over one workload (single seed).
#[derive(Debug)]
pub struct VariantGrid {
    results: HashMap<Variant, RunResult>,
}

impl VariantGrid {
    /// Runs every variant in `variants` for `spec`.
    pub fn run(
        spec: &WorkloadSpec,
        base: &SystemConfig,
        variants: &[Variant],
        len: SimLength,
    ) -> Self {
        let mut results = HashMap::new();
        for &v in variants {
            results.insert(v, run_variant(spec, base, v, len));
        }
        VariantGrid { results }
    }

    /// The result for a variant.
    ///
    /// # Panics
    ///
    /// Panics if the variant was not part of the grid.
    pub fn get(&self, v: Variant) -> &RunResult {
        self.results.get(&v).unwrap_or_else(|| panic!("variant {v} not in grid"))
    }

    /// `Speedup(v)` relative to the grid's base run.
    pub fn speedup(&self, v: Variant) -> f64 {
        metrics::speedup(self.get(Variant::Base), self.get(v))
    }

    /// Percentage improvement of `v` over base.
    pub fn speedup_pct(&self, v: Variant) -> f64 {
        metrics::speedup_pct(self.get(Variant::Base), self.get(v))
    }

    /// EQ 5 interaction between prefetching and compression, from the
    /// grid's Pf, Compr and Pf+Compr cells.
    pub fn pf_compr_interaction(&self) -> f64 {
        metrics::interaction(
            self.speedup(Variant::Prefetch),
            self.speedup(Variant::BothCompression),
            self.speedup(Variant::PrefetchCompression),
        )
    }
}

/// Mean ± 95% CI of a per-seed metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the 95% confidence interval.
    pub ci95: f64,
}

impl std::fmt::Display for Estimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.1}±{:.1}", self.mean, self.ci95)
    }
}

/// Runs `f` once per seed and aggregates the metric it extracts.
///
/// This is the paper's space-variability methodology [ref 3]: several
/// perturbed runs per data point, reported as mean and 95% CI.
pub fn across_seeds(
    base: &SystemConfig,
    seeds: &[u64],
    mut f: impl FnMut(&SystemConfig) -> f64,
) -> Estimate {
    assert!(!seeds.is_empty(), "need at least one seed");
    let samples: Vec<f64> = seeds
        .iter()
        .map(|&s| f(&base.clone().with_seed(s)))
        .collect();
    let (mean, ci95) = metrics::mean_ci95(&samples);
    Estimate { mean, ci95 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpsim_trace::workload;

    #[test]
    fn grid_runs_and_exposes_speedups() {
        let spec = workload("apsi").unwrap();
        let base = SystemConfig::paper_default(2);
        let grid = VariantGrid::run(
            &spec,
            &base,
            &[Variant::Base, Variant::BothCompression],
            SimLength { warmup: 5_000, measure: 20_000 },
        );
        let s = grid.speedup(Variant::BothCompression);
        assert!(s > 0.5 && s < 2.0, "speedup {s} out of plausible range");
        assert_eq!(grid.speedup(Variant::Base), 1.0);
    }

    #[test]
    fn across_seeds_aggregates() {
        let base = SystemConfig::paper_default(1);
        let est = across_seeds(&base, &[1, 2, 3], |cfg| cfg.seed as f64);
        assert!((est.mean - 2.0).abs() < 1e-12);
        assert!(est.ci95 > 0.0);
    }

    #[test]
    #[should_panic(expected = "not in grid")]
    fn missing_variant_panics() {
        let spec = workload("apsi").unwrap();
        let base = SystemConfig::paper_default(1);
        let grid = VariantGrid::run(
            &spec,
            &base,
            &[Variant::Base],
            SimLength { warmup: 1_000, measure: 5_000 },
        );
        grid.get(Variant::Prefetch);
    }
}
