//! Experiment drivers: run the paper's configuration grid over a
//! workload, with multiple seeds for confidence intervals, serially or
//! fanned out across cores.

use crate::config::{SystemConfig, Variant};
use crate::metrics;
use crate::stats::RunResult;
use crate::system::System;
use cmpsim_trace::WorkloadSpec;
use std::collections::HashMap;

/// Simulation length preset: instructions per core for warmup and
/// measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimLength {
    /// Warmup instructions per core (stats frozen).
    pub warmup: u64,
    /// Measured instructions per core (fixed work).
    pub measure: u64,
}

impl SimLength {
    /// Length used by the figure/table harnesses: long enough to warm the
    /// 4 MB L2 (capacity effects need ~1M instructions per core of
    /// warmup) and exercise steady state, short enough for minutes-scale
    /// regeneration of all results.
    pub fn standard() -> Self {
        SimLength { warmup: 1_200_000, measure: 600_000 }
    }

    /// Very short runs for integration tests.
    pub fn smoke() -> Self {
        SimLength { warmup: 20_000, measure: 60_000 }
    }
}

/// Runs one `(workload, variant)` cell and returns the measured result.
pub fn run_variant(
    spec: &WorkloadSpec,
    base: &SystemConfig,
    variant: Variant,
    len: SimLength,
) -> RunResult {
    let cfg = variant.apply(base.clone());
    let mut sys = System::new(cfg, spec);
    sys.run(len.warmup, len.measure)
}

/// Results for a set of variants over one workload (single seed).
#[derive(Debug)]
pub struct VariantGrid {
    results: HashMap<Variant, RunResult>,
}

impl VariantGrid {
    /// Assembles a grid from already-computed `(variant, result)` cells —
    /// e.g. one workload's slice of a [`run_grid_parallel`] sweep.
    pub fn from_cells(cells: impl IntoIterator<Item = (Variant, RunResult)>) -> Self {
        VariantGrid { results: cells.into_iter().collect() }
    }

    /// Runs every variant in `variants` for `spec`.
    pub fn run(
        spec: &WorkloadSpec,
        base: &SystemConfig,
        variants: &[Variant],
        len: SimLength,
    ) -> Self {
        let mut results = HashMap::new();
        for &v in variants {
            results.insert(v, run_variant(spec, base, v, len));
        }
        VariantGrid { results }
    }

    /// The result for a variant.
    ///
    /// # Panics
    ///
    /// Panics if the variant was not part of the grid.
    pub fn get(&self, v: Variant) -> &RunResult {
        self.results.get(&v).unwrap_or_else(|| panic!("variant {v} not in grid"))
    }

    /// `Speedup(v)` relative to the grid's base run.
    pub fn speedup(&self, v: Variant) -> f64 {
        metrics::speedup(self.get(Variant::Base), self.get(v))
    }

    /// Percentage improvement of `v` over base.
    pub fn speedup_pct(&self, v: Variant) -> f64 {
        metrics::speedup_pct(self.get(Variant::Base), self.get(v))
    }

    /// EQ 5 interaction between prefetching and compression, from the
    /// grid's Pf, Compr and Pf+Compr cells.
    pub fn pf_compr_interaction(&self) -> f64 {
        metrics::interaction(
            self.speedup(Variant::Prefetch),
            self.speedup(Variant::BothCompression),
            self.speedup(Variant::PrefetchCompression),
        )
    }
}

/// One `(workload, variant)` cell of an experiment grid, with its result.
#[derive(Debug, Clone, PartialEq)]
pub struct GridCell {
    /// Workload name as the paper prints it.
    pub workload: &'static str,
    /// Configuration variant this cell ran.
    pub variant: Variant,
    /// Seed the cell ran with (from the base configuration).
    pub seed: u64,
    /// Measured result.
    pub result: RunResult,
}

/// Runs the full `workloads × variants` grid serially, in row-major
/// order (all variants of the first workload, then the second, ...).
///
/// This is the paper's 8×4 evaluation sweep when called with
/// `all_workloads()` and the four headline variants.
pub fn run_grid_serial(
    specs: &[WorkloadSpec],
    base: &SystemConfig,
    variants: &[Variant],
    len: SimLength,
) -> Vec<GridCell> {
    specs
        .iter()
        .flat_map(|spec| {
            variants.iter().map(move |&variant| GridCell {
                workload: spec.name,
                variant,
                seed: base.seed,
                result: run_variant(spec, base, variant, len),
            })
        })
        .collect()
}

/// Runs the same grid as [`run_grid_serial`] with cells fanned out over
/// `threads` workers, returning **bit-identical** results in the same
/// row-major order.
///
/// Determinism contract: every cell is an independent pure function of
/// `(spec, base, variant, len)` — each simulation owns its RNG streams
/// (seeded from `base.seed`), its caches, and its counters, and no state
/// is shared between cells. The pool only changes *when* a cell runs,
/// never *what* it computes, so for any `threads >= 1`:
///
/// `run_grid_parallel(s, b, v, l, n) == run_grid_serial(s, b, v, l)`
///
/// `tests/determinism.rs` asserts this at 1, 2 and 8 threads.
pub fn run_grid_parallel(
    specs: &[WorkloadSpec],
    base: &SystemConfig,
    variants: &[Variant],
    len: SimLength,
    threads: usize,
) -> Vec<GridCell> {
    let jobs: Vec<_> = specs
        .iter()
        .flat_map(|spec| {
            variants.iter().map(move |&variant| {
                move || GridCell {
                    workload: spec.name,
                    variant,
                    seed: base.seed,
                    result: run_variant(spec, base, variant, len),
                }
            })
        })
        .collect();
    cmpsim_harness::pool::run_indexed(threads, jobs)
}

/// Mean ± 95% CI of a per-seed metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the 95% confidence interval.
    pub ci95: f64,
}

impl std::fmt::Display for Estimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.1}±{:.1}", self.mean, self.ci95)
    }
}

/// Runs `f` once per seed and aggregates the metric it extracts.
///
/// This is the paper's space-variability methodology [ref 3]: several
/// perturbed runs per data point, reported as mean and 95% CI.
pub fn across_seeds(
    base: &SystemConfig,
    seeds: &[u64],
    mut f: impl FnMut(&SystemConfig) -> f64,
) -> Estimate {
    assert!(!seeds.is_empty(), "need at least one seed");
    let samples: Vec<f64> = seeds
        .iter()
        .map(|&s| f(&base.clone().with_seed(s)))
        .collect();
    let (mean, ci95) = metrics::mean_ci95(&samples);
    Estimate { mean, ci95 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpsim_trace::workload;

    #[test]
    fn grid_runs_and_exposes_speedups() {
        let spec = workload("apsi").unwrap();
        let base = SystemConfig::paper_default(2);
        let grid = VariantGrid::run(
            &spec,
            &base,
            &[Variant::Base, Variant::BothCompression],
            SimLength { warmup: 5_000, measure: 20_000 },
        );
        let s = grid.speedup(Variant::BothCompression);
        assert!(s > 0.5 && s < 2.0, "speedup {s} out of plausible range");
        assert_eq!(grid.speedup(Variant::Base), 1.0);
    }

    #[test]
    fn across_seeds_aggregates() {
        let base = SystemConfig::paper_default(1);
        let est = across_seeds(&base, &[1, 2, 3], |cfg| cfg.seed as f64);
        assert!((est.mean - 2.0).abs() < 1e-12);
        assert!(est.ci95 > 0.0);
    }

    #[test]
    fn parallel_grid_matches_serial() {
        let specs: Vec<_> =
            ["apsi", "mgrid"].iter().map(|n| workload(n).unwrap()).collect();
        let base = SystemConfig::paper_default(2);
        let variants = [Variant::Base, Variant::PrefetchCompression];
        let len = SimLength { warmup: 2_000, measure: 8_000 };
        let serial = run_grid_serial(&specs, &base, &variants, len);
        assert_eq!(serial.len(), 4);
        assert_eq!(serial[0].workload, "apsi");
        assert_eq!(serial[1].variant, Variant::PrefetchCompression);
        for threads in [1, 2, 8] {
            let par = run_grid_parallel(&specs, &base, &variants, len, threads);
            assert_eq!(serial, par, "parallel grid diverged at {threads} threads");
        }
    }

    #[test]
    #[should_panic(expected = "not in grid")]
    fn missing_variant_panics() {
        let spec = workload("apsi").unwrap();
        let base = SystemConfig::paper_default(1);
        let grid = VariantGrid::run(
            &spec,
            &base,
            &[Variant::Base],
            SimLength { warmup: 1_000, measure: 5_000 },
        );
        grid.get(Variant::Prefetch);
    }
}
