//! Experiment drivers: run the paper's configuration grid over a
//! workload, with multiple seeds for confidence intervals, serially,
//! fanned out across cores, or supervised with per-cell fault isolation
//! and checkpoint/resume ([`run_grid_resilient`]).

use crate::config::{SystemConfig, Variant};
use crate::error::{CellError, SimError};
use crate::journal::{self, Journal, JournalEntry};
use crate::metrics;
use crate::stats::RunResult;
use crate::store::{CellKey, Lease, ResultStore};
use crate::system::System;
use cmpsim_harness::metrics as svc_metrics;
use cmpsim_harness::metrics::{Counter, Gauge, Histogram};
use cmpsim_harness::telemetry::{progress_enabled, CellState, GridProgress, Heartbeat};
use cmpsim_harness::{run_supervised, JobOutcome, Supervisor};
use cmpsim_trace::WorkloadSpec;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Service-metric handles for the grid drivers, registered in the global
/// [`svc_metrics`] registry under `grid_*` names. `None` when
/// `CMPSIM_METRICS=0`. Observe-only, like [`GridProgress`]: recording
/// feeds nothing back into scheduling or results.
struct GridMetrics {
    computed: Counter,
    cached: Counter,
    failed: Counter,
    skipped: Counter,
    retries: Counter,
    quarantined: Counter,
    compute_nanos: Histogram,
    queue_depth: Gauge,
}

impl GridMetrics {
    fn arm() -> Option<Arc<GridMetrics>> {
        if !svc_metrics::enabled() {
            return None;
        }
        let r = svc_metrics::global();
        Some(Arc::new(GridMetrics {
            computed: r.counter("grid_cells_computed"),
            cached: r.counter("grid_cells_cached"),
            failed: r.counter("grid_cells_failed"),
            skipped: r.counter("grid_cells_skipped"),
            retries: r.counter("grid_retries"),
            quarantined: r.counter("grid_cells_quarantined"),
            compute_nanos: r.histogram("grid_cell_compute_nanos"),
            queue_depth: r.gauge("grid_queue_depth"),
        }))
    }
}

/// Simulation length preset: instructions per core for warmup and
/// measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimLength {
    /// Warmup instructions per core (stats frozen).
    pub warmup: u64,
    /// Measured instructions per core (fixed work).
    pub measure: u64,
}

impl SimLength {
    /// Length used by the figure/table harnesses: long enough to warm the
    /// 4 MB L2 (capacity effects need ~1M instructions per core of
    /// warmup) and exercise steady state, short enough for minutes-scale
    /// regeneration of all results.
    pub fn standard() -> Self {
        SimLength { warmup: 1_200_000, measure: 600_000 }
    }

    /// Very short runs for integration tests.
    pub fn smoke() -> Self {
        SimLength { warmup: 20_000, measure: 60_000 }
    }
}

/// Runs one `(workload, variant)` cell and returns the measured result.
///
/// # Errors
///
/// Propagates [`SimError`] from [`System::run`] (livelock watchdog,
/// invariant checker).
pub fn run_variant(
    spec: &WorkloadSpec,
    base: &SystemConfig,
    variant: Variant,
    len: SimLength,
) -> Result<RunResult, SimError> {
    let cfg = variant.apply(base.clone());
    let mut sys = System::new(cfg, spec);
    sys.run(len.warmup, len.measure)
}

/// Results for a set of variants over one workload (single seed).
#[derive(Debug)]
pub struct VariantGrid {
    results: HashMap<Variant, RunResult>,
}

impl VariantGrid {
    /// Assembles a grid from already-computed `(variant, result)` cells —
    /// e.g. one workload's slice of a [`run_grid_parallel`] sweep.
    pub fn from_cells(cells: impl IntoIterator<Item = (Variant, RunResult)>) -> Self {
        VariantGrid { results: cells.into_iter().collect() }
    }

    /// Runs every variant in `variants` for `spec`.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SimError`] any cell hits.
    pub fn run(
        spec: &WorkloadSpec,
        base: &SystemConfig,
        variants: &[Variant],
        len: SimLength,
    ) -> Result<Self, SimError> {
        let mut results = HashMap::new();
        for &v in variants {
            results.insert(v, run_variant(spec, base, v, len)?);
        }
        Ok(VariantGrid { results })
    }

    /// The result for a variant, if it was part of the grid. Use this in
    /// report/bench code that tolerates partial grids (e.g. cells lost to
    /// a [`CellError`] in a resilient sweep).
    pub fn try_get(&self, v: Variant) -> Option<&RunResult> {
        self.results.get(&v)
    }

    /// The result for a variant.
    ///
    /// # Panics
    ///
    /// Panics if the variant was not part of the grid; [`try_get`]
    /// (Self::try_get) is the non-panicking form.
    pub fn get(&self, v: Variant) -> &RunResult {
        self.try_get(v).unwrap_or_else(|| panic!("variant {v} not in grid"))
    }

    /// `Speedup(v)` relative to the grid's base run.
    pub fn speedup(&self, v: Variant) -> f64 {
        metrics::speedup(self.get(Variant::Base), self.get(v))
    }

    /// Percentage improvement of `v` over base.
    pub fn speedup_pct(&self, v: Variant) -> f64 {
        metrics::speedup_pct(self.get(Variant::Base), self.get(v))
    }

    /// EQ 5 interaction between prefetching and compression, from the
    /// grid's Pf, Compr and Pf+Compr cells.
    pub fn pf_compr_interaction(&self) -> f64 {
        metrics::interaction(
            self.speedup(Variant::Prefetch),
            self.speedup(Variant::BothCompression),
            self.speedup(Variant::PrefetchCompression),
        )
    }
}

/// One `(workload, variant)` cell of an experiment grid, with its result.
#[derive(Debug, Clone, PartialEq)]
pub struct GridCell {
    /// Workload name as the paper prints it.
    pub workload: &'static str,
    /// Configuration variant this cell ran.
    pub variant: Variant,
    /// Seed the cell ran with (from the base configuration).
    pub seed: u64,
    /// Measured result.
    pub result: RunResult,
}

/// Runs the full `workloads × variants` grid serially, in row-major
/// order (all variants of the first workload, then the second, ...).
///
/// This is the paper's 8×4 evaluation sweep when called with
/// `all_workloads()` and the four headline variants.
///
/// # Errors
///
/// Propagates the first [`SimError`] any cell hits; use
/// [`run_grid_resilient`] to keep the rest of the sweep instead.
pub fn run_grid_serial(
    specs: &[WorkloadSpec],
    base: &SystemConfig,
    variants: &[Variant],
    len: SimLength,
) -> Result<Vec<GridCell>, SimError> {
    let mut cells = Vec::with_capacity(specs.len() * variants.len());
    for spec in specs {
        for &variant in variants {
            cells.push(GridCell {
                workload: spec.name,
                variant,
                seed: base.seed,
                result: run_variant(spec, base, variant, len)?,
            });
        }
    }
    Ok(cells)
}

/// Runs the same grid as [`run_grid_serial`] with cells fanned out over
/// `threads` workers, returning **bit-identical** results in the same
/// row-major order.
///
/// Determinism contract: every cell is an independent pure function of
/// `(spec, base, variant, len)` — each simulation owns its RNG streams
/// (seeded from `base.seed`), its caches, and its counters, and no state
/// is shared between cells. The pool only changes *when* a cell runs,
/// never *what* it computes, so for any `threads >= 1`:
///
/// `run_grid_parallel(s, b, v, l, n) == run_grid_serial(s, b, v, l)`
///
/// `tests/determinism.rs` asserts this at 1, 2 and 8 threads.
///
/// # Errors
///
/// Propagates the first (row-major) [`SimError`] any cell hits.
pub fn run_grid_parallel(
    specs: &[WorkloadSpec],
    base: &SystemConfig,
    variants: &[Variant],
    len: SimLength,
    threads: usize,
) -> Result<Vec<GridCell>, SimError> {
    run_grid_parallel_impl(specs, base, variants, len, threads, None)
}

/// [`run_grid_parallel`] consulting (and feeding) a content-addressed
/// [`ResultStore`]: before scheduling, each cell is looked up under the
/// sweep's structural [`journal::fingerprint`] and served from the store
/// if present; only the delta is computed, and computed cells are
/// published back. In-flight leases dedup against other sweeps sharing
/// the same store handle, so two overlapping sweeps compute each shared
/// cell exactly once.
///
/// The store is bit-inert: by the determinism contract above, a stored
/// result is the exact bytes the cell would recompute, so warm and cold
/// runs return identical grids (`tests/store.rs` pins this at 1/2/8
/// threads, and the `store_gate` example extends the digest golden gate
/// over it).
///
/// # Errors
///
/// Propagates the first (row-major) [`SimError`] any computed cell hits.
pub fn run_grid_parallel_store(
    specs: &[WorkloadSpec],
    base: &SystemConfig,
    variants: &[Variant],
    len: SimLength,
    threads: usize,
    store: &Arc<ResultStore>,
) -> Result<Vec<GridCell>, SimError> {
    run_grid_parallel_impl(specs, base, variants, len, threads, Some(store))
}

fn run_grid_parallel_impl(
    specs: &[WorkloadSpec],
    base: &SystemConfig,
    variants: &[Variant],
    len: SimLength,
    threads: usize,
    store: Option<&Arc<ResultStore>>,
) -> Result<Vec<GridCell>, SimError> {
    let variants_n = variants.len();
    let total = specs.len() * variants_n;
    let fingerprint = store.map(|_| journal::fingerprint(base, len));
    // Progress is observability only: workers mark cells with relaxed
    // atomics, the heartbeat renders to stderr, and nothing feeds back
    // into the results (the determinism contract above is untouched).
    let progress = Arc::new(GridProgress::new(total, threads.max(1).min(total.max(1))));
    let heartbeat = progress_enabled().then(|| Heartbeat::start(Arc::clone(&progress)));
    let gm = GridMetrics::arm();

    // Store consult happens before scheduling: hits never occupy a
    // worker, so a 95%-warm sweep spends its threads on the 5% delta.
    let mut prefilled: Vec<Option<GridCell>> = (0..total).map(|_| None).collect();
    if let (Some(store), Some(fp)) = (store, fingerprint) {
        for (si, spec) in specs.iter().enumerate() {
            for (vi, &variant) in variants.iter().enumerate() {
                let idx = si * variants_n + vi;
                let key = CellKey::new(spec.name, variant, base.seed);
                if let Some(result) = store.get(fp, &key) {
                    prefilled[idx] =
                        Some(GridCell { workload: spec.name, variant, seed: base.seed, result });
                    progress.cell_cached(idx);
                    if let Some(gm) = &gm {
                        gm.cached.inc();
                    }
                }
            }
        }
    }

    let progress_ref = &progress;
    let prefilled_ref = &prefilled;
    let gm_ref = &gm;
    let jobs: Vec<_> = specs
        .iter()
        .enumerate()
        .flat_map(|(si, spec)| {
            variants.iter().enumerate().map(move |(vi, &variant)| {
                let idx = si * variants_n + vi;
                let progress = Arc::clone(progress_ref);
                let store = store.map(Arc::clone);
                let gm = gm_ref.clone();
                (idx, move || {
                    // An overlapping sweep may have produced (or started)
                    // this cell since the pre-schedule consult; the lease
                    // either serves its result or claims the compute.
                    let mut lease = None;
                    if let (Some(s), Some(fp)) = (&store, fingerprint) {
                        let key = CellKey::new(spec.name, variant, base.seed);
                        match s.lease(fp, &key) {
                            Lease::Hit(result) => {
                                progress.cell_cached(idx);
                                if let Some(gm) = &gm {
                                    gm.cached.inc();
                                    gm.queue_depth.sub(1);
                                }
                                return Ok(GridCell {
                                    workload: spec.name,
                                    variant,
                                    seed: base.seed,
                                    result,
                                });
                            }
                            Lease::Compute(l) => lease = Some(l),
                        }
                    }
                    progress.cell_started(idx);
                    let compute_start = Instant::now();
                    let cell = run_variant(spec, base, variant, len).map(|result| GridCell {
                        workload: spec.name,
                        variant,
                        seed: base.seed,
                        result,
                    });
                    match &cell {
                        Ok(c) => {
                            progress.cell_finished(idx, true, c.result.events, c.result.host_nanos);
                            if let Some(gm) = &gm {
                                gm.computed.inc();
                                gm.compute_nanos.record_elapsed(compute_start);
                            }
                            if let Some(l) = lease {
                                if let Err(e) = l.publish(&c.result) {
                                    eprintln!("cmpsim: store publish failed: {e}");
                                }
                            }
                        }
                        Err(_) => {
                            progress.cell_finished(idx, false, 0, 0);
                            if let Some(gm) = &gm {
                                gm.failed.inc();
                            }
                        }
                    }
                    if let Some(gm) = &gm {
                        gm.queue_depth.sub(1);
                    }
                    cell
                })
            })
        })
        .filter(|(idx, _)| prefilled_ref[*idx].is_none())
        .map(|(_, job)| job)
        .collect();
    if let Some(gm) = &gm {
        gm.queue_depth.add(jobs.len() as u64);
    }
    let computed = cmpsim_harness::pool::run_indexed(threads, jobs);
    drop(heartbeat);
    // Merge computed cells back into row-major order around the store
    // hits, propagating the first (row-major) error.
    let mut computed = computed.into_iter();
    let mut out = Vec::with_capacity(total);
    for slot in prefilled {
        match slot {
            Some(cell) => out.push(cell),
            None => out.push(computed.next().expect("one computed cell per scheduled job")?),
        }
    }
    Ok(out)
}

/// Policy for a [`run_grid_resilient`] sweep: how cells are supervised
/// and where (if anywhere) completed cells are journaled.
#[derive(Debug, Clone, Default)]
pub struct ResilienceOptions {
    /// Worker count, per-cell deadline (`CMPSIM_CELL_DEADLINE_MS`), and
    /// retry policy.
    pub supervisor: Supervisor,
    /// Checkpoint journal path; `None` disables checkpointing. See
    /// [`ResilienceOptions::default_journal_path`] for the conventional
    /// location under `target/grid/`.
    pub journal: Option<PathBuf>,
    /// Content-addressed result store consulted before scheduling each
    /// cell and fed as cells complete; `None` disables store reuse.
    /// Unlike the journal (one sweep's checkpoint), the store is shared
    /// across sweeps, configs and processes.
    pub store: Option<Arc<ResultStore>>,
}

impl ResilienceOptions {
    /// Returns a copy journaling to `path`.
    pub fn with_journal(mut self, path: impl Into<PathBuf>) -> Self {
        self.journal = Some(path.into());
        self
    }

    /// Returns a copy consulting (and feeding) `store`.
    pub fn with_store(mut self, store: Arc<ResultStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// The conventional journal location for a named sweep:
    /// `target/grid/<sweep>.jsonl` (overridable via `CMPSIM_GRID_DIR`).
    pub fn default_journal_path(sweep: &str) -> PathBuf {
        journal::default_journal_dir().join(format!("{sweep}.jsonl"))
    }
}

/// Runs the `workloads × variants` grid under full supervision: each
/// cell executes in its own watchdogged worker, and a panicking, hanging
/// or [`SimError`]-failing cell degrades to an `Err` in its slot while
/// every other cell completes. Results come back in row-major order,
/// like [`run_grid_serial`].
///
/// With `opts.journal` set, completed cells are appended to a checkpoint
/// journal *as they finish*; re-invoking with the same journal (same
/// base config and length — see [`journal::fingerprint`]) skips them and
/// returns bit-identical results, so a sweep killed mid-run resumes
/// where it left off. `tests/resilience.rs` asserts both properties.
pub fn run_grid_resilient(
    specs: &[WorkloadSpec],
    base: &SystemConfig,
    variants: &[Variant],
    len: SimLength,
    opts: &ResilienceOptions,
) -> Vec<Result<GridCell, CellError>> {
    run_cells_resilient(
        specs,
        base,
        variants,
        journal::fingerprint(base, len),
        opts,
        move |spec, base, variant| run_variant(spec, base, variant, len),
    )
}

/// The engine under [`run_grid_resilient`], parameterized over the cell
/// function so tests can inject faulty cells (panics, hangs, errors).
/// `fingerprint` guards the journal against resuming under a different
/// sweep definition.
pub fn run_cells_resilient<F>(
    specs: &[WorkloadSpec],
    base: &SystemConfig,
    variants: &[Variant],
    fingerprint: u64,
    opts: &ResilienceOptions,
    cell_fn: F,
) -> Vec<Result<GridCell, CellError>>
where
    F: Fn(&WorkloadSpec, &SystemConfig, Variant) -> Result<RunResult, SimError>
        + Send
        + Sync
        + 'static,
{
    let journal = opts
        .journal
        .as_ref()
        .map(|p| Arc::new(Mutex::new(Journal::new(p, fingerprint))));

    // Cells already in the journal are reused, not re-run; cells the
    // journal records as repeatedly failing are quarantined outright.
    let mut completed: HashMap<(String, Variant), RunResult> = HashMap::new();
    let mut quarantined: HashMap<(String, Variant), u32> = HashMap::new();
    if let Some(j) = &journal {
        let snapshot = lock_journal(j).load().unwrap_or_else(|e| {
            eprintln!("cmpsim: could not read journal: {e}; starting fresh");
            journal::JournalSnapshot::default()
        });
        if let Some(p) = &opts.journal {
            if snapshot.repaired_tail {
                eprintln!(
                    "cmpsim: journal {}: torn tail truncated (writer was killed mid-append); \
                     the torn cell will re-run",
                    p.display()
                );
            }
            for (line, reason) in &snapshot.skipped {
                eprintln!(
                    "cmpsim: journal {}:{line}: {reason}; cell will re-run",
                    p.display()
                );
            }
        }
        for e in snapshot.entries {
            if e.seed == base.seed {
                completed.insert((e.workload, e.variant), e.result);
            }
        }
        for ((workload, variant, seed), failures) in &snapshot.failures {
            if *seed == base.seed && *failures >= journal::MAX_CELL_FAILURES {
                quarantined.insert((workload.clone(), *variant), *failures);
            }
        }
    }

    let n = specs.len() * variants.len();
    let mut out: Vec<Option<Result<GridCell, CellError>>> = (0..n).map(|_| None).collect();
    let cell_fn = Arc::new(cell_fn);
    let mut jobs = Vec::new();
    let mut job_slots: Vec<(usize, &'static str, Variant)> = Vec::new();
    // Progress is observability only; journal-skipped cells count as done
    // immediately, supervised retries show up as `retrying` (a second
    // `cell_started` on the same slot).
    let workers = opts.supervisor.threads.max(1);
    let progress = Arc::new(GridProgress::new(n, workers.min(n.max(1))));
    let heartbeat = progress_enabled().then(|| Heartbeat::start(Arc::clone(&progress)));
    let gm = GridMetrics::arm();

    let mut idx = 0usize;
    for spec in specs {
        for &variant in variants {
            if let Some(result) = completed.get(&(spec.name.to_string(), variant)) {
                out[idx] = Some(Ok(GridCell {
                    workload: spec.name,
                    variant,
                    seed: base.seed,
                    result: result.clone(),
                }));
                progress.cell_skipped(idx);
                if let Some(gm) = &gm {
                    gm.skipped.inc();
                }
            } else if let Some(&failures) = quarantined.get(&(spec.name.to_string(), variant))
            {
                out[idx] = Some(Err(CellError::Quarantined {
                    workload: spec.name,
                    variant,
                    failures,
                }));
                progress.cell_skipped(idx);
                if let Some(gm) = &gm {
                    gm.quarantined.inc();
                }
            } else if let Some(result) = opts
                .store
                .as_ref()
                .and_then(|s| s.get(fingerprint, &CellKey::new(spec.name, variant, base.seed)))
            {
                // Store hit: the cell is never scheduled. Mirror it into
                // this sweep's journal so a later resume stays complete
                // even without the store.
                if let Some(j) = &journal {
                    let entry = JournalEntry {
                        workload: spec.name.to_string(),
                        variant,
                        seed: base.seed,
                        result: result.clone(),
                    };
                    if let Err(e) = lock_journal(j).append(&entry) {
                        eprintln!("cmpsim: journal append failed: {e}");
                    }
                }
                out[idx] = Some(Ok(GridCell {
                    workload: spec.name,
                    variant,
                    seed: base.seed,
                    result,
                }));
                progress.cell_cached(idx);
                if let Some(gm) = &gm {
                    gm.cached.inc();
                }
            } else {
                job_slots.push((idx, spec.name, variant));
                let spec = spec.clone();
                let base = base.clone();
                let cell_fn = Arc::clone(&cell_fn);
                let journal = journal.clone();
                let store = opts.store.clone();
                let progress = Arc::clone(&progress);
                let gm = gm.clone();
                jobs.push(move || -> Result<RunResult, SimError> {
                    // A sweep overlapping on the same store may have
                    // produced (or be producing) this cell; take a lease
                    // so each shared cell is computed exactly once.
                    let mut lease = None;
                    if let Some(s) = &store {
                        let key = CellKey::new(spec.name, variant, base.seed);
                        match s.lease(fingerprint, &key) {
                            Lease::Hit(result) => {
                                progress.cell_cached(idx);
                                if let Some(gm) = &gm {
                                    gm.cached.inc();
                                    gm.queue_depth.sub(1);
                                }
                                if let Some(j) = &journal {
                                    let entry = JournalEntry {
                                        workload: spec.name.to_string(),
                                        variant,
                                        seed: base.seed,
                                        result: result.clone(),
                                    };
                                    if let Err(e) = lock_journal(j).append(&entry) {
                                        eprintln!("cmpsim: journal append failed: {e}");
                                    }
                                }
                                return Ok(result);
                            }
                            Lease::Compute(l) => lease = Some(l),
                        }
                    }
                    // A supervised retry re-enters this body with the slot
                    // already marked Running/Retrying: that re-entry is the
                    // retry the `grid_retries` counter tallies.
                    if let Some(gm) = &gm {
                        if matches!(
                            progress.state(idx),
                            CellState::Running | CellState::Retrying
                        ) {
                            gm.retries.inc();
                        }
                    }
                    progress.cell_started(idx);
                    let compute_start = Instant::now();
                    let result = cell_fn(&spec, &base, variant);
                    match &result {
                        Ok(r) => {
                            progress.cell_finished(idx, true, r.events, r.host_nanos);
                            if let Some(gm) = &gm {
                                gm.computed.inc();
                                gm.compute_nanos.record_elapsed(compute_start);
                            }
                        }
                        Err(_) => {
                            progress.cell_finished(idx, false, 0, 0);
                            if let Some(gm) = &gm {
                                gm.failed.inc();
                            }
                        }
                    }
                    if let Some(gm) = &gm {
                        gm.queue_depth.sub(1);
                    }
                    let result = result?;
                    if let Some(l) = lease {
                        if let Err(e) = l.publish(&result) {
                            eprintln!("cmpsim: store publish failed: {e}");
                        }
                    }
                    // Journal inside the job so a later kill loses only
                    // cells that had not finished.
                    if let Some(j) = &journal {
                        let entry = JournalEntry {
                            workload: spec.name.to_string(),
                            variant,
                            seed: base.seed,
                            result: result.clone(),
                        };
                        if let Err(e) = lock_journal(j).append(&entry) {
                            eprintln!("cmpsim: journal append failed: {e}");
                        }
                    }
                    Ok(result)
                });
            }
            idx += 1;
        }
    }

    if let Some(gm) = &gm {
        gm.queue_depth.add(jobs.len() as u64);
    }
    let outcomes = run_supervised(&opts.supervisor, jobs);
    for ((slot, workload, variant), outcome) in job_slots.into_iter().zip(outcomes) {
        // Panicked/timed-out jobs never reached their own `cell_finished`;
        // settle them here so the final status line accounts for every
        // cell. (An abandoned timed-out thread may still be running, but
        // progress is display-only state and feeds nothing back.)
        if !matches!(
            progress.state(slot),
            CellState::Done | CellState::Failed | CellState::Cached
        ) {
            progress.cell_finished(slot, false, 0, 0);
            if let Some(gm) = &gm {
                gm.failed.inc();
                gm.queue_depth.sub(1);
            }
        }
        let resolved = match outcome {
            JobOutcome::Ok(Ok(result)) => {
                Ok(GridCell { workload, variant, seed: base.seed, result })
            }
            JobOutcome::Ok(Err(error)) => Err(CellError::Sim { workload, variant, error }),
            JobOutcome::Panicked { payload, attempts } => {
                Err(CellError::Panicked { workload, variant, payload, attempts })
            }
            JobOutcome::TimedOut { elapsed } => Err(CellError::TimedOut {
                workload,
                variant,
                elapsed_ms: elapsed.as_millis() as u64,
            }),
        };
        if let (Err(err), Some(j)) = (&resolved, &journal) {
            // Journal the failure so repeated offenders are quarantined
            // on the next resume instead of retried forever.
            if let Err(e) =
                lock_journal(j).append_failure(workload, variant, base.seed, &err.to_string())
            {
                eprintln!("cmpsim: journal failure append failed: {e}");
            }
        }
        out[slot] = Some(resolved);
    }
    drop(heartbeat);
    out.into_iter().map(|o| o.expect("every cell resolved")).collect()
}

/// Locks the shared journal, surviving a poisoned mutex (a panic in a
/// supervised job cannot be allowed to wedge checkpointing for the rest
/// of the sweep).
fn lock_journal(j: &Arc<Mutex<Journal>>) -> std::sync::MutexGuard<'_, Journal> {
    j.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Mean ± 95% CI of a per-seed metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the 95% confidence interval.
    pub ci95: f64,
}

impl std::fmt::Display for Estimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.1}±{:.1}", self.mean, self.ci95)
    }
}

/// Runs `f` once per seed and aggregates the metric it extracts.
///
/// This is the paper's space-variability methodology [ref 3]: several
/// perturbed runs per data point, reported as mean and 95% CI.
pub fn across_seeds(
    base: &SystemConfig,
    seeds: &[u64],
    mut f: impl FnMut(&SystemConfig) -> f64,
) -> Estimate {
    assert!(!seeds.is_empty(), "need at least one seed");
    let samples: Vec<f64> = seeds
        .iter()
        .map(|&s| f(&base.clone().with_seed(s)))
        .collect();
    let (mean, ci95) = metrics::mean_ci95(&samples);
    Estimate { mean, ci95 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpsim_trace::workload;

    #[test]
    fn grid_runs_and_exposes_speedups() {
        let spec = workload("apsi").unwrap();
        let base = SystemConfig::paper_default(2);
        let grid = VariantGrid::run(
            &spec,
            &base,
            &[Variant::Base, Variant::BothCompression],
            SimLength { warmup: 5_000, measure: 20_000 },
        )
        .expect("smoke grid simulates");
        let s = grid.speedup(Variant::BothCompression);
        assert!(s > 0.5 && s < 2.0, "speedup {s} out of plausible range");
        assert_eq!(grid.speedup(Variant::Base), 1.0);
    }

    #[test]
    fn across_seeds_aggregates() {
        let base = SystemConfig::paper_default(1);
        let est = across_seeds(&base, &[1, 2, 3], |cfg| cfg.seed as f64);
        assert!((est.mean - 2.0).abs() < 1e-12);
        assert!(est.ci95 > 0.0);
    }

    #[test]
    fn parallel_grid_matches_serial() {
        let specs: Vec<_> =
            ["apsi", "mgrid"].iter().map(|n| workload(n).unwrap()).collect();
        let base = SystemConfig::paper_default(2);
        let variants = [Variant::Base, Variant::PrefetchCompression];
        let len = SimLength { warmup: 2_000, measure: 8_000 };
        let serial = run_grid_serial(&specs, &base, &variants, len).unwrap();
        assert_eq!(serial.len(), 4);
        assert_eq!(serial[0].workload, "apsi");
        assert_eq!(serial[1].variant, Variant::PrefetchCompression);
        for threads in [1, 2, 8] {
            let par = run_grid_parallel(&specs, &base, &variants, len, threads).unwrap();
            assert_eq!(serial, par, "parallel grid diverged at {threads} threads");
        }
    }

    #[test]
    fn try_get_reports_missing_variants() {
        let spec = workload("apsi").unwrap();
        let base = SystemConfig::paper_default(1);
        let grid = VariantGrid::run(
            &spec,
            &base,
            &[Variant::Base],
            SimLength { warmup: 1_000, measure: 5_000 },
        )
        .unwrap();
        assert!(grid.try_get(Variant::Base).is_some());
        assert!(grid.try_get(Variant::Prefetch).is_none());
    }

    #[test]
    #[should_panic(expected = "not in grid")]
    fn missing_variant_panics() {
        let spec = workload("apsi").unwrap();
        let base = SystemConfig::paper_default(1);
        let grid = VariantGrid::run(
            &spec,
            &base,
            &[Variant::Base],
            SimLength { warmup: 1_000, measure: 5_000 },
        )
        .unwrap();
        grid.get(Variant::Prefetch);
    }
}
