//! Derived metrics: speedups, interaction terms (EQ 5), the Figure 8
//! miss classification, and confidence intervals.

use crate::stats::RunResult;

/// `Speedup(A) = runtime(base) / runtime(A)` (≥ 1 means A is faster).
///
/// Contract: a zero-runtime `enhanced` run is malformed input — no
/// measured simulation finishes in zero cycles (the engine asserts
/// `measure > 0`). Debug builds assert on it; release builds return
/// `f64::INFINITY`, the mathematical limit, so a corrupt cell is
/// glaring in a report instead of masquerading as "no change" (the old
/// behaviour returned 1.0).
pub fn speedup(base: &RunResult, enhanced: &RunResult) -> f64 {
    debug_assert!(
        enhanced.runtime() > 0,
        "speedup: enhanced run has zero runtime (malformed RunResult)"
    );
    if enhanced.runtime() == 0 {
        return f64::INFINITY;
    }
    base.runtime() as f64 / enhanced.runtime() as f64
}

/// Speedup expressed as the paper's "performance improvement (%)".
pub fn speedup_pct(base: &RunResult, enhanced: &RunResult) -> f64 {
    (speedup(base, enhanced) - 1.0) * 100.0
}

/// EQ 5: `Speedup(A,B) = Speedup(A) × Speedup(B) × (1 + Interaction)`,
/// solved for the interaction term. Positive means the enhancements
/// reinforce each other.
pub fn interaction(speedup_a: f64, speedup_b: f64, speedup_ab: f64) -> f64 {
    assert!(speedup_a > 0.0 && speedup_b > 0.0, "speedups must be positive");
    speedup_ab / (speedup_a * speedup_b) - 1.0
}

/// The six Figure 8 categories, as fractions of the base configuration's
/// demand misses (the figure's 100% line).
///
/// Estimated exactly as the paper does: by comparing miss/prefetch counts
/// across the four runs (base, compression, prefetching, both) with
/// inclusion–exclusion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MissClassification {
    /// Demand misses no technique avoids.
    pub unavoidable: f64,
    /// Avoided only by L2 compression.
    pub only_compression: f64,
    /// Avoided only by L2 prefetching.
    pub only_prefetching: f64,
    /// Avoided by either technique (the negative-interaction overlap).
    pub either: f64,
    /// L2 prefetches still issued when compression is also on.
    pub prefetches_remaining: f64,
    /// L2 prefetches that compression renders unnecessary.
    pub prefetches_avoided: f64,
}

impl MissClassification {
    /// Classifies from the four runs' L2 counters.
    pub fn from_runs(
        base: &RunResult,
        compression: &RunResult,
        prefetching: &RunResult,
        both: &RunResult,
    ) -> Self {
        let m_base = base.stats.l2.demand_misses.max(1) as f64;
        let m_c = compression.stats.l2.demand_misses as f64;
        let m_p = prefetching.stats.l2.demand_misses as f64;
        let m_cp = both.stats.l2.demand_misses as f64;
        let p_p = prefetching.stats.l2.prefetches_issued as f64;
        let p_cp = both.stats.l2.prefetches_issued as f64;

        let a = (m_base - m_c).max(0.0); // avoided by compression
        let b = (m_base - m_p).max(0.0); // avoided by prefetching
        let union = (m_base - m_cp).max(0.0);
        let inter = (a + b - union).clamp(0.0, a.min(b));

        MissClassification {
            unavoidable: (m_base - union).max(0.0) / m_base,
            only_compression: (a - inter) / m_base,
            only_prefetching: (b - inter) / m_base,
            either: inter / m_base,
            prefetches_remaining: p_cp / m_base,
            prefetches_avoided: (p_p - p_cp).max(0.0) / m_base,
        }
    }
}

/// Sample mean and half-width of the 95% confidence interval (normal
/// approximation, the paper's space-variability methodology [3]).
pub fn mean_ci95(samples: &[f64]) -> (f64, f64) {
    assert!(!samples.is_empty(), "no samples");
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    if samples.len() < 2 {
        return (mean, 0.0);
    }
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    let ci = 1.96 * (var / n).sqrt();
    (mean, ci)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::SimStats;

    fn run_with(cycles: u64, misses: u64, prefetches: u64) -> RunResult {
        let mut stats = SimStats::default();
        stats.l2.demand_misses = misses;
        stats.l2.prefetches_issued = prefetches;
        RunResult { stats, cycles, clock_ghz: 5, events: 0, retired: 0, host_nanos: 0 }
    }

    #[test]
    fn speedup_math() {
        let base = run_with(2000, 0, 0);
        let enh = run_with(1000, 0, 0);
        assert!((speedup(&base, &enh) - 2.0).abs() < 1e-12);
        assert!((speedup_pct(&base, &enh) - 100.0).abs() < 1e-9);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "zero runtime")]
    fn zero_runtime_asserts_in_debug() {
        let base = run_with(2000, 0, 0);
        let broken = run_with(0, 0, 0);
        let _ = speedup(&base, &broken);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn zero_runtime_is_infinite_in_release() {
        let base = run_with(2000, 0, 0);
        let broken = run_with(0, 0, 0);
        assert_eq!(speedup(&base, &broken), f64::INFINITY);
    }

    #[test]
    fn interaction_signs() {
        // Combined exceeds product → positive.
        assert!(interaction(1.2, 1.1, 1.4) > 0.0);
        // Combined below product → negative.
        assert!(interaction(1.2, 1.1, 1.25) < 0.0);
        // Exactly multiplicative → zero.
        assert!(interaction(1.2, 1.5, 1.8).abs() < 1e-12);
    }

    #[test]
    fn classification_partitions_base_misses() {
        let base = run_with(0, 1000, 0);
        let compr = run_with(0, 800, 0);
        let pf = run_with(0, 500, 700);
        let both = run_with(0, 400, 550);
        let c = MissClassification::from_runs(&base, &compr, &pf, &both);
        let total = c.unavoidable + c.only_compression + c.only_prefetching + c.either;
        assert!((total - 1.0).abs() < 1e-9, "classes partition the misses");
        // A=200, B=500, union=600 → inter=100.
        assert!((c.either - 0.1).abs() < 1e-9);
        assert!((c.only_compression - 0.1).abs() < 1e-9);
        assert!((c.only_prefetching - 0.4).abs() < 1e-9);
        assert!((c.unavoidable - 0.4).abs() < 1e-9);
        assert!((c.prefetches_avoided - 0.15).abs() < 1e-9);
    }

    #[test]
    fn ci_math() {
        let (m, ci) = mean_ci95(&[10.0, 10.0, 10.0]);
        assert_eq!(m, 10.0);
        assert_eq!(ci, 0.0);
        let (m, ci) = mean_ci95(&[9.0, 11.0]);
        assert_eq!(m, 10.0);
        assert!(ci > 0.0);
        let (m, ci) = mean_ci95(&[42.0]);
        assert_eq!((m, ci), (42.0, 0.0));
    }
}
