//! Per-core execution state: the window-based timing model that stands in
//! for the paper's Simics/GEMS out-of-order cores (see DESIGN.md,
//! substitution 1).
//!
//! A core issues instructions at `issue_width` per cycle between the
//! memory events its trace generator produces. Loads that miss allocate
//! window slots; the core keeps issuing (memory-level parallelism) until
//! it hits one of the Table 1 limits — 128 instructions of ROB run-ahead
//! past the oldest incomplete load, 16 outstanding requests, or an
//! instruction-fetch miss (the in-order frontend stalls immediately).

use cmpsim_cache::BlockAddr;
use cmpsim_trace::{CoreGenerator, TimedEvent};
use std::collections::BTreeSet;

/// Why a core is not currently issuing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wait {
    /// Runnable (or currently running).
    Ready,
    /// Frontend stalled on an instruction-line fill.
    IFetch(BlockAddr),
    /// Stalled on a dependent load's fill (pointer chasing).
    Load(BlockAddr),
    /// ROB run-ahead limit reached; waiting for the oldest load.
    Rob,
    /// All MSHRs in use; waiting for any completion.
    Mshr,
    /// Instruction quota reached.
    Done,
}

/// One processor core's execution state.
#[derive(Debug)]
pub struct Core {
    /// Core id.
    id: u8,
    /// Trace generator for this core.
    pub gen: CoreGenerator,
    /// Local cycle time (≥ the global event time that last ran it).
    pub cycle: u64,
    /// Instructions issued so far.
    pub insts: u64,
    /// Next trace event, if it was produced but could not issue yet.
    pub pending: Option<TimedEvent>,
    /// Outstanding memory requests charged to this core (MSHR budget).
    pub outstanding: usize,
    /// Sequence numbers of incomplete loads (for the ROB limit).
    load_seqs: BTreeSet<u64>,
    /// Current stall reason.
    pub waiting: Wait,
    /// Instruction count at which this core stops.
    pub quota: u64,
    /// Cycle at which the quota was reached.
    pub finished_at: Option<u64>,
}

impl Core {
    /// A fresh core wrapping `gen`.
    pub fn new(id: u8, gen: CoreGenerator) -> Self {
        Core {
            id,
            gen,
            cycle: 0,
            insts: 0,
            pending: None,
            outstanding: 0,
            load_seqs: BTreeSet::new(),
            waiting: Wait::Ready,
            quota: u64::MAX,
            finished_at: None,
        }
    }

    /// The next trace event, consuming the pending one first.
    pub fn next_event(&mut self) -> TimedEvent {
        self.pending.take().unwrap_or_else(|| self.gen.next_event())
    }

    /// Registers an incomplete load issued at instruction `seq`.
    pub fn track_load(&mut self, seq: u64) {
        self.load_seqs.insert(seq);
    }

    /// Completes loads with the given sequence numbers.
    pub fn complete_loads(&mut self, seqs: &[u64]) {
        for s in seqs {
            self.load_seqs.remove(s);
        }
    }

    /// Oldest incomplete load's sequence number.
    pub fn oldest_load(&self) -> Option<u64> {
        self.load_seqs.first().copied()
    }

    /// How many more instructions may issue before the ROB limit blocks,
    /// given run-ahead limit `rob`.
    pub fn issuable(&self, rob: u64) -> u64 {
        match self.oldest_load() {
            None => u64::MAX,
            Some(oldest) => (oldest + rob).saturating_sub(self.insts),
        }
    }

    /// This core's id.
    pub fn id(&self) -> u8 {
        self.id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpsim_trace::workload;

    fn core() -> Core {
        Core::new(0, CoreGenerator::new(&workload("zeus").unwrap(), 0, 1))
    }

    #[test]
    fn rob_math() {
        let mut c = core();
        assert_eq!(c.issuable(128), u64::MAX, "no outstanding loads");
        c.insts = 100;
        c.track_load(100);
        assert_eq!(c.issuable(128), 128, "can run to seq 228");
        c.insts = 200;
        assert_eq!(c.issuable(128), 28);
        c.insts = 250;
        assert_eq!(c.issuable(128), 0, "blocked");
        c.complete_loads(&[100]);
        assert_eq!(c.issuable(128), u64::MAX);
    }

    #[test]
    fn oldest_load_orders() {
        let mut c = core();
        c.track_load(50);
        c.track_load(10);
        c.track_load(30);
        assert_eq!(c.oldest_load(), Some(10));
        c.complete_loads(&[10, 30]);
        assert_eq!(c.oldest_load(), Some(50));
    }

    #[test]
    fn pending_event_round_trip() {
        let mut c = core();
        let e = c.next_event();
        c.pending = Some(e);
        assert_eq!(c.next_event(), e);
    }
}
