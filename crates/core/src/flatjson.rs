//! Flat-JSON record framing shared by the checkpoint journal and the
//! content-addressed result store (and by the `serve` daemon's request
//! parser).
//!
//! Both on-disk formats are append-only JSONL files of *flat* objects —
//! string and `u64` values only, no nesting, no escapes, no floats
//! (`f64`s travel as IEEE-754 bit patterns under `.bits` keys) — so one
//! hand-rolled parser covers every consumer and the workspace stays
//! serde-free. Records are sealed with a trailing FNV-1a-32 checksum
//! ([`seal`]/[`check_seal`]) so in-place corruption is *detected* and the
//! record skipped, never silently decoded into wrong numbers.

/// The two value shapes the framing emits.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonVal {
    /// A string value (no escapes supported by design).
    Str(String),
    /// An unsigned integer value.
    Num(u64),
}

impl JsonVal {
    /// The string payload, if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonVal::Str(s) => Some(s),
            JsonVal::Num(_) => None,
        }
    }

    /// The numeric payload, if this is a number value.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonVal::Num(n) => Some(*n),
            JsonVal::Str(_) => None,
        }
    }
}

/// FNV-1a (32-bit) over a record's byte prefix — the per-record checksum.
pub fn fnv32(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Closes an open record body (`{"k":v,...` — no trailing brace) with
/// its checksum field: the crc covers every byte before the `,"crc"`.
pub fn seal(mut body: String) -> String {
    let crc = fnv32(body.as_bytes());
    body.push_str(&format!(",\"crc\":\"{crc:08x}\"}}"));
    body
}

/// Verifies and strips a record's trailing checksum, returning the body.
///
/// # Errors
///
/// Returns a description (missing/malformed crc field, or the recorded
/// vs. computed values on a mismatch).
pub fn check_seal(line: &str) -> Result<&str, String> {
    let pos = line
        .rfind(",\"crc\":\"")
        .ok_or_else(|| "missing crc field".to_string())?;
    let tail = &line[pos + 8..];
    let hex = tail.strip_suffix("\"}").ok_or_else(|| "malformed crc field".to_string())?;
    let recorded =
        u32::from_str_radix(hex, 16).map_err(|_| "malformed crc field".to_string())?;
    let actual = fnv32(line[..pos].as_bytes());
    if actual != recorded {
        return Err(format!("crc mismatch (recorded {recorded:08x}, computed {actual:08x})"));
    }
    Ok(&line[..pos])
}

/// Parses one flat JSON object of string/u64 values (the only shape the
/// framing produces: no nesting, no escapes, no floats). Returns `None`
/// on anything else. Whitespace is tolerated only around the whole
/// object, not between tokens — the encoders never emit any.
pub fn parse_flat(line: &str) -> Option<Vec<(String, JsonVal)>> {
    let mut out = Vec::new();
    let bytes = line.trim().as_bytes();
    let mut i = 0usize;
    let eat = |i: &mut usize, b: u8| -> Option<()> {
        if bytes.get(*i) == Some(&b) {
            *i += 1;
            Some(())
        } else {
            None
        }
    };
    let string = |i: &mut usize| -> Option<String> {
        eat(i, b'"')?;
        let start = *i;
        while *i < bytes.len() && bytes[*i] != b'"' {
            if bytes[*i] == b'\\' {
                return None; // the encoders never escape
            }
            *i += 1;
        }
        let s = std::str::from_utf8(&bytes[start..*i]).ok()?.to_string();
        eat(i, b'"')?;
        Some(s)
    };
    let number = |i: &mut usize| -> Option<u64> {
        let start = *i;
        while *i < bytes.len() && bytes[*i].is_ascii_digit() {
            *i += 1;
        }
        std::str::from_utf8(&bytes[start..*i]).ok()?.parse().ok()
    };

    eat(&mut i, b'{')?;
    if bytes.get(i) == Some(&b'}') {
        return (i + 1 == bytes.len()).then_some(out);
    }
    loop {
        let key = string(&mut i)?;
        eat(&mut i, b':')?;
        let val = if bytes.get(i) == Some(&b'"') {
            JsonVal::Str(string(&mut i)?)
        } else {
            JsonVal::Num(number(&mut i)?)
        };
        out.push((key, val));
        match bytes.get(i) {
            Some(b',') => i += 1,
            Some(b'}') => break,
            _ => return None,
        }
    }
    (i + 1 == bytes.len()).then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_objects() {
        let kvs = parse_flat("{\"a\":\"x\",\"n\":42}").unwrap();
        assert_eq!(kvs.len(), 2);
        assert_eq!(kvs[0].1.as_str(), Some("x"));
        assert_eq!(kvs[1].1.as_u64(), Some(42));
        assert_eq!(parse_flat("{}"), Some(vec![]));
        assert!(parse_flat("{\"a\":").is_none());
        assert!(parse_flat("{\"a\":1} trailing").is_none());
        assert!(parse_flat("{\"a\":\"esc\\\"aped\"}").is_none(), "escapes rejected");
    }

    #[test]
    fn seal_roundtrips_and_detects_corruption() {
        let line = seal("{\"k\":1".to_string());
        assert_eq!(check_seal(&line).unwrap(), "{\"k\":1");
        let mangled = line.replacen(":1", ":2", 1);
        assert!(check_seal(&mangled).unwrap_err().contains("crc mismatch"));
        assert!(check_seal("{\"k\":1}").unwrap_err().contains("missing crc"));
    }
}
