//! Bit-exact checkpoint journal for grid sweeps.
//!
//! `run_grid_resilient` appends one JSONL line per completed cell as it
//! finishes, so a run killed mid-sweep can be re-invoked with the same
//! journal and skip the cells that already ran. The contract is
//! **bit-identity**: a journaled [`RunResult`] decodes to exactly the
//! value the simulation produced — every counter is stored as its `u64`
//! value and the one `f64` field as its IEEE-754 bit pattern — so a
//! resumed grid compares equal (`==`) to an uninterrupted one.
//!
//! File layout (hand-rolled flat JSON; this workspace has no serde):
//!
//! ```text
//! {"cmpsim_journal":3,"fingerprint":"1a2b3c..."}
//! {"workload":"apsi","variant":"pf+compr","seed":11,"cycles":...,"crc":"9f1e22ab"}
//! {"failure":"mgrid","variant":"base","seed":11,"error":"...","crc":"00c41f77"}
//! ...
//! ```
//!
//! The fingerprint hashes the base [`SystemConfig`] and [`SimLength`] —
//! deliberately *not* the workload or variant lists, so a journal from a
//! partial sweep is reusable by a larger sweep over the same
//! configuration. A journal whose fingerprint does not match is
//! discarded (the sweep would silently mix incompatible results
//! otherwise).
//!
//! Crash safety (v3):
//!
//! - Every record carries a trailing FNV-1a checksum (`"crc"`), so a
//!   record corrupted in place is *detected* and skipped — with its line
//!   number — rather than silently decoded into wrong numbers.
//! - A torn tail (the process was killed mid-append, leaving a final
//!   line with no `\n`) is physically truncated away on load; every
//!   intact cell survives and only the torn one re-runs.
//! - The header is created via tempfile + atomic rename, so no reader
//!   can ever observe a half-written header.
//! - Cell *failures* are journaled too; a cell that has failed
//!   [`MAX_CELL_FAILURES`] times is quarantined — resume skips it with an
//!   explicit error instead of re-running it forever.

use crate::config::{PrefetchMode, SystemConfig, Variant};
use crate::experiment::SimLength;
use crate::flatjson::{check_seal, parse_flat, seal, JsonVal};
use crate::stats::{LevelStats, RunResult, SimStats};
use cmpsim_harness::chaos::FaultPlan;
use cmpsim_link::LinkBandwidth;
use std::collections::HashMap;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Journal format version (bump on any encoding or fingerprint-semantics
/// change; old files are then rotated aside via the header check).
///
/// v2: added the simulator-throughput fields (`events`, `retired`,
/// `host_nanos`) to each cell line.
///
/// v3: per-record `crc` checksums, journaled failure records (feeding
/// the quarantine list), and the chaos-engine fault counters.
///
/// v4: [`fingerprint`] became an explicit structural field-by-field hash
/// (it previously hashed the config's `Debug` rendering, so any derive
/// or field-order refactor silently invalidated every stored result);
/// the same fingerprint now also keys the persistent result store.
pub(crate) const VERSION: u64 = 4;

/// Journaled failures of one cell before resume quarantines it.
pub const MAX_CELL_FAILURES: u32 = 2;

/// A journal I/O operation that failed, with enough context (path and
/// operation) to act on the message without a debugger.
#[derive(Debug)]
pub enum JournalError {
    /// An underlying filesystem operation failed.
    Io {
        /// Journal (or tempfile) path the operation touched.
        path: PathBuf,
        /// What the journal was doing (e.g. `"read"`, `"append"`).
        op: &'static str,
        /// The underlying I/O error.
        source: io::Error,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io { path, op, source } => {
                write!(f, "journal {op} failed for {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io { source, .. } => Some(source),
        }
    }
}

/// Everything [`Journal::load`] recovered from disk.
#[derive(Debug, Default)]
pub struct JournalSnapshot {
    /// Successfully decoded (and checksum-verified) completed cells, in
    /// file order; on duplicates the caller's last-wins insert applies.
    pub entries: Vec<JournalEntry>,
    /// Journaled failure counts per `(workload, variant, seed)`.
    pub failures: HashMap<(String, Variant, u64), u32>,
    /// Undecodable lines as `(1-based line number, reason)`; each one
    /// only means that cell re-runs.
    pub skipped: Vec<(usize, String)>,
    /// Whether a torn tail (kill mid-append) was truncated away.
    pub repaired_tail: bool,
}

impl JournalSnapshot {
    /// Journaled failure count that puts `(workload, variant, seed)` in
    /// quarantine, or `None` if the cell may still run.
    pub fn quarantined(&self, workload: &str, variant: Variant, seed: u64) -> Option<u32> {
        self.failures
            .get(&(workload.to_string(), variant, seed))
            .copied()
            .filter(|&n| n >= MAX_CELL_FAILURES)
    }
}

/// One completed cell read back from a journal. `workload` is owned
/// because the file outlives any `&'static` workload table.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// Workload name.
    pub workload: String,
    /// Configuration variant.
    pub variant: Variant,
    /// Seed the cell ran with.
    pub seed: u64,
    /// The journaled result, bit-identical to the original run.
    pub result: RunResult,
}

/// An append-only checkpoint journal bound to one sweep fingerprint.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    fingerprint: u64,
}

impl Journal {
    /// Binds a journal file to a sweep fingerprint (see [`fingerprint`]).
    /// Nothing is touched on disk until [`load_or_reset`](Self::load_or_reset)
    /// or [`append`](Self::append).
    pub fn new(path: impl Into<PathBuf>, fingerprint: u64) -> Self {
        Journal { path: path.into(), fingerprint }
    }

    /// The journal's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn io_err(&self, op: &'static str, source: io::Error) -> JournalError {
        JournalError::Io { path: self.path.clone(), op, source }
    }

    /// Reads back everything recoverable from an existing journal.
    ///
    /// A missing file yields an empty snapshot. A file whose header is
    /// absent or carries a different fingerprint is **rotated aside** to
    /// `<path>.stale.<its fingerprint>` and yields an empty snapshot —
    /// resuming it under this sweep would mix results from a different
    /// configuration, but deleting it would destroy another sweep's
    /// completed cells (the other sweep can still be pointed back at the
    /// rotated file). A torn tail (kill mid-append) is truncated off the
    /// file; corrupt middle lines are skipped individually with their
    /// line number and reason.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than the file not existing.
    pub fn load(&self) -> Result<JournalSnapshot, JournalError> {
        let mut snap = JournalSnapshot::default();
        let mut text = match fs::read_to_string(&self.path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(snap),
            Err(e) => return Err(self.io_err("read", e)),
        };
        if !text.is_empty() && !text.ends_with('\n') {
            // Torn tail: the writer was killed mid-append. Truncate the
            // file to the last complete record so a subsequent append
            // cannot splice new bytes onto the partial line.
            snap.repaired_tail = true;
            match text.rfind('\n') {
                Some(pos) => {
                    text.truncate(pos + 1);
                    let f = fs::OpenOptions::new()
                        .write(true)
                        .open(&self.path)
                        .map_err(|e| self.io_err("repair", e))?;
                    f.set_len(text.len() as u64).map_err(|e| self.io_err("repair", e))?;
                }
                None => {
                    // Not even the header survived; start over.
                    fs::remove_file(&self.path).map_err(|e| self.io_err("reset", e))?;
                    return Ok(snap);
                }
            }
        }
        let mut lines = text.lines();
        let header_ok = lines
            .next()
            .and_then(parse_flat)
            .map(|kvs| {
                let map: HashMap<_, _> = kvs.into_iter().collect();
                map.get("cmpsim_journal") == Some(&JsonVal::Num(VERSION))
                    && map.get("fingerprint")
                        == Some(&JsonVal::Str(format!("{:016x}", self.fingerprint)))
            })
            .unwrap_or(false);
        if !header_ok {
            self.rotate_stale(&text)?;
            return Ok(JournalSnapshot::default());
        }
        for (idx, line) in lines.enumerate() {
            match decode_line(line) {
                Ok(Decoded::Entry(e)) => snap.entries.push(e),
                Ok(Decoded::Failure { workload, variant, seed }) => {
                    *snap.failures.entry((workload, variant, seed)).or_insert(0) += 1;
                }
                Err(reason) => snap.skipped.push((idx + 2, reason)), // 1-based, after header
            }
        }
        Ok(snap)
    }

    /// Moves a journal whose header does not match this sweep out of the
    /// way as `<path>.stale.<fingerprint>`, keyed by the *stale file's*
    /// own fingerprint (or `unreadable` when not even the header parses).
    /// A whitespace-only file carries no data worth keeping and is simply
    /// removed. Rotation overwrites an earlier rotation of the same
    /// fingerprint — same lineage, newer content — so stale files cannot
    /// accumulate without bound.
    fn rotate_stale(&self, text: &str) -> Result<(), JournalError> {
        if text.trim().is_empty() {
            fs::remove_file(&self.path).map_err(|e| self.io_err("reset", e))?;
            return Ok(());
        }
        let theirs = text
            .lines()
            .next()
            .and_then(parse_flat)
            .and_then(|kvs| {
                kvs.into_iter()
                    .find(|(k, _)| k == "fingerprint")
                    .and_then(|(_, v)| v.as_str().map(str::to_string))
            })
            .filter(|fp| fp.len() == 16 && fp.bytes().all(|b| b.is_ascii_hexdigit()))
            .unwrap_or_else(|| "unreadable".to_string());
        let mut stale = self.path.as_os_str().to_os_string();
        stale.push(format!(".stale.{theirs}"));
        let stale = PathBuf::from(stale);
        eprintln!(
            "cmpsim: journal {} belongs to a different sweep; rotated aside to {}",
            self.path.display(),
            stale.display()
        );
        fs::rename(&self.path, &stale).map_err(|e| self.io_err("rotate stale", e))
    }

    /// [`load`](Self::load), reduced to the completed cells (the v2
    /// shape most callers want).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than the file not existing.
    pub fn load_or_reset(&self) -> Result<Vec<JournalEntry>, JournalError> {
        Ok(self.load()?.entries)
    }

    /// Opens the journal for appending, creating its header first if the
    /// file is missing or empty. The header is written to a tempfile and
    /// renamed into place, so a concurrent or subsequent reader can never
    /// observe a half-written header.
    fn open_for_append(&self) -> Result<fs::File, JournalError> {
        if let Some(dir) = self.path.parent() {
            fs::create_dir_all(dir).map_err(|e| self.io_err("create dir", e))?;
        }
        let empty = match fs::metadata(&self.path) {
            Ok(m) => m.len() == 0,
            Err(e) if e.kind() == io::ErrorKind::NotFound => true,
            Err(e) => return Err(self.io_err("stat", e)),
        };
        if empty {
            let tmp = self.path.with_extension("tmp");
            fs::write(
                &tmp,
                format!(
                    "{{\"cmpsim_journal\":{VERSION},\"fingerprint\":\"{:016x}\"}}\n",
                    self.fingerprint
                ),
            )
            .map_err(|e| JournalError::Io { path: tmp.clone(), op: "write header", source: e })?;
            fs::rename(&tmp, &self.path).map_err(|e| self.io_err("rename header", e))?;
        }
        fs::OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| self.io_err("open", e))
    }

    /// Appends one completed cell, creating the file (with its header)
    /// on first use. Each call is one `write_all` of one line, so a kill
    /// between calls loses at most the in-flight cell.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors, tagged with the journal path and operation.
    pub fn append(&self, entry: &JournalEntry) -> Result<(), JournalError> {
        let mut f = self.open_for_append()?;
        let mut line = encode_entry(entry);
        line.push('\n');
        f.write_all(line.as_bytes()).map_err(|e| self.io_err("append", e))
    }

    /// Appends one cell-failure record; [`MAX_CELL_FAILURES`] of these
    /// for the same cell quarantine it on the next resume.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors, tagged with the journal path and operation.
    pub fn append_failure(
        &self,
        workload: &str,
        variant: Variant,
        seed: u64,
        error: &str,
    ) -> Result<(), JournalError> {
        let mut f = self.open_for_append()?;
        let mut line = encode_failure(workload, variant, seed, error);
        line.push('\n');
        f.write_all(line.as_bytes()).map_err(|e| self.io_err("append failure", e))
    }
}

/// Incremental FNV-1a/64 over explicitly named fields: each field is
/// folded as `name ':' value-bytes ';'`, so reordering fields in the
/// *struct* cannot change the hash (the hasher controls the order), and
/// two adjacent fields can never collide by concatenation.
pub(crate) struct StructHash {
    h: u64,
}

impl StructHash {
    pub(crate) fn new() -> Self {
        StructHash { h: 0xcbf2_9ce4_8422_2325 }
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.h ^= u64::from(b);
            self.h = self.h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn u64(&mut self, name: &str, v: u64) -> &mut Self {
        self.bytes(name.as_bytes());
        self.bytes(b":");
        self.bytes(&v.to_le_bytes());
        self.bytes(b";");
        self
    }

    pub(crate) fn bool(&mut self, name: &str, v: bool) -> &mut Self {
        self.u64(name, u64::from(v))
    }

    pub(crate) fn finish(&self) -> u64 {
        self.h
    }
}

/// Hashes the sweep-defining inputs (base configuration + simulation
/// length) into the structural fingerprint keying both the checkpoint
/// journal and the persistent result store.
///
/// Every field is hashed **explicitly, by name and value** — never via a
/// `Debug` rendering, whose bytes change under derive or field-order
/// refactors and silently invalidate (or worse, collide) every stored
/// result. The hash is pinned by a golden test vector
/// (`fingerprint_matches_pinned_vector`), so an accidental change to its
/// inputs or mixing is caught in review, and a deliberate one must bump
/// [`VERSION`].
///
/// Three kinds of input are deliberately **excluded**:
///
/// - `base.seed` — the seed is a separate axis of the result key (every
///   journal/store record carries its own), so sweeps over many seeds
///   share one fingerprint;
/// - `check_invariants` and `livelock_cycle_budget` — supervision knobs
///   that can abort a run but can never alter a *completed* result;
/// - nothing else: all remaining config fields shape simulated behavior.
///
/// One environment input is **included**: an armed `CMPSIM_CHAOS` plan
/// changes simulated results, so its seed and rate are folded in —
/// results computed under fault injection can never be served to (or
/// poisoned by) a clean sweep.
pub fn fingerprint(base: &SystemConfig, len: SimLength) -> u64 {
    let mut h = StructHash::new();
    h.u64("schema", VERSION);
    h.u64("cores", u64::from(base.cores));
    h.u64("clock_ghz", u64::from(base.clock_ghz));
    h.u64("issue_width", base.issue_width);
    h.u64("rob_size", base.rob_size);
    h.u64("mshrs_per_core", base.mshrs_per_core as u64);
    h.u64("l1_bytes", base.l1_bytes as u64);
    h.u64("l1_ways", base.l1_ways as u64);
    h.u64("l1_latency", base.l1_latency);
    h.u64("l2_bytes", base.l2_bytes as u64);
    h.u64("l2_banks", base.l2_banks as u64);
    h.u64("l2_latency", base.l2_latency);
    h.u64("decompression_latency", base.decompression_latency);
    h.u64(
        "codec",
        match base.codec {
            cmpsim_fpc::CodecKind::Fpc => 0,
            cmpsim_fpc::CodecKind::Bdi => 1,
            cmpsim_fpc::CodecKind::Zca => 2,
        },
    );
    h.u64("l1_to_l2_latency", base.l1_to_l2_latency);
    h.u64("probe_latency", base.probe_latency);
    h.u64("mem_latency", base.mem_latency);
    match base.link {
        LinkBandwidth::Infinite => h.u64("link.infinite", 1),
        LinkBandwidth::GBps(g) => h.u64("link.gbps", u64::from(g)),
    };
    h.bool("cache_compression", base.cache_compression);
    h.bool("adaptive_compression", base.adaptive_compression);
    h.bool("link_compression", base.link_compression);
    h.u64(
        "prefetch",
        match base.prefetch {
            PrefetchMode::Off => 0,
            PrefetchMode::Stride => 1,
            PrefetchMode::Adaptive => 2,
        },
    );
    h.u64("l2_prefetch_degree", u64::from(base.l2_prefetch_degree));
    h.u64("warmup", len.warmup);
    h.u64("measure", len.measure);
    if let Some(plan) = FaultPlan::from_env() {
        h.u64("chaos.seed", plan.seed());
        h.u64("chaos.rate.bits", plan.rate().to_bits());
    }
    h.finish()
}

/// Default journal directory: `CMPSIM_GRID_DIR`, else
/// `$CARGO_TARGET_DIR/grid`, else the nearest enclosing `target/`
/// directory, else `./target/grid`.
pub fn default_journal_dir() -> PathBuf {
    if let Ok(d) = std::env::var("CMPSIM_GRID_DIR") {
        return PathBuf::from(d);
    }
    if let Ok(d) = std::env::var("CARGO_TARGET_DIR") {
        return PathBuf::from(d).join("grid");
    }
    let mut cur = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let cand = cur.join("target");
        if cand.is_dir() {
            return cand.join("grid");
        }
        if !cur.pop() {
            return PathBuf::from("target/grid");
        }
    }
}

// ------------------------------------------------------------- encoding

/// Per-level counter names, shared by the encoder and decoder so the two
/// cannot skew (`journal_roundtrip_is_bit_exact` fills every field with a
/// distinct value to catch an omission here).
const LEVEL_FIELDS: [&str; 7] = [
    "accesses",
    "hits",
    "demand_misses",
    "prefetch_hits",
    "prefetches_issued",
    "prefetch_fills",
    "useless_prefetch_evictions",
];

fn level_get(l: &LevelStats, field: &str) -> u64 {
    match field {
        "accesses" => l.accesses,
        "hits" => l.hits,
        "demand_misses" => l.demand_misses,
        "prefetch_hits" => l.prefetch_hits,
        "prefetches_issued" => l.prefetches_issued,
        "prefetch_fills" => l.prefetch_fills,
        "useless_prefetch_evictions" => l.useless_prefetch_evictions,
        _ => unreachable!("unknown level field {field}"),
    }
}

fn level_set(l: &mut LevelStats, field: &str, v: u64) {
    match field {
        "accesses" => l.accesses = v,
        "hits" => l.hits = v,
        "demand_misses" => l.demand_misses = v,
        "prefetch_hits" => l.prefetch_hits = v,
        "prefetches_issued" => l.prefetches_issued = v,
        "prefetch_fills" => l.prefetch_fills = v,
        "useless_prefetch_evictions" => l.useless_prefetch_evictions = v,
        _ => unreachable!("unknown level field {field}"),
    }
}

/// Every numeric field of a [`RunResult`] as flat `(dotted key, u64)`
/// pairs; the `f64` travels as its bit pattern under a `.bits` key.
fn numeric_fields(r: &RunResult) -> Vec<(String, u64)> {
    let s = &r.stats;
    let mut kv: Vec<(String, u64)> = vec![
        ("cycles".into(), r.cycles),
        ("clock_ghz".into(), u64::from(r.clock_ghz)),
        ("events".into(), r.events),
        ("retired".into(), r.retired),
        // Wall-clock of the original run; outside `PartialEq` but kept
        // so resumed sweeps can still report throughput.
        ("host_nanos".into(), r.host_nanos),
        ("stats.instructions".into(), s.instructions),
    ];
    for (name, l) in [("l1i", &s.l1i), ("l1d", &s.l1d), ("l2", &s.l2)] {
        for f in LEVEL_FIELDS {
            kv.push((format!("stats.{name}.{f}"), level_get(l, f)));
        }
    }
    kv.extend([
        ("stats.l2_compressed_hits".into(), s.l2_compressed_hits),
        ("stats.l2_hit_latency_sum".into(), s.l2_hit_latency_sum),
        ("stats.l2_hit_latency_count".into(), s.l2_hit_latency_count),
        ("stats.l2_victim_tag_hits".into(), s.l2_victim_tag_hits),
        ("stats.harmful_prefetch_detections".into(), s.harmful_prefetch_detections),
        ("stats.capacity_ratio_sum.bits".into(), s.capacity_ratio_sum.to_bits()),
        ("stats.capacity_ratio_samples".into(), s.capacity_ratio_samples),
        ("stats.link.total_bytes".into(), s.link.total_bytes),
        ("stats.link.data_bytes".into(), s.link.data_bytes),
        ("stats.link.prefetch_bytes".into(), s.link.prefetch_bytes),
        ("stats.link.messages".into(), s.link.messages),
        ("stats.link.queue_delay_cycles".into(), s.link.queue_delay_cycles),
        ("stats.link.busy_cycles".into(), s.link.busy_cycles),
        ("stats.link.dropped_messages".into(), s.link.dropped_messages),
        ("stats.link.corrupted_messages".into(), s.link.corrupted_messages),
        ("stats.mem_reads".into(), s.mem_reads),
        ("stats.mem_writes".into(), s.mem_writes),
        ("stats.coherence.invalidations".into(), s.coherence.invalidations),
        ("stats.coherence.recalls".into(), s.coherence.recalls),
        ("stats.coherence.upgrades".into(), s.coherence.upgrades),
        ("stats.coherence.inclusion_recalls".into(), s.coherence.inclusion_recalls),
        ("stats.dropped_prefetches".into(), s.dropped_prefetches),
        ("stats.faults.codec_faults_injected".into(), s.faults.codec_faults_injected),
        ("stats.faults.codec_faults_detected".into(), s.faults.codec_faults_detected),
        ("stats.faults.fault_recoveries".into(), s.faults.fault_recoveries),
        ("stats.faults.lines_quarantined".into(), s.faults.lines_quarantined),
        ("stats.faults.link_faults_injected".into(), s.faults.link_faults_injected),
        ("stats.faults.link_retransmits".into(), s.faults.link_retransmits),
        ("stats.faults.mem_stall_bursts".into(), s.faults.mem_stall_bursts),
        ("stats.faults.mem_stall_cycles".into(), s.faults.mem_stall_cycles),
        ("stats.faults.dir_messages_lost".into(), s.faults.dir_messages_lost),
        ("stats.faults.dir_retries".into(), s.faults.dir_retries),
    ]);
    kv
}

pub(crate) fn encode_entry(e: &JournalEntry) -> String {
    debug_assert!(
        !e.workload.contains(['"', '\\']),
        "workload names are plain identifiers"
    );
    let mut s = format!(
        "{{\"workload\":\"{}\",\"variant\":\"{}\",\"seed\":{}",
        e.workload,
        e.variant.label(),
        e.seed
    );
    for (k, v) in numeric_fields(&e.result) {
        s.push_str(&format!(",\"{k}\":{v}"));
    }
    seal(s)
}

fn encode_failure(workload: &str, variant: Variant, seed: u64, error: &str) -> String {
    // The flat parser supports no escapes, so sanitize the free-form
    // error text into the representable subset.
    let sane: String = error
        .chars()
        .take(200)
        .map(|c| match c {
            '"' | '\\' => '\'',
            '\n' | '\r' => ' ',
            c => c,
        })
        .collect();
    seal(format!(
        "{{\"failure\":\"{workload}\",\"variant\":\"{}\",\"seed\":{seed},\"error\":\"{sane}\"",
        variant.label()
    ))
}

/// One checksum-verified journal record.
#[derive(Debug)]
pub(crate) enum Decoded {
    Entry(JournalEntry),
    Failure { workload: String, variant: Variant, seed: u64 },
}

pub(crate) fn decode_line(line: &str) -> Result<Decoded, String> {
    check_seal(line)?;
    let kvs = parse_flat(line).ok_or_else(|| "malformed record".to_string())?;
    let map: HashMap<String, JsonVal> = kvs.into_iter().collect();
    if let Some(JsonVal::Str(workload)) = map.get("failure") {
        let variant = match map.get("variant") {
            Some(JsonVal::Str(label)) => *Variant::all()
                .iter()
                .find(|v| v.label() == *label)
                .ok_or_else(|| format!("unknown variant {label:?}"))?,
            _ => return Err("failure record missing variant".to_string()),
        };
        let seed = match map.get("seed") {
            Some(JsonVal::Num(n)) => *n,
            _ => return Err("failure record missing seed".to_string()),
        };
        return Ok(Decoded::Failure { workload: workload.clone(), variant, seed });
    }
    decode_entry(line)
        .map(Decoded::Entry)
        .ok_or_else(|| "missing or malformed cell field".to_string())
}

fn decode_entry(line: &str) -> Option<JournalEntry> {
    let map: HashMap<String, JsonVal> = parse_flat(line)?.into_iter().collect();
    let str_of = |k: &str| match map.get(k) {
        Some(JsonVal::Str(s)) => Some(s.clone()),
        _ => None,
    };
    let num_of = |k: &str| match map.get(k) {
        Some(JsonVal::Num(n)) => Some(*n),
        _ => None,
    };
    let workload = str_of("workload")?;
    let label = str_of("variant")?;
    let variant = *Variant::all().iter().find(|v| v.label() == label)?;
    let seed = num_of("seed")?;

    let mut r = RunResult {
        stats: SimStats::default(),
        cycles: num_of("cycles")?,
        clock_ghz: u32::try_from(num_of("clock_ghz")?).ok()?,
        events: num_of("events")?,
        retired: num_of("retired")?,
        host_nanos: num_of("host_nanos")?,
    };
    let s = &mut r.stats;
    s.instructions = num_of("stats.instructions")?;
    for (name, l) in
        [("l1i", &mut s.l1i), ("l1d", &mut s.l1d), ("l2", &mut s.l2)]
    {
        for f in LEVEL_FIELDS {
            level_set(l, f, num_of(&format!("stats.{name}.{f}"))?);
        }
    }
    s.l2_compressed_hits = num_of("stats.l2_compressed_hits")?;
    s.l2_hit_latency_sum = num_of("stats.l2_hit_latency_sum")?;
    s.l2_hit_latency_count = num_of("stats.l2_hit_latency_count")?;
    s.l2_victim_tag_hits = num_of("stats.l2_victim_tag_hits")?;
    s.harmful_prefetch_detections = num_of("stats.harmful_prefetch_detections")?;
    s.capacity_ratio_sum = f64::from_bits(num_of("stats.capacity_ratio_sum.bits")?);
    s.capacity_ratio_samples = num_of("stats.capacity_ratio_samples")?;
    s.link.total_bytes = num_of("stats.link.total_bytes")?;
    s.link.data_bytes = num_of("stats.link.data_bytes")?;
    s.link.prefetch_bytes = num_of("stats.link.prefetch_bytes")?;
    s.link.messages = num_of("stats.link.messages")?;
    s.link.queue_delay_cycles = num_of("stats.link.queue_delay_cycles")?;
    s.link.busy_cycles = num_of("stats.link.busy_cycles")?;
    s.link.dropped_messages = num_of("stats.link.dropped_messages")?;
    s.link.corrupted_messages = num_of("stats.link.corrupted_messages")?;
    s.mem_reads = num_of("stats.mem_reads")?;
    s.mem_writes = num_of("stats.mem_writes")?;
    s.coherence.invalidations = num_of("stats.coherence.invalidations")?;
    s.coherence.recalls = num_of("stats.coherence.recalls")?;
    s.coherence.upgrades = num_of("stats.coherence.upgrades")?;
    s.coherence.inclusion_recalls = num_of("stats.coherence.inclusion_recalls")?;
    s.dropped_prefetches = num_of("stats.dropped_prefetches")?;
    s.faults.codec_faults_injected = num_of("stats.faults.codec_faults_injected")?;
    s.faults.codec_faults_detected = num_of("stats.faults.codec_faults_detected")?;
    s.faults.fault_recoveries = num_of("stats.faults.fault_recoveries")?;
    s.faults.lines_quarantined = num_of("stats.faults.lines_quarantined")?;
    s.faults.link_faults_injected = num_of("stats.faults.link_faults_injected")?;
    s.faults.link_retransmits = num_of("stats.faults.link_retransmits")?;
    s.faults.mem_stall_bursts = num_of("stats.faults.mem_stall_bursts")?;
    s.faults.mem_stall_cycles = num_of("stats.faults.mem_stall_cycles")?;
    s.faults.dir_messages_lost = num_of("stats.faults.dir_messages_lost")?;
    s.faults.dir_retries = num_of("stats.faults.dir_retries")?;
    Some(JournalEntry { workload, variant, seed, result: r })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A result with a distinct value in every field, so a round-trip
    /// detects any encoder/decoder omission or swap.
    fn distinct_result() -> RunResult {
        let mut r = RunResult {
            stats: SimStats::default(),
            cycles: 1,
            clock_ghz: 2,
            events: 101,
            retired: 102,
            host_nanos: 103,
        };
        let mut next = 3u64;
        let mut n = || {
            next += 1;
            next
        };
        let s = &mut r.stats;
        s.instructions = n();
        for l in [&mut s.l1i, &mut s.l1d, &mut s.l2] {
            for f in LEVEL_FIELDS {
                level_set(l, f, n());
            }
        }
        s.l2_compressed_hits = n();
        s.l2_hit_latency_sum = n();
        s.l2_hit_latency_count = n();
        s.l2_victim_tag_hits = n();
        s.harmful_prefetch_detections = n();
        s.capacity_ratio_sum = 0.1 + 0.2; // not exactly representable: bit test
        s.capacity_ratio_samples = n();
        s.link.total_bytes = n();
        s.link.data_bytes = n();
        s.link.prefetch_bytes = n();
        s.link.messages = n();
        s.link.queue_delay_cycles = n();
        s.link.busy_cycles = n();
        s.link.dropped_messages = n();
        s.link.corrupted_messages = n();
        s.mem_reads = n();
        s.mem_writes = n();
        s.coherence.invalidations = n();
        s.coherence.recalls = n();
        s.coherence.upgrades = n();
        s.coherence.inclusion_recalls = n();
        s.dropped_prefetches = n();
        s.faults.codec_faults_injected = n();
        s.faults.codec_faults_detected = n();
        s.faults.fault_recoveries = n();
        s.faults.lines_quarantined = n();
        s.faults.link_faults_injected = n();
        s.faults.link_retransmits = n();
        s.faults.mem_stall_bursts = n();
        s.faults.mem_stall_cycles = n();
        s.faults.dir_messages_lost = n();
        s.faults.dir_retries = n();
        r
    }

    #[test]
    fn journal_roundtrip_is_bit_exact() {
        let e = JournalEntry {
            workload: "apsi".into(),
            variant: Variant::AdaptivePrefetchCompression,
            seed: 47,
            result: distinct_result(),
        };
        let line = encode_entry(&e);
        let back = decode_entry(&line).expect("decodes");
        assert_eq!(back, e);
        assert_eq!(
            back.result.stats.capacity_ratio_sum.to_bits(),
            e.result.stats.capacity_ratio_sum.to_bits()
        );
        // `==` ignores wall-clock by design, so check it separately.
        assert_eq!(back.result.host_nanos, e.result.host_nanos);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(decode_entry("").is_none());
        assert!(decode_entry("{").is_none());
        assert!(decode_entry("{\"workload\":\"apsi\"}").is_none());
        assert!(decode_entry("not json at all").is_none());
        let good = encode_entry(&JournalEntry {
            workload: "w".into(),
            variant: Variant::Base,
            seed: 1,
            result: distinct_result(),
        });
        assert!(decode_entry(&good[..good.len() - 5]).is_none(), "truncation detected");
    }

    #[test]
    fn fingerprint_distinguishes_configs_and_lengths() {
        let a = SystemConfig::paper_default(2);
        let b = SystemConfig::paper_default(4);
        let l1 = SimLength { warmup: 10, measure: 20 };
        let l2 = SimLength { warmup: 10, measure: 21 };
        assert_ne!(fingerprint(&a, l1), fingerprint(&b, l1));
        assert_ne!(fingerprint(&a, l1), fingerprint(&a, l2));
        assert_eq!(fingerprint(&a, l1), fingerprint(&a.clone(), l1));
    }

    /// The structural fingerprint is pinned to a golden vector: it may
    /// only change together with a deliberate [`VERSION`] bump. The
    /// `Debug`-rendering hash this replaced fails here by construction —
    /// its value moved under every derive or field-order refactor.
    #[test]
    fn fingerprint_matches_pinned_vector() {
        let base = SystemConfig::paper_default(8);
        let len = SimLength::standard();
        assert_eq!(
            fingerprint(&base, len),
            0xee03_b1a3_bbb3_75c3,
            "structural fingerprint drifted: either an input field was \
             added/removed/re-mixed accidentally, or this is a deliberate \
             format change that must bump journal::VERSION and re-pin"
        );
    }

    /// Regression: the fingerprint must be a function of fields that
    /// shape simulated results — not of the seed (a separate key axis)
    /// and not of supervision knobs that can only abort a run. The
    /// pre-v4 `Debug` hash folded all three in.
    #[test]
    fn fingerprint_ignores_seed_and_supervision_knobs() {
        let base = SystemConfig::paper_default(4);
        let len = SimLength { warmup: 10, measure: 20 };
        let fp = fingerprint(&base, len);
        assert_eq!(fp, fingerprint(&base.clone().with_seed(99), len));
        assert_eq!(fp, fingerprint(&base.clone().with_invariant_checks(true), len));
        assert_eq!(fp, fingerprint(&base.clone().with_livelock_budget(1), len));
    }

    #[test]
    fn fingerprint_separates_every_structural_axis() {
        let base = SystemConfig::paper_default(4);
        let len = SimLength { warmup: 10, measure: 20 };
        let fp = fingerprint(&base, len);
        let variants: Vec<SystemConfig> = vec![
            SystemConfig { l2_bytes: base.l2_bytes * 2, ..base.clone() },
            base.clone().with_codec(cmpsim_fpc::CodecKind::Bdi),
            base.clone().with_link(LinkBandwidth::Infinite),
            base.clone().with_link(LinkBandwidth::GBps(40)),
            base.clone().with_compression(true, true),
            base.clone().with_prefetch(PrefetchMode::Adaptive),
            SystemConfig { mem_latency: 401, ..base.clone() },
            SystemConfig { l2_prefetch_degree: 24, ..base.clone() },
        ];
        for (i, cfg) in variants.iter().enumerate() {
            assert_ne!(fp, fingerprint(cfg, len), "variant {i} must change the fingerprint");
        }
    }

    #[test]
    fn load_append_and_mismatch_rotation() {
        let dir = std::env::temp_dir().join(format!(
            "cmpsim-journal-test-{}-{}",
            std::process::id(),
            std::thread::current().name().unwrap_or("t").len()
        ));
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("grid.jsonl");

        let j = Journal::new(&path, 0xdead);
        assert_eq!(j.load_or_reset().unwrap(), vec![], "missing file is empty");

        let e = JournalEntry {
            workload: "apsi".into(),
            variant: Variant::Prefetch,
            seed: 11,
            result: distinct_result(),
        };
        j.append(&e).unwrap();
        j.append(&JournalEntry { workload: "mgrid".into(), ..e.clone() }).unwrap();
        let back = j.load_or_reset().unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0], e);
        assert_eq!(back[1].workload, "mgrid");

        // A journal written under another fingerprint yields nothing for
        // *this* sweep but survives on disk for its own.
        let original = fs::read_to_string(&path).unwrap();
        let other = Journal::new(&path, 0xbeef);
        assert_eq!(other.load_or_reset().unwrap(), vec![]);
        assert!(!path.exists(), "mismatched journal is moved out of the way");
        let stale = dir.join(format!("grid.jsonl.stale.{:016x}", 0xdead_u64));
        assert_eq!(
            fs::read_to_string(&stale).unwrap(),
            original,
            "rotation must preserve the other sweep's completed cells byte-for-byte"
        );
        // The original sweep can be pointed at the rotated file and
        // recovers every cell.
        let recovered = Journal::new(&stale, 0xdead).load_or_reset().unwrap();
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[0], e);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Regression for the destructive pre-fix behavior: resuming sweep B
    /// over sweep A's journal used to `remove_file` A's completed cells.
    /// Now A's work must survive a full B lifecycle (load + append).
    #[test]
    fn foreign_sweep_resume_does_not_destroy_completed_cells() {
        let dir = std::env::temp_dir()
            .join(format!("cmpsim-journal-stale-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("grid.jsonl");
        let a = Journal::new(&path, 0xa);
        let cell = JournalEntry {
            workload: "apsi".into(),
            variant: Variant::Prefetch,
            seed: 11,
            result: distinct_result(),
        };
        a.append(&cell).unwrap();
        let a_bytes = fs::read_to_string(&path).unwrap();

        // Sweep B resumes over the same path, finds nothing, and runs a
        // full journaled sweep of its own.
        let b = Journal::new(&path, 0xb);
        assert_eq!(b.load_or_reset().unwrap(), vec![], "B starts empty");
        b.append(&JournalEntry { workload: "mgrid".into(), ..cell.clone() }).unwrap();
        assert_eq!(b.load_or_reset().unwrap().len(), 1, "B journals independently");

        // A's cells are intact in the rotated file.
        let stale = dir.join(format!("grid.jsonl.stale.{:016x}", 0xa_u64));
        assert_eq!(fs::read_to_string(&stale).unwrap(), a_bytes);
        assert_eq!(Journal::new(&stale, 0xa).load_or_reset().unwrap(), vec![cell]);

        // An *empty* mismatched file carries nothing worth rotating.
        let empty = dir.join("empty.jsonl");
        fs::write(&empty, "").unwrap();
        assert_eq!(Journal::new(&empty, 0xc).load_or_reset().unwrap(), vec![]);
        assert!(!empty.exists(), "empty files are still removed outright");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn records_carry_verifiable_checksums() {
        let e = JournalEntry {
            workload: "apsi".into(),
            variant: Variant::Base,
            seed: 3,
            result: distinct_result(),
        };
        let line = encode_entry(&e);
        assert!(check_seal(&line).is_ok());
        assert!(matches!(decode_line(&line), Ok(Decoded::Entry(back)) if back == e));
        // Flip one digit in the middle of the record: the crc catches it.
        let mangled = line.replacen(":1,", ":7,", 1);
        assert_ne!(mangled, line);
        let err = decode_line(&mangled).unwrap_err();
        assert!(err.contains("crc mismatch"), "got: {err}");
        // Strip the crc entirely: also rejected.
        assert!(decode_line("{\"workload\":\"apsi\"}").unwrap_err().contains("missing crc"));
    }

    #[test]
    fn failure_records_accumulate_into_quarantine() {
        let dir = std::env::temp_dir()
            .join(format!("cmpsim-journal-quar-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let j = Journal::new(dir.join("grid.jsonl"), 9);
        j.append_failure("apsi", Variant::Prefetch, 11, "livelock at cycle 5:\n  core 0")
            .unwrap();
        let snap = j.load().unwrap();
        assert_eq!(snap.failures[&("apsi".to_string(), Variant::Prefetch, 11)], 1);
        assert!(snap.quarantined("apsi", Variant::Prefetch, 11).is_none(), "one strike left");
        j.append_failure("apsi", Variant::Prefetch, 11, "livelock again").unwrap();
        let snap = j.load().unwrap();
        assert_eq!(snap.quarantined("apsi", Variant::Prefetch, 11), Some(2));
        assert!(snap.quarantined("apsi", Variant::Base, 11).is_none(), "per-variant");
        assert!(snap.quarantined("apsi", Variant::Prefetch, 12).is_none(), "per-seed");
        assert!(snap.skipped.is_empty(), "failure records decode cleanly");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_middle_line_is_skipped_with_line_number() {
        let dir = std::env::temp_dir()
            .join(format!("cmpsim-journal-crc-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("grid.jsonl");
        let j = Journal::new(&path, 5);
        let mk = |w: &str| JournalEntry {
            workload: w.into(),
            variant: Variant::Base,
            seed: 1,
            result: distinct_result(),
        };
        j.append(&mk("apsi")).unwrap();
        j.append(&mk("mgrid")).unwrap();
        // Corrupt one digit of the first cell record (line 2), in place.
        let text = fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        lines[1] = lines[1].replacen(":1,", ":7,", 1);
        fs::write(&path, lines.join("\n") + "\n").unwrap();
        let snap = j.load().unwrap();
        assert_eq!(snap.entries.len(), 1, "intact cell survives");
        assert_eq!(snap.entries[0].workload, "mgrid");
        assert_eq!(snap.skipped.len(), 1);
        assert_eq!(snap.skipped[0].0, 2, "1-based line number");
        assert!(snap.skipped[0].1.contains("crc mismatch"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_physically_truncated() {
        let dir = std::env::temp_dir()
            .join(format!("cmpsim-journal-tail-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("grid.jsonl");
        let j = Journal::new(&path, 5);
        let e = JournalEntry {
            workload: "apsi".into(),
            variant: Variant::Base,
            seed: 1,
            result: distinct_result(),
        };
        j.append(&e).unwrap();
        let intact = fs::read_to_string(&path).unwrap();
        let mut torn = intact.clone();
        torn.push_str("{\"workload\":\"mgr"); // kill mid-append, no newline
        fs::write(&path, &torn).unwrap();
        let snap = j.load().unwrap();
        assert!(snap.repaired_tail);
        assert_eq!(snap.entries, vec![e.clone()]);
        assert_eq!(fs::read_to_string(&path).unwrap(), intact, "file repaired on disk");
        // A fresh append after repair produces a clean, loadable journal.
        j.append(&JournalEntry { workload: "mgrid".into(), ..e }).unwrap();
        let snap = j.load().unwrap();
        assert!(!snap.repaired_tail);
        assert_eq!(snap.entries.len(), 2);
        assert!(snap.skipped.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_line_skips_only_that_cell() {
        let dir = std::env::temp_dir().join(format!(
            "cmpsim-journal-trunc-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("grid.jsonl");
        let j = Journal::new(&path, 7);
        let e = JournalEntry {
            workload: "apsi".into(),
            variant: Variant::Base,
            seed: 1,
            result: distinct_result(),
        };
        j.append(&e).unwrap();
        // Simulate a kill mid-write of the second cell.
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("{\"workload\":\"mgr");
        fs::write(&path, text).unwrap();
        let back = j.load_or_reset().unwrap();
        assert_eq!(back, vec![e]);
        let _ = fs::remove_dir_all(&dir);
    }
}
