//! Bit-exact checkpoint journal for grid sweeps.
//!
//! `run_grid_resilient` appends one JSONL line per completed cell as it
//! finishes, so a run killed mid-sweep can be re-invoked with the same
//! journal and skip the cells that already ran. The contract is
//! **bit-identity**: a journaled [`RunResult`] decodes to exactly the
//! value the simulation produced — every counter is stored as its `u64`
//! value and the one `f64` field as its IEEE-754 bit pattern — so a
//! resumed grid compares equal (`==`) to an uninterrupted one.
//!
//! File layout (hand-rolled flat JSON; this workspace has no serde):
//!
//! ```text
//! {"cmpsim_journal":1,"fingerprint":"1a2b3c..."}
//! {"workload":"apsi","variant":"pf+compr","seed":11,"cycles":...,...}
//! ...
//! ```
//!
//! The fingerprint hashes the base [`SystemConfig`] and [`SimLength`] —
//! deliberately *not* the workload or variant lists, so a journal from a
//! partial sweep is reusable by a larger sweep over the same
//! configuration. A journal whose fingerprint does not match is
//! discarded (the sweep would silently mix incompatible results
//! otherwise); a malformed cell line is skipped, which only means that
//! cell re-runs.

use crate::config::{SystemConfig, Variant};
use crate::experiment::SimLength;
use crate::stats::{LevelStats, RunResult, SimStats};
use std::collections::HashMap;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Journal format version (bump on any encoding change; old files are
/// then discarded via the fingerprint line).
///
/// v2: added the simulator-throughput fields (`events`, `retired`,
/// `host_nanos`) to each cell line.
const VERSION: u64 = 2;

/// One completed cell read back from a journal. `workload` is owned
/// because the file outlives any `&'static` workload table.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// Workload name.
    pub workload: String,
    /// Configuration variant.
    pub variant: Variant,
    /// Seed the cell ran with.
    pub seed: u64,
    /// The journaled result, bit-identical to the original run.
    pub result: RunResult,
}

/// An append-only checkpoint journal bound to one sweep fingerprint.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    fingerprint: u64,
}

impl Journal {
    /// Binds a journal file to a sweep fingerprint (see [`fingerprint`]).
    /// Nothing is touched on disk until [`load_or_reset`](Self::load_or_reset)
    /// or [`append`](Self::append).
    pub fn new(path: impl Into<PathBuf>, fingerprint: u64) -> Self {
        Journal { path: path.into(), fingerprint }
    }

    /// The journal's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Reads back every decodable cell from an existing journal.
    ///
    /// A missing file yields an empty list. A file whose header is absent
    /// or carries a different fingerprint is **discarded** (deleted) and
    /// yields an empty list — resuming it under this sweep would mix
    /// results from a different configuration. Malformed cell lines are
    /// skipped individually.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than the file not existing.
    pub fn load_or_reset(&self) -> io::Result<Vec<JournalEntry>> {
        let text = match fs::read_to_string(&self.path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut lines = text.lines();
        let header_ok = lines
            .next()
            .and_then(parse_flat)
            .map(|kvs| {
                let map: HashMap<_, _> = kvs.into_iter().collect();
                map.get("cmpsim_journal") == Some(&JsonVal::Num(VERSION))
                    && map.get("fingerprint")
                        == Some(&JsonVal::Str(format!("{:016x}", self.fingerprint)))
            })
            .unwrap_or(false);
        if !header_ok {
            fs::remove_file(&self.path)?;
            return Ok(Vec::new());
        }
        Ok(lines.filter_map(decode_entry).collect())
    }

    /// Appends one completed cell, creating the file (with its header)
    /// on first use. Each call is one `write_all` of one line, so a kill
    /// between calls loses at most the in-flight cell.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn append(&self, entry: &JournalEntry) -> io::Result<()> {
        if let Some(dir) = self.path.parent() {
            fs::create_dir_all(dir)?;
        }
        let mut f = fs::OpenOptions::new().create(true).append(true).open(&self.path)?;
        if f.metadata()?.len() == 0 {
            writeln!(
                f,
                "{{\"cmpsim_journal\":{VERSION},\"fingerprint\":\"{:016x}\"}}",
                self.fingerprint
            )?;
        }
        let mut line = encode_entry(entry);
        line.push('\n');
        f.write_all(line.as_bytes())
    }
}

/// Hashes the sweep-defining inputs (base configuration + simulation
/// length) into the journal fingerprint. Uses FNV-1a over the config's
/// `Debug` rendering: any config field change — including new fields —
/// invalidates old journals, which is exactly the safe direction.
pub fn fingerprint(base: &SystemConfig, len: SimLength) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{base:?}|{}|{}", len.warmup, len.measure).bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Default journal directory: `CMPSIM_GRID_DIR`, else
/// `$CARGO_TARGET_DIR/grid`, else the nearest enclosing `target/`
/// directory, else `./target/grid`.
pub fn default_journal_dir() -> PathBuf {
    if let Ok(d) = std::env::var("CMPSIM_GRID_DIR") {
        return PathBuf::from(d);
    }
    if let Ok(d) = std::env::var("CARGO_TARGET_DIR") {
        return PathBuf::from(d).join("grid");
    }
    let mut cur = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let cand = cur.join("target");
        if cand.is_dir() {
            return cand.join("grid");
        }
        if !cur.pop() {
            return PathBuf::from("target/grid");
        }
    }
}

// ------------------------------------------------------------- encoding

/// Per-level counter names, shared by the encoder and decoder so the two
/// cannot skew (`journal_roundtrip_is_bit_exact` fills every field with a
/// distinct value to catch an omission here).
const LEVEL_FIELDS: [&str; 7] = [
    "accesses",
    "hits",
    "demand_misses",
    "prefetch_hits",
    "prefetches_issued",
    "prefetch_fills",
    "useless_prefetch_evictions",
];

fn level_get(l: &LevelStats, field: &str) -> u64 {
    match field {
        "accesses" => l.accesses,
        "hits" => l.hits,
        "demand_misses" => l.demand_misses,
        "prefetch_hits" => l.prefetch_hits,
        "prefetches_issued" => l.prefetches_issued,
        "prefetch_fills" => l.prefetch_fills,
        "useless_prefetch_evictions" => l.useless_prefetch_evictions,
        _ => unreachable!("unknown level field {field}"),
    }
}

fn level_set(l: &mut LevelStats, field: &str, v: u64) {
    match field {
        "accesses" => l.accesses = v,
        "hits" => l.hits = v,
        "demand_misses" => l.demand_misses = v,
        "prefetch_hits" => l.prefetch_hits = v,
        "prefetches_issued" => l.prefetches_issued = v,
        "prefetch_fills" => l.prefetch_fills = v,
        "useless_prefetch_evictions" => l.useless_prefetch_evictions = v,
        _ => unreachable!("unknown level field {field}"),
    }
}

/// Every numeric field of a [`RunResult`] as flat `(dotted key, u64)`
/// pairs; the `f64` travels as its bit pattern under a `.bits` key.
fn numeric_fields(r: &RunResult) -> Vec<(String, u64)> {
    let s = &r.stats;
    let mut kv: Vec<(String, u64)> = vec![
        ("cycles".into(), r.cycles),
        ("clock_ghz".into(), u64::from(r.clock_ghz)),
        ("events".into(), r.events),
        ("retired".into(), r.retired),
        // Wall-clock of the original run; outside `PartialEq` but kept
        // so resumed sweeps can still report throughput.
        ("host_nanos".into(), r.host_nanos),
        ("stats.instructions".into(), s.instructions),
    ];
    for (name, l) in [("l1i", &s.l1i), ("l1d", &s.l1d), ("l2", &s.l2)] {
        for f in LEVEL_FIELDS {
            kv.push((format!("stats.{name}.{f}"), level_get(l, f)));
        }
    }
    kv.extend([
        ("stats.l2_compressed_hits".into(), s.l2_compressed_hits),
        ("stats.l2_hit_latency_sum".into(), s.l2_hit_latency_sum),
        ("stats.l2_hit_latency_count".into(), s.l2_hit_latency_count),
        ("stats.l2_victim_tag_hits".into(), s.l2_victim_tag_hits),
        ("stats.harmful_prefetch_detections".into(), s.harmful_prefetch_detections),
        ("stats.capacity_ratio_sum.bits".into(), s.capacity_ratio_sum.to_bits()),
        ("stats.capacity_ratio_samples".into(), s.capacity_ratio_samples),
        ("stats.link.total_bytes".into(), s.link.total_bytes),
        ("stats.link.data_bytes".into(), s.link.data_bytes),
        ("stats.link.prefetch_bytes".into(), s.link.prefetch_bytes),
        ("stats.link.messages".into(), s.link.messages),
        ("stats.link.queue_delay_cycles".into(), s.link.queue_delay_cycles),
        ("stats.link.busy_cycles".into(), s.link.busy_cycles),
        ("stats.mem_reads".into(), s.mem_reads),
        ("stats.mem_writes".into(), s.mem_writes),
        ("stats.coherence.invalidations".into(), s.coherence.invalidations),
        ("stats.coherence.recalls".into(), s.coherence.recalls),
        ("stats.coherence.upgrades".into(), s.coherence.upgrades),
        ("stats.coherence.inclusion_recalls".into(), s.coherence.inclusion_recalls),
        ("stats.dropped_prefetches".into(), s.dropped_prefetches),
    ]);
    kv
}

fn encode_entry(e: &JournalEntry) -> String {
    debug_assert!(
        !e.workload.contains(['"', '\\']),
        "workload names are plain identifiers"
    );
    let mut s = format!(
        "{{\"workload\":\"{}\",\"variant\":\"{}\",\"seed\":{}",
        e.workload,
        e.variant.label(),
        e.seed
    );
    for (k, v) in numeric_fields(&e.result) {
        s.push_str(&format!(",\"{k}\":{v}"));
    }
    s.push('}');
    s
}

fn decode_entry(line: &str) -> Option<JournalEntry> {
    let map: HashMap<String, JsonVal> = parse_flat(line)?.into_iter().collect();
    let str_of = |k: &str| match map.get(k) {
        Some(JsonVal::Str(s)) => Some(s.clone()),
        _ => None,
    };
    let num_of = |k: &str| match map.get(k) {
        Some(JsonVal::Num(n)) => Some(*n),
        _ => None,
    };
    let workload = str_of("workload")?;
    let label = str_of("variant")?;
    let variant = *Variant::all().iter().find(|v| v.label() == label)?;
    let seed = num_of("seed")?;

    let mut r = RunResult {
        stats: SimStats::default(),
        cycles: num_of("cycles")?,
        clock_ghz: u32::try_from(num_of("clock_ghz")?).ok()?,
        events: num_of("events")?,
        retired: num_of("retired")?,
        host_nanos: num_of("host_nanos")?,
    };
    let s = &mut r.stats;
    s.instructions = num_of("stats.instructions")?;
    for (name, l) in
        [("l1i", &mut s.l1i), ("l1d", &mut s.l1d), ("l2", &mut s.l2)]
    {
        for f in LEVEL_FIELDS {
            level_set(l, f, num_of(&format!("stats.{name}.{f}"))?);
        }
    }
    s.l2_compressed_hits = num_of("stats.l2_compressed_hits")?;
    s.l2_hit_latency_sum = num_of("stats.l2_hit_latency_sum")?;
    s.l2_hit_latency_count = num_of("stats.l2_hit_latency_count")?;
    s.l2_victim_tag_hits = num_of("stats.l2_victim_tag_hits")?;
    s.harmful_prefetch_detections = num_of("stats.harmful_prefetch_detections")?;
    s.capacity_ratio_sum = f64::from_bits(num_of("stats.capacity_ratio_sum.bits")?);
    s.capacity_ratio_samples = num_of("stats.capacity_ratio_samples")?;
    s.link.total_bytes = num_of("stats.link.total_bytes")?;
    s.link.data_bytes = num_of("stats.link.data_bytes")?;
    s.link.prefetch_bytes = num_of("stats.link.prefetch_bytes")?;
    s.link.messages = num_of("stats.link.messages")?;
    s.link.queue_delay_cycles = num_of("stats.link.queue_delay_cycles")?;
    s.link.busy_cycles = num_of("stats.link.busy_cycles")?;
    s.mem_reads = num_of("stats.mem_reads")?;
    s.mem_writes = num_of("stats.mem_writes")?;
    s.coherence.invalidations = num_of("stats.coherence.invalidations")?;
    s.coherence.recalls = num_of("stats.coherence.recalls")?;
    s.coherence.upgrades = num_of("stats.coherence.upgrades")?;
    s.coherence.inclusion_recalls = num_of("stats.coherence.inclusion_recalls")?;
    s.dropped_prefetches = num_of("stats.dropped_prefetches")?;
    Some(JournalEntry { workload, variant, seed, result: r })
}

// -------------------------------------------------------------- parsing

/// The two value shapes this journal emits.
#[derive(Debug, Clone, PartialEq)]
enum JsonVal {
    Str(String),
    Num(u64),
}

/// Parses one flat JSON object of string/u64 values (the only shape the
/// encoder produces: no nesting, no escapes, no floats). Returns `None`
/// on anything else.
fn parse_flat(line: &str) -> Option<Vec<(String, JsonVal)>> {
    let mut out = Vec::new();
    let bytes = line.trim().as_bytes();
    let mut i = 0usize;
    let eat = |i: &mut usize, b: u8| -> Option<()> {
        if bytes.get(*i) == Some(&b) {
            *i += 1;
            Some(())
        } else {
            None
        }
    };
    let string = |i: &mut usize| -> Option<String> {
        eat(i, b'"')?;
        let start = *i;
        while *i < bytes.len() && bytes[*i] != b'"' {
            if bytes[*i] == b'\\' {
                return None; // the encoder never escapes
            }
            *i += 1;
        }
        let s = std::str::from_utf8(&bytes[start..*i]).ok()?.to_string();
        eat(i, b'"')?;
        Some(s)
    };
    let number = |i: &mut usize| -> Option<u64> {
        let start = *i;
        while *i < bytes.len() && bytes[*i].is_ascii_digit() {
            *i += 1;
        }
        std::str::from_utf8(&bytes[start..*i]).ok()?.parse().ok()
    };

    eat(&mut i, b'{')?;
    if bytes.get(i) == Some(&b'}') {
        return (i + 1 == bytes.len()).then_some(out);
    }
    loop {
        let key = string(&mut i)?;
        eat(&mut i, b':')?;
        let val = if bytes.get(i) == Some(&b'"') {
            JsonVal::Str(string(&mut i)?)
        } else {
            JsonVal::Num(number(&mut i)?)
        };
        out.push((key, val));
        match bytes.get(i) {
            Some(b',') => i += 1,
            Some(b'}') => break,
            _ => return None,
        }
    }
    (i + 1 == bytes.len()).then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A result with a distinct value in every field, so a round-trip
    /// detects any encoder/decoder omission or swap.
    fn distinct_result() -> RunResult {
        let mut r = RunResult {
            stats: SimStats::default(),
            cycles: 1,
            clock_ghz: 2,
            events: 101,
            retired: 102,
            host_nanos: 103,
        };
        let mut next = 3u64;
        let mut n = || {
            next += 1;
            next
        };
        let s = &mut r.stats;
        s.instructions = n();
        for l in [&mut s.l1i, &mut s.l1d, &mut s.l2] {
            for f in LEVEL_FIELDS {
                level_set(l, f, n());
            }
        }
        s.l2_compressed_hits = n();
        s.l2_hit_latency_sum = n();
        s.l2_hit_latency_count = n();
        s.l2_victim_tag_hits = n();
        s.harmful_prefetch_detections = n();
        s.capacity_ratio_sum = 0.1 + 0.2; // not exactly representable: bit test
        s.capacity_ratio_samples = n();
        s.link.total_bytes = n();
        s.link.data_bytes = n();
        s.link.prefetch_bytes = n();
        s.link.messages = n();
        s.link.queue_delay_cycles = n();
        s.link.busy_cycles = n();
        s.mem_reads = n();
        s.mem_writes = n();
        s.coherence.invalidations = n();
        s.coherence.recalls = n();
        s.coherence.upgrades = n();
        s.coherence.inclusion_recalls = n();
        s.dropped_prefetches = n();
        r
    }

    #[test]
    fn journal_roundtrip_is_bit_exact() {
        let e = JournalEntry {
            workload: "apsi".into(),
            variant: Variant::AdaptivePrefetchCompression,
            seed: 47,
            result: distinct_result(),
        };
        let line = encode_entry(&e);
        let back = decode_entry(&line).expect("decodes");
        assert_eq!(back, e);
        assert_eq!(
            back.result.stats.capacity_ratio_sum.to_bits(),
            e.result.stats.capacity_ratio_sum.to_bits()
        );
        // `==` ignores wall-clock by design, so check it separately.
        assert_eq!(back.result.host_nanos, e.result.host_nanos);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(decode_entry("").is_none());
        assert!(decode_entry("{").is_none());
        assert!(decode_entry("{\"workload\":\"apsi\"}").is_none());
        assert!(decode_entry("not json at all").is_none());
        let good = encode_entry(&JournalEntry {
            workload: "w".into(),
            variant: Variant::Base,
            seed: 1,
            result: distinct_result(),
        });
        assert!(decode_entry(&good[..good.len() - 5]).is_none(), "truncation detected");
    }

    #[test]
    fn fingerprint_distinguishes_configs_and_lengths() {
        let a = SystemConfig::paper_default(2);
        let b = SystemConfig::paper_default(4);
        let l1 = SimLength { warmup: 10, measure: 20 };
        let l2 = SimLength { warmup: 10, measure: 21 };
        assert_ne!(fingerprint(&a, l1), fingerprint(&b, l1));
        assert_ne!(fingerprint(&a, l1), fingerprint(&a, l2));
        assert_eq!(fingerprint(&a, l1), fingerprint(&a.clone(), l1));
    }

    #[test]
    fn load_append_and_mismatch_reset() {
        let dir = std::env::temp_dir().join(format!(
            "cmpsim-journal-test-{}-{}",
            std::process::id(),
            std::thread::current().name().unwrap_or("t").len()
        ));
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("grid.jsonl");

        let j = Journal::new(&path, 0xdead);
        assert_eq!(j.load_or_reset().unwrap(), vec![], "missing file is empty");

        let e = JournalEntry {
            workload: "apsi".into(),
            variant: Variant::Prefetch,
            seed: 11,
            result: distinct_result(),
        };
        j.append(&e).unwrap();
        j.append(&JournalEntry { workload: "mgrid".into(), ..e.clone() }).unwrap();
        let back = j.load_or_reset().unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0], e);
        assert_eq!(back[1].workload, "mgrid");

        // A journal written under another fingerprint is discarded.
        let other = Journal::new(&path, 0xbeef);
        assert_eq!(other.load_or_reset().unwrap(), vec![]);
        assert!(!path.exists(), "mismatched journal is deleted");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_line_skips_only_that_cell() {
        let dir = std::env::temp_dir().join(format!(
            "cmpsim-journal-trunc-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("grid.jsonl");
        let j = Journal::new(&path, 7);
        let e = JournalEntry {
            workload: "apsi".into(),
            variant: Variant::Base,
            seed: 1,
            result: distinct_result(),
        };
        j.append(&e).unwrap();
        // Simulate a kill mid-write of the second cell.
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("{\"workload\":\"mgr");
        fs::write(&path, text).unwrap();
        let back = j.load_or_reset().unwrap();
        assert_eq!(back, vec![e]);
        let _ = fs::remove_dir_all(&dir);
    }
}
