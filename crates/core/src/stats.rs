//! Simulation counters and derived metrics.

use cmpsim_link::ChannelStats;

/// Demand/prefetch counters for one cache level (aggregated over cores
/// for the L1s; the L2 is already shared).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Demand accesses (loads, stores or fetches reaching this level).
    pub accesses: u64,
    /// Demand accesses that hit resident data.
    pub hits: u64,
    /// Demand accesses that missed (including partial hits on in-flight
    /// prefetches, per the paper's EQ 3 definition).
    pub demand_misses: u64,
    /// First demand touches of prefetched lines — the paper's
    /// *prefetch hits* (EQ 3/4 numerator).
    pub prefetch_hits: u64,
    /// Prefetches injected into the hierarchy at this level (after MSHR /
    /// duplicate filtering) — EQ 2/4 denominator.
    pub prefetches_issued: u64,
    /// Prefetch fills that landed in the cache.
    pub prefetch_fills: u64,
    /// Prefetched lines evicted before any demand touch (useless).
    pub useless_prefetch_evictions: u64,
}

impl LevelStats {
    /// EQ 2: prefetches per 1000 instructions.
    pub fn prefetch_rate(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.prefetches_issued as f64 * 1000.0 / instructions as f64
        }
    }

    /// EQ 3: `PrefetchHits / (PrefetchHits + DemandMisses)`, in percent.
    pub fn coverage_pct(&self) -> f64 {
        let denom = self.prefetch_hits + self.demand_misses;
        if denom == 0 {
            0.0
        } else {
            self.prefetch_hits as f64 / denom as f64 * 100.0
        }
    }

    /// EQ 4: `PrefetchHits / TotalPrefetches`, in percent.
    pub fn accuracy_pct(&self) -> f64 {
        if self.prefetches_issued == 0 {
            0.0
        } else {
            self.prefetch_hits as f64 / self.prefetches_issued as f64 * 100.0
        }
    }

    /// Demand miss ratio (misses / accesses), in percent.
    pub fn miss_ratio_pct(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.demand_misses as f64 / self.accesses as f64 * 100.0
        }
    }

    /// Misses per 1000 instructions.
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.demand_misses as f64 * 1000.0 / instructions as f64
        }
    }
}

/// Coherence activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoherenceStats {
    /// S-copies invalidated by exclusivity requests.
    pub invalidations: u64,
    /// Dirty M-copies recalled from L1s.
    pub recalls: u64,
    /// Store hits on Shared lines that required an upgrade round trip.
    pub upgrades: u64,
    /// L1 copies invalidated to maintain inclusion on L2 evictions.
    pub inclusion_recalls: u64,
}

/// Every counter one simulation accumulates during measurement.
///
/// `PartialEq` compares every counter exactly (the two `f64` fields are
/// sums of exact per-sample values, so equal runs produce equal bits);
/// the determinism tests rely on this to assert that serial and parallel
/// grid drivers produce identical results.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Instructions retired across all cores during measurement.
    pub instructions: u64,
    /// L1 instruction caches (all cores).
    pub l1i: LevelStats,
    /// L1 data caches (all cores).
    pub l1d: LevelStats,
    /// Shared L2.
    pub l2: LevelStats,
    /// L2 demand hits served from compressed lines (paid decompression).
    pub l2_compressed_hits: u64,
    /// Sum of L2 hit latencies (for the §5.3 average-hit-latency result).
    pub l2_hit_latency_sum: u64,
    /// L2 hits behind `l2_hit_latency_sum`.
    pub l2_hit_latency_count: u64,
    /// L2 misses that matched a dataless victim tag.
    pub l2_victim_tag_hits: u64,
    /// Harmful-prefetch detections (§3 cache-miss rule firings).
    pub harmful_prefetch_detections: u64,
    /// Sum and count of periodic effective-capacity-ratio samples
    /// (Table 3's compression ratio).
    pub capacity_ratio_sum: f64,
    /// Number of capacity samples.
    pub capacity_ratio_samples: u64,
    /// Off-chip link counters.
    pub link: ChannelStats,
    /// Memory reads served.
    pub mem_reads: u64,
    /// Dirty L2 lines written back to memory.
    pub mem_writes: u64,
    /// Coherence activity.
    pub coherence: CoherenceStats,
    /// Prefetches dropped for MSHR pressure or duplication.
    pub dropped_prefetches: u64,
    /// Fault-injection and recovery activity (all zero unless a
    /// `CMPSIM_CHAOS` plan is armed).
    pub faults: FaultStats,
}

/// Counters for the deterministic chaos engine: injections per site and
/// the graceful-degradation machinery they exercised. Deterministic for
/// a given `CMPSIM_CHAOS` seed — these participate in `RunResult`
/// equality, so the determinism suites cover fault schedules too.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Codec bit-flips injected into resident compressed L2 lines.
    pub codec_faults_injected: u64,
    /// Injections caught by the per-line checksum (provably all of them;
    /// counted from the actual comparison, not assumed).
    pub codec_faults_detected: u64,
    /// Corrupt-line recoveries: invalidate + refetch round trips.
    pub fault_recoveries: u64,
    /// Lines pinned to uncompressed storage after repeated faults.
    pub lines_quarantined: u64,
    /// Link messages lost or corrupted in transit.
    pub link_faults_injected: u64,
    /// NACK-triggered retransmits the link faults forced.
    pub link_retransmits: u64,
    /// Memory-controller stall bursts applied to responses.
    pub mem_stall_bursts: u64,
    /// Total extra cycles those stall bursts added.
    pub mem_stall_cycles: u64,
    /// Directory probe messages lost on-chip.
    pub dir_messages_lost: u64,
    /// Probe deliveries that needed at least one retry.
    pub dir_retries: u64,
}

impl SimStats {
    /// Mean sampled compression ratio (1.0 when never sampled, i.e. the
    /// uncompressed L2).
    pub fn compression_ratio(&self) -> f64 {
        if self.capacity_ratio_samples == 0 {
            1.0
        } else {
            self.capacity_ratio_sum / self.capacity_ratio_samples as f64
        }
    }

    /// Mean L2 hit latency in cycles (§5.3).
    pub fn avg_l2_hit_latency(&self) -> f64 {
        if self.l2_hit_latency_count == 0 {
            0.0
        } else {
            self.l2_hit_latency_sum as f64 / self.l2_hit_latency_count as f64
        }
    }
}

/// One cycle-sampled telemetry row: an instantaneous snapshot of the
/// counters the paper's time-resolved analyses need (effective L2
/// capacity, compression ratio, link utilization, MSHR pressure,
/// per-core IPC).
///
/// Samples live *outside* [`SimStats`] / [`RunResult`] on purpose: they
/// are measurement artifacts, not model outputs, so they participate in
/// neither result equality nor the grid digest. The engine buffers them
/// in memory and writes them as one JSONL artifact per run (see
/// DESIGN.md §10).
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySample {
    /// Simulated cycle the sample was taken at.
    pub t: u64,
    /// Instantaneous L2 effective-capacity ratio (1.0 when uncompressed).
    pub l2_capacity_ratio: f64,
    /// Running mean compression ratio over the measured samples so far.
    pub compression_ratio: f64,
    /// Link busy cycles as a percentage of lane-cycles elapsed since the
    /// last stats reset (two lanes).
    pub link_utilization_pct: f64,
    /// Cumulative link bytes since the last stats reset.
    pub link_total_bytes: u64,
    /// Core-side MSHR entries currently allocated (all cores).
    pub core_mshr_entries: u64,
    /// L2 fetches currently in flight to memory.
    pub l2_fetches_in_flight: u64,
    /// Engine events dispatched so far (whole run).
    pub events: u64,
    /// Instructions retired so far (whole run, all cores).
    pub retired: u64,
    /// Per-core cumulative IPC (instructions / local cycles).
    pub core_ipc: Vec<f64>,
}

impl TelemetrySample {
    /// Renders the sample as one flat JSON object (no trailing newline),
    /// the row format of `target/telemetry/*.jsonl` artifacts.
    pub fn to_json_line(&self) -> String {
        let f = |v: f64| {
            if v.is_finite() {
                format!("{v}")
            } else {
                "null".to_string()
            }
        };
        let ipcs: Vec<String> = self.core_ipc.iter().map(|&v| f(v)).collect();
        format!(
            "{{\"t\":{},\"l2_capacity_ratio\":{},\"compression_ratio\":{},\
             \"link_utilization_pct\":{},\"link_total_bytes\":{},\
             \"core_mshr_entries\":{},\"l2_fetches_in_flight\":{},\
             \"events\":{},\"retired\":{},\"core_ipc\":[{}]}}",
            self.t,
            f(self.l2_capacity_ratio),
            f(self.compression_ratio),
            f(self.link_utilization_pct),
            self.link_total_bytes,
            self.core_mshr_entries,
            self.l2_fetches_in_flight,
            self.events,
            self.retired,
            ipcs.join(",")
        )
    }
}

/// The outcome of one measured simulation.
///
/// Alongside the model outputs (counters, cycles), a result carries the
/// *simulator's own* throughput figures: how many discrete events the
/// engine dispatched and how long the run took on the host. `events` is
/// a deterministic model-side count (two runs with the same seed
/// dispatch identical event sequences); `host_nanos` is wall-clock and
/// therefore varies run to run, so [`PartialEq`] deliberately ignores
/// it — the grid determinism and kill/resume suites compare results
/// with `==` and must not be perturbed by timing noise.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Counters accumulated during the measurement phase.
    pub stats: SimStats,
    /// Cycles from measurement start to the last core finishing its
    /// instruction quota — the paper's runtime metric.
    pub cycles: u64,
    /// Core clock in GHz (to convert traffic to GB/s).
    pub clock_ghz: u32,
    /// Events the engine dispatched over the whole run (warmup +
    /// measurement). Deterministic for a fixed seed.
    pub events: u64,
    /// Instructions retired over the whole run (warmup + measurement).
    /// Deterministic for a fixed seed.
    pub retired: u64,
    /// Host wall-clock nanoseconds the run took. **Not** part of
    /// equality; see the type docs.
    pub host_nanos: u64,
}

impl PartialEq for RunResult {
    /// Compares every deterministic field and ignores `host_nanos`
    /// (wall-clock), keeping serial/parallel and fresh/resumed grids
    /// bit-comparable.
    fn eq(&self, other: &Self) -> bool {
        self.stats == other.stats
            && self.cycles == other.cycles
            && self.clock_ghz == other.clock_ghz
            && self.events == other.events
            && self.retired == other.retired
    }
}

impl RunResult {
    /// Aggregate instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.stats.instructions as f64 / self.cycles as f64
        }
    }

    /// Off-chip traffic in GB/s over the measured window (EQ 1's demand
    /// when run with an infinite link).
    pub fn bandwidth_gbps(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.stats.link.total_bytes as f64 / self.cycles as f64
                * f64::from(self.clock_ghz)
        }
    }

    /// Runtime in cycles (lower is better; speedups divide these).
    pub fn runtime(&self) -> u64 {
        self.cycles
    }

    /// Simulator throughput: engine events dispatched per host second
    /// (0.0 when the run recorded no wall-clock).
    pub fn events_per_sec(&self) -> f64 {
        if self.host_nanos == 0 {
            0.0
        } else {
            self.events as f64 * 1e9 / self.host_nanos as f64
        }
    }

    /// Simulator throughput: committed (retired) instructions per host
    /// microsecond — "committed MIPS" (0.0 when the run recorded no
    /// wall-clock).
    pub fn committed_mips(&self) -> f64 {
        if self.host_nanos == 0 {
            0.0
        } else {
            self.retired as f64 * 1e3 / self.host_nanos as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_metrics() {
        let l = LevelStats {
            accesses: 1000,
            hits: 900,
            demand_misses: 100,
            prefetch_hits: 100,
            prefetches_issued: 200,
            ..Default::default()
        };
        assert!((l.coverage_pct() - 50.0).abs() < 1e-9);
        assert!((l.accuracy_pct() - 50.0).abs() < 1e-9);
        assert!((l.miss_ratio_pct() - 10.0).abs() < 1e-9);
        assert!((l.prefetch_rate(100_000) - 2.0).abs() < 1e-9);
        assert!((l.mpki(100_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_denominators_are_safe() {
        let l = LevelStats::default();
        assert_eq!(l.coverage_pct(), 0.0);
        assert_eq!(l.accuracy_pct(), 0.0);
        assert_eq!(l.miss_ratio_pct(), 0.0);
        assert_eq!(l.prefetch_rate(0), 0.0);
    }

    #[test]
    fn run_result_metrics() {
        let mut stats = SimStats { instructions: 5_000_000, ..Default::default() };
        stats.link.total_bytes = 4_000_000;
        let r = RunResult {
            stats,
            cycles: 1_000_000,
            clock_ghz: 5,
            events: 3_000_000,
            retired: 6_000_000,
            host_nanos: 2_000_000_000,
        };
        assert!((r.ipc() - 5.0).abs() < 1e-9);
        assert!((r.bandwidth_gbps() - 20.0).abs() < 1e-9);
        assert!((r.events_per_sec() - 1_500_000.0).abs() < 1e-6);
        assert!((r.committed_mips() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn equality_ignores_host_wall_clock() {
        let a = RunResult {
            stats: SimStats::default(),
            cycles: 10,
            clock_ghz: 5,
            events: 7,
            retired: 9,
            host_nanos: 111,
        };
        let mut b = a.clone();
        b.host_nanos = 999_999;
        assert_eq!(a, b, "wall-clock must not break bit-comparability");
        b.events = 8;
        assert_ne!(a, b, "deterministic fields must still compare");
    }

    #[test]
    fn zero_wall_clock_throughput_is_safe() {
        let r = RunResult {
            stats: SimStats::default(),
            cycles: 0,
            clock_ghz: 5,
            events: 0,
            retired: 0,
            host_nanos: 0,
        };
        assert_eq!(r.events_per_sec(), 0.0);
        assert_eq!(r.committed_mips(), 0.0);
    }

    #[test]
    fn compression_ratio_defaults_to_one() {
        let s = SimStats::default();
        assert_eq!(s.compression_ratio(), 1.0);
    }

    #[test]
    fn telemetry_sample_renders_flat_json() {
        let s = TelemetrySample {
            t: 50_000,
            l2_capacity_ratio: 1.5,
            compression_ratio: 1.25,
            link_utilization_pct: 12.5,
            link_total_bytes: 4096,
            core_mshr_entries: 7,
            l2_fetches_in_flight: 3,
            events: 123,
            retired: 456,
            core_ipc: vec![0.5, 2.0],
        };
        let line = s.to_json_line();
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"t\":50000"), "{line}");
        assert!(line.contains("\"l2_capacity_ratio\":1.5"), "{line}");
        assert!(line.contains("\"core_ipc\":[0.5,2]"), "{line}");
        assert!(!line.contains('\n'));
        // Non-finite values degrade to null instead of invalid JSON.
        let nan = TelemetrySample { link_utilization_pct: f64::NAN, ..s };
        assert!(nan.to_json_line().contains("\"link_utilization_pct\":null"));
    }
}
