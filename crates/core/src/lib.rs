//! The CMP simulator: the paper's evaluation platform, rebuilt.
//!
//! `cmpsim-core` wires the substrates (FPC compression, the decoupled
//! variable-segment L2, MSI coherence, the off-chip link, the memory
//! controller, the stride prefetchers and the synthetic workloads) into a
//! discrete-event timing simulator of the paper's 8-core CMP (Table 1):
//!
//! - eight 4-wide cores with 128-entry ROB run-ahead, 16 outstanding
//!   misses each, private 64 KB 4-way L1I/L1D (3-cycle),
//! - a shared 4 MB 8-banked L2 (15-cycle hit, +5 decompression),
//!   inclusive, MSI with sharer bits in the L2 tags,
//! - a 20 GB/s off-chip link (8-byte flits, optional link compression)
//!   to 400-cycle DRAM,
//! - per-core L1I/L1D/L2 stride prefetchers with the paper's adaptive
//!   throttle (§3).
//!
//! Entry points: build a [`SystemConfig`], pick a workload from
//! `cmpsim_trace`, and call [`System::run`]; or use the [`experiment`]
//! helpers that package the paper's configuration grid (base /
//! compression / prefetching / both) and compute speedups and
//! interaction terms (EQ 5).
//!
//! # Examples
//!
//! ```no_run
//! use cmpsim_core::{SystemConfig, System};
//! use cmpsim_trace::workload;
//!
//! let cfg = SystemConfig::paper_default(8);
//! let spec = workload("zeus").expect("known workload");
//! let mut sys = System::new(cfg, &spec);
//! let result = sys.run(200_000, 1_000_000).expect("simulation failed");
//! println!("IPC {:.2}", result.ipc());
//! ```
//!
//! Runs are supervised: [`System::run`] returns `Err(`[`SimError`]`)` if
//! the forward-progress watchdog detects a livelock or (with
//! `CMPSIM_CHECK=1`) a sampled structural invariant fails, and the
//! [`experiment`] grid drivers either propagate that ([`experiment::
//! run_grid_serial`]) or degrade it to a per-cell
//! [`CellError`] while the rest of the sweep completes
//! ([`experiment::run_grid_resilient`]).

mod config;
mod core_model;
pub mod error;
pub mod experiment;
pub mod flatjson;
pub mod journal;
pub mod metrics;
pub mod report;
pub mod seallog;
mod stats;
pub mod store;
mod system;
pub mod telemetry;

pub use cmpsim_fpc::CodecKind;
pub use cmpsim_harness::chaos::{FaultPlan, FaultSite};
pub use config::{PrefetchMode, SystemConfig, Variant};
pub use error::{CellError, SimError};
pub use stats::{FaultStats, LevelStats, RunResult, SimStats, TelemetrySample};
pub use store::{CellKey, Lease, ResultStore, StoreStats};
pub use system::System;
pub use telemetry::{TraceKind, TraceOptions};
