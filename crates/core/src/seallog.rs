//! Crash-safe sealed JSONL artifact logs — the access-log/metrics
//! counterpart of the store's on-disk discipline.
//!
//! A [`SealedLog`] is an append-only JSONL file whose header is written
//! through a tempfile + atomic rename (exactly like store/journal
//! headers, so no reader ever observes a half-written header) and whose
//! records are flat-JSON lines sealed with the framing's FNV-1a-32
//! `crc` ([`flatjson::seal`]), each appended as a single `write_all`.
//! A writer killed mid-append therefore leaves at most one torn tail
//! line, which [`read`] detects and drops — it can never leave a torn
//! *artifact* that parses into wrong records.
//!
//! The serve daemon writes its structured access log through this
//! (`--access-log` / `CMPSIM_ACCESS_LOG`), and `tests/metrics.rs` pins
//! the recovery contract by re-reading the log after a simulated kill
//! at every byte offset.

use crate::flatjson::{self, JsonVal};
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Log format version, written into every header.
pub const LOG_VERSION: u64 = 1;

fn header_line() -> String {
    format!("{{\"cmpsim_log\":{LOG_VERSION}}}\n")
}

/// Whether `line` is a valid header for this log version.
fn is_header(line: &str) -> bool {
    flatjson::parse_flat(line)
        .map(|kvs| {
            kvs.iter().any(|(k, v)| k == "cmpsim_log" && v.as_u64() == Some(LOG_VERSION))
        })
        .unwrap_or(false)
}

/// Append-only writer for a sealed JSONL artifact log.
#[derive(Debug)]
pub struct SealedLog {
    path: PathBuf,
    file: fs::File,
}

impl SealedLog {
    /// Opens the log at `path`, creating it (header via tempfile +
    /// atomic rename) when missing. An existing file whose first line is
    /// not a valid header is rotated aside as `<path>.stale` — never
    /// deleted, mirroring the journal's stale policy — and a fresh log
    /// is started.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<SealedLog> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let valid = match fs::read_to_string(&path) {
            Ok(text) => text.lines().next().map(is_header).unwrap_or(false),
            Err(_) => false,
        };
        if !valid {
            if path.exists() {
                let mut aside = path.as_os_str().to_os_string();
                aside.push(".stale");
                let _ = fs::rename(&path, PathBuf::from(aside));
            }
            // Header through a sibling tempfile and an atomic rename: a
            // kill here leaves either no log or a complete header.
            let mut tmp = path.as_os_str().to_os_string();
            tmp.push(".tmp");
            let tmp = PathBuf::from(tmp);
            fs::write(&tmp, header_line())?;
            fs::rename(&tmp, &path)?;
        }
        let file = fs::OpenOptions::new().append(true).open(&path)?;
        Ok(SealedLog { path, file })
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Seals and appends one record. `open_body` is a flat-JSON object
    /// body without its closing brace (the [`flatjson::seal`] contract),
    /// e.g. `{"conn":1,"req":2,"status":"ok"`. The sealed line goes out
    /// in one `write_all`, so a kill leaves at most a torn tail that
    /// [`read`] drops.
    ///
    /// # Errors
    ///
    /// Propagates the write error.
    pub fn append(&mut self, open_body: String) -> io::Result<()> {
        let mut line = flatjson::seal(open_body);
        line.push('\n');
        self.file.write_all(line.as_bytes())
    }
}

/// What [`read`] recovered from a sealed log.
#[derive(Debug, Default)]
pub struct LogContents {
    /// Every intact record, in append order, as parsed flat-JSON fields.
    pub records: Vec<Vec<(String, JsonVal)>>,
    /// Whether the file ended in an unterminated (torn) line — the
    /// signature of a writer killed mid-append. The torn line is
    /// dropped, not parsed.
    pub torn_tail: bool,
    /// Complete lines dropped for a failed seal or unparseable body
    /// (in-place corruption, not a torn tail).
    pub skipped: usize,
}

/// Reads a sealed log back, dropping the torn tail a killed writer may
/// have left and any record whose seal fails. The header line is
/// validated and not returned as a record.
///
/// # Errors
///
/// Propagates the file read; a missing or invalid *header* is reported
/// as `InvalidData` (the file is not a sealed log).
pub fn read(path: &Path) -> io::Result<LogContents> {
    let text = fs::read_to_string(path)?;
    let mut out = LogContents::default();
    let mut saw_header = false;
    for chunk in text.split_inclusive('\n') {
        if !chunk.ends_with('\n') {
            out.torn_tail = true;
            break;
        }
        let line = chunk.trim_end_matches('\n');
        if !saw_header {
            if !is_header(line) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{} is not a sealed log (bad header)", path.display()),
                ));
            }
            saw_header = true;
            continue;
        }
        match flatjson::check_seal(line) {
            Ok(body) => match flatjson::parse_flat(&format!("{body}}}")) {
                Some(kvs) => out.records.push(kvs),
                None => out.skipped += 1,
            },
            Err(_) => out.skipped += 1,
        }
    }
    if !saw_header {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{} is not a sealed log (no header)", path.display()),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_log(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cmpsim-seallog-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir.join("log.jsonl")
    }

    fn field(rec: &[(String, JsonVal)], key: &str) -> Option<JsonVal> {
        rec.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone())
    }

    #[test]
    fn append_then_read_roundtrips() {
        let path = temp_log("roundtrip");
        {
            let mut log = SealedLog::open(&path).unwrap();
            log.append("{\"req\":1,\"status\":\"ok\"".to_string()).unwrap();
            log.append("{\"req\":2,\"status\":\"err\"".to_string()).unwrap();
        }
        // Reopen appends (same header, no rotation).
        {
            let mut log = SealedLog::open(&path).unwrap();
            log.append("{\"req\":3,\"status\":\"ok\"".to_string()).unwrap();
        }
        let got = read(&path).unwrap();
        assert_eq!(got.records.len(), 3);
        assert!(!got.torn_tail);
        assert_eq!(got.skipped, 0);
        assert_eq!(field(&got.records[2], "req").unwrap().as_u64(), Some(3));
        assert_eq!(
            field(&got.records[1], "status").unwrap().as_str(),
            Some("err")
        );
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn kill_at_every_byte_offset_recovers_a_clean_prefix() {
        // The regression the tempfile+rename + sealed-append discipline
        // exists for: simulate a writer killed after every possible byte
        // of the file and require the reader to recover an intact prefix
        // — never an error, never a half-parsed record.
        let path = temp_log("kill");
        {
            let mut log = SealedLog::open(&path).unwrap();
            for i in 0..4u64 {
                log.append(format!("{{\"req\":{i},\"elapsed_us\":{}", 100 + i)).unwrap();
            }
        }
        let full = fs::read(&path).unwrap();
        let header_len = header_line().len();
        let cut_path = path.with_extension("cut");
        for cut in header_len..=full.len() {
            fs::write(&cut_path, &full[..cut]).unwrap();
            let got = read(&cut_path).unwrap_or_else(|e| panic!("cut at {cut}: {e}"));
            assert_eq!(got.skipped, 0, "cut at {cut}: a torn tail must not count as corrupt");
            assert_eq!(got.torn_tail, cut < full.len() && !full[..cut].ends_with(b"\n"));
            // Every recovered record is one of the originals, in order.
            for (i, rec) in got.records.iter().enumerate() {
                assert_eq!(field(rec, "req").unwrap().as_u64(), Some(i as u64));
            }
        }
        // Cut inside the header: the file is not (yet) a sealed log.
        for cut in 0..header_len {
            fs::write(&cut_path, &full[..cut]).unwrap();
            assert!(read(&cut_path).is_err(), "cut at {cut} inside header must not parse");
        }
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn inplace_corruption_is_skipped_not_served() {
        let path = temp_log("corrupt");
        {
            let mut log = SealedLog::open(&path).unwrap();
            log.append("{\"req\":1,\"cells\":32".to_string()).unwrap();
            log.append("{\"req\":2,\"cells\":32".to_string()).unwrap();
        }
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, text.replacen("\"req\":1,\"cells\":32", "\"req\":1,\"cells\":99", 1))
            .unwrap();
        let got = read(&path).unwrap();
        assert_eq!(got.skipped, 1, "flipped record fails its seal");
        assert_eq!(got.records.len(), 1);
        assert_eq!(field(&got.records[0], "req").unwrap().as_u64(), Some(2));
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn foreign_file_is_rotated_aside() {
        let path = temp_log("foreign");
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, "not a log\n").unwrap();
        let mut log = SealedLog::open(&path).unwrap();
        log.append("{\"req\":1".to_string()).unwrap();
        assert_eq!(read(&path).unwrap().records.len(), 1);
        let stale = {
            let mut s = path.as_os_str().to_os_string();
            s.push(".stale");
            PathBuf::from(s)
        };
        assert_eq!(fs::read_to_string(stale).unwrap(), "not a log\n", "preserved, not deleted");
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }
}
