//! The discrete-event CMP simulator.

mod engine;
mod l2;

pub use engine::System;

