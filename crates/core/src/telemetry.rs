//! Engine-side observability: the simulator's event taxonomy over the
//! harness flight recorder, trace configuration, and record rendering.
//!
//! The harness's [`FlightRecorder`] stores domain-free packed
//! [`Record`]s; this module assigns their meaning for the CMP engine
//! (which unit, which [`TraceKind`], what the flag bits say) and renders
//! them back into human-readable lines for livelock dumps and artifact
//! inspection.
//!
//! Determinism: nothing here is consulted by simulation logic. The
//! engine writes records and samples *from* its state; it never reads
//! them back, so a traced run and an untraced run compute bit-identical
//! [`crate::RunResult`]s (asserted by `tests/telemetry.rs`).

use cmpsim_harness::telemetry::{self, FlightRecorder, Record, SeriesBuffer};
use std::path::PathBuf;

/// Default flight-recorder capacity (`CMPSIM_TRACE_RING` overrides).
pub const DEFAULT_RING_CAPACITY: usize = 65_536;
/// Default cycles between series samples (`CMPSIM_TRACE_SAMPLE`
/// overrides).
pub const DEFAULT_SAMPLE_PERIOD: u64 = 50_000;
/// Events a [`crate::SimError::Livelock`] carries from the recorder.
pub const LIVELOCK_EVENT_WINDOW: usize = 32;

/// The engine's event taxonomy, packed into [`Record::kind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceKind {
    /// A core retired a batch of instructions (`arg` = count,
    /// `time` = the core's local cycle after the batch).
    Retire = 0,
    /// A core step ended in a stall (`flags` = wait code: 0 ready,
    /// 1 ifetch, 2 load, 3 rob, 4 mshr, 5 done; `addr` = blocking line).
    Stall = 1,
    /// An L1 demand miss (`flags`: bit0 = data side, bit1 = store,
    /// bit2 = merged into an in-flight MSHR).
    L1Miss = 2,
    /// An L2 demand hit (`flags`: bit0 = compressed line, bit1 = first
    /// touch of a prefetched line).
    L2Hit = 3,
    /// An L2 demand miss (`flags`: bit0 = matched a dataless victim tag).
    L2Miss = 4,
    /// A coherence transition applied to an L1 (`unit` = target core,
    /// `flags` = 0 invalidate, 1 recall-downgrade, 2 recall-invalidate,
    /// 3 upgrade).
    Coherence = 5,
    /// A message scheduled on the off-chip link (`flags` = 0 request,
    /// 1 data response, 2 writeback; `arg` = message bytes).
    LinkFlit = 6,
    /// A prefetch injected into the hierarchy (`flags` = 0 L1I, 1 L1D,
    /// 2 L2).
    PrefetchIssue = 7,
    /// A prefetched line landed in a cache (`flags` as issue).
    PrefetchFill = 8,
    /// An adaptive throttle moved (`flags`: bits 0–1 = throttle 0 L1I,
    /// 1 L1D, 2 L2; bit 2 = up; `arg` = new degree).
    AdaptiveMove = 9,
    /// A dirty line written back to memory (`arg` = stored segments).
    MemWrite = 10,
    /// A chaos-engine fault injected or recovered from (`flags` = the
    /// `FaultSite` discriminant, +8 when the record marks a recovery
    /// action rather than the injection; `arg` = attempt count, strike
    /// count, or extra stall cycles depending on the site).
    Fault = 11,
}

impl TraceKind {
    /// Short label used in rendered records.
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::Retire => "retire",
            TraceKind::Stall => "stall",
            TraceKind::L1Miss => "l1-miss",
            TraceKind::L2Hit => "l2-hit",
            TraceKind::L2Miss => "l2-miss",
            TraceKind::Coherence => "coherence",
            TraceKind::LinkFlit => "link",
            TraceKind::PrefetchIssue => "pf-issue",
            TraceKind::PrefetchFill => "pf-fill",
            TraceKind::AdaptiveMove => "adaptive",
            TraceKind::MemWrite => "mem-write",
            TraceKind::Fault => "fault",
        }
    }

    /// Decodes a [`Record::kind`] discriminant.
    pub fn from_u8(v: u8) -> Option<TraceKind> {
        Some(match v {
            0 => TraceKind::Retire,
            1 => TraceKind::Stall,
            2 => TraceKind::L1Miss,
            3 => TraceKind::L2Hit,
            4 => TraceKind::L2Miss,
            5 => TraceKind::Coherence,
            6 => TraceKind::LinkFlit,
            7 => TraceKind::PrefetchIssue,
            8 => TraceKind::PrefetchFill,
            9 => TraceKind::AdaptiveMove,
            10 => TraceKind::MemWrite,
            11 => TraceKind::Fault,
            _ => return None,
        })
    }
}

/// Names of the prefetch levels / throttles as packed in `flags`.
const LEVELS: [&str; 3] = ["l1i", "l1d", "l2"];

/// Renders one flight-recorder record as a human-readable line.
pub fn render_record(r: &Record) -> String {
    let Some(kind) = TraceKind::from_u8(r.kind) else {
        return format!("cycle {}: unknown kind {}", r.time, r.kind);
    };
    let head = format!("cycle {} core{} {}", r.time, r.unit, kind.label());
    match kind {
        TraceKind::Retire => format!("{head} x{}", r.arg),
        TraceKind::Stall => {
            let why = match r.flags {
                0 => "ready".to_string(),
                1 => format!("ifetch 0x{:x}", r.addr),
                2 => format!("load 0x{:x}", r.addr),
                3 => "rob".to_string(),
                4 => "mshr-full".to_string(),
                5 => "done".to_string(),
                f => format!("wait?{f}"),
            };
            format!("{head} {why}")
        }
        TraceKind::L1Miss => format!(
            "{head} {}{}{} 0x{:x}",
            if r.flags & 1 != 0 { "d" } else { "i" },
            if r.flags & 2 != 0 { " store" } else { "" },
            if r.flags & 4 != 0 { " merged" } else { "" },
            r.addr
        ),
        TraceKind::L2Hit => format!(
            "{head} 0x{:x}{}{}",
            r.addr,
            if r.flags & 1 != 0 { " compressed" } else { "" },
            if r.flags & 2 != 0 { " pf-first-touch" } else { "" },
        ),
        TraceKind::L2Miss => format!(
            "{head} 0x{:x}{}",
            r.addr,
            if r.flags & 1 != 0 { " victim-tag" } else { "" },
        ),
        TraceKind::Coherence => {
            let what = match r.flags {
                0 => "invalidate",
                1 => "recall-downgrade",
                2 => "recall-invalidate",
                3 => "upgrade",
                _ => "probe",
            };
            format!("{head} {what} 0x{:x}", r.addr)
        }
        TraceKind::LinkFlit => {
            let what = match r.flags {
                0 => "request",
                1 => "data",
                _ => "writeback",
            };
            format!("{head} {what} 0x{:x} {}B", r.addr, r.arg)
        }
        TraceKind::PrefetchIssue | TraceKind::PrefetchFill => format!(
            "{head} {} 0x{:x}",
            LEVELS.get(usize::from(r.flags & 3)).unwrap_or(&"?"),
            r.addr
        ),
        TraceKind::AdaptiveMove => format!(
            "{head} {} {} -> degree {}",
            LEVELS.get(usize::from(r.flags & 3)).unwrap_or(&"?"),
            if r.flags & 4 != 0 { "up" } else { "down" },
            r.arg
        ),
        TraceKind::MemWrite => format!("{head} 0x{:x} {} segs", r.addr, r.arg),
        TraceKind::Fault => {
            let site = match r.flags & 7 {
                1 => "codec-line",
                2 => "link-request",
                3 => "link-data",
                4 => "mem-stall",
                5 => "dir-message",
                _ => "site?",
            };
            let phase = if r.flags & 8 != 0 { "recover" } else { "inject" };
            format!("{head} {phase} {site} 0x{:x} arg={}", r.addr, r.arg)
        }
    }
}

/// Configuration for one system's trace instrumentation.
#[derive(Debug, Clone)]
pub struct TraceOptions {
    /// Flight-recorder capacity in records.
    pub ring_capacity: usize,
    /// Cycles between series samples.
    pub sample_period: u64,
    /// Where series artifacts are written; `None` keeps everything
    /// in memory (tests, livelock forensics).
    pub out_dir: Option<PathBuf>,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions {
            ring_capacity: DEFAULT_RING_CAPACITY,
            sample_period: DEFAULT_SAMPLE_PERIOD,
            out_dir: Some(telemetry::telemetry_dir()),
        }
    }
}

impl TraceOptions {
    /// `Some(options)` when `CMPSIM_TRACE` enables tracing, applying the
    /// `CMPSIM_TRACE_RING` / `CMPSIM_TRACE_SAMPLE` overrides; `None`
    /// otherwise. The enable bit is cached process-wide
    /// ([`telemetry::trace_enabled`]), so the per-run cost of the
    /// disabled path is this one `None`.
    pub fn from_env() -> Option<TraceOptions> {
        if !telemetry::trace_enabled() {
            return None;
        }
        let mut o = TraceOptions::default();
        if let Some(cap) = env_u64("CMPSIM_TRACE_RING") {
            o.ring_capacity = cap.clamp(16, 1 << 24) as usize;
        }
        if let Some(p) = env_u64("CMPSIM_TRACE_SAMPLE") {
            o.sample_period = p.max(1);
        }
        Some(o)
    }

    /// Returns a copy that keeps artifacts in memory only.
    pub fn in_memory(mut self) -> Self {
        self.out_dir = None;
        self
    }
}

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok()?.parse().ok()
}

/// Live trace state owned by a running `System`. Boxed behind an
/// `Option` so the untraced engine carries one pointer-sized `None` and
/// every instrumentation site is a single branch.
#[derive(Debug)]
pub(crate) struct EngineTrace {
    pub recorder: FlightRecorder,
    pub series: SeriesBuffer,
    pub sample_period: u64,
    /// Next cycle at or after which a sample is due (`u64::MAX` disables
    /// sampling, e.g. for the watchdog's emergency recorder).
    pub next_sample: u64,
    pub out_dir: Option<PathBuf>,
    /// Whether this trace was armed by the livelock watchdog rather than
    /// configuration (recorder only, no artifacts).
    pub emergency: bool,
}

impl EngineTrace {
    pub fn new(opts: &TraceOptions) -> Self {
        EngineTrace {
            recorder: FlightRecorder::new(opts.ring_capacity),
            series: SeriesBuffer::new(),
            sample_period: opts.sample_period,
            next_sample: 0,
            out_dir: opts.out_dir.clone(),
            emergency: false,
        }
    }

    /// A recorder-only trace the watchdog arms when a run stops making
    /// progress with tracing disabled, so the eventual
    /// [`crate::SimError::Livelock`] still carries an event window.
    pub fn emergency() -> Self {
        EngineTrace {
            recorder: FlightRecorder::new(512),
            series: SeriesBuffer::new(),
            sample_period: u64::MAX,
            next_sample: u64::MAX,
            out_dir: None,
            emergency: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_round_trip() {
        for k in 0..=11u8 {
            let kind = TraceKind::from_u8(k).expect("taxonomy covers 0..=11");
            assert_eq!(kind as u8, k);
            assert!(!kind.label().is_empty());
        }
        assert_eq!(TraceKind::from_u8(99), None);
    }

    #[test]
    fn render_is_stable_and_informative() {
        let r = Record {
            time: 1234,
            addr: 0x2a,
            kind: TraceKind::L1Miss as u8,
            unit: 3,
            flags: 0b011,
            arg: 0,
        };
        let s = render_record(&r);
        assert!(s.contains("cycle 1234"), "{s}");
        assert!(s.contains("core3"), "{s}");
        assert!(s.contains("l1-miss"), "{s}");
        assert!(s.contains("d store"), "{s}");
        assert!(s.contains("0x2a"), "{s}");

        let up = Record {
            time: 9,
            addr: 0,
            kind: TraceKind::AdaptiveMove as u8,
            unit: 0,
            flags: 0b110, // l2, up
            arg: 17,
        };
        let s = render_record(&up);
        assert!(s.contains("l2 up -> degree 17"), "{s}");

        let unknown = Record { kind: 200, ..Record::default() };
        assert!(render_record(&unknown).contains("unknown kind 200"));
    }

    #[test]
    fn options_default_and_in_memory() {
        let o = TraceOptions::default();
        assert_eq!(o.ring_capacity, DEFAULT_RING_CAPACITY);
        assert_eq!(o.sample_period, DEFAULT_SAMPLE_PERIOD);
        assert!(o.out_dir.is_some());
        assert!(o.in_memory().out_dir.is_none());
    }

    #[test]
    fn emergency_trace_never_samples_or_writes() {
        let t = EngineTrace::emergency();
        assert!(t.emergency);
        assert_eq!(t.next_sample, u64::MAX);
        assert!(t.out_dir.is_none());
    }
}
