//! The event-driven simulation engine.
//!
//! A single binary-heap event queue drives five event kinds:
//! core execution steps, L2 accesses, off-chip request launches, memory
//! responses, and L1 fills. Cores batch privately between L1 misses (all
//! L1-hit work is core-local), so events exist only where components
//! interact — L2 banks, the link, memory, and coherence.
//!
//! Timing approximation: a core may run a few tens of cycles ahead of
//! global event time (bounded by its 128-instruction ROB run-ahead), so
//! link-ordering skew is bounded by the same window; see DESIGN.md.

use crate::config::{PrefetchMode, SystemConfig};
use crate::core_model::{Core, Wait};
use crate::error::SimError;
use crate::stats::{RunResult, SimStats, TelemetrySample};
use crate::system::l2::{EvictedL2, L2Cache};
use crate::telemetry::{render_record, EngineTrace, TraceKind, TraceOptions, LIVELOCK_EVENT_WINDOW};
use cmpsim_cache::{
    AccessKind, BlockAddr, CompressionDecision, CompressionPolicy, SetAssocCache, SetAssocConfig,
};
use cmpsim_coherence::{deliver_with_retries, CoreId, DirAction, DirEntry, L1Request, MsiState};
use cmpsim_harness::chaos::{FaultPlan, FaultSite};
use cmpsim_harness::fastmap::{AddrMap, MemoCache};
use cmpsim_harness::telemetry::{self as harness_telemetry, FlightRecorder, Record};
use cmpsim_link::{Channel, Message};
use cmpsim_mem::MemoryController;
use cmpsim_prefetch::{PrefetchThrottle, PrefetcherConfig, StridePrefetcher};
use cmpsim_trace::{CoreGenerator, TraceEvent, WorkloadSpec};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::time::Instant;

/// Sample the effective capacity ratio every this many demand L2 accesses.
const CAPACITY_SAMPLE_PERIOD: u64 = 4096;
/// Bound on the per-core queue of L2 prefetches awaiting MSHR slots.
const PF_QUEUE_LIMIT: usize = 64;
/// L2 bank busy time per access (pipelined banks).
const BANK_OCCUPANCY: u64 = 2;
/// With invariant checking on, run the full structural sweep every this
/// many dispatched events (checks are linear in the L2, so sampling keeps
/// the overhead to a few percent).
const INVARIANT_SAMPLE_PERIOD: u64 = 2048;
/// Slots in the FPC segment-size memo. Direct-mapped and capacity-capped:
/// a colliding line evicts the previous resident and a later miss just
/// recomputes, so long runs keep a fixed footprint instead of growing one
/// entry per distinct block address touched (64 Ki slots cover a 4 MB L2
/// with headroom for link-only traffic).
const SEG_MEMO_SLOTS: usize = 1 << 16;
/// Bits of the packed heap key holding the event-pool slot index. The
/// remaining low bits of the key's lower word (64 − SLOT_BITS = 42) hold
/// the schedule sequence number; see [`System::schedule`].
const SLOT_BITS: u32 = 22;
/// Detected-corruption strikes before a line is quarantined to
/// uncompressed storage (chaos runs only).
const QUARANTINE_STRIKES: u8 = 3;
/// Delivery attempts (1 original + retransmits) before a faulted link
/// transfer aborts the run with [`SimError::FaultBudgetExhausted`].
const MAX_LINK_ATTEMPTS: u8 = 4;
/// Delivery attempts per directory probe before the same abort.
const MAX_DIR_ATTEMPTS: u32 = 4;

/// Which private L1 a request belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum L1Kind {
    I,
    D,
}

/// Who initiated an L2 access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Origin {
    /// A demand miss from an L1.
    Demand,
    /// An L1 prefetcher's request.
    L1Prefetch,
    /// An L2 prefetcher's request (fills L2 only).
    L2Prefetch,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    CoreStep { core: u8 },
    L2Access { core: u8, addr: BlockAddr, store: bool, upgrade: bool, origin: Origin, l1: L1Kind },
    LinkRequest { addr: BlockAddr, attempt: u8 },
    MemResponse { addr: BlockAddr, attempt: u8 },
    L2Fill { addr: BlockAddr },
    L1Fill { core: u8, l1: L1Kind, addr: BlockAddr, prefetched: bool, store: bool },
}

/// An in-flight request from one core's L1s (demand or L1 prefetch).
#[derive(Debug)]
struct CoreMshr {
    l1: L1Kind,
    prefetched: bool,
    store: bool,
    load_seqs: Vec<u64>,
}

/// A consumer of an in-flight L2 memory fetch.
#[derive(Debug, Clone, Copy)]
struct Waiter {
    core: u8,
    l1: L1Kind,
    store: bool,
    prefetched: bool,
}

/// An in-flight L2 miss being fetched from memory.
#[derive(Debug)]
struct L2Mshr {
    waiters: Vec<Waiter>,
    /// Core whose MSHR budget a prefetch-only fetch occupies.
    prefetch_core: Option<u8>,
}

/// The assembled CMP system.
///
/// Construct with [`System::new`] and execute with [`System::run`].
#[derive(Debug)]
pub struct System {
    cfg: SystemConfig,
    values: cmpsim_trace::ValueProfile,
    seg_cache: MemoCache<u8>,
    /// Segments an uncompressed line occupies under `cfg.codec` (the
    /// "all 8 flits / 8 segments" constant of the FPC-only engine).
    codec_max: u8,
    /// The configured codec's sizing function, resolved once from
    /// [`CodecKind::segments_fn`] at construction so the hot path is a
    /// direct indirect call with no per-line enum dispatch.
    codec_segments: fn(&[u8; cmpsim_fpc::LINE_BYTES]) -> u8,
    /// The configured codec's compress → fast-decode round trip, resolved
    /// once from [`CodecKind::image_fn`]: every site that must
    /// *materialize* the bytes a compressed line stores or delivers
    /// (chaos integrity checks, corrupted-delivery verification, the
    /// sampled round-trip invariant) goes through this pointer, so line
    /// reconstruction always rides the dispatch-table/SWAR decoders.
    codec_image: fn(&[u8; cmpsim_fpc::LINE_BYTES]) -> [u8; cmpsim_fpc::LINE_BYTES],
    /// Decompression penalty (cycles) under the configured codec's
    /// latency model, applied to compressed L2 hits and fills.
    codec_decomp: u64,

    now: u64,
    seq: u64,
    /// Min-heap of packed event keys: `time << 64 | seq << SLOT_BITS |
    /// slot`. One `u128` compare orders by `(time, seq)` — `seq` is
    /// unique, so the slot bits never decide — and keeps heap entries at
    /// 16 bytes for sift locality.
    queue: BinaryHeap<Reverse<u128>>,
    /// Slab of scheduled events, indexed by the heap's third tuple field.
    /// Slots are recycled through `free_slots` once dispatched, so the
    /// slab's high-water mark tracks the *outstanding* event count, not
    /// the total ever scheduled. Heap order is `(time, seq)` — `seq` is
    /// unique and monotonic, so the slot index never participates in
    /// ordering and recycling cannot perturb determinism.
    event_pool: Vec<Event>,
    free_slots: Vec<usize>,

    /// Boxed so `step_core`'s take/put-back (a borrow-splitting dance)
    /// moves one pointer, not the core's whole embedded trace generator.
    cores: Vec<Option<Box<Core>>>,
    l1i: Vec<SetAssocCache<MsiState>>,
    l1d: Vec<SetAssocCache<MsiState>>,
    core_mshrs: Vec<AddrMap<CoreMshr>>,

    l2: L2Cache,
    bank_free: Vec<u64>,
    l2_mshrs: AddrMap<L2Mshr>,
    link: Channel,
    mem: MemoryController,

    pf_l1i: Vec<StridePrefetcher>,
    pf_l1d: Vec<StridePrefetcher>,
    pf_l2: Vec<StridePrefetcher>,
    th_l1i: Vec<PrefetchThrottle>,
    th_l1d: Vec<PrefetchThrottle>,
    th_l2: PrefetchThrottle,
    pf_queue: Vec<VecDeque<BlockAddr>>,

    policy: CompressionPolicy,

    stats: SimStats,
    l2_demand_accesses: u64,

    dispatched: u64,
    last_progress_now: u64,
    last_progress_insts: u64,

    warmup_per_core: u64,
    measure_per_core: u64,
    warm_flags: Vec<bool>,
    warmed: usize,
    measure_started: bool,
    measure_start: u64,
    finished: usize,

    /// Workload name, kept for telemetry artifact naming.
    workload: &'static str,
    /// Flight recorder + series sampler; `None` when tracing is off, so
    /// every instrumentation site is one branch on this option. Trace
    /// state is written from simulation state and never read back —
    /// results are bit-identical with tracing on or off.
    trace: Option<Box<EngineTrace>>,
    /// Mirror of `trace.next_sample` (`u64::MAX` when tracing is off or
    /// recorder-only), so the event loop's sample check is one compare
    /// against a hot field instead of a pointer chase per event.
    next_sample: u64,
    /// Whether the watchdog already armed its emergency recorder.
    emergency_armed: bool,
    /// Whether this run's series artifact has been written.
    telemetry_flushed: bool,

    /// Armed fault-injection plan (`CMPSIM_CHAOS`), or `None` (the
    /// default). Every injection site is one branch on this option, and
    /// every decision is a pure function of `(seed, site, cycle, addr)`,
    /// so disarmed runs are bit-identical to builds without chaos and
    /// armed runs replay bit-identically from the seed.
    chaos: Option<FaultPlan>,
    /// Detected-corruption strikes per block address; at
    /// [`QUARANTINE_STRIKES`] the line is quarantined to uncompressed
    /// storage.
    fault_strikes: HashMap<u64, u8>,
    /// Lines pinned to uncompressed storage after repeated corruption.
    quarantined_lines: HashSet<u64>,
    /// Fault-budget exhaustion raised inside an event handler; the run
    /// loop surfaces it as the run's error after the handler returns.
    pending_fault_error: Option<SimError>,
}

impl System {
    /// Assembles a system for `cfg` running `spec` on every core.
    pub fn new(cfg: SystemConfig, spec: &WorkloadSpec) -> Self {
        cfg.validate();
        spec.validate();
        let n = usize::from(cfg.cores);
        let trace = TraceOptions::from_env().map(|o| Box::new(EngineTrace::new(&o)));
        let next_sample = trace.as_ref().map_or(u64::MAX, |t| t.next_sample);
        let l1_cfg = SetAssocConfig::with_capacity(cfg.l1_bytes, cfg.l1_ways);
        let values = spec.value_profile(cfg.seed);
        let cores = (0..cfg.cores)
            .map(|c| Some(Box::new(Core::new(c, CoreGenerator::new(spec, c, cfg.seed)))))
            .collect();
        // Resolve the codec once: geometry, sizing fn, and latency model
        // become plain fields so the event loop never matches on the kind.
        let codec_max = cfg.codec.max_segments();
        let codec_segments = cfg.codec.segments_fn();
        let codec_image = cfg.codec.image_fn();
        let codec_decomp = cfg.codec.decompression_latency(cfg.decompression_latency);
        let mut sys = System {
            values,
            seg_cache: MemoCache::new(SEG_MEMO_SLOTS),
            codec_max,
            codec_segments,
            codec_image,
            codec_decomp,
            now: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            event_pool: Vec::new(),
            free_slots: Vec::new(),
            cores,
            l1i: (0..n).map(|_| SetAssocCache::new(l1_cfg)).collect(),
            l1d: (0..n).map(|_| SetAssocCache::new(l1_cfg)).collect(),
            core_mshrs: (0..n).map(|_| AddrMap::with_capacity(cfg.mshrs_per_core * 2)).collect(),
            l2: L2Cache::new(cfg.l2_bytes, cfg.uses_vsc(), codec_max),
            bank_free: vec![0; cfg.l2_banks],
            l2_mshrs: AddrMap::with_capacity(64),
            link: Channel::new(cfg.link, cfg.clock_ghz),
            mem: MemoryController::with_line_segments(cfg.mem_latency, codec_max),
            pf_l1i: (0..n).map(|_| StridePrefetcher::new(PrefetcherConfig::l1())).collect(),
            pf_l1d: (0..n).map(|_| StridePrefetcher::new(PrefetcherConfig::l1())).collect(),
            pf_l2: (0..n)
                .map(|_| {
                    StridePrefetcher::new(PrefetcherConfig {
                        startup_prefetches: cfg.l2_prefetch_degree,
                        ..PrefetcherConfig::l2()
                    })
                })
                .collect(),
            th_l1i: (0..n)
                .map(|_| PrefetchThrottle::new(PrefetcherConfig::l1().startup_prefetches))
                .collect(),
            th_l1d: (0..n)
                .map(|_| PrefetchThrottle::new(PrefetcherConfig::l1().startup_prefetches))
                .collect(),
            th_l2: PrefetchThrottle::new(cfg.l2_prefetch_degree),
            pf_queue: (0..n).map(|_| VecDeque::new()).collect(),
            policy: CompressionPolicy::new(cfg.mem_latency as u32, codec_decomp as u32),
            stats: SimStats::default(),
            l2_demand_accesses: 0,
            dispatched: 0,
            last_progress_now: 0,
            last_progress_insts: 0,
            warmup_per_core: 0,
            measure_per_core: 0,
            warm_flags: vec![false; n],
            warmed: 0,
            measure_started: false,
            measure_start: 0,
            finished: 0,
            workload: spec.name,
            trace,
            next_sample,
            emergency_armed: false,
            telemetry_flushed: false,
            chaos: None,
            fault_strikes: HashMap::new(),
            quarantined_lines: HashSet::new(),
            pending_fault_error: None,
            cfg,
        };
        sys.set_chaos(FaultPlan::from_env());
        sys
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    // ------------------------------------------------------------ tracing

    /// Overrides the `CMPSIM_TRACE` environment decision for this system:
    /// `Some(opts)` arms the flight recorder and sampler, `None` disarms
    /// them. Tests use this instead of mutating the (process-global,
    /// cached) environment, which would race with parallel tests.
    pub fn set_tracing(&mut self, opts: Option<TraceOptions>) {
        self.trace = opts.map(|o| Box::new(EngineTrace::new(&o)));
        self.next_sample = self.trace.as_ref().map_or(u64::MAX, |t| t.next_sample);
        self.emergency_armed = false;
    }

    /// Overrides the `CMPSIM_CHAOS` environment decision for this system:
    /// `Some(plan)` arms seeded fault injection, `None` disarms it. Tests
    /// use this instead of mutating the process-global environment. Arming
    /// chaos with no trace configured also arms a recorder-only emergency
    /// trace, so a [`SimError::FaultBudgetExhausted`] abort always carries
    /// a flight-recorder tail.
    pub fn set_chaos(&mut self, plan: Option<FaultPlan>) {
        self.chaos = plan;
        if self.chaos.is_some() && self.trace.is_none() {
            self.trace = Some(Box::new(EngineTrace::emergency()));
            self.next_sample = u64::MAX;
        }
    }

    /// The armed fault plan, if any.
    pub fn chaos_plan(&self) -> Option<FaultPlan> {
        self.chaos
    }

    /// Whether a trace (configured or emergency) is currently armed.
    pub fn tracing_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// The flight recorder, when tracing is armed.
    pub fn flight_recorder(&self) -> Option<&FlightRecorder> {
        self.trace.as_ref().map(|t| &t.recorder)
    }

    /// Series rows sampled so far (for tests and in-memory consumers).
    pub fn telemetry_rows(&self) -> usize {
        self.trace.as_ref().map(|t| t.series.len()).unwrap_or(0)
    }

    /// Records one flight-recorder event at simulated time `time`.
    /// With tracing off this is a single branch on a cached option; the
    /// recording path is outlined as cold so the ~20 instrumentation
    /// sites cost the hot handlers a predictable not-taken branch, not
    /// inlined ring-buffer code.
    #[inline(always)]
    fn trace_at(&mut self, time: u64, kind: TraceKind, unit: u8, flags: u16, arg: u32, addr: u64) {
        if self.trace.is_some() {
            self.trace_at_cold(time, kind, unit, flags, arg, addr);
        }
    }

    #[cold]
    #[inline(never)]
    fn trace_at_cold(
        &mut self,
        time: u64,
        kind: TraceKind,
        unit: u8,
        flags: u16,
        arg: u32,
        addr: u64,
    ) {
        if let Some(t) = self.trace.as_deref_mut() {
            t.recorder.push(Record { time, addr, kind: kind as u8, unit, flags, arg });
        }
    }

    /// Records one flight-recorder event at the current event time.
    #[inline]
    fn trace_event(&mut self, kind: TraceKind, unit: u8, flags: u16, arg: u32, addr: u64) {
        self.trace_at(self.now, kind, unit, flags, arg, addr);
    }

    /// Takes one cycle-sampled telemetry row. Only called when tracing
    /// is armed and the sample is due; reads engine state, never mutates
    /// anything the simulation consults.
    #[cold]
    #[inline(never)]
    fn take_sample(&mut self) {
        let elapsed = self
            .now
            .saturating_sub(if self.measure_started { self.measure_start } else { 0 });
        let sample = TelemetrySample {
            t: self.now,
            l2_capacity_ratio: self.l2.capacity_ratio(),
            compression_ratio: self.stats.compression_ratio(),
            link_utilization_pct: self.link.utilization_pct(elapsed),
            link_total_bytes: self.link.stats().total_bytes,
            core_mshr_entries: self.core_mshrs.iter().map(|m| m.len() as u64).sum(),
            l2_fetches_in_flight: self.l2_mshrs.len() as u64,
            events: self.dispatched,
            retired: self.total_retired(),
            core_ipc: self
                .cores
                .iter()
                .map(|slot| {
                    slot.as_ref()
                        .map(|c| {
                            if c.cycle == 0 {
                                0.0
                            } else {
                                c.insts as f64 / c.cycle as f64
                            }
                        })
                        .unwrap_or(0.0)
                })
                .collect(),
        };
        if let Some(t) = self.trace.as_deref_mut() {
            t.series.push(sample.to_json_line());
            t.next_sample = self.now.saturating_add(t.sample_period);
            self.next_sample = t.next_sample;
        }
    }

    /// Writes the buffered series artifact (header + samples) to the
    /// trace's output directory, once per run. Failures are reported to
    /// stderr and never affect the simulation result.
    fn flush_telemetry(&mut self) {
        if self.telemetry_flushed {
            return;
        }
        let Some(t) = self.trace.as_deref() else { return };
        let Some(dir) = t.out_dir.clone() else { return };
        if t.series.is_empty() {
            return;
        }
        self.telemetry_flushed = true;
        let seq = harness_telemetry::next_artifact_seq();
        let path = dir.join(format!("{}-{seq}.jsonl", self.workload));
        let header = format!(
            "{{\"schema\":\"cmpsim-telemetry-v1\",\"workload\":{},\"cores\":{},\
             \"seed\":{},\"cache_compression\":{},\"link_compression\":{},\
             \"prefetch\":{},\"sample_period\":{},\"clock_ghz\":{},\
             \"ring_dropped\":{}}}",
            harness_telemetry::json_escape(self.workload),
            self.cfg.cores,
            self.cfg.seed,
            self.cfg.cache_compression,
            self.cfg.link_compression,
            harness_telemetry::json_escape(&format!("{:?}", self.cfg.prefetch)),
            t.sample_period,
            self.cfg.clock_ghz,
            t.recorder.dropped(),
        );
        let body = format!("{header}\n{}", t.series.to_jsonl());
        if let Err(e) = std::fs::create_dir_all(&dir)
            .and_then(|()| std::fs::write(&path, body))
        {
            eprintln!("cmpsim: telemetry write to {} failed: {e}", path.display());
        }
    }

    // ---------------------------------------------------------------- run

    /// Warms up for `warmup_per_core` instructions per core (stats
    /// frozen), then measures a fixed quota of `measure_per_core`
    /// instructions per core. Returns the measured counters and runtime.
    ///
    /// # Errors
    ///
    /// - [`SimError::Livelock`] if the forward-progress watchdog sees no
    ///   instruction retire for `cfg.livelock_cycle_budget` cycles, or if
    ///   the event queue drains with unfinished cores (a lost wakeup).
    ///   The error carries a diagnostic dump of per-core stall states,
    ///   in-flight fetches and link backlogs.
    /// - [`SimError::InvariantViolation`] if sampled structural checks
    ///   are enabled (`cfg.check_invariants` / `CMPSIM_CHECK=1`) and one
    ///   fails.
    pub fn run(
        &mut self,
        warmup_per_core: u64,
        measure_per_core: u64,
    ) -> Result<RunResult, SimError> {
        let result = self.run_inner(warmup_per_core, measure_per_core);
        // Series artifacts are flushed on success *and* failure: a
        // partial timeline of a livelocked run is exactly the forensic
        // record the trace exists for.
        self.flush_telemetry();
        result
    }

    fn run_inner(
        &mut self,
        warmup_per_core: u64,
        measure_per_core: u64,
    ) -> Result<RunResult, SimError> {
        assert!(measure_per_core > 0, "nothing to measure");
        let host_start = Instant::now();
        self.warmup_per_core = warmup_per_core;
        self.measure_per_core = measure_per_core;
        if warmup_per_core == 0 {
            self.measure_started = true;
            self.measure_start = 0;
            for c in self.cores.iter_mut().flatten() {
                c.quota = measure_per_core;
            }
        }
        for c in 0..self.cfg.cores {
            self.schedule(0, Event::CoreStep { core: c });
        }
        self.last_progress_now = self.now;
        self.last_progress_insts = self.total_retired();
        while let Some(Reverse(key)) = self.queue.pop() {
            if self.finished == usize::from(self.cfg.cores) {
                break;
            }
            let idx = (key as u64 & ((1 << SLOT_BITS) - 1)) as usize;
            self.now = (key >> 64) as u64;
            self.watchdog_tick()?;
            if self.now >= self.next_sample {
                self.take_sample();
            }
            let ev = self.event_pool[idx];
            // The slot is dead as soon as the event is read; recycle it
            // before dispatch so the handlers' own schedules can reuse it.
            self.free_slots.push(idx);
            self.dispatch(ev);
            self.dispatched += 1;
            if let Some(err) = self.pending_fault_error.take() {
                return Err(err);
            }
            if self.cfg.check_invariants && self.dispatched % INVARIANT_SAMPLE_PERIOD == 0 {
                self.check_invariants_now()?;
            }
        }
        if self.finished < usize::from(self.cfg.cores) {
            return Err(self.livelock_error(0));
        }
        if self.cfg.check_invariants {
            self.check_invariants_now()?;
        }
        let host_nanos = host_start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        Ok(self.collect(host_nanos))
    }

    /// Total instructions retired across all cores (warmup + measure).
    fn total_retired(&self) -> u64 {
        self.cores.iter().flatten().map(|c| c.insts).sum()
    }

    /// Forward-progress watchdog: every `livelock_cycle_budget` cycles of
    /// event time, at least one instruction must have retired somewhere.
    fn watchdog_tick(&mut self) -> Result<(), SimError> {
        let budget = self.cfg.livelock_cycle_budget;
        if budget == 0 || self.now.saturating_sub(self.last_progress_now) < budget {
            return Ok(());
        }
        let retired = self.total_retired();
        if retired == self.last_progress_insts {
            if self.trace.is_none() && !self.emergency_armed {
                // Tracing is off, so no events of the stalled window were
                // captured. Arm a recorder-only emergency trace and give
                // the watchdog one more quiet window: the run still fails
                // (nothing here feeds the simulation), but the eventual
                // error carries the final window of events.
                self.emergency_armed = true;
                self.trace = Some(Box::new(EngineTrace::emergency()));
                self.next_sample = u64::MAX; // recorder-only: never sample
                self.last_progress_now = self.now;
                return Ok(());
            }
            return Err(self.livelock_error(self.now - self.last_progress_now));
        }
        self.last_progress_insts = retired;
        self.last_progress_now = self.now;
        Ok(())
    }

    /// Builds the livelock diagnostic dump. `window == 0` means the event
    /// queue drained with unfinished cores rather than a quiet-window
    /// timeout.
    fn livelock_error(&self, window: u64) -> SimError {
        use std::fmt::Write as _;
        let mut d = String::new();
        if window == 0 {
            let _ = writeln!(
                d,
                "  event queue drained with {} of {} cores unfinished (lost wakeup)",
                usize::from(self.cfg.cores) - self.finished,
                self.cfg.cores
            );
        }
        for (i, slot) in self.cores.iter().enumerate() {
            if let Some(core) = slot {
                let _ = writeln!(
                    d,
                    "  core {i}: waiting={:?} retired={} outstanding={} mshr_entries={} pf_queue={}",
                    core.waiting,
                    core.insts,
                    core.outstanding,
                    self.core_mshrs[i].len(),
                    self.pf_queue[i].len()
                );
            }
        }
        let _ = writeln!(
            d,
            "  l2 fetches in flight: {} (resident lines: {})",
            self.l2_mshrs.len(),
            self.l2.valid_lines()
        );
        let _ = writeln!(
            d,
            "  link backlog [request, data] = {:?} cycles",
            self.link.lane_backlog(self.now)
        );
        let _ = write!(
            d,
            "  l2 bank busy (cycles past now): {:?}",
            self.bank_free.iter().map(|b| b.saturating_sub(self.now)).collect::<Vec<_>>()
        );
        // The flight recorder replaces the old bespoke in-flight walk:
        // the last events *are* the stalled window's history (who missed,
        // what the link carried, which throttles moved).
        let recent_events = match &self.trace {
            Some(t) => {
                if t.emergency {
                    let _ = write!(
                        d,
                        "\n  flight recorder: armed on demand after the first quiet window"
                    );
                }
                if t.recorder.dropped() > 0 {
                    let _ = write!(
                        d,
                        "\n  flight recorder: {} older events dropped (ring capacity {})",
                        t.recorder.dropped(),
                        t.recorder.capacity()
                    );
                }
                t.recorder
                    .last(LIVELOCK_EVENT_WINDOW)
                    .iter()
                    .map(render_record)
                    .collect()
            }
            None => Vec::new(),
        };
        SimError::Livelock { cycle: self.now, window, diagnostic: d, recent_events }
    }

    /// Raises a [`SimError::FaultBudgetExhausted`] with the recorder tail
    /// (chaos arming guarantees a recorder exists) for the run loop to
    /// surface after the current handler returns.
    fn raise_fault_budget(&mut self, site: &'static str, addr: u64, attempts: u32) {
        let recent_events = self
            .trace
            .as_ref()
            .map(|t| t.recorder.last(LIVELOCK_EVENT_WINDOW).iter().map(render_record).collect())
            .unwrap_or_default();
        self.pending_fault_error = Some(SimError::FaultBudgetExhausted {
            cycle: self.now,
            site,
            addr,
            attempts,
            recent_events,
        });
    }

    /// Full structural invariant sweep (sampled from `run`): VSC segment
    /// accounting, directory owner/sharer consistency, link flit
    /// conservation, and per-core MSHR budget accounting.
    fn check_invariants_now(&self) -> Result<(), SimError> {
        let at = |subsystem, detail| SimError::InvariantViolation {
            cycle: self.now,
            subsystem,
            detail,
        };
        self.l2.check_invariants().map_err(|e| at("l2", e))?;
        self.link.stats().check().map_err(|e| at("link", e))?;
        // Codec round-trip law, probed on a cycle-derived address: the
        // configured codec's fast decoder must reproduce the line the
        // sizing path charged for, and the size must stay in the segment
        // frame. Check-only — the probe reads the pure value model and
        // touches no simulation state.
        let probe = self.values.line_bytes(self.now ^ 0x9E37_79B9_7F4A_7C15);
        if (self.codec_image)(&probe) != probe {
            return Err(at(
                "codec",
                "compress → decompress round trip is not the identity".to_string(),
            ));
        }
        let seg = (self.codec_segments)(&probe);
        if seg == 0 || seg > self.codec_max {
            return Err(at(
                "codec",
                format!("sized probe line at {seg} segments, outside 1..={}", self.codec_max),
            ));
        }
        for (i, slot) in self.cores.iter().enumerate() {
            if let Some(core) = slot {
                if core.outstanding > self.cfg.mshrs_per_core {
                    return Err(at(
                        "core",
                        format!(
                            "core {i}: {} outstanding requests exceed {} MSHRs",
                            core.outstanding, self.cfg.mshrs_per_core
                        ),
                    ));
                }
                if self.core_mshrs[i].len() > core.outstanding {
                    return Err(at(
                        "core",
                        format!(
                            "core {i}: {} MSHR entries but only {} outstanding charges",
                            self.core_mshrs[i].len(),
                            core.outstanding
                        ),
                    ));
                }
            }
        }
        Ok(())
    }

    fn collect(&mut self, host_nanos: u64) -> RunResult {
        self.stats.link = *self.link.stats();
        self.stats.mem_reads = self.mem.stats().reads;
        self.stats.faults.mem_stall_bursts = self.mem.stats().stall_bursts;
        self.stats.faults.mem_stall_cycles = self.mem.stats().stall_cycles;
        let finish = self
            .cores
            .iter()
            .flatten()
            .map(|c| c.finished_at.unwrap_or(c.cycle))
            .max()
            .unwrap_or(self.now);
        RunResult {
            stats: self.stats.clone(),
            cycles: finish.saturating_sub(self.measure_start),
            clock_ghz: self.cfg.clock_ghz,
            events: self.dispatched,
            retired: self.total_retired(),
            host_nanos,
        }
    }

    fn schedule(&mut self, time: u64, ev: Event) {
        self.seq += 1;
        let idx = match self.free_slots.pop() {
            Some(slot) => {
                self.event_pool[slot] = ev;
                slot
            }
            None => {
                self.event_pool.push(ev);
                self.event_pool.len() - 1
            }
        };
        assert!(
            self.seq < 1 << (64 - SLOT_BITS) && idx < 1 << SLOT_BITS,
            "packed event key overflow"
        );
        self.queue.push(Reverse(
            (u128::from(time) << 64) | u128::from(self.seq << SLOT_BITS | idx as u64),
        ));
    }

    fn dispatch(&mut self, ev: Event) {
        match ev {
            Event::CoreStep { core } => self.step_core(usize::from(core)),
            Event::L2Access { core, addr, store, upgrade, origin, l1 } => {
                self.handle_l2_access(usize::from(core), addr, store, upgrade, origin, l1)
            }
            Event::LinkRequest { addr, attempt } => self.handle_link_request(addr, attempt),
            Event::MemResponse { addr, attempt } => self.handle_mem_response(addr, attempt),
            Event::L2Fill { addr } => self.handle_l2_fill(addr),
            Event::L1Fill { core, l1, addr, prefetched, store } => {
                self.handle_l1_fill(usize::from(core), l1, addr, prefetched, store)
            }
        }
    }

    // ------------------------------------------------------------ helpers

    /// Configured codec's segment count of a line's (deterministic)
    /// contents, memoized in a bounded direct-mapped cache (an eviction
    /// only costs the recompute; the value is a pure function of the
    /// address given the codec, which is fixed per system).
    fn segments_of(&mut self, addr: BlockAddr) -> u8 {
        let values = &self.values;
        let sizer = self.codec_segments;
        self.seg_cache
            .get_or_insert_with(addr.0, || sizer(&values.line_bytes(addr.0)))
    }

    /// Segments a data message for `addr` occupies on the link.
    fn link_segments(&mut self, addr: BlockAddr) -> u8 {
        if self.cfg.link_compression {
            self.segments_of(addr)
        } else {
            self.codec_max
        }
    }

    /// Segments `addr` occupies when stored in the L2. A line quarantined
    /// by the fault-recovery path (chaos runs only) is pinned to
    /// uncompressed storage regardless of policy.
    fn store_segments(&mut self, addr: BlockAddr) -> u8 {
        if self.chaos.is_some() && self.quarantined_lines.contains(&addr.0) {
            return self.codec_max;
        }
        if self.cfg.cache_compression {
            let compress = !self.cfg.adaptive_compression
                || self.policy.decision() == CompressionDecision::Compress;
            if compress {
                return self.segments_of(addr);
            }
        }
        self.codec_max
    }

    fn adaptive_pf(&self) -> bool {
        self.cfg.prefetch == PrefetchMode::Adaptive
    }

    fn l1_degree(&self, kind: L1Kind, core: usize) -> u8 {
        match self.cfg.prefetch {
            PrefetchMode::Off => 0,
            PrefetchMode::Stride => PrefetcherConfig::l1().startup_prefetches,
            PrefetchMode::Adaptive => match kind {
                L1Kind::I => self.th_l1i[core].degree(),
                L1Kind::D => self.th_l1d[core].degree(),
            },
        }
    }

    fn l2_degree(&self) -> u8 {
        match self.cfg.prefetch {
            PrefetchMode::Off => 0,
            PrefetchMode::Stride => self.cfg.l2_prefetch_degree,
            PrefetchMode::Adaptive => self.th_l2.degree(),
        }
    }

    fn div_ceil_width(&self, insts: u64) -> u64 {
        insts.div_ceil(self.cfg.issue_width)
    }

    // --------------------------------------------------------- core steps

    fn step_core(&mut self, c: usize) {
        let Some(mut core) = self.cores[c].take() else { return };
        if matches!(core.waiting, Wait::Done) {
            self.cores[c] = Some(core);
            return;
        }
        core.cycle = core.cycle.max(self.now);
        core.waiting = Wait::Ready;
        let insts_before = core.insts;

        loop {
            if core.insts >= core.quota {
                self.finish_core(&mut core);
                break;
            }
            let issuable = core.issuable(self.cfg.rob_size);
            if issuable == 0 {
                core.waiting = Wait::Rob;
                break;
            }
            let mut ev = core.next_event();
            if ev.gap > issuable {
                core.insts += issuable;
                core.cycle += self.div_ceil_width(issuable);
                if self.measure_started {
                    self.stats.instructions += issuable;
                }
                ev.gap -= issuable;
                core.pending = Some(ev);
                core.waiting = Wait::Rob;
                self.check_warmup(c, &mut core);
                break;
            }
            let remaining = core.quota - core.insts;
            if ev.gap > remaining {
                core.insts += remaining;
                core.cycle += self.div_ceil_width(remaining);
                if self.measure_started {
                    self.stats.instructions += remaining;
                }
                self.finish_core(&mut core);
                break;
            }
            core.insts += ev.gap;
            core.cycle += self.div_ceil_width(ev.gap);
            if self.measure_started {
                self.stats.instructions += ev.gap;
            }
            self.check_warmup(c, &mut core);

            let keep_going = match ev.event {
                TraceEvent::IFetch(line) => self.access_l1i(c, &mut core, line),
                TraceEvent::Data { kind, line, dependent } => {
                    self.access_l1d(c, &mut core, kind, line, dependent)
                }
            };
            if !keep_going {
                break;
            }
        }
        if self.trace.is_some() {
            let retired = core.insts - insts_before;
            if retired > 0 {
                self.trace_at(
                    core.cycle,
                    TraceKind::Retire,
                    c as u8,
                    0,
                    retired.min(u64::from(u32::MAX)) as u32,
                    0,
                );
            }
            let (code, addr) = match core.waiting {
                Wait::Ready => (0u16, 0u64),
                Wait::IFetch(a) => (1, a.0),
                Wait::Load(a) => (2, a.0),
                Wait::Rob => (3, 0),
                Wait::Mshr => (4, 0),
                Wait::Done => (5, 0),
            };
            if code != 0 {
                self.trace_at(core.cycle, TraceKind::Stall, c as u8, code, 0, addr);
            }
        }
        self.cores[c] = Some(core);
    }

    fn finish_core(&mut self, core: &mut Core) {
        if core.finished_at.is_none() {
            core.finished_at = Some(core.cycle);
            core.waiting = Wait::Done;
            self.finished += 1;
        }
    }

    fn check_warmup(&mut self, c: usize, core: &mut Core) {
        if self.measure_started || self.warm_flags[c] || core.insts < self.warmup_per_core {
            return;
        }
        self.warm_flags[c] = true;
        self.warmed += 1;
        if self.warmed == usize::from(self.cfg.cores) {
            self.begin_measure(c, core);
        }
    }

    fn begin_measure(&mut self, current: usize, core: &mut Core) {
        self.measure_started = true;
        self.measure_start = self.now.max(core.cycle);
        self.stats = SimStats::default();
        self.link.reset_stats();
        self.mem.reset_stats();
        self.l2.reset_stats();
        for l1 in self.l1i.iter_mut().chain(self.l1d.iter_mut()) {
            l1.reset_stats();
        }
        for pf in self
            .pf_l1i
            .iter_mut()
            .chain(self.pf_l1d.iter_mut())
            .chain(self.pf_l2.iter_mut())
        {
            pf.reset_stats();
        }
        self.l2_demand_accesses = 0;
        core.quota = core.insts + self.measure_per_core;
        for (i, slot) in self.cores.iter_mut().enumerate() {
            if i == current {
                continue;
            }
            if let Some(c) = slot.as_mut() {
                c.quota = c.insts + self.measure_per_core;
            }
        }
    }

    /// Handles an instruction fetch. Returns false when the core stalls.
    fn access_l1i(&mut self, c: usize, core: &mut Core, line: BlockAddr) -> bool {
        if let Some((_, first)) = self.l1i[c].lookup(line) {
            self.stats.l1i.accesses += 1;
            self.stats.l1i.hits += 1;
            if first {
                self.stats.l1i.prefetch_hits += 1;
                if self.adaptive_pf() && self.th_l1i[c].record_useful() {
                    let deg = u32::from(self.th_l1i[c].degree());
                    self.trace_at(core.cycle, TraceKind::AdaptiveMove, c as u8, 0b100, deg, line.0);
                }
            }
            let deg = self.l1_degree(L1Kind::I, c);
            if deg > 0 {
                if let Some(next) = self.pf_l1i[c].on_access(line, deg) {
                    self.issue_l1_prefetch(c, core, L1Kind::I, next, core.cycle);
                }
            }
            return true;
        }
        // Miss: merged or new, the frontend stalls either way.
        if let Some(m) = self.core_mshrs[c].get_mut(line.0) {
            self.stats.l1i.accesses += 1;
            self.stats.l1i.demand_misses += 1;
            m.prefetched = false; // partial hit: demand takes over
            self.trace_at(core.cycle, TraceKind::L1Miss, c as u8, 0b100, 0, line.0);
            core.waiting = Wait::IFetch(line);
            return false;
        }
        if core.outstanding >= self.cfg.mshrs_per_core {
            core.pending = Some(cmpsim_trace::TimedEvent {
                gap: 0,
                event: TraceEvent::IFetch(line),
            });
            core.waiting = Wait::Mshr;
            return false;
        }
        self.stats.l1i.accesses += 1;
        self.stats.l1i.demand_misses += 1;
        self.trace_at(core.cycle, TraceKind::L1Miss, c as u8, 0, 0, line.0);
        let deg = self.l1_degree(L1Kind::I, c);
        let burst = if deg > 0 { self.pf_l1i[c].on_miss(line, deg) } else { Vec::new() };
        self.core_mshrs[c].insert(
            line.0,
            CoreMshr { l1: L1Kind::I, prefetched: false, store: false, load_seqs: Vec::new() },
        );
        core.outstanding += 1;
        let at = core.cycle + self.cfg.l1_latency + self.cfg.l1_to_l2_latency;
        self.schedule(
            at,
            Event::L2Access {
                core: c as u8,
                addr: line,
                store: false,
                upgrade: false,
                origin: Origin::Demand,
                l1: L1Kind::I,
            },
        );
        for p in burst {
            self.issue_l1_prefetch(c, core, L1Kind::I, p, core.cycle);
        }
        core.waiting = Wait::IFetch(line);
        false
    }

    /// Handles a data access. Returns false when the core stalls.
    fn access_l1d(
        &mut self,
        c: usize,
        core: &mut Core,
        kind: AccessKind,
        line: BlockAddr,
        dependent: bool,
    ) -> bool {
        let store = kind.is_write();
        if let Some((state, first)) = self.l1d[c].lookup(line) {
            let needs_upgrade = store && *state == MsiState::Shared;
            self.stats.l1d.accesses += 1;
            self.stats.l1d.hits += 1;
            if first {
                self.stats.l1d.prefetch_hits += 1;
                if self.adaptive_pf() && self.th_l1d[c].record_useful() {
                    let deg = u32::from(self.th_l1d[c].degree());
                    self.trace_at(core.cycle, TraceKind::AdaptiveMove, c as u8, 0b101, deg, line.0);
                }
            }
            if needs_upgrade
                && !self.core_mshrs[c].contains_key(line.0)
                && core.outstanding < self.cfg.mshrs_per_core
            {
                self.stats.coherence.upgrades += 1;
                self.trace_at(core.cycle, TraceKind::Coherence, c as u8, 3, 0, line.0);
                self.core_mshrs[c].insert(
                    line.0,
                    CoreMshr { l1: L1Kind::D, prefetched: false, store: true, load_seqs: Vec::new() },
                );
                core.outstanding += 1;
                let at = core.cycle + self.cfg.l1_latency + self.cfg.l1_to_l2_latency;
                self.schedule(
                    at,
                    Event::L2Access {
                        core: c as u8,
                        addr: line,
                        store: true,
                        upgrade: true,
                        origin: Origin::Demand,
                        l1: L1Kind::D,
                    },
                );
            }
            let deg = self.l1_degree(L1Kind::D, c);
            if deg > 0 {
                if let Some(next) = self.pf_l1d[c].on_access(line, deg) {
                    self.issue_l1_prefetch(c, core, L1Kind::D, next, core.cycle);
                }
            }
            return true;
        }

        // Miss. Merge into an in-flight request when possible.
        let seq = core.insts;
        if let Some(m) = self.core_mshrs[c].get_mut(line.0) {
            self.stats.l1d.accesses += 1;
            self.stats.l1d.demand_misses += 1;
            m.prefetched = false;
            if store {
                m.store = true;
            } else {
                m.load_seqs.push(seq);
                core.track_load(seq);
            }
            self.trace_at(
                core.cycle,
                TraceKind::L1Miss,
                c as u8,
                0b101 | (u16::from(store) << 1),
                0,
                line.0,
            );
            if dependent && !store {
                core.waiting = Wait::Load(line);
                return false;
            }
            return true;
        }
        if core.outstanding >= self.cfg.mshrs_per_core {
            core.pending = Some(cmpsim_trace::TimedEvent {
                gap: 0,
                event: TraceEvent::Data { kind, line, dependent },
            });
            core.waiting = Wait::Mshr;
            return false;
        }
        self.stats.l1d.accesses += 1;
        self.stats.l1d.demand_misses += 1;
        self.trace_at(core.cycle, TraceKind::L1Miss, c as u8, 1 | (u16::from(store) << 1), 0, line.0);
        let deg = self.l1_degree(L1Kind::D, c);
        let burst = if deg > 0 { self.pf_l1d[c].on_miss(line, deg) } else { Vec::new() };
        let mut load_seqs = Vec::new();
        if !store {
            load_seqs.push(seq);
            core.track_load(seq);
        }
        self.core_mshrs[c]
            .insert(line.0, CoreMshr { l1: L1Kind::D, prefetched: false, store, load_seqs });
        core.outstanding += 1;
        let at = core.cycle + self.cfg.l1_latency + self.cfg.l1_to_l2_latency;
        self.schedule(
            at,
            Event::L2Access {
                core: c as u8,
                addr: line,
                store,
                upgrade: false,
                origin: Origin::Demand,
                l1: L1Kind::D,
            },
        );
        for p in burst {
            self.issue_l1_prefetch(c, core, L1Kind::D, p, core.cycle);
        }
        if dependent && !store {
            core.waiting = Wait::Load(line);
            return false;
        }
        true
    }

    fn issue_l1_prefetch(&mut self, c: usize, core: &mut Core, kind: L1Kind, addr: BlockAddr, at: u64) {
        let present = match kind {
            L1Kind::I => self.l1i[c].contains(addr),
            L1Kind::D => self.l1d[c].contains(addr),
        };
        if present || self.core_mshrs[c].contains_key(addr.0) {
            return;
        }
        if core.outstanding >= self.cfg.mshrs_per_core {
            self.stats.dropped_prefetches += 1;
            return;
        }
        match kind {
            L1Kind::I => self.stats.l1i.prefetches_issued += 1,
            L1Kind::D => self.stats.l1d.prefetches_issued += 1,
        }
        self.trace_at(
            at,
            TraceKind::PrefetchIssue,
            c as u8,
            match kind {
                L1Kind::I => 0,
                L1Kind::D => 1,
            },
            0,
            addr.0,
        );
        self.core_mshrs[c]
            .insert(addr.0, CoreMshr { l1: kind, prefetched: true, store: false, load_seqs: Vec::new() });
        core.outstanding += 1;
        self.schedule(
            at + self.cfg.l1_to_l2_latency,
            Event::L2Access {
                core: c as u8,
                addr,
                store: false,
                upgrade: false,
                origin: Origin::L1Prefetch,
                l1: kind,
            },
        );
    }

    // ------------------------------------------------------------ the L2

    #[allow(clippy::too_many_arguments)]
    fn handle_l2_access(
        &mut self,
        c: usize,
        addr: BlockAddr,
        store: bool,
        upgrade: bool,
        origin: Origin,
        l1: L1Kind,
    ) {
        let bank = addr.bank_index(self.cfg.l2_banks);
        let start = self.now.max(self.bank_free[bank]);
        self.bank_free[bank] = start + BANK_OCCUPANCY;
        let tag_done = start + self.cfg.l2_latency;
        let demandish = origin != Origin::L2Prefetch;

        if self.chaos.is_some() {
            self.chaos_codec_site(addr);
        }
        let info = self.l2.lookup(addr);

        if origin == Origin::Demand {
            self.l2_demand_accesses += 1;
            if self.l2.is_vsc() && self.l2_demand_accesses % CAPACITY_SAMPLE_PERIOD == 0 {
                self.stats.capacity_ratio_sum += self.l2.capacity_ratio();
                self.stats.capacity_ratio_samples += 1;
            }
        }

        if info.hit {
            let decomp = if info.compressed && !upgrade {
                self.codec_decomp
            } else {
                0
            };
            // A first touch by an L1 prefetch still means the L2 prefetch
            // was useful (the line is on its way to the core), so credit
            // it for any demand-side origin.
            if demandish && info.prefetch_first_touch {
                self.stats.l2.prefetch_hits += 1;
                if self.adaptive_pf() && self.th_l2.record_useful() {
                    let deg = u32::from(self.th_l2.degree());
                    self.trace_event(TraceKind::AdaptiveMove, c as u8, 0b110, deg, addr.0);
                }
            }
            if origin == Origin::Demand {
                self.stats.l2.accesses += 1;
                self.stats.l2.hits += 1;
                self.trace_event(
                    TraceKind::L2Hit,
                    c as u8,
                    u16::from(info.compressed) | (u16::from(info.prefetch_first_touch) << 1),
                    0,
                    addr.0,
                );
                if info.compressed {
                    self.stats.l2_compressed_hits += 1;
                }
                self.stats.l2_hit_latency_sum += self.cfg.l2_latency + decomp;
                self.stats.l2_hit_latency_count += 1;
                if self.cfg.cache_compression && self.cfg.adaptive_compression {
                    self.policy.on_hit(info.lru_depth, info.compressed, 4);
                }
            }
            if demandish {
                let deg = self.l2_degree();
                if deg > 0 {
                    if let Some(next) = self.pf_l2[c].on_access(addr, deg) {
                        self.issue_l2_prefetch(c, next, tag_done);
                    }
                }
            }
            if origin == Origin::L2Prefetch {
                return; // already resident: redundant prefetch
            }
            // Coherence + response.
            let req = if upgrade {
                L1Request::Upgrade
            } else if store {
                L1Request::GetX
            } else {
                L1Request::GetS
            };
            let actions = match self.l2.meta_mut(addr) {
                Some(dir) => dir.handle(CoreId(c as u8), req),
                None => Vec::new(),
            };
            let probed = !actions.is_empty();
            let lost = self.apply_probes(addr, &actions, false);
            let resp = tag_done
                + decomp
                + if probed { self.cfg.probe_latency } else { 0 }
                + lost * self.cfg.probe_latency;
            self.schedule(
                resp + self.cfg.l1_to_l2_latency,
                Event::L1Fill {
                    core: c as u8,
                    l1,
                    addr,
                    prefetched: origin == Origin::L1Prefetch,
                    store,
                },
            );
            return;
        }

        // ------------------------------------------------------- L2 miss
        if origin == Origin::Demand {
            self.stats.l2.accesses += 1;
            self.stats.l2.demand_misses += 1;
            self.trace_event(TraceKind::L2Miss, c as u8, u16::from(info.victim_tag), 0, addr.0);
            if info.victim_tag {
                self.stats.l2_victim_tag_hits += 1;
                if self.cfg.cache_compression && self.cfg.adaptive_compression {
                    self.policy.on_victim_tag_miss();
                }
            }
            if self.adaptive_pf() && self.l2.harmful_prefetch_signal(addr) {
                self.stats.harmful_prefetch_detections += 1;
                if self.th_l2.record_bad() {
                    let deg = u32::from(self.th_l2.degree());
                    self.trace_event(TraceKind::AdaptiveMove, c as u8, 0b010, deg, addr.0);
                }
            }
        }
        if demandish {
            let deg = self.l2_degree();
            if deg > 0 {
                let burst = self.pf_l2[c].on_miss(addr, deg);
                for p in burst {
                    self.issue_l2_prefetch(c, p, tag_done);
                }
            }
        }

        if let Some(m) = self.l2_mshrs.get_mut(addr.0) {
            if origin != Origin::L2Prefetch {
                m.waiters.push(Waiter {
                    core: c as u8,
                    l1,
                    store,
                    prefetched: origin == Origin::L1Prefetch,
                });
            }
            return;
        }
        let mut mshr = L2Mshr { waiters: Vec::new(), prefetch_core: None };
        if origin == Origin::L2Prefetch {
            mshr.prefetch_core = Some(c as u8);
        } else {
            mshr.waiters.push(Waiter {
                core: c as u8,
                l1,
                store,
                prefetched: origin == Origin::L1Prefetch,
            });
        }
        self.l2_mshrs.insert(addr.0, mshr);
        self.schedule(tag_done, Event::LinkRequest { addr, attempt: 0 });
    }

    fn handle_link_request(&mut self, addr: BlockAddr, attempt: u8) {
        let for_prefetch = self
            .l2_mshrs
            .get(addr.0)
            .map(|m| m.waiters.iter().all(|w| w.prefetched))
            .unwrap_or(true);
        let msg = Message::read_request(addr, for_prefetch);
        if let Some(plan) = self.chaos {
            // Link-drop site: the request's flits burn bandwidth but the
            // message never arrives. Recovery is a NACK-style retransmit
            // with exponential backoff, bounded by MAX_LINK_ATTEMPTS.
            let key = addr.0 ^ (u64::from(attempt) << 56);
            if plan.should_inject(FaultSite::LinkRequest, self.now, key) {
                let tr = self.link.send_dropped(self.now, &msg);
                self.stats.faults.link_faults_injected += 1;
                self.trace_event(
                    TraceKind::Fault,
                    0,
                    FaultSite::LinkRequest as u16,
                    u32::from(attempt) + 1,
                    addr.0,
                );
                let next = attempt + 1;
                if next >= MAX_LINK_ATTEMPTS {
                    self.raise_fault_budget("link-request", addr.0, u32::from(next));
                    return;
                }
                self.stats.faults.link_retransmits += 1;
                let backoff = self.cfg.probe_latency << next;
                self.schedule(tr.done + backoff, Event::LinkRequest { addr, attempt: next });
                self.trace_event(
                    TraceKind::Fault,
                    0,
                    FaultSite::LinkRequest as u16 | 8,
                    u32::from(next),
                    addr.0,
                );
                return;
            }
        }
        let tr = self.link.send(self.now, &msg);
        self.trace_event(TraceKind::LinkFlit, 0, 0, msg.size_bytes() as u32, addr.0);
        // Memory-stall site: the controller degrades gracefully by
        // absorbing a bounded stall burst before responding.
        let mut stall = 0;
        if let Some(plan) = self.chaos {
            if plan.should_inject(FaultSite::MemStall, self.now, addr.0) {
                let entropy = plan.roll(FaultSite::MemStall, self.now, addr.0);
                stall = self.mem.stall_burst(entropy);
                self.trace_event(TraceKind::Fault, 0, FaultSite::MemStall as u16, stall as u32, addr.0);
            }
        }
        self.schedule(
            tr.done + self.cfg.mem_latency + stall,
            Event::MemResponse { addr, attempt: 0 },
        );
    }

    fn handle_mem_response(&mut self, addr: BlockAddr, attempt: u8) {
        let link_compression = self.cfg.link_compression;
        let fresh = if link_compression {
            self.segments_of(addr)
        } else {
            self.codec_max
        };
        let (_, form) = self.mem.read(addr, self.now, || fresh);
        let segments = if link_compression { form.segments } else { self.codec_max };
        let for_prefetch = self
            .l2_mshrs
            .get(addr.0)
            .map(|m| m.waiters.iter().all(|w| w.prefetched))
            .unwrap_or(true);
        let msg = Message::data_response(addr, segments, for_prefetch);
        if let Some(plan) = self.chaos {
            // Data-corruption site: the response crosses the link (flits
            // burned) but arrives corrupt; the L2 NACKs it and memory
            // re-sends, with the same bounded backoff as request drops.
            let key = addr.0 ^ (u64::from(attempt) << 56);
            if plan.should_inject(FaultSite::LinkData, self.now, key) {
                let tr = self.link.send_corrupted(self.now, &msg);
                self.stats.faults.link_faults_injected += 1;
                // Receiver-side integrity gate: materialize the delivered
                // image through the codec's fast decoder, apply the seeded
                // in-transit flip, and verify against the pre-send
                // checksum. A single-bit flip always fails the FNV check,
                // so every corrupted delivery takes the NACK path below.
                let line = self.values.line_bytes(addr.0);
                let mut delivered = (self.codec_image)(&line);
                let bit = (plan.roll(FaultSite::LinkData, self.now, key) % 512) as u16;
                cmpsim_fpc::integrity::flip_bit(&mut delivered, bit);
                let intact = Channel::payload_intact(
                    &delivered,
                    cmpsim_fpc::integrity::line_checksum(&line),
                );
                debug_assert!(!intact, "single-bit corruption must never verify");
                if intact {
                    // Unreachable for single-bit faults; accept the fill.
                    self.trace_event(TraceKind::LinkFlit, 0, 1, msg.size_bytes() as u32, addr.0);
                    self.schedule(tr.done, Event::L2Fill { addr });
                    return;
                }
                self.trace_event(
                    TraceKind::Fault,
                    0,
                    FaultSite::LinkData as u16,
                    u32::from(attempt) + 1,
                    addr.0,
                );
                let next = attempt + 1;
                if next >= MAX_LINK_ATTEMPTS {
                    self.raise_fault_budget("link-data", addr.0, u32::from(next));
                    return;
                }
                self.stats.faults.link_retransmits += 1;
                let backoff = self.cfg.probe_latency << next;
                self.schedule(tr.done + backoff, Event::MemResponse { addr, attempt: next });
                self.trace_event(
                    TraceKind::Fault,
                    0,
                    FaultSite::LinkData as u16 | 8,
                    u32::from(next),
                    addr.0,
                );
                return;
            }
        }
        let tr = self.link.send(self.now, &msg);
        self.trace_event(TraceKind::LinkFlit, 0, 1, msg.size_bytes() as u32, addr.0);
        self.schedule(tr.done, Event::L2Fill { addr });
    }

    /// Codec-corruption injection site (chaos runs only): a resident
    /// *compressed* line is hit by a seeded single-bit flip on its
    /// decompression path. The FNV line checksum detects it (single-bit
    /// flips are provably caught), recovery invalidates the line —
    /// recalling L1 copies, writing nothing back — so the access refetches
    /// clean data from memory, and [`QUARANTINE_STRIKES`] strikes pin the
    /// address to uncompressed storage.
    fn chaos_codec_site(&mut self, addr: BlockAddr) {
        let Some(plan) = self.chaos else { return };
        if !plan.should_inject(FaultSite::CodecLine, self.now, addr.0) {
            return;
        }
        let compressed = self.l2.segments_of(addr).is_some_and(|s| s < self.codec_max);
        if !compressed {
            return;
        }
        self.stats.faults.codec_faults_injected += 1;
        let bit = (plan.roll(FaultSite::CodecLine, self.now, addr.0) % 512) as u16;
        // Materialize what the L2 actually stores by round-tripping the
        // line through the configured codec's fast decoder; the codec is
        // lossless, so the image equals the source line and detection is
        // unchanged — but the corruption check now exercises the real
        // dispatch-table/SWAR decode path instead of assuming it.
        let line = self.values.line_bytes(addr.0);
        let image = (self.codec_image)(&line);
        debug_assert_eq!(image, line, "codec round trip must be lossless");
        let detected = cmpsim_fpc::integrity::detects_corruption(&image, bit);
        self.trace_event(TraceKind::Fault, 0, FaultSite::CodecLine as u16, u32::from(bit), addr.0);
        if !detected {
            return;
        }
        self.stats.faults.codec_faults_detected += 1;
        if let Some(mut dir) = self.l2.invalidate(addr) {
            let actions = dir.recall_all();
            if !actions.is_empty() {
                self.apply_probes(addr, &actions, true);
            }
        }
        self.stats.faults.fault_recoveries += 1;
        let strikes = {
            let s = self.fault_strikes.entry(addr.0).or_insert(0);
            *s = s.saturating_add(1);
            *s
        };
        if strikes >= QUARANTINE_STRIKES && self.quarantined_lines.insert(addr.0) {
            self.stats.faults.lines_quarantined += 1;
        }
        self.trace_event(
            TraceKind::Fault,
            0,
            FaultSite::CodecLine as u16 | 8,
            u32::from(strikes),
            addr.0,
        );
    }

    fn handle_l2_fill(&mut self, addr: BlockAddr) {
        let Some(mshr) = self.l2_mshrs.remove(addr.0) else { return };
        let prefetched_fill =
            mshr.waiters.is_empty() || mshr.waiters.iter().all(|w| w.prefetched);
        let seg_store = self.store_segments(addr);
        let evicted = self.l2.fill(addr, seg_store, prefetched_fill, DirEntry::new());
        if prefetched_fill {
            self.stats.l2.prefetch_fills += 1;
            self.trace_event(TraceKind::PrefetchFill, 0, 2, u32::from(seg_store), addr.0);
        }
        for e in evicted {
            self.handle_l2_eviction(e);
        }

        // Service the waiters in arrival order.
        let stored_compressed = seg_store < self.codec_max;
        let decomp = if stored_compressed { self.codec_decomp } else { 0 };
        for w in &mshr.waiters {
            let req = if w.store { L1Request::GetX } else { L1Request::GetS };
            let actions = match self.l2.meta_mut(addr) {
                Some(dir) => dir.handle(CoreId(w.core), req),
                None => Vec::new(),
            };
            let lost = self.apply_probes(addr, &actions, false);
            self.schedule(
                self.now + self.cfg.l1_to_l2_latency + decomp + lost * self.cfg.probe_latency,
                Event::L1Fill {
                    core: w.core,
                    l1: w.l1,
                    addr,
                    prefetched: w.prefetched,
                    store: w.store,
                },
            );
        }

        // A prefetch-only fetch frees its issuer's MSHR budget here.
        if let Some(pc) = mshr.prefetch_core {
            let pc = usize::from(pc);
            if let Some(core) = self.cores[pc].as_mut() {
                core.outstanding = core.outstanding.saturating_sub(1);
                if core.waiting == Wait::Mshr {
                    self.schedule(self.now, Event::CoreStep { core: pc as u8 });
                }
            }
            self.drain_pf_queue(pc);
        }
    }

    fn handle_l2_eviction(&mut self, mut e: EvictedL2) {
        let actions = e.dir.recall_all();
        if !actions.is_empty() {
            self.stats.coherence.inclusion_recalls += actions.len() as u64;
            self.apply_probes(e.addr, &actions, true);
        }
        if e.was_unused_prefetch {
            self.stats.l2.useless_prefetch_evictions += 1;
            if self.adaptive_pf() && self.th_l2.record_bad() {
                let deg = u32::from(self.th_l2.degree());
                self.trace_event(TraceKind::AdaptiveMove, 0, 0b010, deg, e.addr.0);
            }
        }
        if e.dir.is_dirty() {
            let seg = self.link_segments(e.addr);
            let msg = Message::writeback(e.addr, seg);
            self.link.send(self.now, &msg);
            self.trace_event(TraceKind::LinkFlit, 0, 2, msg.size_bytes() as u32, e.addr.0);
            self.mem.write(e.addr, seg);
            self.stats.mem_writes += 1;
            self.trace_event(TraceKind::MemWrite, 0, 0, u32::from(seg), e.addr.0);
        }
    }

    /// Applies coherence probes to the target L1s structurally. Probe
    /// latency is charged by the caller on the response path. Returns the
    /// number of probe messages lost to an armed chaos plan (each one
    /// costs the caller an extra `probe_latency` of retransmission);
    /// always 0 when chaos is disarmed. The MSI transition is applied
    /// structurally even when the delivery budget is exhausted — the
    /// protocol must not wedge — but the run then aborts with
    /// [`SimError::FaultBudgetExhausted`].
    fn apply_probes(&mut self, addr: BlockAddr, actions: &[DirAction], inclusion: bool) -> u64 {
        let mut lost_total = 0u64;
        for (i, a) in actions.iter().enumerate() {
            let t = a.target().index();
            if let Some(plan) = self.chaos {
                // Directory-message-loss site: each probe is delivered
                // with a bounded retry budget.
                let now = self.now;
                let key = addr.0 ^ ((t as u64) << 40) ^ ((i as u64) << 48);
                match deliver_with_retries(
                    |k| {
                        plan.should_inject(
                            FaultSite::DirMessage,
                            now,
                            key.wrapping_add(u64::from(k) << 56),
                        )
                    },
                    MAX_DIR_ATTEMPTS,
                ) {
                    Some(attempts) => {
                        let lost = u64::from(attempts - 1);
                        if lost > 0 {
                            self.stats.faults.dir_messages_lost += lost;
                            self.stats.faults.dir_retries += lost;
                            lost_total += lost;
                            self.trace_event(
                                TraceKind::Fault,
                                t as u8,
                                FaultSite::DirMessage as u16 | 8,
                                attempts,
                                addr.0,
                            );
                        }
                    }
                    None => {
                        self.stats.faults.dir_messages_lost += u64::from(MAX_DIR_ATTEMPTS);
                        self.trace_event(
                            TraceKind::Fault,
                            t as u8,
                            FaultSite::DirMessage as u16,
                            MAX_DIR_ATTEMPTS,
                            addr.0,
                        );
                        self.raise_fault_budget("dir-message", addr.0, MAX_DIR_ATTEMPTS);
                    }
                }
            }
            if self.trace.is_some() {
                let flags = match a {
                    DirAction::Invalidate(_) => 0,
                    DirAction::RecallDowngrade(_) => 1,
                    DirAction::RecallInvalidate(_) => 2,
                };
                self.trace_event(TraceKind::Coherence, t as u8, flags, u32::from(inclusion), addr.0);
            }
            match a {
                DirAction::Invalidate(_) | DirAction::RecallInvalidate(_) => {
                    let hit = self.l1d[t].invalidate(addr).is_some()
                        || self.l1i[t].invalidate(addr).is_some();
                    if hit && !inclusion {
                        match a {
                            DirAction::Invalidate(_) => self.stats.coherence.invalidations += 1,
                            _ => self.stats.coherence.recalls += 1,
                        }
                    }
                }
                DirAction::RecallDowngrade(_) => {
                    if let Some(state) = self.l1d[t].peek_mut(addr) {
                        *state = MsiState::Shared;
                    }
                    if !inclusion {
                        self.stats.coherence.recalls += 1;
                    }
                }
            }
        }
        lost_total
    }

    // ------------------------------------------------------ L2 prefetches

    fn issue_l2_prefetch(&mut self, c: usize, addr: BlockAddr, at: u64) {
        if self.l2.contains(addr) || self.l2_mshrs.contains_key(addr.0) {
            return;
        }
        let outstanding = self.cores[c].as_ref().map(|k| k.outstanding).unwrap_or(0);
        if outstanding >= self.cfg.mshrs_per_core {
            if self.pf_queue[c].len() < PF_QUEUE_LIMIT {
                if !self.pf_queue[c].contains(&addr) {
                    self.pf_queue[c].push_back(addr);
                }
            } else {
                self.stats.dropped_prefetches += 1;
            }
            return;
        }
        self.do_issue_l2_prefetch(c, addr, at);
    }

    fn do_issue_l2_prefetch(&mut self, c: usize, addr: BlockAddr, at: u64) {
        self.stats.l2.prefetches_issued += 1;
        self.trace_at(at.max(self.now), TraceKind::PrefetchIssue, c as u8, 2, 0, addr.0);
        if let Some(core) = self.cores[c].as_mut() {
            core.outstanding += 1;
        }
        self.l2_mshrs
            .insert(addr.0, L2Mshr { waiters: Vec::new(), prefetch_core: Some(c as u8) });
        self.schedule(at.max(self.now), Event::LinkRequest { addr, attempt: 0 });
    }

    fn drain_pf_queue(&mut self, c: usize) {
        loop {
            let outstanding = self.cores[c].as_ref().map(|k| k.outstanding).unwrap_or(usize::MAX);
            if outstanding >= self.cfg.mshrs_per_core {
                return;
            }
            let Some(addr) = self.pf_queue[c].pop_front() else { return };
            if self.l2.contains(addr) || self.l2_mshrs.contains_key(addr.0) {
                continue; // became stale while queued
            }
            if self.l2_degree() == 0 {
                continue; // throttle went to zero meanwhile
            }
            self.do_issue_l2_prefetch(c, addr, self.now);
        }
    }

    // ---------------------------------------------------------- L1 fills

    fn handle_l1_fill(&mut self, c: usize, l1: L1Kind, addr: BlockAddr, prefetched: bool, store: bool) {
        // Re-validate against the directory: a probe or inclusion recall
        // may have retargeted this line while the fill was in flight (a
        // real protocol would NACK/replay; we resolve it at fill time).
        let me = CoreId(c as u8);
        let fill_state = match self.l2.meta_mut(addr) {
            Some(dir) => {
                if store && dir.owner() != Some(me) {
                    if dir.sharers().contains(me) {
                        Some(MsiState::Shared)
                    } else {
                        None
                    }
                } else if !store && !dir.sharers().contains(me) {
                    None
                } else if store {
                    Some(MsiState::Modified)
                } else {
                    Some(MsiState::Shared)
                }
            }
            // The L2 dropped the line while the fill was in flight; the
            // inclusion recall could not reach an in-flight copy, so the
            // fill is abandoned (the access will re-miss).
            None => None,
        };
        let Some(state) = fill_state else {
            self.complete_core_mshr(c, addr);
            return;
        };
        if prefetched {
            let flags = match l1 {
                L1Kind::I => 0,
                L1Kind::D => 1,
            };
            self.trace_event(TraceKind::PrefetchFill, c as u8, flags, 0, addr.0);
        }
        let victim = match l1 {
            L1Kind::I => {
                self.stats.l1i.prefetch_fills += u64::from(prefetched);
                self.l1i[c].fill(addr, prefetched, state)
            }
            L1Kind::D => {
                self.stats.l1d.prefetch_fills += u64::from(prefetched);
                self.l1d[c].fill(addr, prefetched, state)
            }
        };
        if let Some(v) = victim {
            if v.was_unused_prefetch {
                match l1 {
                    L1Kind::I => self.stats.l1i.useless_prefetch_evictions += 1,
                    L1Kind::D => self.stats.l1d.useless_prefetch_evictions += 1,
                }
                if self.adaptive_pf() {
                    let (moved, flags, deg) = match l1 {
                        L1Kind::I => {
                            let m = self.th_l1i[c].record_bad();
                            (m, 0b000, u32::from(self.th_l1i[c].degree()))
                        }
                        L1Kind::D => {
                            let m = self.th_l1d[c].record_bad();
                            (m, 0b001, u32::from(self.th_l1d[c].degree()))
                        }
                    };
                    if moved {
                        self.trace_event(TraceKind::AdaptiveMove, c as u8, flags, deg, v.addr.0);
                    }
                }
            }
            let req = if v.meta == MsiState::Modified { L1Request::PutM } else { L1Request::PutS };
            match self.l2.meta_mut(v.addr) {
                Some(dir) => {
                    let _ = dir.handle(CoreId(c as u8), req);
                }
                None => {
                    // Inclusion race: the L2 already dropped the line. A
                    // dirty victim goes straight to memory.
                    if v.meta == MsiState::Modified {
                        let seg = self.link_segments(v.addr);
                        let msg = Message::writeback(v.addr, seg);
                        self.link.send(self.now, &msg);
                        self.trace_event(TraceKind::LinkFlit, 0, 2, msg.size_bytes() as u32, v.addr.0);
                        self.mem.write(v.addr, seg);
                        self.stats.mem_writes += 1;
                        self.trace_event(TraceKind::MemWrite, 0, 0, u32::from(seg), v.addr.0);
                    }
                }
            }
        }

        self.complete_core_mshr(c, addr);
    }

    /// Completes the core-side MSHR for `addr` and wakes the core when
    /// its stall condition is satisfied.
    fn complete_core_mshr(&mut self, c: usize, addr: BlockAddr) {
        let mut wake = false;
        if let Some(m) = self.core_mshrs[c].remove(addr.0) {
            if let Some(core) = self.cores[c].as_mut() {
                debug_assert_eq!(usize::from(core.id()), c, "MSHR/core mismatch");
                debug_assert!(
                    matches!(m.l1, L1Kind::I | L1Kind::D),
                    "MSHR belongs to an L1"
                );
                core.outstanding = core.outstanding.saturating_sub(1);
                core.complete_loads(&m.load_seqs);
                wake = match core.waiting {
                    Wait::IFetch(a) | Wait::Load(a) => a == addr,
                    Wait::Rob => !m.load_seqs.is_empty(),
                    Wait::Mshr => true,
                    Wait::Ready | Wait::Done => false,
                };
            }
        }
        if wake {
            self.schedule(self.now, Event::CoreStep { core: c as u8 });
        }
        self.drain_pf_queue(c);
    }
}
