//! The shared L2, abstracting over the two organizations the paper
//! evaluates: the classic 8-way uncompressed cache and the decoupled
//! variable-segment cache (used for compression and/or the adaptive
//! prefetcher's extra tags).

use cmpsim_cache::{BlockAddr, SetAssocCache, SetAssocConfig, VscCache, VscConfig, VscLookup};
use cmpsim_coherence::DirEntry;
use cmpsim_fpc::MAX_SEGMENTS;

/// Outcome of an L2 lookup, unified across organizations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2LookupInfo {
    /// Line resident with data.
    pub hit: bool,
    /// Hit was to a compressed line (decompression penalty applies).
    pub compressed: bool,
    /// First demand touch of a prefetched line.
    pub prefetch_first_touch: bool,
    /// 0-based LRU depth among data lines (VSC only; 0 otherwise).
    pub lru_depth: usize,
    /// Miss matched a dataless victim tag (VSC only).
    pub victim_tag: bool,
}

/// A line evicted from the L2 (for writebacks and inclusion recalls).
#[derive(Debug, Clone)]
pub struct EvictedL2 {
    /// Evicted line address.
    pub addr: BlockAddr,
    /// Its directory state at eviction.
    pub dir: DirEntry,
    /// Prefetch bit still set (useless prefetch).
    pub was_unused_prefetch: bool,
}

/// The shared L2 in either organization.
#[derive(Debug)]
pub enum L2Cache {
    /// 8-way uncompressed baseline (8192 sets × 8 ways for 4 MB).
    Classic(SetAssocCache<DirEntry>),
    /// Decoupled variable-segment cache (16384 sets × 8 tags × 32
    /// segments for 4 MB).
    Vsc(VscCache<DirEntry>),
}

impl L2Cache {
    /// Builds the right organization for `capacity` bytes, with the VSC's
    /// segment geometry sized for a codec whose uncompressed line takes
    /// `line_segments` segments (8 for every shipped codec).
    pub fn new(capacity: usize, use_vsc: bool, line_segments: u8) -> Self {
        if use_vsc {
            L2Cache::Vsc(VscCache::new(VscConfig::compressed_l2_for(capacity, line_segments)))
        } else {
            L2Cache::Classic(SetAssocCache::new(SetAssocConfig::with_capacity(capacity, 8)))
        }
    }

    /// Whether this is the VSC organization (extra tags available).
    pub fn is_vsc(&self) -> bool {
        matches!(self, L2Cache::Vsc(_))
    }

    /// Looks up `addr` with LRU/prefetch-bit side effects on a hit.
    pub fn lookup(&mut self, addr: BlockAddr) -> L2LookupInfo {
        match self {
            L2Cache::Classic(c) => {
                let hit = c.lookup(addr);
                match hit {
                    Some((_, first)) => L2LookupInfo {
                        hit: true,
                        compressed: false,
                        prefetch_first_touch: first,
                        lru_depth: 0,
                        victim_tag: false,
                    },
                    None => L2LookupInfo {
                        hit: false,
                        compressed: false,
                        prefetch_first_touch: false,
                        lru_depth: 0,
                        victim_tag: false,
                    },
                }
            }
            L2Cache::Vsc(c) => match c.lookup(addr) {
                VscLookup::Hit { compressed, lru_depth, prefetch_first_touch } => L2LookupInfo {
                    hit: true,
                    compressed,
                    prefetch_first_touch,
                    lru_depth,
                    victim_tag: false,
                },
                VscLookup::VictimTagHit => L2LookupInfo {
                    hit: false,
                    compressed: false,
                    prefetch_first_touch: false,
                    lru_depth: 0,
                    victim_tag: true,
                },
                VscLookup::Miss => L2LookupInfo {
                    hit: false,
                    compressed: false,
                    prefetch_first_touch: false,
                    lru_depth: 0,
                    victim_tag: false,
                },
            },
        }
    }

    /// Whether `addr` is resident with data (no side effects).
    pub fn contains(&self, addr: BlockAddr) -> bool {
        match self {
            L2Cache::Classic(c) => c.contains(addr),
            L2Cache::Vsc(c) => c.contains(addr),
        }
    }

    /// Mutable directory entry of a resident line.
    pub fn meta_mut(&mut self, addr: BlockAddr) -> Option<&mut DirEntry> {
        match self {
            L2Cache::Classic(c) => c.peek_mut(addr),
            L2Cache::Vsc(c) => c.meta_mut(addr),
        }
    }

    /// Stored segment count of a resident line (8 in the classic cache).
    pub fn segments_of(&self, addr: BlockAddr) -> Option<u8> {
        match self {
            L2Cache::Classic(c) => c.peek(addr).map(|_| MAX_SEGMENTS),
            L2Cache::Vsc(c) => c.segments_of(addr),
        }
    }

    /// Drops a resident line outright, returning its directory entry so
    /// the caller can recall the L1 copies. The fault-recovery path uses
    /// this for detected-corrupt lines: the data is untrustworthy, so it
    /// is discarded (never written back) and refetched from memory.
    pub fn invalidate(&mut self, addr: BlockAddr) -> Option<DirEntry> {
        match self {
            L2Cache::Classic(c) => c.invalidate(addr),
            L2Cache::Vsc(c) => c.invalidate(addr).map(|(dir, _)| dir),
        }
    }

    /// Inserts `addr` stored in `segments` segments (ignored by the
    /// classic organization), returning evicted lines.
    pub fn fill(
        &mut self,
        addr: BlockAddr,
        segments: u8,
        prefetched: bool,
        dir: DirEntry,
    ) -> Vec<EvictedL2> {
        match self {
            L2Cache::Classic(c) => c
                .fill(addr, prefetched, dir)
                .map(|v| EvictedL2 {
                    addr: v.addr,
                    dir: v.meta,
                    was_unused_prefetch: v.was_unused_prefetch,
                })
                .into_iter()
                .collect(),
            L2Cache::Vsc(c) => c
                .fill(addr, segments, prefetched, dir)
                .into_iter()
                .map(|v| EvictedL2 {
                    addr: v.addr,
                    dir: v.meta,
                    was_unused_prefetch: v.was_unused_prefetch,
                })
                .collect(),
        }
    }

    /// Harmful-prefetch rule inputs (§3): a dataless victim tag matches
    /// and some resident line in the set is an untouched prefetch.
    pub fn harmful_prefetch_signal(&self, addr: BlockAddr) -> bool {
        match self {
            L2Cache::Classic(_) => false,
            L2Cache::Vsc(c) => {
                c.victim_tag_matches(addr) && c.any_prefetched_lines_in_set(addr)
            }
        }
    }

    /// Lines currently resident with data, in either organization.
    /// Linear in the cache — used by the telemetry sampler, which runs
    /// every `sample_period` cycles and only when tracing is enabled.
    pub fn valid_lines(&self) -> usize {
        match self {
            L2Cache::Classic(c) => c.valid_lines(),
            L2Cache::Vsc(c) => c.valid_lines(),
        }
    }

    /// Effective-capacity ratio sample (1.0 for the classic cache).
    pub fn capacity_ratio(&self) -> f64 {
        match self {
            L2Cache::Classic(_) => 1.0,
            L2Cache::Vsc(c) => c.effective_capacity_ratio(),
        }
    }

    /// Checks the structural invariants of the whole L2: VSC segment
    /// accounting (when applicable) plus MSI directory consistency of
    /// every resident line. Linear in the cache; the engine samples it.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut err = None;
        let mut check_dir = |addr: BlockAddr, dir: &DirEntry| {
            if err.is_none() {
                if let Err(e) = dir.check() {
                    err = Some(format!("directory entry for block 0x{:x}: {e}", addr.0));
                }
            }
        };
        match self {
            L2Cache::Classic(c) => c.for_each_valid(|addr, dir| check_dir(addr, dir)),
            L2Cache::Vsc(c) => {
                c.check_invariants()?;
                c.for_each_valid(|addr, dir, _| check_dir(addr, dir));
            }
        }
        err.map_or(Ok(()), Err)
    }

    /// Resets structural statistics.
    pub fn reset_stats(&mut self) {
        match self {
            L2Cache::Classic(c) => c.reset_stats(),
            L2Cache::Vsc(c) => c.reset_stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_is_eight_way_four_mb() {
        let l2 = L2Cache::new(4 * 1024 * 1024, false, 8);
        assert!(!l2.is_vsc());
        match l2 {
            L2Cache::Classic(c) => {
                assert_eq!(c.config().sets, 8192);
                assert_eq!(c.config().ways, 8);
            }
            L2Cache::Vsc(_) => panic!("expected classic"),
        }
    }

    #[test]
    fn vsc_geometry() {
        let l2 = L2Cache::new(4 * 1024 * 1024, true, 8);
        assert!(l2.is_vsc());
        match l2 {
            L2Cache::Vsc(c) => {
                assert_eq!(c.config().sets, 16384);
                assert_eq!(c.config().tags_per_set, 8);
            }
            L2Cache::Classic(_) => panic!("expected vsc"),
        }
    }

    #[test]
    fn unified_fill_and_lookup() {
        for use_vsc in [false, true] {
            let mut l2 = L2Cache::new(64 * 1024, use_vsc, 8);
            let a = BlockAddr(42);
            assert!(!l2.lookup(a).hit);
            l2.fill(a, 3, true, DirEntry::new());
            let info = l2.lookup(a);
            assert!(info.hit);
            assert!(info.prefetch_first_touch);
            assert_eq!(info.compressed, use_vsc, "classic never reports compressed");
            assert_eq!(l2.segments_of(a), Some(if use_vsc { 3 } else { 8 }));
        }
    }

    #[test]
    fn invalidate_drops_line_and_returns_directory() {
        for use_vsc in [false, true] {
            let mut l2 = L2Cache::new(64 * 1024, use_vsc, 8);
            let a = BlockAddr(7);
            assert!(l2.invalidate(a).is_none(), "nothing resident yet");
            l2.fill(a, 2, false, DirEntry::new());
            assert!(l2.contains(a));
            let dir = l2.invalidate(a);
            assert!(dir.is_some(), "vsc={use_vsc}");
            assert!(!l2.contains(a), "line gone after invalidate (vsc={use_vsc})");
            assert!(l2.invalidate(a).is_none(), "second invalidate is a no-op");
        }
    }

    #[test]
    fn valid_lines_counts_both_organizations() {
        for use_vsc in [false, true] {
            let mut l2 = L2Cache::new(64 * 1024, use_vsc, 8);
            assert_eq!(l2.valid_lines(), 0);
            for i in 0..5u64 {
                l2.fill(BlockAddr(i), 4, false, DirEntry::new());
            }
            assert_eq!(l2.valid_lines(), 5, "vsc={use_vsc}");
        }
    }

    #[test]
    fn victim_tags_only_on_vsc() {
        let mut l2 = L2Cache::new(64 * 1024, true, 8);
        // Fill one set beyond capacity to create a victim tag. With 64 KB
        // VSC: 256 sets; same-set lines are 256 apart.
        for i in 0..5u64 {
            l2.fill(BlockAddr(i * 256), 8, false, DirEntry::new());
        }
        assert!(l2.lookup(BlockAddr(0)).victim_tag);
    }
}
