//! Persistent, content-addressed experiment result store.
//!
//! Where the checkpoint [`journal`](crate::journal) makes *one* sweep
//! resumable, the store makes results reusable **across** sweeps,
//! processes and days: every completed cell is addressed by
//! `(structural config fingerprint, workload, variant, seed)` — with the
//! simulation length folded into the fingerprint — and a sweep consults
//! the store before scheduling each cell, computes only the delta, and
//! publishes what it computed. A million-cell sweep whose cells mostly
//! exist already finishes in the time it takes to read them back, and
//! two overlapping sweeps share work instead of repeating it.
//!
//! On-disk layout (under [`default_store_dir`], overridable via
//! `CMPSIM_STORE`):
//!
//! ```text
//! target/store/
//!   <fingerprint>.jsonl   # data: header + CRC-sealed cell records
//!   <fingerprint>.idx     # index: one "key → byte offset/len" line per record
//!   lru.jsonl             # logical-clock touch records driving eviction
//! ```
//!
//! The data file reuses the journal's framing byte-for-byte: a
//! `{"cmpsim_store":…,"fingerprint":"…"}` header (tempfile + atomic
//! rename) followed by one sealed record per cell, each carrying an
//! FNV-1a-32 `crc` so in-place corruption is detected and the cell
//! recomputed rather than silently served wrong. The `.idx` sidecar
//! makes a cold lookup O(1): one line per record mapping the cell key to
//! the record's byte range, so a hit reads *only that record* from the
//! data file. The index is disposable — if it is missing, stale (a crash
//! between the data append and the index append) or lies (its range
//! fails the CRC), the store falls back to scanning the data file and
//! rewrites the index.
//!
//! Size is bounded: when the data files exceed the configured budget
//! (`CMPSIM_STORE_MAX_BYTES`, default 512 MiB), whole fingerprint files
//! are evicted least-recently-*touched* first, driven by a logical
//! counter in `lru.jsonl` — no wall-clock reads, so store behavior stays
//! deterministic.
//!
//! Concurrency: a store handle is `Sync` and meant to be shared
//! (`Arc<ResultStore>`) by every sweep in the process. [`lease`]
//! (ResultStore::lease) dedups *in-flight* work — the first sweep to ask
//! for a missing cell computes it while later askers block until the
//! result is published, so overlapping sweeps compute each cell exactly
//! once. Cross-process sharing is append-only and last-wins: concurrent
//! appends of the same cell are benign (the records are bit-identical by
//! the determinism contract).
//!
//! The store is **bit-inert**: a warm run decodes to exactly the
//! `RunResult` the cold run produced (the journal's bit-exact encoding),
//! so `run_grid_*` results — and the `grid_digest` golden gate — are
//! identical with the store cold, warm, or absent.

use crate::config::Variant;
use crate::journal::{self, JournalEntry};
use crate::stats::RunResult;
use cmpsim_harness::metrics::{self, Counter, Gauge, Histogram};
use std::collections::HashMap;
use std::fs;
use std::io::{self, Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Store format version, written into every data-file header. Bumping it
/// orphans old files (they stop matching and are eventually evicted).
pub const STORE_VERSION: u64 = 1;

/// Default size budget for the data files: 512 MiB.
pub const DEFAULT_MAX_BYTES: u64 = 512 * 1024 * 1024;

/// The per-cell part of a store address; the config/length part is the
/// structural [`journal::fingerprint`] the store shards files by.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CellKey {
    /// Workload name.
    pub workload: String,
    /// Configuration variant.
    pub variant: Variant,
    /// Seed the cell runs with.
    pub seed: u64,
}

impl CellKey {
    /// Convenience constructor.
    pub fn new(workload: impl Into<String>, variant: Variant, seed: u64) -> Self {
        CellKey { workload: workload.into(), variant, seed }
    }
}

/// Hit/miss/maintenance counters for one store handle (not persisted).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups served from the store (memory or disk).
    pub hits: u64,
    /// Compute claims granted by [`ResultStore::lease`] — the cells that
    /// actually had to be simulated. Plain [`ResultStore::get`] probes
    /// count hits only, so a probe-then-lease sequence (how the grid
    /// drivers consult the store) tallies each cell exactly once.
    pub misses: u64,
    /// Results published into the store by this handle.
    pub published: u64,
    /// Lease requests that blocked on another sweep computing the same
    /// cell and were then served its published result.
    pub shared_waits: u64,
    /// Records skipped because their CRC (or framing) failed — each one
    /// recomputes instead of serving corrupt data.
    pub corrupt_skipped: u64,
    /// Whole fingerprint files evicted by the size bound.
    pub evicted_files: u64,
    /// Bytes reclaimed by eviction.
    pub evicted_bytes: u64,
}

impl StoreStats {
    /// Hit rate over all lookups, as a percentage (0 when idle).
    pub fn hit_rate_pct(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 * 100.0 / total as f64
        }
    }
}

/// Store I/O failure, tagged with the path and operation (mirrors
/// [`journal::JournalError`]).
#[derive(Debug)]
pub struct StoreError {
    /// File the operation touched.
    pub path: PathBuf,
    /// What the store was doing.
    pub op: &'static str,
    /// The underlying I/O error.
    pub source: io::Error,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "store {} failed for {}: {}", self.op, self.path.display(), self.source)
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Outcome of [`ResultStore::lease`].
#[derive(Debug)]
pub enum Lease {
    /// The cell exists (or was just published by another sweep we waited
    /// on); here is its bit-identical result.
    Hit(RunResult),
    /// The cell is missing and this caller owns computing it. Publish
    /// through the guard; dropping it unpublished releases the claim so
    /// a waiting sweep computes instead.
    Compute(ComputeLease),
}

/// Exclusive claim on computing one missing cell (see [`Lease`]).
#[derive(Debug)]
pub struct ComputeLease {
    store: Arc<ResultStore>,
    fp: u64,
    key: CellKey,
    done: bool,
}

impl ComputeLease {
    /// Publishes the computed result under the leased key and wakes any
    /// sweeps waiting on it.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the data/index append; the claim is
    /// released either way.
    pub fn publish(mut self, result: &RunResult) -> Result<(), StoreError> {
        self.done = true;
        self.store.publish_leased(self.fp, &self.key, result)
    }
}

impl Drop for ComputeLease {
    fn drop(&mut self) {
        if !self.done {
            self.store.abandon(self.fp, &self.key);
        }
    }
}

/// Per-fingerprint in-memory view of one data/index file pair.
#[derive(Debug, Default)]
struct Shard {
    /// Key → `(offset, len)` of the sealed record in the data file
    /// (last-wins on duplicate appends).
    offsets: HashMap<CellKey, (u64, u32)>,
    /// Records already decoded this session.
    decoded: HashMap<CellKey, RunResult>,
    /// Whether the data file existed with a valid header at load time
    /// (false until the first publish creates it).
    on_disk: bool,
}

#[derive(Debug, Default)]
struct Inner {
    shards: HashMap<u64, Shard>,
    /// In-flight computes, deduplicating overlapping sweeps.
    pending: HashMap<(u64, CellKey), ()>,
    /// Logical LRU clock (max of `lru.jsonl` at open, then monotonic).
    touch_seq: u64,
    /// Last-touch per fingerprint, mirrored to `lru.jsonl`.
    touched: HashMap<u64, u64>,
    stats: StoreStats,
}

/// Global-registry handles mirroring [`StoreStats`], resolved once per
/// store handle (`None` when `CMPSIM_METRICS=0`). Every bump is a
/// relaxed atomic beside the existing `StoreStats` field update —
/// observe-only, nothing feeds back into what a sweep computes.
#[derive(Debug)]
struct StoreMetrics {
    hits: Counter,
    misses: Counter,
    published: Counter,
    shared_waits: Counter,
    corrupt_skipped: Counter,
    evicted_files: Counter,
    evicted_bytes: Counter,
    resident_bytes: Gauge,
    lease_wait_nanos: Histogram,
}

impl StoreMetrics {
    fn arm() -> Option<StoreMetrics> {
        if !metrics::enabled() {
            return None;
        }
        let r = metrics::global();
        Some(StoreMetrics {
            hits: r.counter("store_hits"),
            misses: r.counter("store_misses"),
            published: r.counter("store_published"),
            shared_waits: r.counter("store_shared_waits"),
            corrupt_skipped: r.counter("store_corrupt_skipped"),
            evicted_files: r.counter("store_evicted_files"),
            evicted_bytes: r.counter("store_evicted_bytes"),
            resident_bytes: r.gauge("store_resident_bytes"),
            lease_wait_nanos: r.histogram("store_lease_wait_nanos"),
        })
    }
}

/// A persistent, content-addressed store of experiment results. See the
/// module docs for layout, keying, eviction and the concurrency model.
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
    max_bytes: u64,
    inner: Mutex<Inner>,
    published_cond: Condvar,
    metrics: Option<StoreMetrics>,
}

/// Default store directory: `CMPSIM_STORE`, else the sibling of the
/// journal dir (`$CARGO_TARGET_DIR/store`, the nearest enclosing
/// `target/`, or `./target/store`).
pub fn default_store_dir() -> PathBuf {
    if let Ok(d) = std::env::var("CMPSIM_STORE") {
        return PathBuf::from(d);
    }
    let grid = journal::default_journal_dir();
    match grid.parent() {
        Some(p) => p.join("store"),
        None => PathBuf::from("target/store"),
    }
}

impl ResultStore {
    /// Opens (creating lazily on first publish) a store rooted at `dir`,
    /// with the size budget from `CMPSIM_STORE_MAX_BYTES` (bytes; default
    /// [`DEFAULT_MAX_BYTES`]).
    pub fn open(dir: impl Into<PathBuf>) -> Arc<ResultStore> {
        let max_bytes = std::env::var("CMPSIM_STORE_MAX_BYTES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_MAX_BYTES);
        Self::with_capacity(dir, max_bytes)
    }

    /// Opens the default store ([`default_store_dir`], i.e. honoring
    /// `CMPSIM_STORE`).
    pub fn open_default() -> Arc<ResultStore> {
        Self::open(default_store_dir())
    }

    /// [`open`](Self::open) with an explicit size budget in bytes.
    pub fn with_capacity(dir: impl Into<PathBuf>, max_bytes: u64) -> Arc<ResultStore> {
        let dir = dir.into();
        let store = ResultStore {
            dir,
            max_bytes: max_bytes.max(1),
            inner: Mutex::new(Inner::default()),
            published_cond: Condvar::new(),
            metrics: StoreMetrics::arm(),
        };
        {
            let mut inner = store.lock();
            store.load_lru(&mut inner);
        }
        Arc::new(store)
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Snapshot of this handle's hit/miss/maintenance counters.
    pub fn stats(&self) -> StoreStats {
        self.lock().stats
    }

    /// Total bytes of fingerprint data files currently on disk, scanned
    /// fresh. Also refreshes the `store_resident_bytes` gauge, so a
    /// metrics snapshot taken right after reflects reality even when no
    /// eviction pass has run yet.
    pub fn resident_bytes(&self) -> u64 {
        let mut total = 0u64;
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for e in entries.flatten() {
                let name = e.file_name();
                let Some(name) = name.to_str() else { continue };
                let Some(hex) = name.strip_suffix(".jsonl") else { continue };
                if u64::from_str_radix(hex, 16).is_err() {
                    continue;
                }
                total += e.metadata().map(|m| m.len()).unwrap_or(0);
            }
        }
        if let Some(m) = &self.metrics {
            m.resident_bytes.set(total);
        }
        total
    }

    /// Non-blocking lookup: the stored result for `(fp, key)`, if any.
    /// Counts a hit when found; a probe miss is not tallied (the lease
    /// that follows it counts the compute — see [`StoreStats::misses`]).
    pub fn get(&self, fp: u64, key: &CellKey) -> Option<RunResult> {
        let mut inner = self.lock();
        let found = self.lookup(&mut inner, fp, key);
        if found.is_some() {
            inner.stats.hits += 1;
            if let Some(m) = &self.metrics {
                m.hits.inc();
            }
        }
        found
    }

    /// Counter-neutral membership probe: whether `(fp, key)` is stored
    /// (and decodable), without tallying a hit. For planning/telemetry —
    /// e.g. the serve daemon labels each cell's source before a sweep.
    pub fn contains(&self, fp: u64, key: &CellKey) -> bool {
        let mut inner = self.lock();
        self.lookup(&mut inner, fp, key).is_some()
    }

    /// Looks the cell up; on a miss, either claims the compute for this
    /// caller or — when another sweep already holds the claim — blocks
    /// until that sweep publishes (then returns its result) or abandons
    /// (then claims for this caller). This is what lets two overlapping
    /// sweeps share a store and still compute every cell exactly once.
    pub fn lease(self: &Arc<Self>, fp: u64, key: &CellKey) -> Lease {
        let mut inner = self.lock();
        // Wait time is measured from the first block to the handoff —
        // the `store_lease_wait_nanos` histogram is how lease contention
        // between overlapping sweeps shows up in a metrics snapshot.
        let mut wait_start: Option<Instant> = None;
        loop {
            if let Some(r) = self.lookup(&mut inner, fp, key) {
                inner.stats.hits += 1;
                if let Some(m) = &self.metrics {
                    m.hits.inc();
                }
                if wait_start.is_some() {
                    inner.stats.shared_waits += 1;
                    if let Some(m) = &self.metrics {
                        m.shared_waits.inc();
                    }
                }
                if let (Some(m), Some(t0)) = (&self.metrics, wait_start) {
                    m.lease_wait_nanos.record_elapsed(t0);
                }
                return Lease::Hit(r);
            }
            if inner.pending.contains_key(&(fp, key.clone())) {
                wait_start.get_or_insert_with(Instant::now);
                inner = self
                    .published_cond
                    .wait(inner)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                continue;
            }
            inner.pending.insert((fp, key.clone()), ());
            inner.stats.misses += 1;
            if let Some(m) = &self.metrics {
                m.misses.inc();
                if let Some(t0) = wait_start {
                    // Waited on a claim that was abandoned; the compute
                    // handed off to us.
                    m.lease_wait_nanos.record_elapsed(t0);
                }
            }
            return Lease::Compute(ComputeLease {
                store: Arc::clone(self),
                fp,
                key: key.clone(),
                done: false,
            });
        }
    }

    /// Publishes a result without a lease (e.g. warming the store from a
    /// journal). Appends to the data file, then the index, then updates
    /// the in-memory shard and the LRU clock, then enforces the size
    /// bound.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the appends.
    pub fn publish(&self, fp: u64, key: &CellKey, result: &RunResult) -> Result<(), StoreError> {
        let mut inner = self.lock();
        self.publish_locked(&mut inner, fp, key, result)?;
        self.published_cond.notify_all();
        Ok(())
    }

    fn publish_leased(&self, fp: u64, key: &CellKey, result: &RunResult) -> Result<(), StoreError> {
        let mut inner = self.lock();
        inner.pending.remove(&(fp, key.clone()));
        let out = self.publish_locked(&mut inner, fp, key, result);
        drop(inner);
        self.published_cond.notify_all();
        out
    }

    fn abandon(&self, fp: u64, key: &CellKey) {
        let mut inner = self.lock();
        inner.pending.remove(&(fp, key.clone()));
        drop(inner);
        self.published_cond.notify_all();
    }

    // ------------------------------------------------------ internals

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panic while publishing must not wedge every other sweep.
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn data_path(&self, fp: u64) -> PathBuf {
        self.dir.join(format!("{fp:016x}.jsonl"))
    }

    fn index_path(&self, fp: u64) -> PathBuf {
        self.dir.join(format!("{fp:016x}.idx"))
    }

    fn lru_path(&self) -> PathBuf {
        self.dir.join("lru.jsonl")
    }

    fn err(path: &Path, op: &'static str, source: io::Error) -> StoreError {
        StoreError { path: path.to_path_buf(), op, source }
    }

    /// Finds `(fp, key)` in the shard, decoding its record from the data
    /// file on first access (CRC-verified; a bad record is dropped from
    /// the index view and counts as a miss so the cell recomputes).
    fn lookup(&self, inner: &mut Inner, fp: u64, key: &CellKey) -> Option<RunResult> {
        self.load_shard(inner, fp);
        let shard = inner.shards.get_mut(&fp)?;
        if let Some(r) = shard.decoded.get(key) {
            return Some(r.clone());
        }
        let (offset, len) = *shard.offsets.get(key)?;
        let path = self.data_path(fp);
        match read_record(&path, offset, len) {
            Ok(entry)
                if entry.workload == key.workload
                    && entry.variant == key.variant
                    && entry.seed == key.seed =>
            {
                let result = entry.result;
                shard.decoded.insert(key.clone(), result.clone());
                Some(result)
            }
            Ok(_) => {
                // The index pointed at a record for a different cell
                // (crash between data and index appends can misalign a
                // rebuilt index). Drop the lie; the cell recomputes.
                shard.offsets.remove(key);
                inner.stats.corrupt_skipped += 1;
                if let Some(m) = &self.metrics {
                    m.corrupt_skipped.inc();
                }
                None
            }
            Err(_) => {
                shard.offsets.remove(key);
                inner.stats.corrupt_skipped += 1;
                if let Some(m) = &self.metrics {
                    m.corrupt_skipped.inc();
                }
                None
            }
        }
    }

    /// Ensures the shard for `fp` is loaded: reads the index sidecar,
    /// falls back to (and repairs from) a full data-file scan when the
    /// index is missing or behind the data file.
    fn load_shard(&self, inner: &mut Inner, fp: u64) {
        if inner.shards.contains_key(&fp) {
            return;
        }
        let mut shard = Shard::default();
        let data_path = self.data_path(fp);
        let data_len = match fs::metadata(&data_path) {
            Ok(m) => m.len(),
            Err(_) => {
                inner.shards.insert(fp, shard);
                return;
            }
        };
        // Header check: the first line must identify this store version
        // and fingerprint. Anything else is a foreign or corrupt file —
        // rotate it aside (never delete: mirror the journal's stale
        // policy) and start empty.
        match read_header_fp(&data_path) {
            Some(h) if h == fp => {}
            _ => {
                let mut aside = data_path.as_os_str().to_os_string();
                aside.push(".corrupt");
                let _ = fs::rename(&data_path, PathBuf::from(aside));
                let _ = fs::remove_file(self.index_path(fp));
                inner.stats.corrupt_skipped += 1;
                if let Some(m) = &self.metrics {
                    m.corrupt_skipped.inc();
                }
                inner.shards.insert(fp, shard);
                return;
            }
        }
        shard.on_disk = true;
        let mut covered = 0u64;
        if let Ok(idx) = fs::read_to_string(self.index_path(fp)) {
            for line in idx.lines() {
                if let Some((key, offset, len)) = decode_index_line(line) {
                    covered = covered.max(offset + u64::from(len));
                    shard.offsets.insert(key, (offset, len));
                }
            }
        }
        if covered > data_len {
            // The index claims more than the data file holds (truncated
            // data, stale index): rebuild from scratch.
            shard.offsets.clear();
            covered = 0;
        }
        if data_len > covered {
            // Data beyond index coverage (missing index, or a crash
            // between the two appends): scan the tail and extend.
            let (tail, base) = match scan_from(&data_path, covered) {
                Ok(t) => t,
                Err(_) => (Vec::new(), covered),
            };
            let _ = base;
            let mut idx_lines = String::new();
            for (key, offset, len, bad) in tail {
                if bad {
                    inner.stats.corrupt_skipped += 1;
                    if let Some(m) = &self.metrics {
                        m.corrupt_skipped.inc();
                    }
                    continue;
                }
                idx_lines.push_str(&encode_index_line(&key, offset, len));
                idx_lines.push('\n');
                shard.offsets.insert(key, (offset, len));
            }
            if !idx_lines.is_empty() {
                let _ = append_bytes(&self.index_path(fp), idx_lines.as_bytes());
            }
        }
        self.touch(inner, fp);
        inner.shards.insert(fp, shard);
    }

    fn publish_locked(
        &self,
        inner: &mut Inner,
        fp: u64,
        key: &CellKey,
        result: &RunResult,
    ) -> Result<(), StoreError> {
        self.load_shard(inner, fp);
        fs::create_dir_all(&self.dir).map_err(|e| Self::err(&self.dir, "create dir", e))?;
        let data_path = self.data_path(fp);
        let shard = inner.shards.entry(fp).or_default();
        if !shard.on_disk {
            // Header via tempfile + atomic rename: no reader can observe
            // a half-written header.
            let tmp = data_path.with_extension("tmp");
            fs::write(
                &tmp,
                format!("{{\"cmpsim_store\":{STORE_VERSION},\"fingerprint\":\"{fp:016x}\"}}\n"),
            )
            .map_err(|e| Self::err(&tmp, "write header", e))?;
            fs::rename(&tmp, &data_path).map_err(|e| Self::err(&data_path, "rename header", e))?;
            shard.on_disk = true;
        }
        let entry = JournalEntry {
            workload: key.workload.clone(),
            variant: key.variant,
            seed: key.seed,
            result: result.clone(),
        };
        let mut line = journal::encode_entry(&entry);
        line.push('\n');
        // Data first, index second: a crash in between leaves the record
        // recoverable by the tail scan in `load_shard`.
        let offset = append_bytes(&data_path, line.as_bytes())
            .map_err(|e| Self::err(&data_path, "append", e))?;
        let len = line.len() as u32;
        let idx_path = self.index_path(fp);
        let mut idx_line = encode_index_line(key, offset, len);
        idx_line.push('\n');
        append_bytes(&idx_path, idx_line.as_bytes())
            .map_err(|e| Self::err(&idx_path, "append index", e))?;

        let shard = inner.shards.entry(fp).or_default();
        shard.offsets.insert(key.clone(), (offset, len));
        shard.decoded.insert(key.clone(), result.clone());
        inner.stats.published += 1;
        if let Some(m) = &self.metrics {
            m.published.inc();
        }
        self.touch(inner, fp);
        self.evict_to_budget(inner, fp);
        Ok(())
    }

    /// Bumps `fp` on the logical LRU clock, appending to `lru.jsonl`.
    fn touch(&self, inner: &mut Inner, fp: u64) {
        inner.touch_seq += 1;
        let seq = inner.touch_seq;
        inner.touched.insert(fp, seq);
        let _ = append_bytes(
            &self.lru_path(),
            format!("{{\"fingerprint\":\"{fp:016x}\",\"touch\":{seq}}}\n").as_bytes(),
        );
    }

    fn load_lru(&self, inner: &mut Inner) {
        if let Ok(text) = fs::read_to_string(self.lru_path()) {
            for line in text.lines() {
                let Some(kvs) = crate::flatjson::parse_flat(line) else { continue };
                let map: HashMap<_, _> = kvs.into_iter().collect();
                let fp = map
                    .get("fingerprint")
                    .and_then(|v| v.as_str())
                    .and_then(|s| u64::from_str_radix(s, 16).ok());
                let seq = map.get("touch").and_then(|v| v.as_u64());
                if let (Some(fp), Some(seq)) = (fp, seq) {
                    inner.touch_seq = inner.touch_seq.max(seq);
                    inner.touched.insert(fp, seq);
                }
            }
        }
    }

    /// Evicts least-recently-touched fingerprint files until the data
    /// files fit the budget. The fingerprint just published to
    /// (`keep_fp`) is never self-evicted mid-sweep.
    fn evict_to_budget(&self, inner: &mut Inner, keep_fp: u64) {
        let mut sizes: Vec<(u64, u64)> = Vec::new(); // (fp, bytes)
        let mut total = 0u64;
        let Ok(entries) = fs::read_dir(&self.dir) else { return };
        for e in entries.flatten() {
            let name = e.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(hex) = name.strip_suffix(".jsonl") else { continue };
            let Ok(fp) = u64::from_str_radix(hex, 16) else { continue };
            let bytes = e.metadata().map(|m| m.len()).unwrap_or(0);
            total += bytes;
            sizes.push((fp, bytes));
        }
        if total <= self.max_bytes {
            if let Some(m) = &self.metrics {
                m.resident_bytes.set(total);
            }
            return;
        }
        // Oldest logical touch first; untouched files (no lru record,
        // e.g. orphans from a crashed process) count as oldest of all.
        sizes.sort_by_key(|&(fp, _)| (inner.touched.get(&fp).copied().unwrap_or(0), fp));
        for (fp, bytes) in sizes {
            if total <= self.max_bytes {
                break;
            }
            if fp == keep_fp {
                continue;
            }
            let _ = fs::remove_file(self.data_path(fp));
            let _ = fs::remove_file(self.index_path(fp));
            inner.shards.remove(&fp);
            inner.touched.remove(&fp);
            inner.stats.evicted_files += 1;
            inner.stats.evicted_bytes += bytes;
            if let Some(m) = &self.metrics {
                m.evicted_files.inc();
                m.evicted_bytes.add(bytes);
            }
            total = total.saturating_sub(bytes);
        }
        if let Some(m) = &self.metrics {
            m.resident_bytes.set(total);
        }
        // Compact the LRU file to the surviving fingerprints.
        let mut compact = String::new();
        let mut survivors: Vec<_> = inner.touched.iter().collect();
        survivors.sort_by_key(|&(_, seq)| *seq);
        for (fp, seq) in survivors {
            compact.push_str(&format!("{{\"fingerprint\":\"{fp:016x}\",\"touch\":{seq}}}\n"));
        }
        let tmp = self.lru_path().with_extension("tmp");
        if fs::write(&tmp, compact).is_ok() {
            let _ = fs::rename(&tmp, self.lru_path());
        }
    }
}

/// Appends `bytes` as one `write_all` to `path` (creating it if needed)
/// and returns the offset the write started at.
fn append_bytes(path: &Path, bytes: &[u8]) -> io::Result<u64> {
    let mut f = fs::OpenOptions::new().create(true).append(true).open(path)?;
    let offset = f.seek(SeekFrom::End(0))?;
    f.write_all(bytes)?;
    Ok(offset)
}

/// Reads and CRC-verifies the sealed record at `offset..offset+len`.
fn read_record(path: &Path, offset: u64, len: u32) -> Result<JournalEntry, String> {
    let mut f = fs::File::open(path).map_err(|e| e.to_string())?;
    f.seek(SeekFrom::Start(offset)).map_err(|e| e.to_string())?;
    let mut buf = vec![0u8; len as usize];
    f.read_exact(&mut buf).map_err(|e| e.to_string())?;
    let line = std::str::from_utf8(&buf).map_err(|e| e.to_string())?;
    match journal::decode_line(line.trim_end_matches('\n')) {
        Ok(journal::Decoded::Entry(e)) => Ok(e),
        Ok(journal::Decoded::Failure { .. }) => Err("failure record in store".to_string()),
        Err(reason) => Err(reason),
    }
}

/// Parses the header line of a data file into its fingerprint, checking
/// the store version.
fn read_header_fp(path: &Path) -> Option<u64> {
    let mut f = fs::File::open(path).ok()?;
    let mut buf = [0u8; 128];
    let n = f.read(&mut buf).ok()?;
    let text = std::str::from_utf8(&buf[..n]).ok()?;
    let line = text.lines().next()?;
    let kvs = crate::flatjson::parse_flat(line)?;
    let map: HashMap<_, _> = kvs.into_iter().collect();
    if map.get("cmpsim_store").and_then(|v| v.as_u64()) != Some(STORE_VERSION) {
        return None;
    }
    map.get("fingerprint")
        .and_then(|v| v.as_str())
        .and_then(|s| u64::from_str_radix(s, 16).ok())
}

fn encode_index_line(key: &CellKey, offset: u64, len: u32) -> String {
    debug_assert!(!key.workload.contains(['"', '\\']), "workload names are plain identifiers");
    format!(
        "{{\"workload\":\"{}\",\"variant\":\"{}\",\"seed\":{},\"offset\":{offset},\"len\":{len}}}",
        key.workload,
        key.variant.label(),
        key.seed
    )
}

fn decode_index_line(line: &str) -> Option<(CellKey, u64, u32)> {
    let kvs = crate::flatjson::parse_flat(line)?;
    let map: HashMap<_, _> = kvs.into_iter().collect();
    let workload = map.get("workload")?.as_str()?.to_string();
    let label = map.get("variant")?.as_str()?;
    let variant = *Variant::all().iter().find(|v| v.label() == label)?;
    let seed = map.get("seed")?.as_u64()?;
    let offset = map.get("offset")?.as_u64()?;
    let len = u32::try_from(map.get("len")?.as_u64()?).ok()?;
    Some((CellKey { workload, variant, seed }, offset, len))
}

/// Reads data-file lines starting at byte `from`, returning
/// `(key, offset, len, crc_failed)` per line (the header line, when
/// included, is skipped) plus the file length scanned to.
#[allow(clippy::type_complexity)]
fn scan_from(path: &Path, from: u64) -> io::Result<(Vec<(CellKey, u64, u32, bool)>, u64)> {
    let text = fs::read_to_string(path)?;
    let mut out = Vec::new();
    let mut offset = 0u64;
    for line in text.split_inclusive('\n') {
        let len = line.len() as u64;
        let start = offset;
        offset += len;
        if start < from || !line.ends_with('\n') {
            continue; // already indexed, or a torn tail (recomputes)
        }
        let trimmed = line.trim_end_matches('\n');
        if trimmed.contains("\"cmpsim_store\"") {
            continue; // header
        }
        match journal::decode_line(trimmed) {
            Ok(journal::Decoded::Entry(e)) => out.push((
                CellKey { workload: e.workload, variant: e.variant, seed: e.seed },
                start,
                len as u32,
                false,
            )),
            _ => out.push((
                CellKey::new("?", Variant::Base, u64::MAX),
                start,
                len as u32,
                true,
            )),
        }
    }
    Ok((out, offset))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::SimStats;

    fn result(cycles: u64) -> RunResult {
        RunResult {
            stats: SimStats::default(),
            cycles,
            clock_ghz: 5,
            events: cycles * 2,
            retired: cycles * 3,
            host_nanos: 1,
        }
    }

    fn temp_store(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cmpsim-store-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn publish_then_get_roundtrips_across_handles() {
        let dir = temp_store("roundtrip");
        let key = CellKey::new("apsi", Variant::Prefetch, 11);
        let r = result(1234);
        {
            let store = ResultStore::with_capacity(&dir, u64::MAX);
            assert_eq!(store.get(0xf00, &key), None);
            store.publish(0xf00, &key, &r).unwrap();
            assert_eq!(store.get(0xf00, &key), Some(r.clone()));
            let s = store.stats();
            assert_eq!((s.hits, s.misses, s.published), (1, 0, 1), "probe misses are not tallied");
        }
        // A fresh handle (fresh process, conceptually) reads it back from
        // disk through the index sidecar.
        let store = ResultStore::with_capacity(&dir, u64::MAX);
        assert_eq!(store.get(0xf00, &key), Some(r));
        assert_eq!(store.get(0xf00, &CellKey::new("apsi", Variant::Base, 11)), None);
        assert_eq!(store.get(0xbad, &key), None, "fingerprints are separate shards");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_index_is_rebuilt_from_data_scan() {
        let dir = temp_store("reindex");
        let key = CellKey::new("mgrid", Variant::BothCompression, 7);
        let r = result(99);
        {
            let store = ResultStore::with_capacity(&dir, u64::MAX);
            store.publish(0x1, &key, &r).unwrap();
        }
        let idx = dir.join("0000000000000001.idx");
        fs::remove_file(&idx).unwrap();
        let store = ResultStore::with_capacity(&dir, u64::MAX);
        assert_eq!(store.get(0x1, &key), Some(r), "scan fallback finds the record");
        assert!(idx.exists(), "index is rewritten by the scan");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_record_is_skipped_and_recomputable() {
        let dir = temp_store("corrupt");
        let key = CellKey::new("apsi", Variant::Base, 1);
        {
            let store = ResultStore::with_capacity(&dir, u64::MAX);
            store.publish(0x2, &key, &result(50)).unwrap();
        }
        // Flip one digit inside the record body.
        let data = dir.join("0000000000000002.jsonl");
        let text = fs::read_to_string(&data).unwrap();
        fs::write(&data, text.replacen("\"cycles\":50", "\"cycles\":51", 1)).unwrap();
        let store = ResultStore::with_capacity(&dir, u64::MAX);
        assert_eq!(store.get(0x2, &key), None, "corrupt record must not be served");
        assert!(store.stats().corrupt_skipped >= 1);
        // Republish heals it (last-wins).
        store.publish(0x2, &key, &result(50)).unwrap();
        assert_eq!(store.get(0x2, &key), Some(result(50)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_record_is_ignored() {
        let dir = temp_store("torn");
        let key = CellKey::new("apsi", Variant::Base, 1);
        let keep = CellKey::new("mgrid", Variant::Base, 1);
        {
            let store = ResultStore::with_capacity(&dir, u64::MAX);
            store.publish(0x3, &keep, &result(1)).unwrap();
            store.publish(0x3, &key, &result(2)).unwrap();
        }
        // Tear the last record mid-line and drop the index entirely, as a
        // kill between the two appends would.
        let data = dir.join("0000000000000003.jsonl");
        let text = fs::read_to_string(&data).unwrap();
        fs::write(&data, &text[..text.len() - 20]).unwrap();
        fs::remove_file(dir.join("0000000000000003.idx")).unwrap();
        let store = ResultStore::with_capacity(&dir, u64::MAX);
        assert_eq!(store.get(0x3, &keep), Some(result(1)), "intact record survives");
        assert_eq!(store.get(0x3, &key), None, "torn record recomputes");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lease_dedups_inflight_and_blocks_waiters() {
        let dir = temp_store("lease");
        let store = ResultStore::with_capacity(&dir, u64::MAX);
        let key = CellKey::new("apsi", Variant::Base, 1);
        let Lease::Compute(lease) = store.lease(0x4, &key) else {
            panic!("first lease must be a compute claim")
        };
        // A concurrent asker blocks until we publish, then gets a hit.
        let waiter = {
            let store = Arc::clone(&store);
            let key = key.clone();
            std::thread::spawn(move || match store.lease(0x4, &key) {
                Lease::Hit(r) => r,
                Lease::Compute(_) => panic!("waiter must be served the published result"),
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(30));
        lease.publish(&result(7)).unwrap();
        assert_eq!(waiter.join().unwrap(), result(7));
        assert_eq!(store.stats().published, 1, "cell computed exactly once");
        assert!(store.stats().shared_waits >= 1);

        // An abandoned claim hands the compute to the next asker.
        let key2 = CellKey::new("mgrid", Variant::Base, 1);
        let Lease::Compute(lease) = store.lease(0x4, &key2) else { panic!() };
        drop(lease);
        assert!(matches!(store.lease(0x4, &key2), Lease::Compute(_)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_eviction_bounds_store_size() {
        let dir = temp_store("lru");
        // Budget below two data files, far above one.
        let one_file = {
            let probe = temp_store("lru-probe");
            let store = ResultStore::with_capacity(&probe, u64::MAX);
            store.publish(0xa, &CellKey::new("apsi", Variant::Base, 1), &result(1)).unwrap();
            let n = fs::metadata(probe.join(format!("{:016x}.jsonl", 0xa))).unwrap().len();
            let _ = fs::remove_dir_all(&probe);
            n
        };
        let store = ResultStore::with_capacity(&dir, one_file * 2 - 1);
        for fp in [0xa, 0xb, 0xc] {
            store.publish(fp, &CellKey::new("apsi", Variant::Base, 1), &result(fp)).unwrap();
        }
        // Each publish keeps the active file and evicts the older one.
        assert!(!dir.join(format!("{:016x}.jsonl", 0xa)).exists(), "oldest evicted");
        assert!(!dir.join(format!("{:016x}.jsonl", 0xb)).exists());
        assert!(dir.join(format!("{:016x}.jsonl", 0xc)).exists(), "most recent kept");
        assert_eq!(store.stats().evicted_files, 2);
        let total: u64 = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().ends_with(".jsonl"))
            .filter(|e| e.file_name().to_string_lossy() != "lru.jsonl")
            .map(|e| e.metadata().unwrap().len())
            .sum();
        assert!(total <= one_file * 2 - 1, "size bound respected: {total}");
        // Evicted cells are misses (recompute), kept cells are hits.
        assert_eq!(store.get(0xa, &CellKey::new("apsi", Variant::Base, 1)), None);
        assert_eq!(
            store.get(0xc, &CellKey::new("apsi", Variant::Base, 1)),
            Some(result(0xc))
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_data_file_is_rotated_aside_not_served() {
        let dir = temp_store("foreign");
        fs::create_dir_all(&dir).unwrap();
        let data = dir.join(format!("{:016x}.jsonl", 0x9));
        fs::write(&data, "{\"cmpsim_store\":999,\"fingerprint\":\"0000000000000009\"}\n").unwrap();
        let store = ResultStore::with_capacity(&dir, u64::MAX);
        assert_eq!(store.get(0x9, &CellKey::new("apsi", Variant::Base, 1)), None);
        assert!(!data.exists());
        assert!(dir.join(format!("{:016x}.jsonl.corrupt", 0x9)).exists(), "preserved, not deleted");
        let _ = fs::remove_dir_all(&dir);
    }
}
