//! The directory state embedded in each L2 tag, and the MSI transition
//! table the L2 controller runs against it.

use crate::{CoreId, SharerSet};

/// A coherence request arriving at the shared L2 from a private L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum L1Request {
    /// Read miss: requestor wants a `Shared` copy.
    GetS,
    /// Write miss: requestor wants a `Modified` copy (data + exclusivity).
    GetX,
    /// Write hit on a `Shared` copy: requestor wants exclusivity only.
    Upgrade,
    /// Clean eviction notification: requestor drops its `Shared` copy.
    PutS,
    /// Dirty writeback: requestor evicts its `Modified` copy, sending data.
    PutM,
}

/// An action the L2 controller must perform against an L1 to satisfy a
/// request, produced by [`DirEntry::handle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DirAction {
    /// Invalidate a `Shared` copy in the given L1 (no data returned).
    Invalidate(CoreId),
    /// Retrieve dirty data from the given L1's `Modified` copy and
    /// downgrade it to `Shared` (triggered by another core's `GetS`).
    RecallDowngrade(CoreId),
    /// Retrieve dirty data from the given L1's `Modified` copy and
    /// invalidate it (triggered by another core's `GetX`/`Upgrade`, or by
    /// an L2 eviction of an inclusively-held line).
    RecallInvalidate(CoreId),
}

impl DirAction {
    /// The core this action probes.
    pub fn target(&self) -> CoreId {
        match *self {
            DirAction::Invalidate(c)
            | DirAction::RecallDowngrade(c)
            | DirAction::RecallInvalidate(c) => c,
        }
    }

    /// Whether the probed L1 must return dirty data.
    pub fn returns_data(&self) -> bool {
        !matches!(self, DirAction::Invalidate(_))
    }
}

/// Directory view of one L2 line: which L1s share it, whether one of them
/// owns it exclusively, and whether the L2's copy is dirty w.r.t. memory.
///
/// Invariants (checked in debug builds and by property tests):
/// - an `owner` is always the *only* sharer (MSI exclusivity),
/// - `handle` returns the probe actions in deterministic (ascending core)
///   order so simulation stays reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DirEntry {
    sharers: SharerSet,
    owner: Option<CoreId>,
    dirty: bool,
}

impl DirEntry {
    /// A line with no L1 copies and a clean L2 copy.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current set of L1 sharers.
    pub fn sharers(&self) -> SharerSet {
        self.sharers
    }

    /// The L1 holding the line in `Modified`, if any.
    pub fn owner(&self) -> Option<CoreId> {
        self.owner
    }

    /// Whether the L2 copy is dirty with respect to memory.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Marks the L2 copy dirty (e.g. when a fill response carries data
    /// that memory does not yet have).
    pub fn set_dirty(&mut self, dirty: bool) {
        self.dirty = dirty;
    }

    /// Whether any L1 holds a copy (relevant for inclusive-eviction cost).
    pub fn has_l1_copies(&self) -> bool {
        !self.sharers.is_empty()
    }

    /// Checks the MSI structural invariants of this entry: an owner must
    /// be a sharer, and a `Modified` copy must be exclusive.
    ///
    /// Always available (unlike the `debug_assert`-based internal check),
    /// so the simulator's opt-in invariant checker (`CMPSIM_CHECK=1`) can
    /// promote violations to typed errors in release builds.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated invariant.
    pub fn check(&self) -> Result<(), String> {
        if let Some(o) = self.owner {
            if !self.sharers.contains(o) {
                return Err(format!(
                    "owner core {} is not in the sharer set {:?}",
                    o.index(),
                    self.sharers
                ));
            }
            if self.sharers.len() != 1 {
                return Err(format!(
                    "Modified copy at core {} must be exclusive, but {} sharers exist",
                    o.index(),
                    self.sharers.len()
                ));
            }
        }
        Ok(())
    }

    fn debug_check(&self) {
        debug_assert_eq!(self.check(), Ok(()));
    }

    /// Applies `req` from `core` and returns the probes the L2 must issue,
    /// in ascending core order.
    ///
    /// The directory is updated to the post-transition state; the caller is
    /// responsible for charging probe latency and data transfer.
    pub fn handle(&mut self, core: CoreId, req: L1Request) -> Vec<DirAction> {
        let mut actions = Vec::new();
        match req {
            L1Request::GetS => {
                if let Some(o) = self.owner {
                    if o != core {
                        actions.push(DirAction::RecallDowngrade(o));
                        self.dirty = true;
                    }
                    self.owner = None;
                }
                self.sharers.insert(core);
            }
            L1Request::GetX | L1Request::Upgrade => {
                if let Some(o) = self.owner {
                    if o != core {
                        actions.push(DirAction::RecallInvalidate(o));
                        self.sharers.remove(o);
                        self.dirty = true;
                    }
                } else {
                    for other in self.sharers.others(core).collect::<Vec<_>>() {
                        actions.push(DirAction::Invalidate(other));
                        self.sharers.remove(other);
                    }
                }
                self.sharers = SharerSet::singleton(core);
                self.owner = Some(core);
            }
            L1Request::PutS => {
                self.sharers.remove(core);
                if self.owner == Some(core) {
                    // A silent M->S downgrade never happens in this
                    // protocol; treat defensively as ownership loss.
                    self.owner = None;
                }
            }
            L1Request::PutM => {
                if self.owner == Some(core) {
                    self.owner = None;
                    self.dirty = true;
                }
                // A PutM from a non-owner is a stale writeback that raced
                // with an ownership transfer: the data is outdated, so
                // only the sharer bit is dropped.
                self.sharers.remove(core);
            }
        }
        self.debug_check();
        actions
    }

    /// Evicts the line from the L2: every L1 copy must be invalidated to
    /// maintain inclusion. Returns the probes in ascending core order and
    /// resets the entry.
    pub fn recall_all(&mut self) -> Vec<DirAction> {
        let mut actions = Vec::new();
        if let Some(o) = self.owner {
            actions.push(DirAction::RecallInvalidate(o));
            self.dirty = true;
        } else {
            for c in self.sharers.iter() {
                actions.push(DirAction::Invalidate(c));
            }
        }
        self.sharers.clear();
        self.owner = None;
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_accumulate_sharers() {
        let mut d = DirEntry::new();
        assert!(d.handle(CoreId(0), L1Request::GetS).is_empty());
        assert!(d.handle(CoreId(1), L1Request::GetS).is_empty());
        assert_eq!(d.sharers().len(), 2);
        assert_eq!(d.owner(), None);
        assert!(!d.is_dirty());
    }

    #[test]
    fn write_invalidates_readers() {
        let mut d = DirEntry::new();
        d.handle(CoreId(0), L1Request::GetS);
        d.handle(CoreId(2), L1Request::GetS);
        let acts = d.handle(CoreId(1), L1Request::GetX);
        assert_eq!(
            acts,
            vec![DirAction::Invalidate(CoreId(0)), DirAction::Invalidate(CoreId(2))]
        );
        assert_eq!(d.owner(), Some(CoreId(1)));
        assert_eq!(d.sharers().len(), 1);
    }

    #[test]
    fn read_after_write_recalls_and_downgrades() {
        let mut d = DirEntry::new();
        d.handle(CoreId(1), L1Request::GetX);
        let acts = d.handle(CoreId(0), L1Request::GetS);
        assert_eq!(acts, vec![DirAction::RecallDowngrade(CoreId(1))]);
        assert_eq!(d.owner(), None);
        assert!(d.sharers().contains(CoreId(0)));
        assert!(d.sharers().contains(CoreId(1)), "old owner keeps an S copy");
        assert!(d.is_dirty(), "recalled dirty data lands in L2");
    }

    #[test]
    fn write_after_write_migrates_ownership() {
        let mut d = DirEntry::new();
        d.handle(CoreId(1), L1Request::GetX);
        let acts = d.handle(CoreId(3), L1Request::GetX);
        assert_eq!(acts, vec![DirAction::RecallInvalidate(CoreId(1))]);
        assert_eq!(d.owner(), Some(CoreId(3)));
        assert_eq!(d.sharers().len(), 1);
        assert!(d.is_dirty());
    }

    #[test]
    fn upgrade_from_shared() {
        let mut d = DirEntry::new();
        d.handle(CoreId(0), L1Request::GetS);
        d.handle(CoreId(1), L1Request::GetS);
        let acts = d.handle(CoreId(0), L1Request::Upgrade);
        assert_eq!(acts, vec![DirAction::Invalidate(CoreId(1))]);
        assert_eq!(d.owner(), Some(CoreId(0)));
    }

    #[test]
    fn rewrite_by_owner_is_free() {
        let mut d = DirEntry::new();
        d.handle(CoreId(2), L1Request::GetX);
        assert!(d.handle(CoreId(2), L1Request::GetX).is_empty());
        assert_eq!(d.owner(), Some(CoreId(2)));
    }

    #[test]
    fn putm_clears_ownership_and_dirties_l2() {
        let mut d = DirEntry::new();
        d.handle(CoreId(2), L1Request::GetX);
        assert!(d.handle(CoreId(2), L1Request::PutM).is_empty());
        assert_eq!(d.owner(), None);
        assert!(!d.has_l1_copies());
        assert!(d.is_dirty());
    }

    #[test]
    fn puts_drops_sharer() {
        let mut d = DirEntry::new();
        d.handle(CoreId(0), L1Request::GetS);
        d.handle(CoreId(1), L1Request::GetS);
        d.handle(CoreId(0), L1Request::PutS);
        assert!(!d.sharers().contains(CoreId(0)));
        assert!(d.sharers().contains(CoreId(1)));
    }

    #[test]
    fn recall_all_for_inclusion() {
        let mut d = DirEntry::new();
        d.handle(CoreId(0), L1Request::GetS);
        d.handle(CoreId(1), L1Request::GetS);
        let acts = d.recall_all();
        assert_eq!(
            acts,
            vec![DirAction::Invalidate(CoreId(0)), DirAction::Invalidate(CoreId(1))]
        );
        assert!(!d.has_l1_copies());

        let mut d = DirEntry::new();
        d.handle(CoreId(5), L1Request::GetX);
        let acts = d.recall_all();
        assert_eq!(acts, vec![DirAction::RecallInvalidate(CoreId(5))]);
        assert!(d.is_dirty());
    }

    #[test]
    fn check_holds_through_transitions() {
        let mut d = DirEntry::new();
        assert_eq!(d.check(), Ok(()));
        d.handle(CoreId(0), L1Request::GetS);
        d.handle(CoreId(1), L1Request::GetS);
        assert_eq!(d.check(), Ok(()));
        d.handle(CoreId(2), L1Request::GetX);
        assert_eq!(d.check(), Ok(()));
        d.handle(CoreId(2), L1Request::PutM);
        assert_eq!(d.check(), Ok(()));
        d.recall_all();
        assert_eq!(d.check(), Ok(()));
    }

    #[test]
    fn action_metadata() {
        assert_eq!(DirAction::Invalidate(CoreId(4)).target(), CoreId(4));
        assert!(!DirAction::Invalidate(CoreId(4)).returns_data());
        assert!(DirAction::RecallDowngrade(CoreId(4)).returns_data());
        assert!(DirAction::RecallInvalidate(CoreId(4)).returns_data());
    }
}
