//! MSI coherence substrate for the CMP's inclusive shared L2.
//!
//! The paper's base design (§2) keeps the private L1 caches coherent with
//! an MSI protocol; the shared L2 is inclusive and tracks on-chip L1
//! sharers "via individual bits in its cache tag". This crate provides that
//! machinery as pure data structures and transition functions:
//!
//! - [`MsiState`]: the per-L1-line coherence state,
//! - [`SharerSet`]: the per-L2-tag bit vector of L1 sharers,
//! - [`DirEntry`]: the directory view embedded in each L2 tag
//!   (sharers + exclusive owner + dirty bit), and
//! - [`DirEntry::handle`]: the protocol transition table mapping an L1
//!   request to the actions the L2 controller must perform.
//!
//! Timing (probe latencies, message occupancy) is applied by the simulator
//! in `cmpsim-core`; everything here is purely functional and exhaustively
//! unit- and property-tested.
//!
//! # Examples
//!
//! ```
//! use cmpsim_coherence::{CoreId, DirEntry, L1Request, DirAction};
//!
//! let mut dir = DirEntry::default();
//! // Core 0 reads: it simply becomes a sharer.
//! let actions = dir.handle(CoreId(0), L1Request::GetS);
//! assert!(actions.is_empty());
//! // Core 1 writes: core 0's copy must be invalidated.
//! let actions = dir.handle(CoreId(1), L1Request::GetX);
//! assert_eq!(actions, vec![DirAction::Invalidate(CoreId(0))]);
//! assert_eq!(dir.owner(), Some(CoreId(1)));
//! ```

mod delivery;
mod directory;
mod sharers;
mod state;

pub use delivery::deliver_with_retries;
pub use directory::{DirAction, DirEntry, L1Request};
pub use sharers::SharerSet;
pub use state::MsiState;

/// Identifies one processor core (and its private L1 caches).
///
/// The paper's systems range from 1 to 16 cores; [`SharerSet`] supports up
/// to 32.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(pub u8);

impl CoreId {
    /// Maximum number of cores the sharer bit vector supports.
    pub const MAX_CORES: usize = 32;

    /// The core's index as a `usize`, for table indexing.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl std::fmt::Display for CoreId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "core{}", self.0)
    }
}
