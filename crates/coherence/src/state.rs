//! The per-line MSI coherence state held by an L1 cache.

/// MSI coherence state of a line in a private L1 cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum MsiState {
    /// Not present (or no read/write permission).
    #[default]
    Invalid,
    /// Read-only copy; other L1s may also hold the line in `Shared`.
    Shared,
    /// Exclusive writable copy; this L1 is the owner and the copy may be
    /// dirty with respect to the L2.
    Modified,
}

impl MsiState {
    /// Whether a load can be satisfied locally in this state.
    pub fn can_read(self) -> bool {
        !matches!(self, MsiState::Invalid)
    }

    /// Whether a store can be satisfied locally in this state.
    pub fn can_write(self) -> bool {
        matches!(self, MsiState::Modified)
    }

    /// Whether an eviction in this state must write data back to the L2.
    pub fn needs_writeback(self) -> bool {
        matches!(self, MsiState::Modified)
    }
}

impl std::fmt::Display for MsiState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            MsiState::Invalid => "I",
            MsiState::Shared => "S",
            MsiState::Modified => "M",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permissions() {
        assert!(!MsiState::Invalid.can_read());
        assert!(!MsiState::Invalid.can_write());
        assert!(MsiState::Shared.can_read());
        assert!(!MsiState::Shared.can_write());
        assert!(MsiState::Modified.can_read());
        assert!(MsiState::Modified.can_write());
    }

    #[test]
    fn writeback_only_from_modified() {
        assert!(!MsiState::Invalid.needs_writeback());
        assert!(!MsiState::Shared.needs_writeback());
        assert!(MsiState::Modified.needs_writeback());
    }

    #[test]
    fn default_is_invalid() {
        assert_eq!(MsiState::default(), MsiState::Invalid);
    }

    #[test]
    fn display() {
        assert_eq!(MsiState::Modified.to_string(), "M");
    }
}
