//! Compact per-L2-tag sharer bit vector.

use crate::CoreId;

/// The set of L1 caches holding a copy of a line, one bit per core.
///
/// The paper's L2 "has full knowledge of on-chip L1 sharers via individual
/// bits in its cache tag"; this is that bit vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SharerSet(u32);

impl SharerSet {
    /// An empty sharer set.
    pub fn new() -> Self {
        Self::default()
    }

    /// A set containing exactly one core.
    pub fn singleton(core: CoreId) -> Self {
        let mut s = Self::new();
        s.insert(core);
        s
    }

    /// Adds `core` to the set. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `core.index() >= CoreId::MAX_CORES`.
    pub fn insert(&mut self, core: CoreId) {
        assert!(core.index() < CoreId::MAX_CORES, "core id {core} out of range");
        self.0 |= 1 << core.index();
    }

    /// Removes `core` from the set. Idempotent.
    pub fn remove(&mut self, core: CoreId) {
        self.0 &= !(1u32 << (core.index() % CoreId::MAX_CORES));
    }

    /// Whether `core` is in the set.
    pub fn contains(&self, core: CoreId) -> bool {
        core.index() < CoreId::MAX_CORES && self.0 & (1 << core.index()) != 0
    }

    /// Number of sharers.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether no L1 holds the line.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Removes every core from the set.
    pub fn clear(&mut self) {
        self.0 = 0;
    }

    /// Iterates over the member cores in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = CoreId> + '_ {
        let bits = self.0;
        (0..CoreId::MAX_CORES as u8).filter_map(move |i| {
            if bits & (1 << i) != 0 {
                Some(CoreId(i))
            } else {
                None
            }
        })
    }

    /// All sharers except `core`, in ascending id order.
    pub fn others(&self, core: CoreId) -> impl Iterator<Item = CoreId> + '_ {
        self.iter().filter(move |c| *c != core)
    }
}

impl FromIterator<CoreId> for SharerSet {
    fn from_iter<I: IntoIterator<Item = CoreId>>(iter: I) -> Self {
        let mut s = Self::new();
        for c in iter {
            s.insert(c);
        }
        s
    }
}

impl Extend<CoreId> for SharerSet {
    fn extend<I: IntoIterator<Item = CoreId>>(&mut self, iter: I) {
        for c in iter {
            self.insert(c);
        }
    }
}

impl std::fmt::Display for SharerSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", c.0)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = SharerSet::new();
        assert!(s.is_empty());
        s.insert(CoreId(3));
        s.insert(CoreId(3));
        s.insert(CoreId(0));
        assert_eq!(s.len(), 2);
        assert!(s.contains(CoreId(3)));
        assert!(!s.contains(CoreId(1)));
        s.remove(CoreId(3));
        assert!(!s.contains(CoreId(3)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iter_is_sorted() {
        let s: SharerSet = [CoreId(7), CoreId(1), CoreId(4)].into_iter().collect();
        let got: Vec<u8> = s.iter().map(|c| c.0).collect();
        assert_eq!(got, vec![1, 4, 7]);
    }

    #[test]
    fn others_excludes_self() {
        let s: SharerSet = [CoreId(0), CoreId(1), CoreId(2)].into_iter().collect();
        let got: Vec<u8> = s.others(CoreId(1)).map(|c| c.0).collect();
        assert_eq!(got, vec![0, 2]);
    }

    #[test]
    fn sixteen_cores_fit() {
        let mut s = SharerSet::new();
        for i in 0..16 {
            s.insert(CoreId(i));
        }
        assert_eq!(s.len(), 16);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        SharerSet::new().insert(CoreId(32));
    }

    #[test]
    fn display() {
        let s: SharerSet = [CoreId(2), CoreId(5)].into_iter().collect();
        assert_eq!(s.to_string(), "{2,5}");
    }
}
