//! Probe-message delivery under loss: bounded retransmission.
//!
//! The directory's probe network is modeled as reliable in the healthy
//! hierarchy, but the chaos engine can declare individual probe messages
//! lost. Losing a probe *semantically* would wedge MSI (an invalidate
//! that never lands breaks the single-writer invariant), so the model
//! retries: the transition is still applied structurally by the L2, and
//! this module computes how many delivery attempts the probe needed so
//! the simulator can charge the extra round trips. Loss decisions are
//! supplied by the caller (the deterministic fault plan) — nothing here
//! owns randomness, which keeps the protocol crate purely functional.

/// Delivers one probe with at most `max_attempts` tries. `lost(k)` says
/// whether attempt `k` (0-based) is lost — decided externally, e.g. by a
/// seeded fault plan. Returns `Some(attempts_used)` (≥ 1) on delivery,
/// or `None` if every attempt was lost (retry budget exhausted).
pub fn deliver_with_retries(mut lost: impl FnMut(u32) -> bool, max_attempts: u32) -> Option<u32> {
    for k in 0..max_attempts {
        if !lost(k) {
            return Some(k + 1);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_network_delivers_first_try() {
        assert_eq!(deliver_with_retries(|_| false, 4), Some(1));
    }

    #[test]
    fn losses_cost_attempts() {
        assert_eq!(deliver_with_retries(|k| k < 2, 4), Some(3));
        assert_eq!(deliver_with_retries(|k| k == 0, 4), Some(2));
    }

    #[test]
    fn budget_exhaustion_is_explicit() {
        assert_eq!(deliver_with_retries(|_| true, 4), None);
        assert_eq!(deliver_with_retries(|_| false, 0), None, "no attempts, no delivery");
    }

    #[test]
    fn decision_callback_sees_each_attempt_once() {
        let mut seen = Vec::new();
        let r = deliver_with_retries(
            |k| {
                seen.push(k);
                k < 3
            },
            8,
        );
        assert_eq!(r, Some(4));
        assert_eq!(seen, vec![0, 1, 2, 3], "stops probing after delivery");
    }
}
