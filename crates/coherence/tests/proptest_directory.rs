//! Property tests: the directory invariants hold under arbitrary legal
//! request streams, mirroring what an inclusive L2 would observe
//! (cmpsim-harness port — same MSI state-transition legality invariants).

use cmpsim_coherence::{CoreId, DirAction, DirEntry, L1Request, MsiState};
use cmpsim_harness::{gen, prop::check, prop_assert, prop_assert_eq, Gen};

const CORES: u8 = 8;

/// A model L1 view: what state each core believes it has.
fn apply_to_model(model: &mut [MsiState], core: CoreId, req: L1Request, actions: &[DirAction]) {
    // First apply probes to other cores.
    for a in actions {
        let t = a.target().index();
        match a {
            DirAction::Invalidate(_) | DirAction::RecallInvalidate(_) => {
                model[t] = MsiState::Invalid
            }
            DirAction::RecallDowngrade(_) => model[t] = MsiState::Shared,
        }
    }
    let me = core.index();
    match req {
        L1Request::GetS => model[me] = MsiState::Shared,
        L1Request::GetX | L1Request::Upgrade => model[me] = MsiState::Modified,
        L1Request::PutS | L1Request::PutM => model[me] = MsiState::Invalid,
    }
}

/// Picks a legal request for `core` given its current model state.
fn legal_request(state: MsiState, choice: u8) -> L1Request {
    match state {
        MsiState::Invalid => {
            if choice % 2 == 0 {
                L1Request::GetS
            } else {
                L1Request::GetX
            }
        }
        MsiState::Shared => match choice % 3 {
            0 => L1Request::Upgrade,
            1 => L1Request::PutS,
            _ => L1Request::GetS, // re-read is harmless
        },
        MsiState::Modified => match choice % 2 {
            0 => L1Request::PutM,
            _ => L1Request::GetX, // rewrite
        },
    }
}

fn op_stream(max_len: usize) -> Gen<Vec<(u8, u8)>> {
    gen::vec_of(gen::pair(gen::u8s(0..CORES), gen::u8s(..)), 1..max_len)
}

#[test]
fn single_writer_multiple_reader() {
    check("single_writer_multiple_reader", &op_stream(200), |ops| {
        let mut dir = DirEntry::new();
        let mut model = vec![MsiState::Invalid; usize::from(CORES)];
        for &(core, choice) in ops {
            let core = CoreId(core);
            let req = legal_request(model[core.index()], choice);
            let actions = dir.handle(core, req);
            apply_to_model(&mut model, core, req, &actions);

            // Invariant: at most one Modified copy, and if one exists no
            // other core has any copy.
            let owners: Vec<_> = model.iter().enumerate()
                .filter(|(_, s)| **s == MsiState::Modified).collect();
            prop_assert!(owners.len() <= 1);
            if let Some((o, _)) = owners.first() {
                for (i, s) in model.iter().enumerate() {
                    if i != *o {
                        prop_assert_eq!(*s, MsiState::Invalid);
                    }
                }
                prop_assert_eq!(dir.owner(), Some(CoreId(*o as u8)));
            }

            // Invariant: directory sharer bits exactly mirror the model.
            for (i, s) in model.iter().enumerate() {
                prop_assert_eq!(
                    dir.sharers().contains(CoreId(i as u8)),
                    *s != MsiState::Invalid,
                    "sharer bit mismatch for core {}", i
                );
            }
        }
        Ok(())
    });
}

#[test]
fn recall_all_leaves_no_copies() {
    check("recall_all_leaves_no_copies", &op_stream(50), |ops| {
        let mut dir = DirEntry::new();
        let mut model = vec![MsiState::Invalid; usize::from(CORES)];
        for &(core, choice) in ops {
            let core = CoreId(core);
            let req = legal_request(model[core.index()], choice);
            let actions = dir.handle(core, req);
            apply_to_model(&mut model, core, req, &actions);
        }
        let actions = dir.recall_all();
        for a in &actions {
            let t = a.target().index();
            prop_assert!(model[t] != MsiState::Invalid, "probe to core without a copy");
            model[t] = MsiState::Invalid;
        }
        prop_assert!(model.iter().all(|s| *s == MsiState::Invalid));
        prop_assert!(!dir.has_l1_copies());
        prop_assert_eq!(dir.owner(), None);
        Ok(())
    });
}
