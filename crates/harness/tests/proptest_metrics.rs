//! Property tests for the service-metrics histograms: quantiles are a
//! pure function of the *multiset* of recorded values (insertion order
//! never matters), and snapshot `merge` is associative and commutative
//! and exactly equals the histogram that saw every value — the law that
//! makes per-worker histograms combinable into one service view.

use cmpsim_harness::metrics::{Histogram, HistogramSnapshot};
use cmpsim_harness::{gen, prop::check, prop_assert, prop_assert_eq, Rng};

/// Latency-shaped values: heavy at small magnitudes, with genuine
/// outliers up to the full u64 range so high octaves get exercised.
fn values() -> gen::Gen<Vec<u64>> {
    let v = gen::select(vec![
        0u64,
        1,
        2,
        15,
        16,
        17,
        100,
        1_000,
        65_535,
        65_536,
        1_000_000,
        123_456_789,
        u64::MAX / 2,
        u64::MAX,
    ]);
    gen::vec_of(v, 0..=60)
}

fn snap_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::default();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

/// Deterministic Fisher-Yates driven by the harness RNG.
fn shuffled(values: &[u64], seed: u64) -> Vec<u64> {
    let mut out = values.to_vec();
    let mut rng = Rng::new(seed | 1);
    for i in (1..out.len()).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        out.swap(i, j);
    }
    out
}

/// The snapshot (and so every quantile) is identical no matter what
/// order the same values were recorded in.
#[test]
fn quantiles_invariant_under_insertion_order() {
    let cases = gen::pair(values(), gen::u64s(..));
    check("quantiles_invariant_under_insertion_order", &cases, |(vals, seed)| {
        let a = snap_of(vals);
        let b = snap_of(&shuffled(vals, *seed));
        prop_assert_eq!(&a, &b);
        for q in [0.0, 0.5, 0.9, 0.95, 0.99, 1.0] {
            prop_assert_eq!(a.quantile(q), b.quantile(q));
        }
        Ok(())
    });
}

/// `merge` is commutative: a∪b == b∪a.
#[test]
fn merge_is_commutative() {
    let cases = gen::pair(values(), values());
    check("merge_is_commutative", &cases, |(xs, ys)| {
        let mut ab = snap_of(xs);
        ab.merge(&snap_of(ys));
        let mut ba = snap_of(ys);
        ba.merge(&snap_of(xs));
        prop_assert_eq!(&ab, &ba);
        Ok(())
    });
}

/// `merge` is associative: (a∪b)∪c == a∪(b∪c).
#[test]
fn merge_is_associative() {
    let cases = gen::triple(values(), values(), values());
    check("merge_is_associative", &cases, |(xs, ys, zs)| {
        let mut left = snap_of(xs);
        left.merge(&snap_of(ys));
        left.merge(&snap_of(zs));
        let mut bc = snap_of(ys);
        bc.merge(&snap_of(zs));
        let mut right = snap_of(xs);
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        Ok(())
    });
}

/// Merging per-worker snapshots equals the one histogram that recorded
/// every value — the exact property the grid drivers rely on when each
/// worker records into a shared histogram.
#[test]
fn merge_equals_histogram_of_union() {
    let cases = gen::pair(values(), values());
    check("merge_equals_histogram_of_union", &cases, |(xs, ys)| {
        let mut merged = snap_of(xs);
        merged.merge(&snap_of(ys));
        let mut union = xs.clone();
        union.extend_from_slice(ys);
        prop_assert_eq!(&merged, &snap_of(&union));
        Ok(())
    });
}

/// Quantiles stay within the documented 1/16 relative error of a true
/// rank-based quantile over the raw values (exact below 16).
#[test]
fn quantile_relative_error_is_bounded() {
    let cases = gen::pair(values(), gen::u64s(0..=100));
    check("quantile_relative_error_is_bounded", &cases, |(vals, pct)| {
        if vals.is_empty() {
            return Ok(());
        }
        let q = *pct as f64 / 100.0;
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        // Same rank convention the histogram documents: the value at
        // rank clamp(ceil(q*count), 1, count), 1-indexed.
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];
        let got = snap_of(vals).quantile(q);
        // The reported quantile is the bucket upper bound clamped into
        // [min, max]: never below the exact rank value, and at most one
        // sub-bucket (1/16 relative) above it.
        prop_assert!(got >= exact, "q={q} got={got} exact={exact}");
        let bound = exact.saturating_add(exact / 16).saturating_add(1);
        prop_assert!(got <= bound, "q={q} got={got} exact={exact} bound={bound}");
        Ok(())
    });
}
