//! Property tests for `fastmap`: the open-addressing `AddrMap` is checked
//! against `std::collections::HashMap` as an oracle over random operation
//! sequences, and the bounded `MemoCache` is checked for deterministic
//! capacity-capped eviction.

use cmpsim_harness::fastmap::{fx_hash64, AddrMap, MemoCache};
use cmpsim_harness::{gen, prop::check, prop_assert, prop_assert_eq};
use std::collections::HashMap;

/// One map operation: 0 = insert, 1 = remove, 2 = get.
type Op = (u32, u64, u64);

/// Operation sequences over a small key domain so collisions, tombstones
/// and re-insertions are frequent; a few huge keys exercise hashing of
/// real block addresses.
fn ops() -> gen::Gen<Vec<Op>> {
    let key = gen::select(vec![
        0u64,
        1,
        2,
        3,
        5,
        8,
        13,
        21,
        0x40,
        0x41,
        0x1000,
        0x1040,
        u64::MAX,
        0xFFFF_FFFF_0000_0040,
    ]);
    let op = gen::triple(gen::u32s(0..=2), key, gen::u64s(..));
    gen::vec_of(op, 0..=200)
}

/// `AddrMap` agrees with `HashMap` after any operation sequence: same
/// return values, same length, same final contents.
#[test]
fn matches_std_hashmap_oracle() {
    check("matches_std_hashmap_oracle", &ops(), |ops| {
        let mut map = AddrMap::new();
        let mut oracle: HashMap<u64, u64> = HashMap::new();
        for &(op, key, value) in ops {
            match op {
                0 => prop_assert_eq!(map.insert(key, value), oracle.insert(key, value)),
                1 => prop_assert_eq!(map.remove(key), oracle.remove(&key)),
                _ => {
                    prop_assert_eq!(map.get(key).copied(), oracle.get(&key).copied());
                    prop_assert_eq!(map.contains_key(key), oracle.contains_key(&key));
                }
            }
            prop_assert_eq!(map.len(), oracle.len());
        }
        // Final contents agree in both directions.
        for (&k, &v) in &oracle {
            prop_assert_eq!(map.get(k).copied(), Some(v));
        }
        let mut keys: Vec<u64> = map.keys().collect();
        keys.sort_unstable();
        let mut oracle_keys: Vec<u64> = oracle.keys().copied().collect();
        oracle_keys.sort_unstable();
        prop_assert_eq!(keys, oracle_keys);
        Ok(())
    });
}

/// `get_mut` writes through to the stored value.
#[test]
fn get_mut_writes_through() {
    check("get_mut_writes_through", &ops(), |ops| {
        let mut map = AddrMap::new();
        let mut oracle: HashMap<u64, u64> = HashMap::new();
        for &(op, key, value) in ops {
            match op {
                0 => {
                    map.insert(key, value);
                    oracle.insert(key, value);
                }
                1 => {
                    map.remove(key);
                    oracle.remove(&key);
                }
                _ => {
                    // Mutate through get_mut in both maps.
                    if let Some(v) = map.get_mut(key) {
                        *v = v.wrapping_add(1);
                    }
                    if let Some(v) = oracle.get_mut(&key) {
                        *v = v.wrapping_add(1);
                    }
                }
            }
        }
        for (&k, &v) in &oracle {
            prop_assert_eq!(map.get(k).copied(), Some(v));
        }
        Ok(())
    });
}

/// Churning insert/remove cycles over a bounded key set must not grow the
/// table without bound: tombstones are reused on re-insertion.
#[test]
fn tombstone_churn_bounds_table() {
    check(
        "tombstone_churn_bounds_table",
        &gen::vec_of(gen::u64s(0..=31), 1..=400),
        |keys| {
            let mut map = AddrMap::with_capacity(64);
            for &k in keys {
                // Insert then remove: net size stays 0 or 1, so however
                // long the churn, a correctly tombstone-reusing table
                // holds at most the 32-key working set.
                map.insert(k, k);
                map.remove(k);
            }
            prop_assert_eq!(map.len(), 0);
            for k in 0..32u64 {
                prop_assert!(!map.contains_key(k));
                map.insert(k, k * 2);
            }
            for k in 0..32u64 {
                prop_assert_eq!(map.get(k).copied(), Some(k * 2));
            }
            Ok(())
        },
    );
}

/// The memo cache never exceeds its capacity and never returns a value
/// that was not inserted for exactly that key.
#[test]
fn memo_cache_is_bounded_and_keyed() {
    check(
        "memo_cache_is_bounded_and_keyed",
        &gen::vec_of(gen::u64s(0..=4096), 1..=300),
        |keys| {
            let mut memo = MemoCache::new(64);
            for &k in keys {
                // The "computation" is a pure function of the key, as on
                // the engine's segment-sizing path.
                let v = memo.get_or_insert_with(k, || k.wrapping_mul(3));
                prop_assert_eq!(v, k.wrapping_mul(3));
                if let Some(hit) = memo.get(k) {
                    prop_assert_eq!(hit, k.wrapping_mul(3));
                }
                prop_assert!(memo.len() <= memo.capacity());
            }
            Ok(())
        },
    );
}

/// Capacity-capped eviction is deterministic: two caches fed the same key
/// sequence end in the same state, hit for hit.
#[test]
fn memo_eviction_is_deterministic() {
    check(
        "memo_eviction_is_deterministic",
        &gen::vec_of(gen::u64s(..), 1..=300),
        |keys| {
            let mut a = MemoCache::new(32);
            let mut b = MemoCache::new(32);
            for &k in keys {
                let va = a.get_or_insert_with(k, || fx_hash64(k));
                let vb = b.get_or_insert_with(k, || fx_hash64(k));
                prop_assert_eq!(va, vb);
            }
            for &k in keys {
                prop_assert_eq!(a.get(k), b.get(k));
            }
            Ok(())
        },
    );
}
