//! Supervised job execution: panic isolation, watchdog deadlines, and
//! bounded retry for batches of independent jobs.
//!
//! [`pool::run_indexed`](crate::pool::run_indexed) is the fast path for
//! trusted jobs: a panic anywhere aborts the whole batch. This module is
//! the *supervised* path for long sweeps where one bad cell must degrade
//! one result, not the run: every job executes under
//! [`catch_unwind`](std::panic::catch_unwind), a watchdog enforces a
//! per-job soft deadline, and transient panics can be retried with
//! exponential backoff. The caller gets a [`JobOutcome`] per job, in
//! submission order.
//!
//! Because a hung job cannot be killed from safe Rust, a job that blows
//! its deadline is **abandoned**: its thread keeps running detached (and
//! is leaked) while the supervisor records [`JobOutcome::TimedOut`] and
//! moves on. This is why jobs here carry `'static` bounds, unlike the
//! scoped pool. Timed-out jobs are never retried — a deterministic job
//! that hung once will hang again, and retrying would leak another
//! thread.
//!
//! Determinism: scheduling decides only *when* a job runs, never *what*
//! it computes, so for pure jobs the `Ok` results are bit-identical to a
//! serial run at any `threads` count.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// The terminal state of one supervised job.
#[derive(Debug)]
pub enum JobOutcome<T> {
    /// The job (or one of its retries) returned a value.
    Ok(T),
    /// Every permitted attempt panicked; `payload` is the final panic
    /// message and `attempts` the number of attempts made.
    Panicked {
        /// Rendered payload of the last panic (`&str`/`String` payloads
        /// verbatim, otherwise a placeholder).
        payload: String,
        /// Attempts made (1 + retries).
        attempts: u32,
    },
    /// The job exceeded the watchdog deadline and was abandoned.
    TimedOut {
        /// Time the job had been running when it was abandoned.
        elapsed: Duration,
    },
}

impl<T> JobOutcome<T> {
    /// Whether the job produced a value.
    pub fn is_ok(&self) -> bool {
        matches!(self, JobOutcome::Ok(_))
    }

    /// The value, if the job succeeded.
    pub fn ok(self) -> Option<T> {
        match self {
            JobOutcome::Ok(v) => Some(v),
            _ => None,
        }
    }
}

/// Supervision policy for [`run_supervised`].
#[derive(Debug, Clone)]
pub struct Supervisor {
    /// Maximum concurrently running jobs (min 1).
    pub threads: usize,
    /// Per-job soft deadline; `None` disables the watchdog. Defaults to
    /// `CMPSIM_CELL_DEADLINE_MS` when set in the environment.
    pub deadline: Option<Duration>,
    /// Retries after a panicked first attempt (0 = fail fast).
    pub retries: u32,
    /// Backoff before retry `k` (1-based): `backoff * 2^(k-1)`.
    pub backoff: Duration,
}

impl Default for Supervisor {
    fn default() -> Self {
        Supervisor {
            threads: crate::pool::default_threads(),
            deadline: deadline_from_env(),
            retries: 0,
            backoff: Duration::from_millis(20),
        }
    }
}

impl Supervisor {
    /// Default policy with an explicit thread count.
    pub fn with_threads(threads: usize) -> Self {
        Supervisor { threads, ..Supervisor::default() }
    }
}

/// Upper bound on a sane cell deadline: 24 hours. Anything larger is
/// almost certainly a unit mistake (seconds or nanoseconds pasted into a
/// milliseconds knob), so it is rejected rather than silently armed.
const MAX_DEADLINE_MS: u64 = 24 * 60 * 60 * 1000;

/// The per-job watchdog deadline configured in the environment
/// (`CMPSIM_CELL_DEADLINE_MS`, milliseconds), if any.
///
/// Malformed, zero, or implausibly huge values warn on stderr and
/// disable the deadline instead of silently misparsing.
pub fn deadline_from_env() -> Option<Duration> {
    let raw = std::env::var("CMPSIM_CELL_DEADLINE_MS").ok()?;
    match parse_deadline_ms(&raw) {
        Ok(d) => d,
        Err(why) => {
            eprintln!("cmpsim: ignoring CMPSIM_CELL_DEADLINE_MS={raw:?}: {why}; deadline disabled");
            None
        }
    }
}

/// Validates a `CMPSIM_CELL_DEADLINE_MS` value. `Ok(Some(_))` is an
/// armed deadline; `Ok(None)` means an intentionally empty value
/// (deadline off); `Err` describes why the value was rejected.
fn parse_deadline_ms(raw: &str) -> Result<Option<Duration>, String> {
    let raw = raw.trim();
    if raw.is_empty() {
        return Ok(None);
    }
    let ms: u64 = raw.parse().map_err(|e| format!("not a millisecond count ({e})"))?;
    if ms == 0 {
        return Err("a zero deadline would kill every cell immediately".to_string());
    }
    if ms > MAX_DEADLINE_MS {
        return Err(format!("{ms} ms exceeds the {MAX_DEADLINE_MS} ms (24 h) sanity bound"));
    }
    Ok(Some(Duration::from_millis(ms)))
}

/// Renders a panic payload for reporting.
pub fn panic_payload_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// A job waiting to be (re)dispatched.
struct Pending {
    index: usize,
    attempt: u32,
    not_before: Instant,
}

/// A job currently running on a worker thread.
struct Running {
    attempt: u32,
    started: Instant,
}

/// Runs every job under supervision and returns one [`JobOutcome`] per
/// job, in submission order.
///
/// - A panicking job is caught; with `cfg.retries > 0` it is re-run
///   (after backoff) up to the retry budget, and only then reported as
///   [`JobOutcome::Panicked`].
/// - A job still running after `cfg.deadline` is abandoned (its thread
///   leaks) and reported as [`JobOutcome::TimedOut`]; its slot is
///   immediately reused for the next job.
/// - All other jobs are unaffected by a neighbour's panic or hang.
pub fn run_supervised<T, F>(cfg: &Supervisor, jobs: Vec<F>) -> Vec<JobOutcome<T>>
where
    T: Send + 'static,
    F: Fn() -> T + Send + Sync + 'static,
{
    let n = jobs.len();
    let threads = cfg.threads.max(1);
    let jobs: Vec<Arc<F>> = jobs.into_iter().map(Arc::new).collect();
    let mut outcomes: Vec<Option<JobOutcome<T>>> = (0..n).map(|_| None).collect();
    let mut done = 0usize;

    let (tx, rx) = mpsc::channel::<(usize, u32, Result<T, String>)>();
    let mut pending: Vec<Pending> = (0..n)
        .map(|i| Pending { index: i, attempt: 1, not_before: Instant::now() })
        .collect();
    // Dispatch in index order (pending is kept sorted by (not_before, index)).
    pending.reverse(); // pop() takes the lowest index first
    let mut running: HashMap<usize, Running> = HashMap::new();

    while done < n {
        // Fill free worker slots with dispatchable jobs.
        let now = Instant::now();
        while running.len() < threads {
            // The lowest-index pending job whose backoff has elapsed.
            let Some(pos) = pending.iter().rposition(|p| p.not_before <= now) else {
                break;
            };
            let p = pending.remove(pos);
            let job = Arc::clone(&jobs[p.index]);
            let tx = tx.clone();
            let (index, attempt) = (p.index, p.attempt);
            let spawned = thread::Builder::new()
                .name(format!("cmpsim-supervised-{index}"))
                .spawn(move || {
                    let result = catch_unwind(AssertUnwindSafe(|| job()))
                        .map_err(|e| panic_payload_string(&*e));
                    // The supervisor may have abandoned us; ignore send errors.
                    let _ = tx.send((index, attempt, result));
                });
            match spawned {
                Ok(_) => {
                    running.insert(index, Running { attempt, started: now });
                }
                Err(e) => {
                    // Spawn failure (resource exhaustion): report like a panic.
                    outcomes[index] = Some(JobOutcome::Panicked {
                        payload: format!("failed to spawn worker thread: {e}"),
                        attempts: attempt,
                    });
                    done += 1;
                }
            }
        }

        if done == n {
            break;
        }

        // Sleep until the next interesting instant: a watchdog expiry or
        // a backoff elapsing (whichever is sooner), else block on results.
        let now = Instant::now();
        let mut wake: Option<Instant> = None;
        if let Some(d) = cfg.deadline {
            for r in running.values() {
                let expiry = r.started + d;
                wake = Some(wake.map_or(expiry, |w| w.min(expiry)));
            }
        }
        if running.len() < threads {
            for p in &pending {
                wake = Some(wake.map_or(p.not_before, |w| w.min(p.not_before)));
            }
        }

        let msg = match wake {
            Some(at) => {
                let timeout = at.saturating_duration_since(now);
                match rx.recv_timeout(timeout) {
                    Ok(m) => Some(m),
                    Err(mpsc::RecvTimeoutError::Timeout) => None,
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        unreachable!("supervisor holds a sender")
                    }
                }
            }
            None => Some(rx.recv().expect("supervisor holds a sender")),
        };

        match msg {
            Some((index, attempt, result)) => {
                // A completion from an abandoned (timed-out) attempt, or
                // from a stale attempt after a retry was scheduled, is
                // dropped: the recorded outcome stands.
                let current = running.get(&index).map(|r| r.attempt);
                if current != Some(attempt) {
                    continue;
                }
                running.remove(&index);
                match result {
                    Ok(v) => {
                        outcomes[index] = Some(JobOutcome::Ok(v));
                        done += 1;
                    }
                    Err(payload) => {
                        if attempt <= cfg.retries {
                            let delay = cfg.backoff * 2u32.saturating_pow(attempt - 1);
                            let slot = Pending {
                                index,
                                attempt: attempt + 1,
                                not_before: Instant::now() + delay,
                            };
                            // Keep the lowest-index-first pop order.
                            let pos = pending
                                .iter()
                                .rposition(|p| p.index < index)
                                .map_or(pending.len(), |p| p);
                            pending.insert(pos, slot);
                        } else {
                            outcomes[index] =
                                Some(JobOutcome::Panicked { payload, attempts: attempt });
                            done += 1;
                        }
                    }
                }
            }
            None => {
                // Watchdog sweep: abandon every running job past deadline.
                if let Some(d) = cfg.deadline {
                    let now = Instant::now();
                    let expired: Vec<usize> = running
                        .iter()
                        .filter(|(_, r)| now.duration_since(r.started) >= d)
                        .map(|(&i, _)| i)
                        .collect();
                    for i in expired {
                        let r = running.remove(&i).expect("job was running");
                        outcomes[i] = Some(JobOutcome::TimedOut {
                            elapsed: Instant::now().duration_since(r.started),
                        });
                        done += 1;
                    }
                }
            }
        }
    }

    outcomes
        .into_iter()
        .map(|o| o.expect("every job has a recorded outcome"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn quick() -> Supervisor {
        Supervisor {
            threads: 4,
            deadline: None,
            retries: 0,
            backoff: Duration::from_millis(1),
        }
    }

    #[test]
    fn deadline_parsing_accepts_sane_values() {
        assert_eq!(parse_deadline_ms("250"), Ok(Some(Duration::from_millis(250))));
        assert_eq!(parse_deadline_ms(" 1000 "), Ok(Some(Duration::from_millis(1000))));
        assert_eq!(
            parse_deadline_ms(&MAX_DEADLINE_MS.to_string()),
            Ok(Some(Duration::from_millis(MAX_DEADLINE_MS)))
        );
        assert_eq!(parse_deadline_ms(""), Ok(None), "empty means deadline off");
    }

    #[test]
    fn deadline_parsing_rejects_garbage_zero_and_huge() {
        for garbage in ["abc", "12x", "-5", "1.5", "0x10", "1 000"] {
            assert!(parse_deadline_ms(garbage).is_err(), "{garbage:?} should be rejected");
        }
        assert!(parse_deadline_ms("0").is_err(), "zero would kill every cell");
        assert!(
            parse_deadline_ms(&(MAX_DEADLINE_MS + 1).to_string()).is_err(),
            "values past the 24 h sanity bound are a unit mistake"
        );
        assert!(parse_deadline_ms(&u64::MAX.to_string()).is_err());
        // Overflow past u64 is garbage, not a huge deadline.
        assert!(parse_deadline_ms("99999999999999999999999999").is_err());
    }

    #[test]
    fn all_ok_in_submission_order() {
        let jobs: Vec<_> = (0..32u64).map(|i| move || i * 3).collect();
        let out = run_supervised(&quick(), jobs);
        for (i, o) in out.into_iter().enumerate() {
            assert_eq!(o.ok(), Some(i as u64 * 3));
        }
    }

    #[test]
    fn panicking_job_degrades_only_itself() {
        let jobs: Vec<Box<dyn Fn() -> u64 + Send + Sync>> = (0..8u64)
            .map(|i| {
                Box::new(move || {
                    if i == 3 {
                        panic!("job three is bad");
                    }
                    i
                }) as _
            })
            .collect();
        let out = run_supervised(&quick(), jobs);
        for (i, o) in out.iter().enumerate() {
            if i == 3 {
                match o {
                    JobOutcome::Panicked { payload, attempts } => {
                        assert!(payload.contains("job three is bad"), "payload: {payload}");
                        assert_eq!(*attempts, 1);
                    }
                    other => panic!("expected panic outcome, got {other:?}"),
                }
            } else {
                assert!(o.is_ok(), "job {i} should have succeeded: {o:?}");
            }
        }
    }

    #[test]
    fn slow_job_times_out_while_others_complete() {
        let cfg = Supervisor {
            threads: 4,
            deadline: Some(Duration::from_millis(50)),
            retries: 0,
            backoff: Duration::from_millis(1),
        };
        let jobs: Vec<Box<dyn Fn() -> u32 + Send + Sync>> = (0..6u32)
            .map(|i| {
                Box::new(move || {
                    if i == 2 {
                        // Far past the deadline; the thread is abandoned.
                        thread::sleep(Duration::from_secs(30));
                    }
                    i
                }) as _
            })
            .collect();
        let t0 = Instant::now();
        let out = run_supervised(&cfg, jobs);
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "supervisor must not wait for the hung job"
        );
        for (i, o) in out.iter().enumerate() {
            if i == 2 {
                match o {
                    JobOutcome::TimedOut { elapsed } => {
                        assert!(*elapsed >= Duration::from_millis(50));
                    }
                    other => panic!("expected timeout, got {other:?}"),
                }
            } else {
                assert!(o.is_ok(), "job {i} should have succeeded: {o:?}");
            }
        }
    }

    #[test]
    fn retry_until_success() {
        static FAILURES: AtomicU32 = AtomicU32::new(0);
        let cfg = Supervisor { retries: 3, ..quick() };
        let jobs: Vec<Box<dyn Fn() -> u32 + Send + Sync>> = vec![Box::new(|| {
            if FAILURES.fetch_add(1, Ordering::SeqCst) < 2 {
                panic!("transient");
            }
            99
        })];
        let out = run_supervised(&cfg, jobs);
        assert_eq!(out.len(), 1);
        match &out[0] {
            JobOutcome::Ok(v) => assert_eq!(*v, 99),
            other => panic!("expected success after retries, got {other:?}"),
        }
        assert_eq!(FAILURES.load(Ordering::SeqCst), 3, "two failures + one success");
    }

    #[test]
    fn retries_are_bounded() {
        static ATTEMPTS: AtomicU32 = AtomicU32::new(0);
        let cfg = Supervisor { retries: 2, ..quick() };
        let jobs: Vec<Box<dyn Fn() -> u32 + Send + Sync>> = vec![Box::new(|| {
            ATTEMPTS.fetch_add(1, Ordering::SeqCst);
            panic!("always fails");
        })];
        let out = run_supervised(&cfg, jobs);
        match &out[0] {
            JobOutcome::Panicked { attempts, .. } => assert_eq!(*attempts, 3),
            other => panic!("expected exhausted retries, got {other:?}"),
        }
        assert_eq!(ATTEMPTS.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn single_thread_still_supervises() {
        let cfg = Supervisor { threads: 1, ..quick() };
        let jobs: Vec<_> = (0..5u64).map(|i| move || i).collect();
        let out = run_supervised(&cfg, jobs);
        assert_eq!(out.into_iter().filter_map(JobOutcome::ok).collect::<Vec<_>>(),
                   vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_batch() {
        let out: Vec<JobOutcome<u8>> = run_supervised(&quick(), Vec::<fn() -> u8>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn payload_rendering() {
        let boxed: Box<dyn std::any::Any + Send> = Box::new("literal");
        assert_eq!(panic_payload_string(&*boxed), "literal");
        let boxed: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_payload_string(&*boxed), "owned");
        let boxed: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(panic_payload_string(&*boxed), "<non-string panic payload>");
    }
}
