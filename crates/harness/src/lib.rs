//! Hermetic test and benchmark harness for the cmpsim workspace.
//!
//! The container this project builds in has **no crates.io access**, so the
//! usual ecosystem crates (`proptest`, `criterion`, `rayon`) are off the
//! table. This crate replaces exactly the slices of them the simulator
//! needs, with zero dependencies beyond `std`:
//!
//! - [`prop`] + [`gen`] — a deterministic property-testing mini-framework:
//!   seeded generators built on the same xorshift64* pattern as
//!   `cmpsim_trace::Rng`, greedy shrinking on failure, and
//!   `CMPSIM_PT_CASES` / `CMPSIM_PT_SEED` environment overrides.
//! - [`codec_conformance`] — the cross-codec law kit built on [`prop`]:
//!   round-trip exactness, fast/full sizing agreement, zero-fill
//!   monotonicity and never-expands, checked against any codec described
//!   by plain function pointers.
//! - [`bench`] — a self-contained benchmark runner (warmup + timed
//!   iterations, median/p10/p90) that writes JSON artifacts to
//!   `target/bench/*.json`.
//! - [`pool`] — a scoped self-scheduling thread pool: idle workers claim
//!   the next unstarted job, so a vector of independent closures spreads
//!   across cores with results returned in submission order.
//! - [`supervise`] — the fault-isolating counterpart to [`pool`]: per-job
//!   panic capture, a watchdog enforcing a soft deadline
//!   (`CMPSIM_CELL_DEADLINE_MS`), and bounded retry with backoff, so one
//!   bad job in a long sweep degrades one result instead of the run.
//! - [`fastmap`] — deterministic, SipHash-free hash containers for the
//!   engine's hot paths: an open-addressing [`fastmap::AddrMap`] for
//!   MSHR-style exact maps and a bounded [`fastmap::MemoCache`] for
//!   memoizing pure functions of block addresses.
//! - [`telemetry`] — observability plumbing: a fixed-capacity flight
//!   recorder of packed sim events (`CMPSIM_TRACE`), buffered JSONL
//!   series artifacts under `target/telemetry/`, and a stderr heartbeat
//!   for live grid progress (`CMPSIM_PROGRESS`). Pure measurement: none
//!   of it feeds back into simulation results.
//! - [`metrics`] — service-layer metrics: atomic counters/gauges,
//!   log-bucketed latency histograms with mergeable snapshots and
//!   deterministic quantiles, a named registry, and flat-JSON /
//!   Prometheus export (`CMPSIM_METRICS=0` disarms the recording
//!   sites). Observe-only, like [`telemetry`].
//! - [`chaos`] — deterministic fault-injection planning (`CMPSIM_CHAOS`):
//!   a seeded [`chaos::FaultPlan`] whose per-site decisions are stateless
//!   hashes of `(seed, site, cycle, key)`, so armed runs stay
//!   bit-reproducible across thread counts.
//!
//! Everything here is deterministic for a fixed seed: property tests
//! replay exactly, and the pool never changes *what* is computed, only
//! *when* — parallel users (e.g. `cmpsim_core::experiment::
//! run_grid_parallel`) stay bit-identical to their serial counterparts.

pub mod bench;
pub mod chaos;
pub mod codec_conformance;
pub mod fastmap;
pub mod gen;
pub mod metrics;
pub mod pool;
pub mod prop;
mod rng;
pub mod supervise;
pub mod telemetry;

pub use chaos::{FaultPlan, FaultSite};
pub use gen::Gen;
pub use rng::Rng;
pub use supervise::{run_supervised, JobOutcome, Supervisor};
