//! Cross-codec conformance laws for cache-line compression codecs.
//!
//! Every codec the simulator ships (FPC, BDI, ZCA) must satisfy the same
//! four laws for the engine's accounting to be sound, regardless of how
//! the codec actually encodes bytes:
//!
//! 1. **Round-trip exactness** — decompressing a compressed line yields
//!    the original bytes. Compression is a storage optimization, never a
//!    lossy transform.
//! 2. **Sizing agreement** — the fast segment-count path (what the engine
//!    memoizes per address) equals the segment count of the full
//!    compressed representation, and stays in `1..=max_segments`.
//! 3. **Zero-fill monotonicity** — zeroing any set of aligned 8-byte
//!    chunks never *increases* the segment count. Zeros are the most
//!    compressible content in every scheme the paper considers; a codec
//!    that pessimizes on them would invert the engine's capacity model.
//!    The law is stated at 8-byte granularity because that is the
//!    coarsest element size any shipped codec uses: zeroing a whole
//!    element only ever removes constraints, while sub-element zeroing
//!    can legitimately re-shape an encoding.
//! 4. **Never expands** — no line costs more than `max_segments`, and the
//!    all-zero line is a global minimum of the sizing function.
//! 5. **Decode agreement** — the production decoder (dispatch-table /
//!    SWAR fast path) and the scalar reference decoder reconstruct the
//!    same bytes from the same compressed line, and both reproduce the
//!    original. A fast path that drifts from the reference is a silent
//!    data-corruption bug even when it round-trips *most* inputs, so the
//!    law is checked property-style here and exhaustively over zero
//!    masks by [`check_decode_zero_mask_sweep`].
//!
//! The kit is generic over the line size and takes plain `fn` pointers so
//! this zero-dependency crate can check codecs defined in `cmpsim-fpc`
//! (which dev-depends on the harness, not the other way around). Lines
//! are drawn from a structured generator — zero-heavy, small-integer,
//! repeated-value, near-base and random classes — and counterexamples
//! shrink by zeroing chunks, so a failure prints the simplest line that
//! breaks the law.

use crate::gen::{self, Gen};
use crate::prop;
use crate::Rng;
use crate::{prop_assert, prop_assert_eq};

/// A codec under test, described by plain function pointers.
///
/// `N` is the line size in bytes and must be a multiple of 8 (the law
/// granularity and the segment size share that alignment).
#[derive(Clone, Copy)]
pub struct CodecSpec<const N: usize> {
    /// Codec name, used to label the properties in failure reports.
    pub name: &'static str,
    /// Segments an uncompressed line occupies (the sizing ceiling).
    pub max_segments: u8,
    /// Full path: compress then decompress, returning the compressed
    /// segment count and the reconstructed line.
    pub round_trip: fn(&[u8; N]) -> (u8, [u8; N]),
    /// Fast sizing path (the one the engine memoizes).
    pub segments: fn(&[u8; N]) -> u8,
    /// Both decoders over the compressed form of the line: the
    /// production fast path first, the scalar reference oracle second.
    pub decode_pair: fn(&[u8; N]) -> ([u8; N], [u8; N]),
}

/// Zeroes the 8-byte chunks of `line` selected by `mask` (bit `i` covers
/// bytes `8i..8i+8`).
fn zero_chunks<const N: usize>(line: &[u8; N], mask: u32) -> [u8; N] {
    let mut out = *line;
    for chunk in 0..N / 8 {
        if mask & (1 << chunk) != 0 {
            out[chunk * 8..chunk * 8 + 8].fill(0);
        }
    }
    out
}

/// Structured line generator: draws from content classes spanning the
/// compressibility landscape, shrinks by zeroing whole 8-byte chunks
/// (then whole lines), so minimal counterexamples are mostly zero.
pub fn line_gen<const N: usize>() -> Gen<[u8; N]> {
    assert!(N >= 8 && N % 8 == 0, "line size must be a positive multiple of 8");
    let sample = move |rng: &mut Rng| -> [u8; N] {
        let mut line = [0u8; N];
        match rng.below(6) {
            0 => {} // all zeros
            1 => {
                // Zero-heavy: each 4-byte word is zero half the time.
                for w in line.chunks_exact_mut(4) {
                    if !rng.chance(0.5) {
                        w.copy_from_slice(&(rng.next_u64() as u32).to_le_bytes());
                    }
                }
            }
            2 => {
                // Small integers per 4-byte word (FPC/BDI sweet spot).
                for w in line.chunks_exact_mut(4) {
                    w.copy_from_slice(&((rng.next_u64() % 256) as u32).to_le_bytes());
                }
            }
            3 => {
                // One 8-byte value repeated across the line.
                let v = rng.next_u64().to_le_bytes();
                for c in line.chunks_exact_mut(8) {
                    c.copy_from_slice(&v);
                }
            }
            4 => {
                // Near-base: a shared base plus a small delta per element.
                let base = rng.next_u64() >> 8;
                for c in line.chunks_exact_mut(8) {
                    c.copy_from_slice(&(base.wrapping_add(rng.below(128)).to_le_bytes()));
                }
            }
            _ => {
                for b in line.iter_mut() {
                    *b = rng.next_u64() as u8;
                }
            }
        }
        line
    };
    let shrink = move |line: &[u8; N]| -> Vec<[u8; N]> {
        let mut out = Vec::new();
        if line.iter().any(|&b| b != 0) {
            out.push([0u8; N]);
            for chunk in 0..N / 8 {
                if line[chunk * 8..chunk * 8 + 8].iter().any(|&b| b != 0) {
                    out.push(zero_chunks(line, 1 << chunk));
                }
            }
        }
        out
    };
    Gen::new(sample, shrink)
}

/// Runs the four conformance laws against `spec`, panicking with a
/// shrunken counterexample on the first violation.
///
/// Case counts follow the harness-wide `CMPSIM_PT_CASES` / `CMPSIM_PT_SEED`
/// environment overrides.
///
/// # Panics
///
/// Panics if any law fails (with a replayable report), or if `N` is not a
/// positive multiple of 8.
pub fn check_conformance<const N: usize>(spec: &CodecSpec<N>) {
    let lines = line_gen::<N>();
    let spec = *spec;

    prop::check(&format!("{}_round_trip_exact", spec.name), &lines, move |line| {
        let (_, restored) = (spec.round_trip)(line);
        prop_assert!(
            restored == *line,
            "decompression lost data: got {restored:?}, want {line:?}"
        );
        Ok(())
    });

    prop::check(&format!("{}_fast_size_agrees", spec.name), &lines, move |line| {
        let fast = (spec.segments)(line);
        let (full, _) = (spec.round_trip)(line);
        prop_assert_eq!(fast, full, "fast sizing disagrees with the compressed form");
        prop_assert!(
            (1..=spec.max_segments).contains(&fast),
            "segment count {fast} outside 1..={}",
            spec.max_segments
        );
        Ok(())
    });

    let chunk_masks = gen::pair(lines.clone(), gen::u32s(0..(1u32 << (N / 8))));
    prop::check(
        &format!("{}_zero_fill_monotone", spec.name),
        &chunk_masks,
        move |(line, mask)| {
            let zeroed = zero_chunks(line, *mask);
            let before = (spec.segments)(line);
            let after = (spec.segments)(&zeroed);
            prop_assert!(
                after <= before,
                "zeroing chunks {mask:#b} grew the line from {before} to {after} segments"
            );
            Ok(())
        },
    );

    prop::check(&format!("{}_never_expands", spec.name), &lines, move |line| {
        let seg = (spec.segments)(line);
        prop_assert!(seg <= spec.max_segments, "line costs {seg} segments");
        let floor = (spec.segments)(&[0u8; N]);
        prop_assert!(
            floor <= seg,
            "all-zero line ({floor} segments) is not the sizing minimum ({seg})"
        );
        Ok(())
    });

    prop::check(&format!("{}_fast_decode_matches_reference", spec.name), &lines, move |line| {
        let (fast, reference) = (spec.decode_pair)(line);
        prop_assert!(
            fast == reference,
            "fast decoder disagrees with the scalar reference:\n fast {fast:?}\n ref  {reference:?}"
        );
        prop_assert!(fast == *line, "both decoders agree but lost data: {fast:?}");
        Ok(())
    });
}

/// Exhaustive decode-agreement sweep over every 4-byte-word zero mask.
///
/// For each of the `2^(N/4)` masks, builds a line whose words are either
/// zero (mask bit set) or a fixed `filler` word, and asserts the fast and
/// reference decoders agree bit-for-bit with each other and the input.
/// Zero placement is exactly what run-length and zero-aware encodings key
/// on, so this covers every run-length/boundary interaction a generator
/// would only sample — for 64-byte lines, all 65536 zero layouts.
///
/// # Panics
///
/// Panics on the first disagreeing mask, or if `N` is not a multiple of 4
/// or exceeds 64 bytes (larger lines would make the sweep infeasible).
pub fn check_decode_zero_mask_sweep<const N: usize>(spec: &CodecSpec<N>, filler: u32) {
    assert!(N % 4 == 0 && N <= 64, "sweep is exhaustive over N/4 word-mask bits");
    let words = N / 4;
    for mask in 0u32..1 << words {
        let mut line = [0u8; N];
        for w in 0..words {
            if mask & (1 << w) == 0 {
                line[w * 4..w * 4 + 4].copy_from_slice(&filler.to_le_bytes());
            }
        }
        let (fast, reference) = (spec.decode_pair)(&line);
        assert!(
            fast == reference && fast == line,
            "{}: decoders disagree on zero mask {mask:#06x} (filler {filler:#010x})",
            spec.name
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic;

    // A toy lawful codec over 16-byte lines: one segment (8 bytes) per
    // nonzero chunk, minimum one; "compression" stores the line verbatim.
    fn toy_segments(line: &[u8; 16]) -> u8 {
        let nonzero =
            line.chunks_exact(8).filter(|c| c.iter().any(|&b| b != 0)).count() as u8;
        nonzero.max(1)
    }

    fn toy_round_trip(line: &[u8; 16]) -> (u8, [u8; 16]) {
        (toy_segments(line), *line)
    }

    fn toy_decode_pair(line: &[u8; 16]) -> ([u8; 16], [u8; 16]) {
        (*line, *line)
    }

    #[test]
    fn lawful_codec_passes() {
        let spec = CodecSpec {
            name: "toy",
            max_segments: 2,
            round_trip: toy_round_trip,
            segments: toy_segments,
            decode_pair: toy_decode_pair,
        };
        check_conformance(&spec);
        check_decode_zero_mask_sweep(&spec, 0xDEAD_BEEF);
    }

    #[test]
    fn non_monotone_codec_is_rejected() {
        // Prices zero chunks *higher* than nonzero ones: monotonicity law
        // must catch it.
        fn bad_segments(line: &[u8; 16]) -> u8 {
            let zero = line.chunks_exact(8).filter(|c| c.iter().all(|&b| b == 0)).count();
            1 + zero as u8
        }
        fn bad_round_trip(line: &[u8; 16]) -> (u8, [u8; 16]) {
            (bad_segments(line), *line)
        }
        let result = panic::catch_unwind(|| {
            check_conformance(&CodecSpec {
                name: "bad",
                max_segments: 3,
                round_trip: bad_round_trip,
                segments: bad_segments,
                decode_pair: toy_decode_pair,
            });
        });
        assert!(result.is_err(), "non-monotone sizing must fail conformance");
    }

    #[test]
    fn lossy_codec_is_rejected() {
        fn lossy_round_trip(_line: &[u8; 16]) -> (u8, [u8; 16]) {
            (1, [0u8; 16])
        }
        fn one_segment(_line: &[u8; 16]) -> u8 {
            1
        }
        let result = panic::catch_unwind(|| {
            check_conformance(&CodecSpec {
                name: "lossy",
                max_segments: 2,
                round_trip: lossy_round_trip,
                segments: one_segment,
                decode_pair: toy_decode_pair,
            });
        });
        assert!(result.is_err(), "data loss must fail conformance");
    }

    #[test]
    fn drifting_fast_decoder_is_rejected() {
        // Fast path flips a byte the reference decodes correctly: the
        // decode-agreement law must catch the divergence.
        fn drifted(line: &[u8; 16]) -> ([u8; 16], [u8; 16]) {
            let mut fast = *line;
            fast[5] ^= 0x40;
            (fast, *line)
        }
        let spec = CodecSpec {
            name: "drift",
            max_segments: 2,
            round_trip: toy_round_trip,
            segments: toy_segments,
            decode_pair: drifted,
        };
        let by_property = panic::catch_unwind(|| check_conformance(&spec));
        assert!(by_property.is_err(), "decode drift must fail conformance");
        let by_sweep = panic::catch_unwind(|| check_decode_zero_mask_sweep(&spec, 1));
        assert!(by_sweep.is_err(), "decode drift must fail the zero-mask sweep");
    }

    #[test]
    fn shrinking_zeroes_chunks() {
        let g = line_gen::<16>();
        let mut line = [0u8; 16];
        line[3] = 7;
        line[12] = 9;
        let shrinks = g.shrinks(&line);
        assert!(shrinks.contains(&[0u8; 16]));
        // Each candidate zeroes one of the nonzero chunks.
        assert_eq!(shrinks.len(), 3);
        assert!(g.shrinks(&[0u8; 16]).is_empty());
    }
}
