//! Fast, deterministic hash containers for the simulator's hot paths.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3, a keyed
//! cryptographic hash that costs tens of cycles per lookup and whose
//! per-process random key makes iteration order vary run to run. The
//! engine's inner loop does several map operations per simulated event
//! (MSHR lookups on every L1/L2 miss, a segment-size memo on every fill
//! and link transfer), so both costs matter here:
//!
//! - [`fx_hash64`] — an FxHash-style multiplicative hash over one `u64`
//!   (one multiply plus a fold), the same family rustc uses internally.
//! - [`AddrMap`] — a deterministic open-addressing map keyed by `u64`
//!   block addresses: linear probing, tombstone deletion with slot
//!   reuse, power-of-two capacity. No per-process randomness; the same
//!   operation sequence always produces the same internal state, which
//!   is what the grid determinism suite (`tests/determinism.rs`)
//!   requires of everything the engine touches.
//! - [`MemoCache`] — the capacity-capped companion for *memoization*
//!   maps whose values are pure functions of the key (e.g. FPC segment
//!   counts of deterministic line contents): a direct-mapped table where
//!   a colliding insert simply evicts the previous resident. Lookups are
//!   one probe, the footprint is fixed for the life of the run, and an
//!   eviction only costs a recompute — never an incorrect value.
//!
//! Determinism contract: none of these types ever consults ambient
//! state (no `RandomState`, no addresses-as-hashes). Behavior is a pure
//! function of the operation sequence, so swapping them in for
//! `HashMap` cannot change simulation results — only iteration order,
//! which callers must not rely on (sort before presenting, as the
//! engine's diagnostics do).

/// Multiplicative 64-bit hash (FxHash family): one odd-constant multiply
/// to spread entropy up, one fold to bring the well-mixed high bits down
/// into the low bits used for table indexing.
#[inline]
pub fn fx_hash64(key: u64) -> u64 {
    // Knuth's 2^64 / phi constant; odd, so multiplication is a bijection.
    let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^ (h >> 32)
}

/// One slot of an [`AddrMap`] probe sequence.
#[derive(Debug, Clone)]
enum Slot<V> {
    /// Never occupied: terminates probe chains.
    Empty,
    /// Previously occupied: probe chains continue through it, and inserts
    /// may reclaim it.
    Tombstone,
    /// A live `(key, value)` entry.
    Full(u64, V),
}

/// A deterministic open-addressing hash map keyed by `u64` (block
/// addresses on the engine's hot path).
///
/// Linear probing with tombstone deletion; the table grows (and sheds
/// accumulated tombstones) when live entries plus tombstones exceed 3/4
/// of capacity. All operations are pure functions of the operation
/// sequence — there is no per-instance or per-process randomness.
///
/// # Examples
///
/// ```
/// use cmpsim_harness::fastmap::AddrMap;
/// let mut m: AddrMap<&str> = AddrMap::new();
/// m.insert(0x1000, "a");
/// assert_eq!(m.get(0x1000), Some(&"a"));
/// assert_eq!(m.remove(0x1000), Some("a"));
/// assert!(m.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct AddrMap<V> {
    slots: Vec<Slot<V>>,
    /// `slots.len() - 1`; the capacity is always a power of two.
    mask: usize,
    /// Live entries.
    len: usize,
    /// Live entries plus tombstones (drives rehashing).
    used: usize,
}

impl<V> Default for AddrMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> AddrMap<V> {
    /// An empty map with a small initial table.
    pub fn new() -> Self {
        Self::with_capacity(8)
    }

    /// An empty map sized for at least `cap` entries before the first
    /// rehash.
    pub fn with_capacity(cap: usize) -> Self {
        let table = (cap.max(4) * 4 / 3 + 1).next_power_of_two();
        AddrMap {
            slots: (0..table).map(|_| Slot::Empty).collect(),
            mask: table - 1,
            len: 0,
            used: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn probe_start(&self, key: u64) -> usize {
        fx_hash64(key) as usize & self.mask
    }

    /// Index of the live slot holding `key`, if present.
    #[inline]
    fn find(&self, key: u64) -> Option<usize> {
        let mut i = self.probe_start(key);
        loop {
            match &self.slots[i] {
                Slot::Empty => return None,
                Slot::Full(k, _) if *k == key => return Some(i),
                _ => i = (i + 1) & self.mask,
            }
        }
    }

    /// A reference to the value for `key`.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        self.find(key).map(|i| match &self.slots[i] {
            Slot::Full(_, v) => v,
            _ => unreachable!("find returns Full slots"),
        })
    }

    /// A mutable reference to the value for `key`.
    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        match self.find(key) {
            Some(i) => match &mut self.slots[i] {
                Slot::Full(_, v) => Some(v),
                _ => unreachable!("find returns Full slots"),
            },
            None => None,
        }
    }

    /// Whether `key` has a live entry.
    #[inline]
    pub fn contains_key(&self, key: u64) -> bool {
        self.find(key).is_some()
    }

    /// Inserts `key -> value`, returning the previous value if the key
    /// was already present. Reclaims the first tombstone on the probe
    /// path when the key is new.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        if (self.used + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let mut i = self.probe_start(key);
        let mut first_tombstone: Option<usize> = None;
        loop {
            match &mut self.slots[i] {
                Slot::Full(k, v) if *k == key => {
                    return Some(std::mem::replace(v, value));
                }
                Slot::Tombstone => {
                    if first_tombstone.is_none() {
                        first_tombstone = Some(i);
                    }
                    i = (i + 1) & self.mask;
                }
                Slot::Empty => {
                    let target = match first_tombstone {
                        Some(t) => t, // tombstone reuse: `used` is unchanged
                        None => {
                            self.used += 1;
                            i
                        }
                    };
                    self.slots[target] = Slot::Full(key, value);
                    self.len += 1;
                    return None;
                }
                Slot::Full(..) => i = (i + 1) & self.mask,
            }
        }
    }

    /// Removes `key`, returning its value. The slot becomes a tombstone
    /// so longer probe chains through it stay reachable.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let i = self.find(key)?;
        match std::mem::replace(&mut self.slots[i], Slot::Tombstone) {
            Slot::Full(_, v) => {
                self.len -= 1;
                Some(v)
            }
            _ => unreachable!("find returns Full slots"),
        }
    }

    /// Iterates over live keys in (deterministic) table order. The order
    /// depends on insertion history; callers wanting a stable
    /// presentation order must sort.
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.slots.iter().filter_map(|s| match s {
            Slot::Full(k, _) => Some(*k),
            _ => None,
        })
    }

    /// Iterates over live `(key, &value)` pairs in table order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.slots.iter().filter_map(|s| match s {
            Slot::Full(k, v) => Some((*k, v)),
            _ => None,
        })
    }

    /// Doubles the table (at least) and re-seats every live entry,
    /// discarding tombstones.
    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(8);
        let old = std::mem::replace(
            &mut self.slots,
            (0..new_cap).map(|_| Slot::Empty).collect(),
        );
        self.mask = new_cap - 1;
        self.len = 0;
        self.used = 0;
        for slot in old {
            if let Slot::Full(k, v) = slot {
                self.insert(k, v);
            }
        }
    }
}

/// A bounded, direct-mapped memoization cache for values that are pure
/// functions of their `u64` key.
///
/// Each key hashes to exactly one slot; a colliding insert evicts the
/// previous resident (capacity-capped eviction). Because values are
/// recomputable from keys, an eviction costs only a recompute on the
/// next miss — it can never produce a stale or wrong value. The
/// footprint is fixed at construction, so multi-minute sweeps stop
/// growing without bound (the engine's segment-size memo previously kept
/// one entry per distinct block address for the life of a run).
///
/// Eviction is deterministic: which resident a new key displaces depends
/// only on the two keys' hashes, never on timing or ambient state.
///
/// # Examples
///
/// ```
/// use cmpsim_harness::fastmap::MemoCache;
/// let mut memo: MemoCache<u8> = MemoCache::new(1 << 4);
/// let v = memo.get_or_insert_with(42, || 7);
/// assert_eq!(v, 7);
/// // Second call hits the memo; the closure is not consulted.
/// assert_eq!(memo.get_or_insert_with(42, || unreachable!()), 7);
/// ```
#[derive(Debug, Clone)]
pub struct MemoCache<V> {
    slots: Vec<Option<(u64, V)>>,
    mask: usize,
}

impl<V: Copy> MemoCache<V> {
    /// A memo with `capacity` slots (rounded up to a power of two).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        MemoCache { slots: vec![None; cap], mask: cap - 1 }
    }

    /// Slot count (the hard bound on resident entries).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Whether no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|s| s.is_none())
    }

    /// The memoized value for `key`, if resident.
    #[inline]
    pub fn get(&self, key: u64) -> Option<V> {
        match self.slots[fx_hash64(key) as usize & self.mask] {
            Some((k, v)) if k == key => Some(v),
            _ => None,
        }
    }

    /// Returns the memoized value for `key`, computing and (possibly
    /// evicting a collider to) cache it on a miss.
    #[inline]
    pub fn get_or_insert_with(&mut self, key: u64, f: impl FnOnce() -> V) -> V {
        let slot = &mut self.slots[fx_hash64(key) as usize & self.mask];
        match slot {
            Some((k, v)) if *k == key => *v,
            _ => {
                let v = f();
                *slot = Some((key, v));
                v
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addrmap_insert_get_remove() {
        let mut m = AddrMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(1, 10), None);
        assert_eq!(m.insert(2, 20), None);
        assert_eq!(m.insert(1, 11), Some(10));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(1), Some(&11));
        assert_eq!(m.get_mut(2).map(|v| std::mem::replace(v, 21)), Some(20));
        assert_eq!(m.get(2), Some(&21));
        assert_eq!(m.remove(1), Some(11));
        assert_eq!(m.remove(1), None);
        assert!(!m.contains_key(1));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn addrmap_survives_growth() {
        let mut m = AddrMap::new();
        for k in 0..10_000u64 {
            m.insert(k * 64, k);
        }
        assert_eq!(m.len(), 10_000);
        for k in 0..10_000u64 {
            assert_eq!(m.get(k * 64), Some(&k), "key {k} lost in growth");
        }
    }

    #[test]
    fn addrmap_tombstones_keep_chains_reachable() {
        // Force a probe chain through colliding keys, then delete the
        // head: the tail must stay reachable, and a fresh insert must
        // reclaim the tombstone.
        let mut m: AddrMap<u32> = AddrMap::with_capacity(8);
        let mask = m.mask as u64;
        // Find three distinct keys that hash to the same slot.
        let mut same: Vec<u64> = Vec::new();
        let target = fx_hash64(0) & mask;
        for k in 0..1_000_000u64 {
            if fx_hash64(k) & mask == target {
                same.push(k);
                if same.len() == 3 {
                    break;
                }
            }
        }
        assert_eq!(same.len(), 3, "collision search failed");
        for (i, &k) in same.iter().enumerate() {
            m.insert(k, i as u32);
        }
        assert_eq!(m.remove(same[0]), Some(0));
        assert_eq!(m.get(same[1]), Some(&1), "chain broken by deletion");
        assert_eq!(m.get(same[2]), Some(&2), "chain broken by deletion");
        let used_before = m.used;
        m.insert(same[0], 9); // must reclaim the tombstone
        assert_eq!(m.used, used_before, "tombstone was not reused");
        assert_eq!(m.get(same[0]), Some(&9));
    }

    #[test]
    fn addrmap_keys_cover_live_entries() {
        let mut m = AddrMap::new();
        for k in [5u64, 3, 9] {
            m.insert(k, ());
        }
        m.remove(3);
        let mut keys: Vec<u64> = m.keys().collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![5, 9]);
        assert_eq!(m.iter().count(), 2);
    }

    #[test]
    fn memo_caps_capacity_and_recomputes_after_eviction() {
        let mut memo: MemoCache<u64> = MemoCache::new(8);
        assert_eq!(memo.capacity(), 8);
        for k in 0..1_000u64 {
            assert_eq!(memo.get_or_insert_with(k, || k * 2), k * 2);
        }
        assert!(memo.len() <= 8);
        // Whatever was evicted recomputes correctly.
        for k in 0..1_000u64 {
            assert_eq!(memo.get_or_insert_with(k, || k * 2), k * 2);
        }
    }

    #[test]
    fn memo_eviction_is_deterministic() {
        let run = || {
            let mut memo: MemoCache<u64> = MemoCache::new(16);
            for k in 0..500u64 {
                memo.get_or_insert_with(k.wrapping_mul(0x2545_F491_4F6C_DD1D), || k);
            }
            let mut resident: Vec<(u64, u64)> = memo
                .slots
                .iter()
                .filter_map(|s| *s)
                .collect();
            resident.sort_unstable();
            resident
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fx_hash_spreads_low_bits() {
        // Block addresses are sequential; the hash must not map runs of
        // consecutive keys onto runs of consecutive slots only (that
        // would be fine) or onto a few slots (that would be a bug).
        let mask = 1023u64;
        let mut hit = vec![false; 1024];
        for k in 0..1024u64 {
            hit[(fx_hash64(k) & mask) as usize] = true;
        }
        let covered = hit.iter().filter(|h| **h).count();
        assert!(covered > 600, "only {covered}/1024 slots covered");
    }
}
