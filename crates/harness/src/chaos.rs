//! Deterministic fault-injection planning.
//!
//! A [`FaultPlan`] decides — purely from `(seed, site, cycle, key)` —
//! whether a fault fires at a given injection point. There is no shared
//! RNG stream: every decision is a stateless SplitMix64-style hash
//! compared against a rate threshold, so the same plan produces the same
//! faults regardless of call order, thread count, or how many *other*
//! sites consulted the plan in between. That property is what lets an
//! armed chaos run stay bit-reproducible across 1/2/8-thread grids.
//!
//! Arming mirrors the `CMPSIM_TRACE` convention: `CMPSIM_CHAOS=<seed>:<rate>`
//! (e.g. `CMPSIM_CHAOS=7:0.002`) arms the plan process-wide via
//! [`FaultPlan::from_env`]; unset or empty leaves chaos disarmed. A
//! malformed value warns once on stderr and disarms rather than silently
//! misparsing. Tests bypass the environment entirely and hand a plan to
//! the consumer directly (the simulator exposes `System::set_chaos` for
//! exactly this, mirroring `set_tracing`).

use std::sync::Once;

/// Where in the modeled hierarchy a fault is injected. The discriminant
/// feeds the decision hash, so each site draws an independent fault
/// stream from the same seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FaultSite {
    /// Bit-flip surfacing when a compressed L2 line is decompressed.
    CodecLine = 1,
    /// A request message lost on the off-chip link.
    LinkRequest = 2,
    /// A data-response message corrupted on the off-chip link.
    LinkData = 3,
    /// A memory-controller stall burst delaying one response.
    MemStall = 4,
    /// A directory probe message lost on-chip (retried by the L2).
    DirMessage = 5,
}

impl FaultSite {
    /// Every site, in discriminant order (for reporting tables).
    pub const ALL: [FaultSite; 5] = [
        FaultSite::CodecLine,
        FaultSite::LinkRequest,
        FaultSite::LinkData,
        FaultSite::MemStall,
        FaultSite::DirMessage,
    ];

    /// Short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::CodecLine => "codec-line",
            FaultSite::LinkRequest => "link-request",
            FaultSite::LinkData => "link-data",
            FaultSite::MemStall => "mem-stall",
            FaultSite::DirMessage => "dir-message",
        }
    }
}

/// A seeded, stateless fault schedule.
///
/// `should_inject` is a pure function of the plan and its arguments;
/// cloning or copying a plan cannot fork or desynchronize anything.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rate: f64,
    /// `rate` mapped onto a u32 threshold: a decision hash's top 32 bits
    /// below this fire a fault.
    threshold: u32,
}

impl FaultPlan {
    /// A plan firing each decision independently with probability `rate`
    /// (clamped to `[0, 1]`; NaN disables).
    pub fn new(seed: u64, rate: f64) -> FaultPlan {
        let rate = if rate.is_nan() { 0.0 } else { rate.clamp(0.0, 1.0) };
        let threshold = (rate * f64::from(u32::MAX)).round() as u32;
        FaultPlan { seed, rate, threshold }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The per-decision fault probability.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Parses the `CMPSIM_CHAOS` value format `<seed>:<rate>`.
    ///
    /// # Errors
    ///
    /// Returns a description of what is malformed (bad shape, unparsable
    /// seed, or a rate outside `[0, 1]`).
    pub fn parse(s: &str) -> Result<FaultPlan, String> {
        let (seed, rate) = s
            .split_once(':')
            .ok_or_else(|| format!("expected <seed>:<rate>, got {s:?}"))?;
        let seed: u64 = seed
            .trim()
            .parse()
            .map_err(|e| format!("bad seed {seed:?}: {e}"))?;
        let rate: f64 = rate
            .trim()
            .parse()
            .map_err(|e| format!("bad rate {rate:?}: {e}"))?;
        if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
            return Err(format!("rate {rate} outside [0, 1]"));
        }
        Ok(FaultPlan::new(seed, rate))
    }

    /// Reads `CMPSIM_CHAOS=<seed>:<rate>` from the environment. Unset or
    /// empty means disarmed; a malformed value warns (once per process)
    /// and disarms instead of guessing.
    pub fn from_env() -> Option<FaultPlan> {
        static WARNED: Once = Once::new();
        let v = std::env::var("CMPSIM_CHAOS").ok()?;
        if v.is_empty() {
            return None;
        }
        match FaultPlan::parse(&v) {
            Ok(plan) => Some(plan),
            Err(e) => {
                WARNED.call_once(|| {
                    eprintln!("cmpsim: ignoring malformed CMPSIM_CHAOS ({e}); chaos disarmed");
                });
                None
            }
        }
    }

    /// The decision hash: a SplitMix64-style finalizer over
    /// `(seed, site, cycle, key)`. Pure and order-independent.
    fn mix(&self, site: FaultSite, cycle: u64, key: u64) -> u64 {
        let mut z = self
            .seed
            .wrapping_add((site as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(cycle.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(key.wrapping_mul(0x94D0_49BB_1331_11EB));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Whether a fault fires at `site` for event `(cycle, key)`.
    ///
    /// `key` disambiguates same-cycle decisions at one site (an address,
    /// an attempt counter folded into an address, ...).
    pub fn should_inject(&self, site: FaultSite, cycle: u64, key: u64) -> bool {
        self.threshold > 0 && ((self.mix(site, cycle, key) >> 32) as u32) < self.threshold
    }

    /// Secondary entropy for a fault that already fired (a stall length,
    /// a bit index): uniform over `u64`, independent of the
    /// `should_inject` decision bits.
    pub fn roll(&self, site: FaultSite, cycle: u64, key: u64) -> u64 {
        self.mix(site, cycle, key ^ 0xD6E8_FEB8_6659_FD93)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_and_order_independent() {
        let p = FaultPlan::new(42, 0.01);
        let a: Vec<bool> = (0..1000)
            .map(|c| p.should_inject(FaultSite::CodecLine, c, c * 64))
            .collect();
        // Interleave other-site queries: must not perturb anything.
        let b: Vec<bool> = (0..1000)
            .map(|c| {
                let _ = p.should_inject(FaultSite::MemStall, c, 7);
                let _ = p.roll(FaultSite::LinkData, c, 9);
                p.should_inject(FaultSite::CodecLine, c, c * 64)
            })
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn sites_draw_independent_streams() {
        let p = FaultPlan::new(3, 0.5);
        let per_site: Vec<Vec<bool>> = FaultSite::ALL
            .iter()
            .map(|&s| (0..256).map(|c| p.should_inject(s, c, 0)).collect())
            .collect();
        // With rate 0.5 over 256 draws, two identical site streams would
        // mean the site discriminant is ignored.
        for i in 0..per_site.len() {
            for j in i + 1..per_site.len() {
                assert_ne!(per_site[i], per_site[j], "sites {i} and {j} collide");
            }
        }
    }

    #[test]
    fn rate_extremes() {
        let never = FaultPlan::new(1, 0.0);
        let always = FaultPlan::new(1, 1.0);
        for c in 0..512 {
            assert!(!never.should_inject(FaultSite::LinkRequest, c, c));
            assert!(always.should_inject(FaultSite::LinkRequest, c, c));
        }
    }

    #[test]
    fn observed_rate_tracks_requested_rate() {
        let p = FaultPlan::new(9, 0.05);
        let n = 20_000u64;
        let hits = (0..n)
            .filter(|&c| p.should_inject(FaultSite::MemStall, c, c.wrapping_mul(31)))
            .count();
        let observed = hits as f64 / n as f64;
        assert!(
            (observed - 0.05).abs() < 0.01,
            "observed rate {observed} far from requested 0.05"
        );
    }

    #[test]
    fn parse_accepts_well_formed() {
        let p = FaultPlan::parse("7:0.002").unwrap();
        assert_eq!(p.seed(), 7);
        assert!((p.rate() - 0.002).abs() < 1e-12);
        assert_eq!(FaultPlan::parse(" 11 : 1.0 ").unwrap().seed(), 11);
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "7", "7:", ":0.5", "x:0.5", "7:y", "7:1.5", "7:-0.1", "7:NaN", "7:inf"] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::new(1, 0.1);
        let b = FaultPlan::new(2, 0.1);
        let fa: Vec<bool> =
            (0..512).map(|c| a.should_inject(FaultSite::CodecLine, c, 0)).collect();
        let fb: Vec<bool> =
            (0..512).map(|c| b.should_inject(FaultSite::CodecLine, c, 0)).collect();
        assert_ne!(fa, fb);
    }
}
