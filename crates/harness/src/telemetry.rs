//! Observability primitives: the flight recorder, cycle-sampled series
//! buffering, and live grid progress.
//!
//! Everything here is *measurement plumbing* — none of it may feed back
//! into what a simulation computes. The flight recorder stores packed
//! [`Record`]s of simulated-time events in a fixed-capacity ring (oldest
//! entries overwritten, with an overflow-drop counter), the
//! [`SeriesBuffer`] accumulates JSONL rows in memory so sampling never
//! does hot-path I/O, and [`GridProgress`] + [`Heartbeat`] render a
//! stderr status line for long grid sweeps.
//!
//! Environment knobs:
//!
//! - `CMPSIM_TRACE` — `1` (or any value other than `0`/empty) enables
//!   tracing; [`trace_enabled`] caches the answer so the disabled path in
//!   the engine is a branch on a cached bool.
//! - `CMPSIM_TELEMETRY_DIR` — where JSONL artifacts land (default
//!   `target/telemetry/`, resolved like the bench artifact dir).
//! - `CMPSIM_PROGRESS` — `1` forces the grid heartbeat on, `0` forces it
//!   off; unset, it turns on only when stderr is a terminal.

use std::io::IsTerminal;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

// ------------------------------------------------------------------ gating

/// Whether `CMPSIM_TRACE` enables tracing, read once per process.
///
/// The engine consults this at construction time only; per-event gating
/// is a branch on the cached result, so a run with tracing disabled pays
/// one predictable branch per instrumentation site.
pub fn trace_enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| {
        std::env::var("CMPSIM_TRACE").map(|v| !v.is_empty() && v != "0").unwrap_or(false)
    })
}

/// Resolves the telemetry artifact directory: `CMPSIM_TELEMETRY_DIR`,
/// else `$CARGO_TARGET_DIR/telemetry`, else the nearest enclosing
/// `target/` directory, else `./target/telemetry`.
pub fn telemetry_dir() -> PathBuf {
    if let Ok(d) = std::env::var("CMPSIM_TELEMETRY_DIR") {
        return PathBuf::from(d);
    }
    if let Ok(d) = std::env::var("CARGO_TARGET_DIR") {
        return PathBuf::from(d).join("telemetry");
    }
    let mut cur = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let cand = cur.join("target");
        if cand.is_dir() {
            return cand.join("telemetry");
        }
        if !cur.pop() {
            return PathBuf::from("target/telemetry");
        }
    }
}

/// Monotonic sequence for artifact file names, so concurrent grid cells
/// writing to the same directory never collide.
pub fn next_artifact_seq() -> u64 {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    SEQ.fetch_add(1, Ordering::Relaxed)
}

// --------------------------------------------------------- flight recorder

/// One packed flight-recorder entry: 24 bytes, `Copy`, meaning assigned
/// by the producer (the harness stays domain-agnostic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Record {
    /// Simulated time (cycles) the event occurred at.
    pub time: u64,
    /// Producer-defined payload (an address, a count, ...).
    pub addr: u64,
    /// Producer-defined event kind discriminant.
    pub kind: u8,
    /// Originating unit (core index for the simulator).
    pub unit: u8,
    /// Producer-defined flag bits.
    pub flags: u16,
    /// Producer-defined small argument (a degree, a byte count, ...).
    pub arg: u32,
}

/// Fixed-capacity ring buffer of [`Record`]s.
///
/// When full, [`push`](FlightRecorder::push) overwrites the oldest entry
/// and increments the overflow-drop counter — the recorder always holds
/// the *most recent* `capacity` events, and `dropped()` says how many
/// older ones were lost.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    buf: Vec<Record>,
    capacity: usize,
    /// Index of the oldest entry once the ring has wrapped.
    head: usize,
    len: usize,
    dropped: u64,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder needs capacity");
        FlightRecorder { buf: Vec::with_capacity(capacity), capacity, head: 0, len: 0, dropped: 0 }
    }

    /// Appends a record, overwriting the oldest when full.
    #[inline]
    pub fn push(&mut self, r: Record) {
        if self.len < self.capacity {
            self.buf.push(r);
            self.len += 1;
        } else {
            self.buf[self.head] = r;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Records currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the recorder holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates records oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &Record> {
        self.buf[self.head..].iter().chain(self.buf[..self.head].iter())
    }

    /// The most recent `k` records, oldest-first.
    pub fn last(&self, k: usize) -> Vec<Record> {
        let skip = self.len.saturating_sub(k);
        self.iter().skip(skip).copied().collect()
    }

    /// Empties the ring (capacity and drop counter keep their values).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.len = 0;
    }
}

// ------------------------------------------------------------ series rows

/// In-memory buffer of JSONL rows for one run's cycle-sampled series.
///
/// Rows accumulate in memory and are written in one `fs::write` at the
/// end of the run, so sampling never does I/O on the simulation's hot
/// path.
#[derive(Debug, Clone, Default)]
pub struct SeriesBuffer {
    rows: Vec<String>,
}

impl SeriesBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        SeriesBuffer::default()
    }

    /// Appends one pre-rendered JSON object (no trailing newline).
    pub fn push(&mut self, row: String) {
        self.rows.push(row);
    }

    /// Rows buffered so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows are buffered.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the buffer as JSONL (one object per line).
    pub fn to_jsonl(&self) -> String {
        let mut s = String::new();
        for r in &self.rows {
            s.push_str(r);
            s.push('\n');
        }
        s
    }

    /// Writes the buffer to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_jsonl())
    }
}

/// Escapes a string for embedding in a flat JSON object.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ----------------------------------------------------------- grid progress

/// Per-cell lifecycle states for a grid sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum CellState {
    /// Not started yet.
    Queued = 0,
    /// Currently executing on a worker.
    Running = 1,
    /// Started more than once (a supervised retry after a failure).
    Retrying = 2,
    /// Finished successfully.
    Done = 3,
    /// Finished with a failure (panic, timeout, sim error).
    Failed = 4,
    /// Satisfied from the result store without running (bit-identical
    /// reuse, counted as done).
    Cached = 5,
}

impl CellState {
    fn from_u8(v: u8) -> CellState {
        match v {
            1 => CellState::Running,
            2 => CellState::Retrying,
            3 => CellState::Done,
            4 => CellState::Failed,
            5 => CellState::Cached,
            _ => CellState::Queued,
        }
    }
}

/// Whether the grid heartbeat should render: `CMPSIM_PROGRESS=1` forces
/// it on, `CMPSIM_PROGRESS=0` (or any other value) forces it off, and
/// unset it follows whether stderr is a terminal — so tests and CI logs
/// stay clean by default.
pub fn progress_enabled() -> bool {
    match std::env::var("CMPSIM_PROGRESS") {
        Ok(v) => v == "1",
        Err(_) => std::io::stderr().is_terminal(),
    }
}

/// Shared, lock-free progress state for one grid sweep.
///
/// Workers mark cells as they start, retry and finish; a [`Heartbeat`]
/// (or any observer) renders [`GridProgress::status_line`] periodically.
/// All updates are relaxed atomics — progress reporting must never
/// serialize the workers it watches, and it feeds nothing back into the
/// results.
#[derive(Debug)]
pub struct GridProgress {
    states: Vec<AtomicU8>,
    /// Engine events completed cells dispatched, for the events/sec rate.
    events: AtomicU64,
    /// Summed host nanoseconds of completed cells.
    cell_nanos: AtomicU64,
    done: AtomicUsize,
    failed: AtomicUsize,
    workers: usize,
    started: Instant,
}

impl GridProgress {
    /// Progress over `cells` grid cells executed by `workers` workers.
    pub fn new(cells: usize, workers: usize) -> Self {
        GridProgress {
            states: (0..cells).map(|_| AtomicU8::new(CellState::Queued as u8)).collect(),
            events: AtomicU64::new(0),
            cell_nanos: AtomicU64::new(0),
            done: AtomicUsize::new(0),
            failed: AtomicUsize::new(0),
            workers: workers.max(1),
            started: Instant::now(),
        }
    }

    /// Total cells tracked.
    pub fn cells(&self) -> usize {
        self.states.len()
    }

    /// Marks cell `i` as started; a second start marks it retrying.
    pub fn cell_started(&self, i: usize) {
        let s = &self.states[i];
        let prev = s.load(Ordering::Relaxed);
        if prev == CellState::Queued as u8 {
            s.store(CellState::Running as u8, Ordering::Relaxed);
        } else if prev == CellState::Running as u8 || prev == CellState::Retrying as u8 {
            s.store(CellState::Retrying as u8, Ordering::Relaxed);
        }
    }

    /// Marks cell `i` finished. `events`/`host_nanos` feed the aggregate
    /// events-per-second figure; pass 0 when unknown (failed cells).
    pub fn cell_finished(&self, i: usize, ok: bool, events: u64, host_nanos: u64) {
        self.states[i].store(
            if ok { CellState::Done } else { CellState::Failed } as u8,
            Ordering::Relaxed,
        );
        if ok {
            self.done.fetch_add(1, Ordering::Relaxed);
        } else {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
        self.events.fetch_add(events, Ordering::Relaxed);
        self.cell_nanos.fetch_add(host_nanos, Ordering::Relaxed);
    }

    /// Marks cell `i` as already satisfied (e.g. loaded from a journal).
    pub fn cell_skipped(&self, i: usize) {
        self.states[i].store(CellState::Done as u8, Ordering::Relaxed);
        self.done.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks cell `i` as served from the result store (a cache hit —
    /// distinguishable from computed cells in the status line).
    pub fn cell_cached(&self, i: usize) {
        self.states[i].store(CellState::Cached as u8, Ordering::Relaxed);
        self.done.fetch_add(1, Ordering::Relaxed);
    }

    /// Cells currently marked store-cached.
    pub fn cached(&self) -> usize {
        self.states
            .iter()
            .filter(|s| s.load(Ordering::Relaxed) == CellState::Cached as u8)
            .count()
    }

    /// Snapshot of one cell's state.
    pub fn state(&self, i: usize) -> CellState {
        CellState::from_u8(self.states[i].load(Ordering::Relaxed))
    }

    /// Cells finished (done + failed).
    pub fn finished(&self) -> usize {
        self.done.load(Ordering::Relaxed) + self.failed.load(Ordering::Relaxed)
    }

    /// Whether every cell has finished.
    pub fn is_complete(&self) -> bool {
        self.finished() >= self.states.len()
    }

    /// Renders the one-line status: counts per state, per-worker engine
    /// throughput over completed cells, and a wall-clock ETA.
    pub fn status_line(&self) -> String {
        let (mut running, mut retrying, mut cached) = (0usize, 0usize, 0usize);
        for s in &self.states {
            match CellState::from_u8(s.load(Ordering::Relaxed)) {
                CellState::Running => running += 1,
                CellState::Retrying => retrying += 1,
                CellState::Cached => cached += 1,
                _ => {}
            }
        }
        let done = self.done.load(Ordering::Relaxed);
        let failed = self.failed.load(Ordering::Relaxed);
        let total = self.states.len();
        let mut line = format!("grid {}/{} done", done + failed, total);
        if cached > 0 {
            line.push_str(&format!(" ({cached} from store)"));
        }
        if failed > 0 {
            line.push_str(&format!(", {failed} failed"));
        }
        if retrying > 0 {
            line.push_str(&format!(", {retrying} retrying"));
        }
        if running > 0 {
            line.push_str(&format!(", {running} running"));
        }
        let nanos = self.cell_nanos.load(Ordering::Relaxed);
        if nanos > 0 {
            let evps = self.events.load(Ordering::Relaxed) as f64 * 1e9 / nanos as f64;
            line.push_str(&format!(" | {:.2} Mev/s/worker", evps / 1e6));
        }
        let finished = done + failed;
        if finished > 0 && finished < total {
            // ETA from mean cell CPU time, divided across the workers.
            let remaining = (total - finished) as f64;
            let per_cell = nanos as f64 / finished as f64;
            let eta = per_cell * remaining / self.workers as f64 / 1e9;
            line.push_str(&format!(" | ETA {:.0}s", eta.ceil()));
        }
        let elapsed = self.started.elapsed().as_secs_f64();
        line.push_str(&format!(" | {elapsed:.0}s elapsed"));
        line
    }

    /// The terminal 100% line, printed exactly when every cell has
    /// finished: unlike the rolling [`status_line`](Self::status_line) it
    /// opens with `grid complete:` and carries the totals (cells, store
    /// hits, failures, engine events, wall time), so a truncated log —
    /// one that ends on a rolling `grid N/M done` line — is
    /// distinguishable from a run that actually finished.
    pub fn final_line(&self) -> String {
        let done = self.done.load(Ordering::Relaxed);
        let failed = self.failed.load(Ordering::Relaxed);
        let cached = self.cached();
        let mut line = format!("grid complete: {}/{} cells", done + failed, self.states.len());
        if cached > 0 {
            line.push_str(&format!(" ({cached} from store)"));
        }
        if failed > 0 {
            line.push_str(&format!(", {failed} failed"));
        }
        let events = self.events.load(Ordering::Relaxed);
        let nanos = self.cell_nanos.load(Ordering::Relaxed);
        if events > 0 {
            line.push_str(&format!(" | {:.1}M events", events as f64 / 1e6));
        }
        if nanos > 0 {
            let evps = events as f64 * 1e9 / nanos as f64;
            line.push_str(&format!(" | {:.2} Mev/s/worker", evps / 1e6));
        }
        line.push_str(&format!(" | {:.1}s elapsed", self.started.elapsed().as_secs_f64()));
        line
    }
}

/// Background renderer: prints [`GridProgress::status_line`] to stderr a
/// few times per second (carriage-return overwrite) until stopped.
///
/// [`Heartbeat::start`] returns a guard; dropping it (or calling
/// [`stop`](Heartbeat::stop)) joins the thread and terminates the status
/// line with a newline so subsequent output starts clean.
#[derive(Debug)]
pub struct Heartbeat {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Heartbeat {
    /// Spawns the renderer over `progress`.
    pub fn start(progress: Arc<GridProgress>) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("cmpsim-heartbeat".into())
            .spawn(move || {
                let mut wrote = false;
                while !stop2.load(Ordering::Relaxed) {
                    eprint!("\r\x1b[2K{}", progress.status_line());
                    wrote = true;
                    if progress.is_complete() {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(200));
                }
                if wrote {
                    // Completed sweeps close with the distinguishable
                    // 100% line; interrupted ones leave a rolling line,
                    // so a truncated log is recognizable as such.
                    if progress.is_complete() {
                        eprintln!("\r\x1b[2K{}", progress.final_line());
                    } else {
                        eprintln!("\r\x1b[2K{}", progress.status_line());
                    }
                }
            })
            .ok();
        Heartbeat { stop, handle }
    }

    /// Stops the renderer and joins its thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(time: u64, kind: u8) -> Record {
        Record { time, kind, ..Record::default() }
    }

    #[test]
    fn ring_fills_then_wraps_oldest_first() {
        let mut fr = FlightRecorder::new(4);
        assert!(fr.is_empty());
        for t in 0..4 {
            fr.push(rec(t, 0));
        }
        assert_eq!(fr.len(), 4);
        assert_eq!(fr.dropped(), 0);
        let times: Vec<u64> = fr.iter().map(|r| r.time).collect();
        assert_eq!(times, vec![0, 1, 2, 3]);

        // Two more overwrite the two oldest.
        fr.push(rec(4, 0));
        fr.push(rec(5, 0));
        assert_eq!(fr.len(), 4, "length saturates at capacity");
        let times: Vec<u64> = fr.iter().map(|r| r.time).collect();
        assert_eq!(times, vec![2, 3, 4, 5], "iteration stays oldest-first across the seam");
    }

    #[test]
    fn overflow_drop_accounting_is_exact() {
        let mut fr = FlightRecorder::new(8);
        for t in 0..1000 {
            fr.push(rec(t, 1));
        }
        assert_eq!(fr.len(), 8);
        assert_eq!(fr.dropped(), 1000 - 8);
        let times: Vec<u64> = fr.iter().map(|r| r.time).collect();
        assert_eq!(times, (992..1000).collect::<Vec<_>>());
    }

    #[test]
    fn last_k_returns_most_recent() {
        let mut fr = FlightRecorder::new(4);
        for t in 0..10 {
            fr.push(rec(t, 0));
        }
        let last2: Vec<u64> = fr.last(2).iter().map(|r| r.time).collect();
        assert_eq!(last2, vec![8, 9]);
        // Asking for more than held returns everything.
        assert_eq!(fr.last(100).len(), 4);
    }

    #[test]
    fn clear_keeps_drop_counter() {
        let mut fr = FlightRecorder::new(2);
        for t in 0..5 {
            fr.push(rec(t, 0));
        }
        assert_eq!(fr.dropped(), 3);
        fr.clear();
        assert!(fr.is_empty());
        assert_eq!(fr.dropped(), 3, "drops are a lifetime counter");
        fr.push(rec(9, 0));
        assert_eq!(fr.last(1)[0].time, 9);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = FlightRecorder::new(0);
    }

    #[test]
    fn series_buffer_renders_jsonl() {
        let mut sb = SeriesBuffer::new();
        assert!(sb.is_empty());
        sb.push("{\"t\":1}".into());
        sb.push("{\"t\":2}".into());
        assert_eq!(sb.len(), 2);
        assert_eq!(sb.to_jsonl(), "{\"t\":1}\n{\"t\":2}\n");
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_escape("plain"), "\"plain\"");
    }

    #[test]
    fn grid_progress_tracks_states_and_counts() {
        let p = GridProgress::new(4, 2);
        assert_eq!(p.cells(), 4);
        assert_eq!(p.state(0), CellState::Queued);
        p.cell_started(0);
        assert_eq!(p.state(0), CellState::Running);
        p.cell_started(0);
        assert_eq!(p.state(0), CellState::Retrying, "second start means a retry");
        p.cell_finished(0, true, 1_000, 500);
        assert_eq!(p.state(0), CellState::Done);
        p.cell_started(1);
        p.cell_finished(1, false, 0, 0);
        assert_eq!(p.state(1), CellState::Failed);
        p.cell_skipped(2);
        assert_eq!(p.state(2), CellState::Done);
        assert_eq!(p.finished(), 3);
        assert!(!p.is_complete());
        p.cell_started(3);
        let line = p.status_line();
        assert!(line.contains("3/4 done"), "{line}");
        assert!(line.contains("1 failed"), "{line}");
        assert!(line.contains("1 running"), "{line}");
        p.cell_finished(3, true, 0, 0);
        assert!(p.is_complete());
    }

    #[test]
    fn final_line_is_distinguishable_and_totalled() {
        let p = GridProgress::new(3, 2);
        p.cell_started(0);
        p.cell_finished(0, true, 2_000_000, 1_000_000);
        p.cell_cached(1);
        p.cell_started(2);
        p.cell_finished(2, false, 0, 0);
        assert!(p.is_complete());
        let line = p.final_line();
        assert!(line.starts_with("grid complete: 3/3 cells"), "{line}");
        assert!(line.contains("(1 from store)"), "{line}");
        assert!(line.contains("1 failed"), "{line}");
        assert!(line.contains("2.0M events"), "{line}");
        assert!(line.contains("elapsed"), "{line}");
        // The rolling line never claims completion.
        assert!(!p.status_line().contains("complete"), "{}", p.status_line());
    }

    #[test]
    fn heartbeat_starts_and_stops_cleanly() {
        let p = Arc::new(GridProgress::new(1, 1));
        p.cell_skipped(0);
        let hb = Heartbeat::start(Arc::clone(&p));
        hb.stop();
    }
}
