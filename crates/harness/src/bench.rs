//! Self-contained benchmark runner.
//!
//! Replaces the `criterion` dev-dependency: each benchmark is a closure
//! timed over warmup + measured iterations, summarized as median/p10/p90,
//! printed as a one-line report, and written as a JSON artifact to
//! `target/bench/<file>.json` so sweeps and CI can diff runs.
//!
//! Environment overrides:
//!
//! - `CMPSIM_BENCH_ITERS` — measured iterations per benchmark.
//! - `CMPSIM_BENCH_WARMUP` — warmup iterations per benchmark.
//!
//! The JSON format is deliberately flat (no serde in the workspace):
//!
//! ```json
//! {
//!   "suite": "micro",
//!   "results": [
//!     {"name": "fpc/compress_64_lines", "iters": 30, "median_ns": 12345,
//!      "p10_ns": 12000, "p90_ns": 13000, "mean_ns": 12400.5}
//!   ],
//!   "metrics": {"grid_speedup_8t": 3.4}
//! }
//! ```

use std::fs;
use std::hint::black_box;
use std::io;
use std::path::PathBuf;
use std::time::Instant;

/// Summary statistics for one benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name (slash-separated groups encouraged).
    pub name: String,
    /// Measured iterations.
    pub iters: u32,
    /// Median iteration time in nanoseconds.
    pub median_ns: u64,
    /// 10th-percentile iteration time in nanoseconds.
    pub p10_ns: u64,
    /// 90th-percentile iteration time in nanoseconds.
    pub p90_ns: u64,
    /// Mean iteration time in nanoseconds.
    pub mean_ns: f64,
}

impl BenchResult {
    fn from_samples(name: &str, mut ns: Vec<u64>) -> Self {
        assert!(!ns.is_empty(), "no samples");
        ns.sort_unstable();
        let pick = |q: f64| ns[((ns.len() - 1) as f64 * q).round() as usize];
        BenchResult {
            name: name.to_string(),
            iters: ns.len() as u32,
            median_ns: pick(0.5),
            p10_ns: pick(0.1),
            p90_ns: pick(0.9),
            mean_ns: ns.iter().sum::<u64>() as f64 / ns.len() as f64,
        }
    }
}

/// Collects benchmark results for one suite and writes them as JSON.
#[derive(Debug)]
pub struct Runner {
    suite: String,
    warmup: u32,
    iters: u32,
    results: Vec<BenchResult>,
    metrics: Vec<(String, f64)>,
}

impl Runner {
    /// New runner with the given defaults, overridable via
    /// `CMPSIM_BENCH_ITERS` / `CMPSIM_BENCH_WARMUP`.
    pub fn new(suite: &str, warmup: u32, iters: u32) -> Self {
        Runner {
            suite: suite.to_string(),
            warmup: env_u32("CMPSIM_BENCH_WARMUP").unwrap_or(warmup),
            iters: env_u32("CMPSIM_BENCH_ITERS").unwrap_or(iters).max(1),
            results: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// Times `f` and records the result. The closure's return value is
    /// passed through [`black_box`] so the work cannot be optimized away.
    pub fn bench<R>(&mut self, name: &str, f: impl FnMut() -> R) -> &BenchResult {
        let (warmup, iters) = (self.warmup, self.iters);
        self.bench_with(name, warmup, iters, f)
    }

    /// [`Runner::bench`] with explicit warmup/iteration counts, for
    /// expensive benchmarks that need fewer samples than the suite
    /// default. The env overrides still win.
    pub fn bench_with<R>(
        &mut self,
        name: &str,
        warmup: u32,
        iters: u32,
        mut f: impl FnMut() -> R,
    ) -> &BenchResult {
        let warmup = env_u32("CMPSIM_BENCH_WARMUP").unwrap_or(warmup);
        let iters = env_u32("CMPSIM_BENCH_ITERS").unwrap_or(iters).max(1);
        for _ in 0..warmup {
            black_box(f());
        }
        let mut samples = Vec::with_capacity(iters as usize);
        for _ in 0..iters {
            let t0 = Instant::now();
            black_box(f());
            samples.push(t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
        }
        let r = BenchResult::from_samples(name, samples);
        println!(
            "bench {suite}/{name}: median {median:.3} ms  (p10 {p10:.3} / p90 {p90:.3}, {n} iters)",
            suite = self.suite,
            median = r.median_ns as f64 / 1e6,
            p10 = r.p10_ns as f64 / 1e6,
            p90 = r.p90_ns as f64 / 1e6,
            n = r.iters,
        );
        self.results.push(r);
        self.results.last().expect("just pushed")
    }

    /// Attaches a named scalar (a speedup, a ratio, a count) to the JSON
    /// artifact alongside the timing results.
    pub fn metric(&mut self, name: &str, value: f64) {
        self.metrics.push((name.to_string(), value));
    }

    /// Renders the suite as JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("{{\n  \"suite\": {},\n  \"results\": [", json_str(&self.suite)));
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"name\": {}, \"iters\": {}, \"median_ns\": {}, \
                 \"p10_ns\": {}, \"p90_ns\": {}, \"mean_ns\": {}}}",
                json_str(&r.name),
                r.iters,
                r.median_ns,
                r.p10_ns,
                r.p90_ns,
                json_f64(r.mean_ns),
            ));
        }
        s.push_str("\n  ],\n  \"metrics\": {");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("{}: {}", json_str(k), json_f64(*v)));
        }
        s.push_str("}\n}\n");
        s
    }

    /// Writes the JSON artifact to `target/bench/<suite>.json` and returns
    /// its path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from creating the directory or file.
    pub fn write_json(&self) -> io::Result<PathBuf> {
        let dir = bench_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.json", self.suite));
        fs::write(&path, self.to_json())?;
        println!("bench artifact: {}", path.display());
        Ok(path)
    }
}

/// Resolves the artifact directory: `CMPSIM_BENCH_DIR`, else
/// `$CARGO_TARGET_DIR/bench`, else the nearest enclosing `target/`
/// directory (benches run with the crate, not the workspace, as cwd),
/// else `./target/bench`.
fn bench_dir() -> PathBuf {
    if let Ok(d) = std::env::var("CMPSIM_BENCH_DIR") {
        return PathBuf::from(d);
    }
    if let Ok(d) = std::env::var("CARGO_TARGET_DIR") {
        return PathBuf::from(d).join("bench");
    }
    let mut cur = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let cand = cur.join("target");
        if cand.is_dir() {
            return cand.join("bench");
        }
        if !cur.pop() {
            return PathBuf::from("target/bench");
        }
    }
}

fn env_u32(key: &str) -> Option<u32> {
    std::env::var(key).ok()?.parse().ok()
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarizes_samples() {
        let r = BenchResult::from_samples("t", (1..=100).collect());
        assert_eq!(r.iters, 100);
        assert_eq!(r.median_ns, 51);
        assert_eq!(r.p10_ns, 11);
        assert_eq!(r.p90_ns, 90);
        assert!((r.mean_ns - 50.5).abs() < 1e-9);
    }

    #[test]
    fn bench_runs_and_reports() {
        let mut runner = Runner::new("selftest", 1, 5);
        let r = runner.bench("spin", || (0..1000u64).sum::<u64>());
        assert_eq!(r.iters, 5);
        assert!(r.p10_ns <= r.median_ns && r.median_ns <= r.p90_ns);
    }

    #[test]
    fn json_is_well_formed() {
        let mut runner = Runner::new("json \"suite\"", 0, 2);
        runner.bench("a/b", || 1u32);
        runner.metric("speedup", 3.25);
        let js = runner.to_json();
        assert!(js.contains("\"json \\\"suite\\\"\""));
        assert!(js.contains("\"name\": \"a/b\""));
        assert!(js.contains("\"speedup\": 3.25"));
        assert_eq!(js.matches('{').count(), js.matches('}').count());
    }

    #[test]
    fn nonfinite_metrics_become_null() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(2.5), "2.5");
    }
}
