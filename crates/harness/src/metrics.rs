//! Service-layer metrics: atomic counters, gauges, and log-bucketed
//! latency histograms behind a named [`Registry`], with mergeable
//! snapshots, deterministic quantile reporting, and flat-JSON /
//! Prometheus-text export.
//!
//! Like [`telemetry`](crate::telemetry), everything here is *measurement
//! plumbing*: recording is relaxed atomics that feed nothing back into
//! what a simulation computes, so armed metrics leave every grid digest
//! and golden bit-identical (the `metrics_gate` example and `ci.sh` pin
//! this). The intended users are the service layer — the result store,
//! the grid drivers, and the `serve` daemon — which share the process
//! [`global`] registry so one `{"metrics":1}` query sees the whole
//! serving path.
//!
//! Design points:
//!
//! - **Handles are cheap.** [`Registry::counter`]/[`gauge`]
//!   (Registry::gauge)/[`histogram`](Registry::histogram) get-or-create
//!   by name and return `Arc`-backed handles; instrumentation sites
//!   resolve their names once and then record lock-free.
//! - **Histograms are log-bucketed.** Values 0–15 get exact buckets;
//!   above that each power-of-two octave splits into 16 sub-buckets, so
//!   the relative bucket error is ≤ 1/16 across the whole `u64` range
//!   (the HdrHistogram layout, shrunk). A histogram is ~8 KB of atomics.
//! - **Quantiles are deterministic.** A quantile is a pure function of
//!   the bucket counts (the value multiset), so any insertion order —
//!   and any merge order of per-shard snapshots — reports identical
//!   p50/p95/p99 (`proptest_metrics.rs` pins permutation invariance and
//!   merge associativity/commutativity).
//! - **Snapshots merge.** [`HistogramSnapshot::merge`] is bucket-wise
//!   addition; merging per-worker or per-process snapshots equals one
//!   histogram that saw every value.
//!
//! `CMPSIM_METRICS=0` disarms recording at the instrumentation sites
//! (they check [`enabled`] once and skip the atomics); the default is
//! armed, because recording is inert and the serve daemon depends on it.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

// ---------------------------------------------------------------- gating

/// Whether metrics recording is armed: `CMPSIM_METRICS=0` disarms it,
/// anything else (including unset) leaves it on. Read once per process.
pub fn enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| std::env::var("CMPSIM_METRICS").map(|v| v != "0").unwrap_or(true))
}

// -------------------------------------------------------------- counters

/// Monotonic event counter (`Arc`-backed; clone to share).
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous level (bytes resident, queue depth, ...). Unsigned by
/// design — every service-layer level here is a size or a count.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the level.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the level by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Lowers the level by `n`, saturating at zero (a racy double-release
    /// must not wrap to 2^64).
    #[inline]
    pub fn sub(&self, n: u64) {
        let _ = self.0.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(n))
        });
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

// ------------------------------------------------------------- histogram

/// Exact buckets for values below 16.
const LINEAR: u64 = 16;
/// Sub-buckets per power-of-two octave above the linear range.
const SUBS: usize = 16;
/// Total buckets: 16 exact + 16 per octave for exponents 4..=63.
pub const BUCKETS: usize = LINEAR as usize + 60 * SUBS;

/// Bucket index for a value (total order, covers all of `u64`).
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < LINEAR {
        v as usize
    } else {
        let e = 63 - v.leading_zeros() as usize; // 4..=63
        let sub = ((v >> (e - 4)) & 0xF) as usize;
        LINEAR as usize + (e - 4) * SUBS + sub
    }
}

/// Smallest value that lands in bucket `i`.
fn bucket_lower(i: usize) -> u64 {
    if i < LINEAR as usize {
        i as u64
    } else {
        let j = i - LINEAR as usize;
        let e = (j / SUBS + 4) as u32;
        let sub = (j % SUBS) as u64;
        (1u64 << e) + (sub << (e - 4))
    }
}

/// Largest value that lands in bucket `i`.
fn bucket_upper(i: usize) -> u64 {
    if i + 1 >= BUCKETS {
        u64::MAX
    } else {
        bucket_lower(i + 1) - 1
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: Vec<AtomicU64>, // BUCKETS entries
    sum: AtomicU64,
    min: AtomicU64, // u64::MAX until the first record
    max: AtomicU64,
}

/// Log-bucketed value distribution (latencies in nanoseconds, sizes in
/// bytes, ...). Recording is one relaxed `fetch_add` per bucket plus the
/// sum/min/max registers; reading takes a [`snapshot`]
/// (Histogram::snapshot).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramCore {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// Records one value.
    #[inline]
    pub fn record(&self, v: u64) {
        let c = &self.0;
        c.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
        c.min.fetch_min(v, Ordering::Relaxed);
        c.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records the nanoseconds elapsed since `start` (the common
    /// latency-site idiom) and returns the recorded value.
    pub fn record_elapsed(&self, start: std::time::Instant) -> u64 {
        let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.record(nanos);
        nanos
    }

    /// A point-in-time copy of the distribution. Concurrent recorders may
    /// land between the bucket reads — the snapshot is exact whenever the
    /// histogram is quiescent, and its `count` is always the sum of its
    /// own buckets (quantiles never see a torn total).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let c = &self.0;
        let counts: Vec<u64> = c.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count = counts.iter().sum();
        let min = c.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            counts,
            count,
            sum: c.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max: c.max.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        let c = &self.0;
        for b in &c.buckets {
            b.store(0, Ordering::Relaxed);
        }
        c.sum.store(0, Ordering::Relaxed);
        c.min.store(u64::MAX, Ordering::Relaxed);
        c.max.store(0, Ordering::Relaxed);
    }
}

/// Frozen copy of a [`Histogram`]: bucket counts plus the sum/min/max
/// registers. Snapshots [`merge`](Self::merge) associatively and
/// commutatively, so per-worker (or per-process) histograms combine into
/// exactly the histogram that saw every value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    /// Values recorded (sum of the bucket counts).
    pub count: u64,
    /// Sum of every recorded value (wrapping at 2^64).
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { counts: vec![0; BUCKETS], count: 0, sum: 0, min: 0, max: 0 }
    }
}

impl HistogramSnapshot {
    /// Folds `other` into `self` (bucket-wise addition; min/max combine).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        // Empty sides contribute no min (their min is the placeholder 0).
        self.min = match (self.count, other.count) {
            (0, _) => other.min,
            (_, 0) => self.min,
            _ => self.min.min(other.min),
        };
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) of the recorded values, reported
    /// as the containing bucket's upper bound clamped to the observed
    /// `[min, max]` — a deterministic function of the value *multiset*
    /// with ≤ 1/16 relative bucket error (exact for values below 32).
    /// Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Arithmetic mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// `(upper_bound, cumulative_count)` per non-empty bucket, for
    /// cumulative (Prometheus-style) export.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                cum += c;
                out.push((bucket_upper(i), cum));
            }
        }
        out
    }
}

// -------------------------------------------------------------- registry

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// Named metrics, get-or-created on first touch. The maps are `BTreeMap`
/// so every snapshot and export lists metrics in one deterministic
/// order. Names must be unique across kinds (a counter `x` and a gauge
/// `x` would collide in the flat-JSON export); the service layer
/// namespaces by prefix — `store_*`, `grid_*`, `serve_*`.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    /// An empty registry (the service layer shares [`global`] instead).
    pub fn new() -> Self {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The counter named `name`, created zero on first touch.
    pub fn counter(&self, name: &str) -> Counter {
        self.lock().counters.entry(name.to_string()).or_default().clone()
    }

    /// The gauge named `name`, created zero on first touch.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.lock().gauges.entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name`, created empty on first touch.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.lock().histograms.entry(name.to_string()).or_default().clone()
    }

    /// A point-in-time copy of every metric in the registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        MetricsSnapshot {
            counters: inner.counters.iter().map(|(n, c)| (n.clone(), c.get())).collect(),
            gauges: inner.gauges.iter().map(|(n, g)| (n.clone(), g.get())).collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(n, h)| (n.clone(), h.snapshot()))
                .collect(),
        }
    }

    /// Zeroes every registered metric in place (handles stay valid — the
    /// atomics are reset, not replaced). For gates and tests that want a
    /// clean slate without re-resolving handles.
    pub fn reset(&self) {
        let inner = self.lock();
        for c in inner.counters.values() {
            c.0.store(0, Ordering::Relaxed);
        }
        for g in inner.gauges.values() {
            g.0.store(0, Ordering::Relaxed);
        }
        for h in inner.histograms.values() {
            h.reset();
        }
    }
}

/// The process-wide registry the service layer records into (store,
/// grid drivers, serve daemon).
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

// -------------------------------------------------------------- snapshot

/// Quantiles every histogram export reports.
const QUANTILES: [(&str, f64); 3] = [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)];

/// Frozen copy of a whole [`Registry`], renderable as one flat JSON
/// object (the journal/store framing: string and `u64` values only) or
/// as Prometheus text exposition.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` per counter, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge, name-sorted.
    pub gauges: Vec<(String, u64)>,
    /// `(name, snapshot)` per histogram, name-sorted.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// A named counter's value, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// A named gauge's value, if registered.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// A named histogram's snapshot, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Renders the snapshot as one flat JSON object: counters and gauges
    /// as `"name":value`, histograms as `name_count`/`name_sum`/
    /// `name_min`/`name_max`/`name_p50`/`name_p95`/`name_p99`. The
    /// object opens with `"metrics":1` so consumers (the serve protocol,
    /// the ops dashboard) can recognize it, and parses with
    /// `cmpsim_core::flatjson::parse_flat`.
    pub fn to_flat_json(&self) -> String {
        let mut s = String::from("{\"metrics\":1");
        for (name, v) in &self.counters {
            s.push_str(&format!(",\"{name}\":{v}"));
        }
        for (name, v) in &self.gauges {
            s.push_str(&format!(",\"{name}\":{v}"));
        }
        for (name, h) in &self.histograms {
            s.push_str(&format!(
                ",\"{name}_count\":{},\"{name}_sum\":{},\"{name}_min\":{},\"{name}_max\":{}",
                h.count, h.sum, h.min, h.max
            ));
            for (label, q) in QUANTILES {
                s.push_str(&format!(",\"{name}_{label}\":{}", h.quantile(q)));
            }
        }
        s.push('}');
        s
    }

    /// Renders the snapshot in the Prometheus text exposition format,
    /// metric names prefixed `cmpsim_`. Histograms export cumulative
    /// non-empty buckets plus `+Inf`, `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut s = String::new();
        for (name, v) in &self.counters {
            s.push_str(&format!("# TYPE cmpsim_{name} counter\ncmpsim_{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            s.push_str(&format!("# TYPE cmpsim_{name} gauge\ncmpsim_{name} {v}\n"));
        }
        for (name, h) in &self.histograms {
            s.push_str(&format!("# TYPE cmpsim_{name} histogram\n"));
            for (le, cum) in h.cumulative_buckets() {
                s.push_str(&format!("cmpsim_{name}_bucket{{le=\"{le}\"}} {cum}\n"));
            }
            s.push_str(&format!(
                "cmpsim_{name}_bucket{{le=\"+Inf\"}} {c}\ncmpsim_{name}_sum {sum}\n\
                 cmpsim_{name}_count {c}\n",
                c = h.count,
                sum = h.sum
            ));
        }
        s
    }
}

// ----------------------------------------------------------- atomic file

/// Writes `contents` to `path` through a sibling tempfile and an atomic
/// rename — the same discipline as store/journal headers — so a reader
/// (or a killed writer) can never observe a torn file. Parent
/// directories are created as needed.
///
/// # Errors
///
/// Propagates filesystem errors from the write or the rename.
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_share_handles() {
        let r = Registry::new();
        let a = r.counter("hits");
        let b = r.counter("hits");
        a.inc();
        b.add(4);
        assert_eq!(r.counter("hits").get(), 5, "same name, same atomic");
        let g = r.gauge("depth");
        g.set(7);
        g.sub(9);
        assert_eq!(g.get(), 0, "gauge sub saturates at zero");
        g.add(3);
        assert_eq!(r.gauge("depth").get(), 3);
    }

    #[test]
    fn bucket_layout_is_a_total_order_with_tight_bounds() {
        // Every value lands in a bucket whose bounds contain it, and
        // bucket indices are monotone in the value.
        let probes: Vec<u64> = (0..200)
            .chain([1023, 1024, 1025, u64::MAX / 2, u64::MAX - 1, u64::MAX])
            .collect();
        let mut prev_idx = 0;
        for &v in &probes {
            let i = bucket_index(v);
            assert!(bucket_lower(i) <= v && v <= bucket_upper(i), "v={v} bucket {i}");
            assert!(i >= prev_idx, "indices monotone at v={v}");
            prev_idx = i;
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        // Values below 32 are exactly representable (bucket width 1).
        for v in 0..32u64 {
            let i = bucket_index(v);
            assert_eq!(bucket_lower(i), bucket_upper(i), "v={v} should be exact");
        }
        // Relative bucket error is bounded by 1/16.
        for &v in &probes {
            if v >= 32 {
                let i = bucket_index(v);
                let width = bucket_upper(i) - bucket_lower(i) + 1;
                assert!(width as f64 / v as f64 <= 1.0 / 16.0 + 1e-12, "v={v} width {width}");
            }
        }
    }

    #[test]
    fn histogram_quantiles_and_mean() {
        let h = Histogram::default();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!((s.min, s.max), (1, 100));
        assert_eq!(s.sum, 5050);
        assert!((s.mean() - 50.5).abs() < 1e-9);
        let p50 = s.quantile(0.50);
        let p99 = s.quantile(0.99);
        assert!((47..=53).contains(&p50), "p50 within one bucket of 50: {p50}");
        assert!((95..=100).contains(&p99), "p99 near the top: {p99}");
        assert_eq!(s.quantile(1.0), 100, "p100 is the exact max");
        assert_eq!(s.quantile(0.0), 1, "p0 clamps to the exact min");
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0, "empty → 0");
    }

    #[test]
    fn snapshot_merge_equals_combined_recording() {
        let a = Histogram::default();
        let b = Histogram::default();
        let all = Histogram::default();
        for v in [0u64, 3, 17, 17, 900, 1_000_000, u64::MAX] {
            all.record(v);
            if v % 2 == 0 { a.record(v) } else { b.record(v) }
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
        // Merging an empty snapshot is the identity.
        let mut m2 = merged.clone();
        m2.merge(&HistogramSnapshot::default());
        assert_eq!(m2, merged);
        let mut empty = HistogramSnapshot::default();
        empty.merge(&merged);
        assert_eq!(empty, merged);
    }

    #[test]
    fn flat_json_export_is_flat_and_complete() {
        let r = Registry::new();
        r.counter("store_hits").add(3);
        r.gauge("store_resident_bytes").set(4096);
        let h = r.histogram("serve_request_nanos");
        h.record(100);
        h.record(200);
        let json = r.snapshot().to_flat_json();
        assert!(json.starts_with("{\"metrics\":1,"), "{json}");
        for key in [
            "\"store_hits\":3",
            "\"store_resident_bytes\":4096",
            "\"serve_request_nanos_count\":2",
            "\"serve_request_nanos_sum\":300",
            "\"serve_request_nanos_min\":100",
            "\"serve_request_nanos_max\":200",
            "\"serve_request_nanos_p50\":",
            "\"serve_request_nanos_p95\":",
            "\"serve_request_nanos_p99\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Flat by construction: no nesting, no floats.
        assert!(!json.contains('[') && !json.contains('.'), "{json}");
    }

    #[test]
    fn prometheus_export_shape() {
        let r = Registry::new();
        r.counter("serve_requests").add(2);
        r.gauge("grid_queue_depth").set(5);
        let h = r.histogram("lat");
        h.record(7);
        h.record(7);
        h.record(40);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE cmpsim_serve_requests counter\ncmpsim_serve_requests 2\n"));
        assert!(text.contains("# TYPE cmpsim_grid_queue_depth gauge\ncmpsim_grid_queue_depth 5\n"));
        assert!(text.contains("# TYPE cmpsim_lat histogram\n"));
        assert!(text.contains("cmpsim_lat_bucket{le=\"7\"} 2\n"), "{text}");
        assert!(text.contains("cmpsim_lat_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("cmpsim_lat_sum 54\n"));
        assert!(text.contains("cmpsim_lat_count 3\n"));
        // Cumulative bucket counts are non-decreasing.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{le=") && !l.contains("+Inf")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "{text}");
            last = v;
        }
    }

    #[test]
    fn registry_reset_keeps_handles_live() {
        let r = Registry::new();
        let c = r.counter("x");
        let h = r.histogram("h");
        c.add(9);
        h.record(5);
        r.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(h.snapshot().count, 0);
        c.inc();
        assert_eq!(r.counter("x").get(), 1, "old handle still feeds the registry");
    }

    #[test]
    fn write_atomic_replaces_whole_file() {
        let dir = std::env::temp_dir().join(format!("cmpsim-metrics-{}", std::process::id()));
        let path = dir.join("snap.json");
        write_atomic(&path, "{\"a\":1}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"a\":1}");
        write_atomic(&path, "{\"a\":2}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"a\":2}");
        assert!(!dir.join("snap.json.tmp").exists(), "tempfile renamed away");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_recording_is_exact_when_quiescent() {
        let r = Registry::new();
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let c = r.counter("n");
                let h = r.histogram("v");
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        c.inc();
                        h.record(t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(r.counter("n").get(), 8000);
        let s = r.histogram("v").snapshot();
        assert_eq!(s.count, 8000);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 7999);
    }
}
