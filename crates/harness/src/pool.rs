//! Scoped self-scheduling thread pool.
//!
//! [`run_indexed`] spreads a vector of independent closures across worker
//! threads. Scheduling is dynamic — every idle worker atomically claims
//! ("steals") the next unstarted job, so long jobs never serialize behind
//! short ones — but the *results* are returned in submission order and the
//! jobs themselves are untouched. A caller whose jobs are pure functions
//! of their inputs therefore gets bit-identical output at any thread
//! count, including 1; that contract is what
//! `cmpsim_core::experiment::run_grid_parallel` builds on.
//!
//! Built on `std::thread::scope`: no leaked threads, no `'static` bounds
//! on borrowed data, and a panicking job propagates to the caller after
//! the scope joins.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Number of workers to use by default: the machine's available
/// parallelism, overridable with `CMPSIM_THREADS`.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("CMPSIM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs every job, using up to `threads` workers, and returns the results
/// in the order the jobs were given.
///
/// With `threads <= 1` (or a single job) the jobs run inline on the
/// calling thread, in order, with no worker spawned at all — the serial
/// path really is serial.
///
/// # Panics
///
/// If a job panics, the panic is re-raised on the calling thread once
/// all workers have joined, carrying the *original* payload and the
/// failing job's index — not the generic "a scoped thread panicked" /
/// poisoned-mutex noise. When several jobs panic, the one with the
/// lowest index wins (deterministically, regardless of scheduling).
pub fn run_indexed<T, F>(threads: usize, jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    if threads <= 1 || n <= 1 {
        return jobs.into_iter().map(|j| j()).collect();
    }

    // Each job lives in its own slot so workers can claim disjoint jobs
    // without a shared queue lock; `next` is the steal cursor.
    let slots: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let panics: Vec<Mutex<Option<Box<dyn std::any::Any + Send>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = slots[i]
                    .lock()
                    .expect("job slot poisoned")
                    .take()
                    .expect("job claimed twice");
                // Catch instead of unwinding through the scope: an
                // unwinding worker would make `scope` panic with a
                // generic message and poison sibling result mutexes.
                match catch_unwind(AssertUnwindSafe(job)) {
                    Ok(out) => {
                        *results[i].lock().expect("result slot poisoned") = Some(out)
                    }
                    Err(payload) => {
                        *panics[i].lock().expect("panic slot poisoned") = Some(payload)
                    }
                }
            });
        }
    });

    // Re-raise the first (lowest-index) panic with its original payload.
    for (i, p) in panics.into_iter().enumerate() {
        if let Some(payload) = p.into_inner().expect("panic slot poisoned") {
            eprintln!("cmpsim_harness::pool::run_indexed: job {i} of {n} panicked");
            if let Some(msg) = payload.downcast_ref::<&str>() {
                panic!("job {i} panicked: {msg}");
            }
            if let Some(msg) = payload.downcast_ref::<String>() {
                panic!("job {i} panicked: {msg}");
            }
            resume_unwind(payload);
        }
    }

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker exited before finishing its job")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_submission_order() {
        let jobs: Vec<_> = (0..64u64).map(|i| move || i * i).collect();
        let out = run_indexed(8, jobs);
        assert_eq!(out, (0..64u64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let make = || (0..50u64).map(|i| move || i.wrapping_mul(0x9E3779B9).rotate_left(7)).collect::<Vec<_>>();
        assert_eq!(run_indexed(1, make()), run_indexed(4, make()));
        assert_eq!(run_indexed(1, make()), run_indexed(16, make()));
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let count = AtomicU64::new(0);
        let jobs: Vec<_> = (0..100)
            .map(|_| {
                let count = &count;
                move || count.fetch_add(1, Ordering::Relaxed)
            })
            .collect();
        run_indexed(7, jobs);
        assert_eq!(count.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn zero_threads_falls_back_to_inline() {
        let out = run_indexed(0, vec![|| 1, || 2]);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn empty_job_list_is_fine() {
        let out: Vec<u32> = run_indexed(4, Vec::<fn() -> u32>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        let out = run_indexed(32, vec![|| 1u8, || 2, || 3]);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn borrowed_data_is_usable() {
        let data: Vec<u64> = (0..1000).collect();
        let jobs: Vec<_> = data
            .chunks(100)
            .map(|chunk| move || chunk.iter().sum::<u64>())
            .collect();
        let partials = run_indexed(4, jobs);
        assert_eq!(partials.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "job 2 panicked: the real failure reason")]
    fn panic_payload_and_index_propagate() {
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = (0..8u32)
            .map(|i| {
                Box::new(move || {
                    if i == 2 {
                        panic!("the real failure reason");
                    }
                    i
                }) as _
            })
            .collect();
        run_indexed(4, jobs);
    }

    #[test]
    #[should_panic(expected = "job 1 panicked")]
    fn lowest_index_panic_wins() {
        // Both jobs panic; the report must deterministically name job 1
        // (the lowest failing index), not whichever thread lost the race.
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = (0..6u32)
            .map(|i| {
                Box::new(move || {
                    if i == 1 || i == 5 {
                        panic!("boom {i}");
                    }
                    i
                }) as _
            })
            .collect();
        run_indexed(4, jobs);
    }

    #[test]
    fn surviving_jobs_still_run_after_a_panic() {
        use std::sync::atomic::AtomicU64;
        static RAN: AtomicU64 = AtomicU64::new(0);
        let jobs: Vec<Box<dyn FnOnce() -> () + Send>> = (0..16u32)
            .map(|i| {
                Box::new(move || {
                    if i == 0 {
                        panic!("early panic");
                    }
                    RAN.fetch_add(1, Ordering::Relaxed);
                }) as _
            })
            .collect();
        let caught = catch_unwind(AssertUnwindSafe(|| run_indexed(4, jobs)));
        assert!(caught.is_err());
        assert_eq!(
            RAN.load(Ordering::Relaxed),
            15,
            "a panicking job must not prevent its siblings from running"
        );
    }
}
