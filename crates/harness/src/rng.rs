//! Deterministic xorshift64* generator for the harness.
//!
//! Same algorithm and constants as `cmpsim_trace::Rng` (the harness cannot
//! depend on the trace crate — the trace crate's tests depend on the
//! harness). Keeping the two in lockstep means a property-test seed and a
//! simulator seed draw from the same family of streams.

/// Deterministic xorshift64* generator.
///
/// # Examples
///
/// ```
/// use cmpsim_harness::Rng;
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from `seed` (any value; zero is remapped).
    pub fn new(seed: u64) -> Self {
        // SplitMix64 scramble so close seeds diverge immediately.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Rng { state: if z == 0 { 0x4d59_5df4_d0f3_3173 } else { z } }
    }

    /// Derives an independent stream for a sub-component.
    pub fn fork(&mut self, tag: u64) -> Rng {
        Rng::new(self.next_u64() ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }
}

/// Stateless FNV-1a hash of a byte string, used to give every property a
/// distinct deterministic seed stream derived from its name.
pub(crate) fn hash_str(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_is_in_range() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn forked_streams_differ() {
        let mut root = Rng::new(11);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn name_hash_spreads() {
        assert_ne!(hash_str("roundtrip"), hash_str("roundtrap"));
        assert_ne!(hash_str("a"), hash_str("b"));
    }
}
