//! Seeded value generators with shrinking.
//!
//! A [`Gen<T>`] bundles a sampling function (draw a `T` from an [`Rng`])
//! with a shrinking function (propose strictly-simpler candidates for a
//! failing value). The property runner in [`crate::prop`] drives both:
//! sampling for the case loop, shrinking greedily after the first failure.
//!
//! Shrinking is value-based and heuristic — integers move toward their
//! lower bound, vectors lose elements, tuples shrink one component at a
//! time. That is enough to turn a 300-operation counterexample into a
//! handful of operations, which is what makes property failures debuggable.

use crate::Rng;
use std::ops::{Bound, RangeBounds};
use std::rc::Rc;

/// A reusable generator: sampling plus shrinking for values of type `T`.
pub struct Gen<T> {
    sample: Rc<dyn Fn(&mut Rng) -> T>,
    shrink: Rc<dyn Fn(&T) -> Vec<T>>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Gen { sample: Rc::clone(&self.sample), shrink: Rc::clone(&self.shrink) }
    }
}

impl<T: 'static> Gen<T> {
    /// Builds a generator from a sampling closure and a shrink closure.
    pub fn new(
        sample: impl Fn(&mut Rng) -> T + 'static,
        shrink: impl Fn(&T) -> Vec<T> + 'static,
    ) -> Self {
        Gen { sample: Rc::new(sample), shrink: Rc::new(shrink) }
    }

    /// Draws one value.
    pub fn sample(&self, rng: &mut Rng) -> T {
        (self.sample)(rng)
    }

    /// Proposes simpler candidates for `v` (possibly empty).
    pub fn shrinks(&self, v: &T) -> Vec<T> {
        (self.shrink)(v)
    }

    /// Maps the generated value. The mapped generator does not shrink
    /// (there is no inverse to shrink through); prefer building the final
    /// shape directly when shrinking matters.
    pub fn map<U: 'static>(self, f: impl Fn(T) -> U + 'static) -> Gen<U> {
        Gen::new(move |rng| f(self.sample(rng)), |_| Vec::new())
    }
}

fn resolve_bounds<T: Copy, W: Copy + PartialOrd>(
    range: impl RangeBounds<T>,
    min: W,
    max: W,
    widen: impl Fn(T) -> W,
    succ: impl Fn(W) -> W,
    pred: impl Fn(W) -> W,
) -> (W, W) {
    let lo = match range.start_bound() {
        Bound::Included(&x) => widen(x),
        Bound::Excluded(&x) => succ(widen(x)),
        Bound::Unbounded => min,
    };
    let hi = match range.end_bound() {
        Bound::Included(&x) => widen(x),
        Bound::Excluded(&x) => pred(widen(x)),
        Bound::Unbounded => max,
    };
    assert!(lo <= hi, "empty generator range");
    (lo, hi)
}

macro_rules! int_gen {
    ($(#[$doc:meta])* $name:ident, $t:ty) => {
        $(#[$doc])*
        pub fn $name(range: impl RangeBounds<$t>) -> Gen<$t> {
            let (lo, hi) = resolve_bounds(
                range,
                <$t>::MIN as i128,
                <$t>::MAX as i128,
                |x| x as i128,
                |x| x + 1,
                |x| x - 1,
            );
            let sample = move |rng: &mut Rng| -> $t {
                let span = (hi - lo) as u128 + 1;
                let off = if span > u128::from(u64::MAX) {
                    rng.next_u64()
                } else {
                    rng.below(span as u64)
                };
                (lo + off as i128) as $t
            };
            let shrink = move |&v: &$t| -> Vec<$t> {
                let v = v as i128;
                let mut out = Vec::new();
                if v > lo {
                    out.push(lo as $t);
                    let mid = lo + (v - lo) / 2;
                    if mid != lo && mid != v {
                        out.push(mid as $t);
                    }
                    out.push((v - 1) as $t);
                }
                out.dedup();
                out
            };
            Gen::new(sample, shrink)
        }
    };
}

int_gen!(
    /// Uniform `u8` in `range`; shrinks toward the lower bound.
    u8s, u8
);
int_gen!(
    /// Uniform `u16` in `range`; shrinks toward the lower bound.
    u16s, u16
);
int_gen!(
    /// Uniform `u32` in `range`; shrinks toward the lower bound.
    u32s, u32
);
int_gen!(
    /// Uniform `u64` in `range`; shrinks toward the lower bound.
    u64s, u64
);
int_gen!(
    /// Uniform `usize` in `range`; shrinks toward the lower bound.
    usizes, usize
);
int_gen!(
    /// Uniform `i8` in `range`; shrinks toward the lower bound.
    i8s, i8
);
int_gen!(
    /// Uniform `i32` in `range`; shrinks toward the lower bound.
    i32s, i32
);
int_gen!(
    /// Uniform `i64` in `range`; shrinks toward the lower bound.
    i64s, i64
);

/// Uniform `bool`; `true` shrinks to `false`.
pub fn bools() -> Gen<bool> {
    Gen::new(|rng| rng.chance(0.5), |&v| if v { vec![false] } else { Vec::new() })
}

/// Picks uniformly from `items`; shrinks toward earlier elements.
///
/// # Panics
///
/// Sampling panics if `items` is empty.
pub fn select<T: Clone + PartialEq + 'static>(items: Vec<T>) -> Gen<T> {
    assert!(!items.is_empty(), "cannot select from an empty list");
    let pick = items.clone();
    Gen::new(
        move |rng| pick[rng.below(pick.len() as u64) as usize].clone(),
        move |v| {
            match items.iter().position(|x| x == v) {
                Some(i) => items[..i].to_vec(),
                None => Vec::new(),
            }
        },
    )
}

/// Pair of independent generators; shrinks one component at a time.
pub fn pair<A, B>(a: Gen<A>, b: Gen<B>) -> Gen<(A, B)>
where
    A: Clone + 'static,
    B: Clone + 'static,
{
    let (sa, sb) = (a.clone(), b.clone());
    Gen::new(
        move |rng| (sa.sample(rng), sb.sample(rng)),
        move |(va, vb)| {
            let mut out: Vec<(A, B)> =
                a.shrinks(va).into_iter().map(|x| (x, vb.clone())).collect();
            out.extend(b.shrinks(vb).into_iter().map(|x| (va.clone(), x)));
            out
        },
    )
}

/// Triple of independent generators; shrinks one component at a time.
pub fn triple<A, B, C>(a: Gen<A>, b: Gen<B>, c: Gen<C>) -> Gen<(A, B, C)>
where
    A: Clone + 'static,
    B: Clone + 'static,
    C: Clone + 'static,
{
    pair(pair(a, b), c).remap(
        |((a, b), c)| (a, b, c),
        |(a, b, c)| ((a.clone(), b.clone()), c.clone()),
    )
}

/// Quadruple of independent generators; shrinks one component at a time.
pub fn quad<A, B, C, D>(a: Gen<A>, b: Gen<B>, c: Gen<C>, d: Gen<D>) -> Gen<(A, B, C, D)>
where
    A: Clone + 'static,
    B: Clone + 'static,
    C: Clone + 'static,
    D: Clone + 'static,
{
    pair(pair(a, b), pair(c, d)).remap(
        |((a, b), (c, d))| (a, b, c, d),
        |(a, b, c, d)| ((a.clone(), b.clone()), (c.clone(), d.clone())),
    )
}

impl<T: 'static> Gen<T> {
    /// Bidirectional map: `fwd` shapes the generated value, `back` undoes
    /// it so shrinking can run in the source domain.
    pub fn remap<U: 'static>(
        self,
        fwd: impl Fn(T) -> U + Copy + 'static,
        back: impl Fn(&U) -> T + 'static,
    ) -> Gen<U> {
        let src = self.clone();
        Gen::new(
            move |rng| fwd(src.sample(rng)),
            move |u| self.shrinks(&back(u)).into_iter().map(fwd).collect(),
        )
    }
}

/// Vector of `elem` values with a length drawn from `len`.
///
/// Shrinks by halving toward the minimum length, dropping single
/// elements, and shrinking individual elements in place.
pub fn vec_of<T>(elem: Gen<T>, len: impl RangeBounds<usize>) -> Gen<Vec<T>>
where
    T: Clone + 'static,
{
    let (lo, hi) = resolve_bounds(len, 0, usize::MAX as i128, |x| x as i128, |x| x + 1, |x| x - 1);
    let (lo, hi) = (lo as usize, hi as usize);
    let length = usizes(lo..=hi);
    let sampler = elem.clone();
    Gen::new(
        move |rng| {
            let n = length.sample(rng);
            (0..n).map(|_| sampler.sample(rng)).collect()
        },
        move |v: &Vec<T>| {
            let mut out: Vec<Vec<T>> = Vec::new();
            // Structural shrinks: halve toward the minimum, drop one element.
            if v.len() > lo {
                let half = (v.len() / 2).max(lo);
                if half < v.len() {
                    out.push(v[..half].to_vec());
                }
                for cut in [0, v.len() / 2, v.len() - 1] {
                    let mut shorter = v.clone();
                    shorter.remove(cut);
                    out.push(shorter);
                }
            }
            // Element shrinks: bounded fan-out to keep passes cheap.
            for i in 0..v.len().min(24) {
                for cand in elem.shrinks(&v[i]).into_iter().take(3) {
                    let mut alt = v.clone();
                    alt[i] = cand;
                    out.push(alt);
                }
            }
            out
        },
    )
}

/// Vector of exactly `n` elements (element-wise shrinking only).
pub fn vec_exact<T>(elem: Gen<T>, n: usize) -> Gen<Vec<T>>
where
    T: Clone + 'static,
{
    vec_of(elem, n..=n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng {
        Rng::new(0xDECAF)
    }

    #[test]
    fn ints_stay_in_range() {
        let g = u64s(5..48);
        let mut r = rng();
        for _ in 0..10_000 {
            let v = g.sample(&mut r);
            assert!((5..48).contains(&v));
        }
    }

    #[test]
    fn full_u64_range_works() {
        let g = u64s(..);
        let mut r = rng();
        let a = g.sample(&mut r);
        let b = g.sample(&mut r);
        assert_ne!(a, b);
    }

    #[test]
    fn signed_ranges_work() {
        let g = i64s(-7..=7);
        let mut r = rng();
        for _ in 0..1_000 {
            assert!((-7..=7).contains(&g.sample(&mut r)));
        }
    }

    #[test]
    fn int_shrink_moves_toward_lower_bound() {
        let g = u64s(3..100);
        for cand in g.shrinks(&50) {
            assert!(cand < 50 && cand >= 3);
        }
        assert!(g.shrinks(&3).is_empty(), "lower bound is already minimal");
    }

    #[test]
    fn bool_shrinks_to_false() {
        assert_eq!(bools().shrinks(&true), vec![false]);
        assert!(bools().shrinks(&false).is_empty());
    }

    #[test]
    fn select_shrinks_to_earlier_items() {
        let g = select(vec![10, 20, 30]);
        assert_eq!(g.shrinks(&30), vec![10, 20]);
        assert!(g.shrinks(&10).is_empty());
    }

    #[test]
    fn vec_respects_length_bounds() {
        let g = vec_of(u8s(..), 2..5);
        let mut r = rng();
        for _ in 0..1_000 {
            let v = g.sample(&mut r);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn vec_shrinks_never_go_below_min_len() {
        let g = vec_of(u8s(..), 2..5);
        for cand in g.shrinks(&vec![9, 8, 7, 6]) {
            assert!(cand.len() >= 2);
        }
    }

    #[test]
    fn tuple_shrinks_one_side_at_a_time() {
        let g = pair(u8s(0..10), u8s(0..10));
        for (a, b) in g.shrinks(&(4, 7)) {
            assert!((a, b) != (4, 7));
            assert!(a == 4 || b == 7, "both sides changed at once");
        }
    }

    #[test]
    fn quad_samples_and_shrinks() {
        let g = quad(u8s(..), u64s(0..1000), u8s(..), u64s(0..10_000));
        let mut r = rng();
        let v = g.sample(&mut r);
        assert!(v.1 < 1000 && v.3 < 10_000);
        assert!(!g.shrinks(&(5, 500, 5, 5_000)).is_empty());
    }

    #[test]
    fn sampling_is_deterministic() {
        let g = vec_of(pair(u64s(0..48), bools()), 1..400);
        let a = g.sample(&mut Rng::new(9));
        let b = g.sample(&mut Rng::new(9));
        assert_eq!(a, b);
    }
}
