//! Deterministic property-test runner.
//!
//! [`check`] samples a [`Gen`], runs the property on each case, and on the
//! first failure greedily shrinks the counterexample before panicking with
//! a replayable report. Everything is seeded: the per-property stream is
//! derived from the property name, so adding cases to one test never
//! perturbs another.
//!
//! Environment overrides:
//!
//! - `CMPSIM_PT_CASES` — number of cases per property (default 128).
//! - `CMPSIM_PT_SEED` — base seed mixed into every property's stream; use
//!   the value printed by a failure report to replay it exactly.
//!
//! Properties report failure either by returning `Err(String)` (the
//! [`prop_assert!`](crate::prop_assert) family) or by panicking
//! (`assert!`, index out of bounds, ...); both shrink identically.

use crate::gen::Gen;
use crate::rng::{hash_str, Rng};
use std::fmt::Debug;
use std::panic::{self, AssertUnwindSafe};

/// Runner configuration; [`Config::from_env`] is what [`check`] uses.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Cases to run per property.
    pub cases: u32,
    /// Base seed mixed into the per-property stream.
    pub seed: u64,
    /// Cap on shrinking passes after a failure.
    pub max_shrink_steps: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 128, seed: 0, max_shrink_steps: 2_000 }
    }
}

impl Config {
    /// Default config with `CMPSIM_PT_CASES` / `CMPSIM_PT_SEED` applied.
    pub fn from_env() -> Self {
        let mut cfg = Config::default();
        if let Some(cases) = env_u64("CMPSIM_PT_CASES") {
            cfg.cases = cases.clamp(1, 1_000_000) as u32;
        }
        if let Some(seed) = env_u64("CMPSIM_PT_SEED") {
            cfg.seed = seed;
        }
        cfg
    }
}

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok()?.parse().ok()
}

/// Outcome of one property invocation.
enum CaseResult {
    Pass,
    Fail(String),
}

fn run_case<T>(prop: &impl Fn(&T) -> Result<(), String>, value: &T) -> CaseResult {
    match panic::catch_unwind(AssertUnwindSafe(|| prop(value))) {
        Ok(Ok(())) => CaseResult::Pass,
        Ok(Err(msg)) => CaseResult::Fail(msg),
        Err(payload) => CaseResult::Fail(panic_message(&payload)),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

/// Runs `prop` against `cases` sampled values with [`Config::from_env`].
///
/// # Panics
///
/// Panics with a shrunken counterexample report if the property fails.
pub fn check<T: Clone + Debug + 'static>(
    name: &str,
    gen: &Gen<T>,
    prop: impl Fn(&T) -> Result<(), String>,
) {
    check_with(Config::from_env(), name, gen, prop)
}

/// [`check`] with an explicit configuration.
///
/// # Panics
///
/// Panics with a shrunken counterexample report if the property fails.
pub fn check_with<T: Clone + Debug + 'static>(
    cfg: Config,
    name: &str,
    gen: &Gen<T>,
    prop: impl Fn(&T) -> Result<(), String>,
) {
    let base = hash_str(name) ^ cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for case in 0..cfg.cases {
        let mut rng = Rng::new(base.wrapping_add(u64::from(case)));
        let value = gen.sample(&mut rng);
        if let CaseResult::Fail(first_msg) = run_case(&prop, &value) {
            let (minimal, msg, steps) = shrink(cfg, gen, &prop, value, first_msg);
            panic!(
                "property `{name}` failed (case {case}/{cases}, seed {seed}, \
                 {steps} shrink steps)\n  error: {msg}\n  minimal counterexample: \
                 {minimal:?}\n  replay: CMPSIM_PT_SEED={seed} CMPSIM_PT_CASES={cases}",
                cases = cfg.cases,
                seed = cfg.seed,
            );
        }
    }
}

/// Greedily walks shrink candidates, keeping the last failing value.
fn shrink<T: Clone + Debug + 'static>(
    cfg: Config,
    gen: &Gen<T>,
    prop: &impl Fn(&T) -> Result<(), String>,
    mut current: T,
    mut msg: String,
) -> (T, String, u32) {
    // Shrinking re-runs the property on many failing candidates; silence
    // the default panic hook so the report is not buried in backtraces.
    let quiet = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let mut steps = 0;
    'outer: while steps < cfg.max_shrink_steps {
        for cand in gen.shrinks(&current) {
            steps += 1;
            if let CaseResult::Fail(m) = run_case(prop, &cand) {
                current = cand;
                msg = m;
                continue 'outer; // restart from the simpler value
            }
            if steps >= cfg.max_shrink_steps {
                break;
            }
        }
        break; // no candidate fails: `current` is locally minimal
    }
    panic::set_hook(quiet);
    (current, msg, steps)
}

/// Fails the surrounding property when `cond` is false.
///
/// Unlike `assert!`, this returns an `Err` instead of panicking, which
/// keeps shrinking quiet and the failure message structured.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!($($fmt)+));
        }
    };
}

/// Fails the surrounding property when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!(
                "assertion failed: `{} == {}`\n  left: {a:?}\n  right: {b:?}",
                stringify!($a), stringify!($b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!($($fmt)+) + &format!("\n  left: {a:?}\n  right: {b:?}"));
        }
    }};
}

/// Fails the surrounding property when the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err(format!(
                "assertion failed: `{} != {}`\n  both: {a:?}",
                stringify!($a), stringify!($b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err(format!($($fmt)+) + &format!("\n  both: {a:?}"));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn passing_property_runs_all_cases() {
        let hits = std::cell::Cell::new(0u32);
        let cfg = Config { cases: 37, ..Config::default() };
        check_with(cfg, "count_cases", &gen::u64s(0..10), |_| {
            hits.set(hits.get() + 1);
            Ok(())
        });
        assert_eq!(hits.get(), 37);
    }

    #[test]
    fn failing_property_shrinks_to_threshold() {
        let result = panic::catch_unwind(|| {
            check_with(
                Config { cases: 200, ..Config::default() },
                "shrink_to_boundary",
                &gen::u64s(0..10_000),
                |&v| {
                    if v >= 137 {
                        Err(format!("too big: {v}"))
                    } else {
                        Ok(())
                    }
                },
            );
        });
        let msg = panic_message(&*result.expect_err("property must fail"));
        assert!(
            msg.contains("minimal counterexample: 137"),
            "greedy shrink should land exactly on the boundary, got: {msg}"
        );
    }

    #[test]
    fn vector_counterexamples_shrink_structurally() {
        let result = panic::catch_unwind(|| {
            check_with(
                Config { cases: 200, ..Config::default() },
                "vec_shrink",
                &gen::vec_of(gen::u64s(0..100), 0..50),
                |v| {
                    prop_assert!(!v.iter().any(|&x| x >= 90), "contains a large element");
                    Ok(())
                },
            );
        });
        let msg = panic_message(&*result.expect_err("property must fail"));
        // The minimal failing vector is a single element of exactly 90.
        assert!(msg.contains("[90]"), "expected minimal vec [90], got: {msg}");
    }

    #[test]
    fn panicking_properties_are_caught_and_shrunk() {
        let result = panic::catch_unwind(|| {
            check_with(
                Config { cases: 100, ..Config::default() },
                "panic_shrink",
                &gen::vec_of(gen::u8s(..), 0..20),
                |v| {
                    let _ = v[5]; // index out of bounds for short vectors
                    Ok(())
                },
            );
        });
        let msg = panic_message(&*result.expect_err("property must fail"));
        assert!(msg.contains("minimal counterexample"), "got: {msg}");
    }

    #[test]
    fn same_seed_same_cases() {
        let collect = |seed: u64| {
            let mut seen = Vec::new();
            let cfg = Config { cases: 20, seed, ..Config::default() };
            let base = hash_str("determinism") ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            for case in 0..cfg.cases {
                let mut rng = Rng::new(base.wrapping_add(u64::from(case)));
                seen.push(gen::u64s(..).sample(&mut rng));
            }
            seen
        };
        assert_eq!(collect(7), collect(7));
        assert_ne!(collect(7), collect(8));
    }

    #[test]
    fn prop_assert_macros_return_err() {
        fn f(x: u32) -> Result<(), String> {
            prop_assert!(x < 10, "x too big: {x}");
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x, 4);
            Ok(())
        }
        assert!(f(2).is_ok());
        assert!(f(12).unwrap_err().contains("x too big"));
        assert!(f(3).unwrap_err().contains("left"));
        assert!(f(4).unwrap_err().contains("both"));
    }
}
