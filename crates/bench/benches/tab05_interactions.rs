//! Table 5: speedups (%) of prefetching, compression, and their
//! combinations, plus the EQ 5 interaction term, for every benchmark —
//! the paper's central result.

use cmpsim_bench::{paper, parallel_grids, sim_length, SEED};
use cmpsim_core::experiment::VariantGrid;
use cmpsim_core::report::{pct, Table};
use cmpsim_core::{SystemConfig, Variant};

/// Extracts the five Table 5 rows for one workload's grid. A variant
/// missing from the grid (a cell lost to a `CellError` in a resilient
/// sweep) yields `NaN` for the rows that need it, rendered as `-` by
/// [`pct`], instead of aborting the whole table.
pub fn table5_row(grid: &VariantGrid) -> [f64; 5] {
    let speedup_pct = |v: Variant| -> f64 {
        match (grid.try_get(Variant::Base), grid.try_get(v)) {
            (Some(base), Some(run)) => cmpsim_core::metrics::speedup_pct(base, run),
            _ => f64::NAN,
        }
    };
    let interaction = match (
        grid.try_get(Variant::Base),
        grid.try_get(Variant::Prefetch),
        grid.try_get(Variant::BothCompression),
        grid.try_get(Variant::PrefetchCompression),
    ) {
        (Some(_), Some(_), Some(_), Some(_)) => grid.pf_compr_interaction() * 100.0,
        _ => f64::NAN,
    };
    [
        speedup_pct(Variant::Prefetch),
        speedup_pct(Variant::BothCompression),
        speedup_pct(Variant::PrefetchCompression),
        speedup_pct(Variant::AdaptivePrefetchCompression),
        interaction,
    ]
}

fn main() {
    let base = SystemConfig::paper_default(8).with_seed(SEED);
    let len = sim_length();
    let headers =
        ["row", "apache", "zeus", "oltp", "jbb", "art", "apsi", "fma3d", "mgrid"];
    let mut rows: Vec<Vec<f64>> = vec![Vec::new(); 5];
    let grids = parallel_grids(
        &base,
        &[
            Variant::Base,
            Variant::Prefetch,
            Variant::BothCompression,
            Variant::PrefetchCompression,
            Variant::AdaptivePrefetchCompression,
        ],
        len,
    );
    for (_spec, grid) in &grids {
        let r = table5_row(grid);
        for (i, v) in r.iter().enumerate() {
            rows[i].push(*v);
        }
    }
    let labels = [
        "Speedup (Pref.)",
        "Speedup (Compr.)",
        "Speedup (Pref., Compr.)",
        "Speedup (Adaptive-Pref, Compr.)",
        "Interaction(Pref., Compr.)",
    ];
    let paper_rows: [&[(&str, f64)]; 5] = [
        &paper::SPEEDUP_PF,
        &paper::SPEEDUP_COMPR,
        &paper::SPEEDUP_PF_COMPR,
        &paper::SPEEDUP_ADAPTIVE_PF_COMPR,
        &paper::INTERACTION,
    ];
    let mut t = Table::new(&headers);
    for (label, vals) in labels.iter().zip(rows.iter()) {
        let mut cells = vec![label.to_string()];
        cells.extend(vals.iter().map(|v| pct(*v)));
        t.row(&cells);
    }
    t.print("Table 5 (model): speedups and interactions");

    let mut p = Table::new(&headers);
    for (label, table) in labels.iter().zip(paper_rows.iter()) {
        let mut cells = vec![label.to_string()];
        cells.extend(paper::BENCHMARKS.iter().map(|b| pct(paper::lookup(table, b))));
        p.row(&cells);
    }
    p.print("Table 5 (paper): speedups and interactions");
}
