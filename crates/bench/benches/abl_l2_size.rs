//! Ablation: compression as a substitute for cache capacity. A 4 MB L2
//! with a ~1.6 ratio should behave between an uncompressed 4 MB and an
//! uncompressed 8 MB cache — this sweep makes that sandwich visible.

use cmpsim_bench::{sim_length, SEED};
use cmpsim_core::experiment::run_variant;
use cmpsim_core::report::Table;
use cmpsim_core::{SystemConfig, Variant};
use cmpsim_trace::workload;

fn main() {
    let len = sim_length();
    let spec = workload("apache").expect("apache exists");
    let mut t = Table::new(&["configuration", "L2 MPKI", "runtime (cycles)"]);
    for (label, bytes, variant) in [
        ("2 MB uncompressed", 2 * 1024 * 1024, Variant::Base),
        ("4 MB uncompressed", 4 * 1024 * 1024, Variant::Base),
        ("4 MB compressed", 4 * 1024 * 1024, Variant::CacheCompression),
        ("8 MB uncompressed", 8 * 1024 * 1024, Variant::Base),
    ] {
        let mut base = SystemConfig::paper_default(8).with_seed(SEED);
        base.l2_bytes = bytes;
        let r = run_variant(&spec, &base, variant, len).expect("simulation failed");
        t.row(&[
            label.into(),
            format!("{:.2}", r.stats.l2.mpki(r.stats.instructions)),
            r.runtime().to_string(),
        ]);
    }
    t.print("Ablation: apache across L2 capacities vs 4 MB compressed");
}
