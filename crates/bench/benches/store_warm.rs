//! Result-store speedup benchmark: the same smoke grid cold (empty
//! store, every cell simulated) and warm (fully populated store, every
//! cell read back), with the wall-clock ratio and hit rate recorded to
//! `target/bench/store_warm.json`.
//!
//! This is the ROADMAP's "95% of cells were already computed" scenario
//! measured end to end: the warm number is the cost of a sweep whose
//! work already exists, and the speedup column is what the store buys a
//! re-run. Knobs: `CMPSIM_WARMUP`/`CMPSIM_MEASURE` set the grid size,
//! `CMPSIM_STORE` relocates the scratch store (a fresh subdirectory is
//! used either way so "cold" is honest).

use cmpsim_bench::SEED;
use cmpsim_core::experiment::{run_grid_parallel_store, SimLength};
use cmpsim_core::report::grid_digest;
use cmpsim_core::store::ResultStore;
use cmpsim_core::{SystemConfig, Variant};
use cmpsim_harness::bench::Runner;
use cmpsim_harness::pool::default_threads;
use cmpsim_trace::all_workloads;
use std::time::Instant;

const VARIANTS: [Variant; 4] =
    [Variant::Base, Variant::BothCompression, Variant::Prefetch, Variant::PrefetchCompression];

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok()?.parse().ok()
}

fn main() {
    let len = SimLength {
        warmup: env_u64("CMPSIM_WARMUP").unwrap_or(5_000),
        measure: env_u64("CMPSIM_MEASURE").unwrap_or(20_000),
    };
    let specs = all_workloads();
    let base = SystemConfig::paper_default(4).with_seed(SEED);
    let threads = default_threads();

    let dir = std::env::temp_dir().join(format!("cmpsim-store-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut r = Runner::new("store_warm", 0, 1);

    let t0 = Instant::now();
    let cold_store = ResultStore::open(&dir);
    let cold =
        run_grid_parallel_store(&specs, &base, &VARIANTS, len, threads, &cold_store)
            .expect("cold grid simulates");
    let cold_secs = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let warm_store = ResultStore::open(&dir);
    let warm =
        run_grid_parallel_store(&specs, &base, &VARIANTS, len, threads, &warm_store)
            .expect("warm grid resolves");
    let warm_secs = t1.elapsed().as_secs_f64();

    let warm_stats = warm_store.stats();
    assert_eq!(
        grid_digest(&cold),
        grid_digest(&warm),
        "store must be bit-inert (cold and warm digests diverged)"
    );

    r.metric("cells", cold.len() as f64);
    r.metric("cold_secs", cold_secs);
    r.metric("warm_secs", warm_secs);
    r.metric("speedup", if warm_secs > 0.0 { cold_secs / warm_secs } else { f64::MAX });
    r.metric("warm_hit_rate_pct", warm_stats.hit_rate_pct());
    r.metric("warm_computed_cells", warm_stats.published as f64);

    println!(
        "store warm-rerun: {} cells, cold {:.2}s -> warm {:.3}s ({:.0}x), \
         warm hit rate {:.1}%, {} cells recomputed",
        cold.len(),
        cold_secs,
        warm_secs,
        if warm_secs > 0.0 { cold_secs / warm_secs } else { f64::INFINITY },
        warm_stats.hit_rate_pct(),
        warm_stats.published,
    );
    let path = r.write_json().expect("write bench artifact");
    println!("store-warm artifact: {}", path.display());

    let _ = std::fs::remove_dir_all(&dir);
}
