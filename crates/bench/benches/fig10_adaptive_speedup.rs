//! Figure 10: base vs. adaptive prefetching, alone and combined with
//! compression, for the commercial workloads (where adaptation matters).

use cmpsim_bench::{parallel_grids_for, sim_length, SEED};
use cmpsim_core::report::{pct, Table};
use cmpsim_core::{SystemConfig, Variant};
use cmpsim_trace::commercial_workloads;

fn main() {
    let base = SystemConfig::paper_default(8).with_seed(SEED);
    let len = sim_length();
    let mut t = Table::new(&[
        "bench", "pf", "adaptive-pf", "pf+compr", "adaptive-pf+compr",
    ]);
    let grids = parallel_grids_for(
        commercial_workloads(),
        &base,
        &[
            Variant::Base,
            Variant::Prefetch,
            Variant::AdaptivePrefetch,
            Variant::PrefetchCompression,
            Variant::AdaptivePrefetchCompression,
        ],
        len,
    );
    for (spec, grid) in grids {
        t.row(&[
            spec.name.into(),
            pct(grid.speedup_pct(Variant::Prefetch)),
            pct(grid.speedup_pct(Variant::AdaptivePrefetch)),
            pct(grid.speedup_pct(Variant::PrefetchCompression)),
            pct(grid.speedup_pct(Variant::AdaptivePrefetchCompression)),
        ]);
    }
    t.print("Figure 10: adaptive vs base prefetching (commercial)");
    println!(
        "(Paper: adaptation dramatically improves prefetching alone —\n\
         jbb from -25% to +1% — but adds little once compression is on.)"
    );
}
