//! Figure 5: speedup of cache compression, link compression, and both,
//! relative to the base system (no prefetching), on the 20 GB/s link.

use cmpsim_bench::{paper, parallel_grids, sim_length, SEED};
use cmpsim_core::report::{pct, Table};
use cmpsim_core::{SystemConfig, Variant};

fn main() {
    let base = SystemConfig::paper_default(8).with_seed(SEED);
    let len = sim_length();
    let mut t = Table::new(&["bench", "cache", "link", "both", "both (paper)"]);
    let grids = parallel_grids(
        &base,
        &[
            Variant::Base,
            Variant::CacheCompression,
            Variant::LinkCompression,
            Variant::BothCompression,
        ],
        len,
    );
    for (spec, grid) in grids {
        t.row(&[
            spec.name.into(),
            pct(grid.speedup_pct(Variant::CacheCompression)),
            pct(grid.speedup_pct(Variant::LinkCompression)),
            pct(grid.speedup_pct(Variant::BothCompression)),
            pct(paper::lookup(&paper::SPEEDUP_COMPR, spec.name)),
        ]);
    }
    t.print("Figure 5: compression speedup (%)");
}
