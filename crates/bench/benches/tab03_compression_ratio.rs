//! Table 3: L2 cache compression ratio per benchmark (average effective
//! cache size relative to the uncompressed 4 MB L2).

use cmpsim_bench::{paper, sim_length, SEED};
use cmpsim_core::experiment::run_variant;
use cmpsim_core::report::{ratio, Table};
use cmpsim_core::{SystemConfig, Variant};
use cmpsim_trace::all_workloads;

fn main() {
    let base = SystemConfig::paper_default(8).with_seed(SEED);
    let len = sim_length();
    let mut t = Table::new(&["bench", "ratio", "ratio (paper)"]);
    for spec in all_workloads() {
        let r = run_variant(&spec, &base, Variant::CacheCompression, len).expect("simulation failed");
        t.row(&[
            spec.name.into(),
            ratio(r.stats.compression_ratio()),
            ratio(paper::lookup(&paper::COMPRESSION_RATIO, spec.name)),
        ]);
    }
    t.print("Table 3: L2 compression ratio");
}
