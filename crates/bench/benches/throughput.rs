//! Simulator-throughput benchmark: events/sec and committed MIPS per
//! configuration variant over the full workload set, from the engine's
//! own [`RunResult`] throughput counters. Results land in
//! `target/bench/throughput.json`; see DESIGN.md §Performance for how to
//! read them.
//!
//! Knobs: `CMPSIM_WARMUP`/`CMPSIM_MEASURE` (instructions per core) set
//! the grid size, `CMPSIM_BENCH_ITERS`/`CMPSIM_BENCH_WARMUP` the
//! repetition count. CI runs this with smoke-length runs as a tracked
//! baseline; the defaults below are the same smoke lengths so local runs
//! are comparable.

use cmpsim_bench::SEED;
use cmpsim_core::experiment::{run_grid_serial, GridCell, SimLength};
use cmpsim_core::report::throughput_summary;
use cmpsim_core::{SystemConfig, Variant};
use cmpsim_harness::bench::Runner;
use cmpsim_trace::all_workloads;

const VARIANTS: [Variant; 4] =
    [Variant::Base, Variant::BothCompression, Variant::Prefetch, Variant::PrefetchCompression];

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok()?.parse().ok()
}

fn main() {
    // Smoke lengths by default (the CI baseline grid); the figure
    // harnesses' standard lengths are ~20× longer and only change the
    // absolute rates, not the variant-to-variant shape.
    let len = SimLength {
        warmup: env_u64("CMPSIM_WARMUP").unwrap_or(5_000),
        measure: env_u64("CMPSIM_MEASURE").unwrap_or(20_000),
    };
    let specs = all_workloads();
    let base = SystemConfig::paper_default(4).with_seed(SEED);

    let mut r = Runner::new("throughput", 1, 3);
    let mut all_cells: Vec<GridCell> = Vec::new();

    for variant in VARIANTS {
        let label = format!("{variant:?}");
        let mut cells: Vec<GridCell> = Vec::new();
        r.bench_with(&format!("grid/{label}"), 1, 3, || {
            cells = run_grid_serial(&specs, &base, &[variant], len).expect("simulation failed");
            cells.len()
        });
        // Per-variant throughput from the engine's own counters, taken
        // over the last measured iteration's runs.
        let (mut events, mut retired, mut nanos) = (0u64, 0u64, 0u64);
        for c in &cells {
            events += c.result.events;
            retired += c.result.retired;
            nanos += c.result.host_nanos;
        }
        let secs = nanos as f64 / 1e9;
        r.metric(&format!("events_per_sec/{label}"), events as f64 / secs);
        r.metric(&format!("committed_mips/{label}"), retired as f64 / 1e6 / secs);
        all_cells.extend(cells);
    }

    // Aggregate over the whole workloads × variants grid — the number the
    // CI baseline tracks.
    let (mut events, mut retired, mut nanos) = (0u64, 0u64, 0u64);
    for c in &all_cells {
        events += c.result.events;
        retired += c.result.retired;
        nanos += c.result.host_nanos;
    }
    let secs = nanos as f64 / 1e9;
    r.metric("events_per_sec/total", events as f64 / secs);
    r.metric("committed_mips/total", retired as f64 / 1e6 / secs);
    // Whether the flight recorder was armed (CMPSIM_TRACE): throughput
    // numbers are only comparable between runs in the same tracing mode,
    // so the artifact records which one produced it.
    r.metric(
        "tracing_enabled",
        if cmpsim_harness::telemetry::trace_enabled() { 1.0 } else { 0.0 },
    );

    println!("{}", throughput_summary(all_cells.iter().map(|c| &c.result)));
    let path = r.write_json().expect("write bench artifact");
    println!("throughput artifact: {}", path.display());
}
