//! Simulator-throughput benchmark: events/sec and committed MIPS per
//! configuration variant over the full workload set, from the engine's
//! own [`RunResult`] throughput counters. Results land in
//! `target/bench/throughput.json`; see DESIGN.md §Performance for how to
//! read them.
//!
//! Knobs: `CMPSIM_WARMUP`/`CMPSIM_MEASURE` (instructions per core) set
//! the grid size, `CMPSIM_BENCH_ITERS`/`CMPSIM_BENCH_WARMUP` the
//! repetition count. CI runs this with smoke-length runs as a tracked
//! baseline; the defaults below are the same smoke lengths so local runs
//! are comparable.

use cmpsim_bench::SEED;
use cmpsim_core::experiment::{run_grid_serial, GridCell, SimLength};
use cmpsim_core::report::{
    codec_throughput_summary, codec_throughput_table, measure_codec_throughput,
    throughput_summary,
};
use cmpsim_core::{SystemConfig, Variant};
use cmpsim_fpc::{CodecKind, LINE_BYTES};
use cmpsim_harness::bench::Runner;
use cmpsim_trace::{all_workloads, LineClass};

const VARIANTS: [Variant; 4] =
    [Variant::Base, Variant::BothCompression, Variant::Prefetch, Variant::PrefetchCompression];

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok()?.parse().ok()
}

fn main() {
    // Smoke lengths by default (the CI baseline grid); the figure
    // harnesses' standard lengths are ~20× longer and only change the
    // absolute rates, not the variant-to-variant shape.
    let len = SimLength {
        warmup: env_u64("CMPSIM_WARMUP").unwrap_or(5_000),
        measure: env_u64("CMPSIM_MEASURE").unwrap_or(20_000),
    };
    let specs = all_workloads();
    let base = SystemConfig::paper_default(4).with_seed(SEED);

    let mut r = Runner::new("throughput", 1, 3);
    let mut all_cells: Vec<GridCell> = Vec::new();

    for variant in VARIANTS {
        let label = format!("{variant:?}");
        let mut cells: Vec<GridCell> = Vec::new();
        r.bench_with(&format!("grid/{label}"), 1, 3, || {
            cells = run_grid_serial(&specs, &base, &[variant], len).expect("simulation failed");
            cells.len()
        });
        // Per-variant throughput from the engine's own counters, taken
        // over the last measured iteration's runs.
        let (mut events, mut retired, mut nanos) = (0u64, 0u64, 0u64);
        for c in &cells {
            events += c.result.events;
            retired += c.result.retired;
            nanos += c.result.host_nanos;
        }
        let secs = nanos as f64 / 1e9;
        r.metric(&format!("events_per_sec/{label}"), events as f64 / secs);
        r.metric(&format!("committed_mips/{label}"), retired as f64 / 1e6 / secs);
        all_cells.extend(cells);
    }

    // Aggregate over the whole workloads × variants grid — the number the
    // CI baseline tracks.
    let (mut events, mut retired, mut nanos) = (0u64, 0u64, 0u64);
    for c in &all_cells {
        events += c.result.events;
        retired += c.result.retired;
        nanos += c.result.host_nanos;
    }
    let secs = nanos as f64 / 1e9;
    r.metric("events_per_sec/total", events as f64 / secs);
    r.metric("committed_mips/total", retired as f64 / 1e6 / secs);
    // Whether the flight recorder was armed (CMPSIM_TRACE): throughput
    // numbers are only comparable between runs in the same tracing mode,
    // so the artifact records which one produced it.
    r.metric(
        "tracing_enabled",
        if cmpsim_harness::telemetry::trace_enabled() { 1.0 } else { 0.0 },
    );

    println!("{}", throughput_summary(all_cells.iter().map(|c| &c.result)));
    let path = r.write_json().expect("write bench artifact");
    println!("throughput artifact: {}", path.display());

    codec_throughput_bench();
}

/// Workload classes the codec-throughput suite samples, spanning the
/// compressibility landscape of `crates/trace`: all-zero lines, small
/// integers, pointers, sparse and dense floating point, and high-entropy
/// bytes.
const CODEC_CLASSES: [(&str, LineClass); 6] = [
    ("zero", LineClass::Zero),
    ("small_int", LineClass::SmallInt),
    ("pointer", LineClass::Pointer),
    ("fp_sparse", LineClass::Fp { zero_word_permille: 400 }),
    ("fp_dense", LineClass::Fp { zero_word_permille: 0 }),
    ("random", LineClass::Random),
];

/// Lines per class in the measured batch — enough to defeat trivial
/// branch-predictor memorization while staying cache-resident, so the
/// numbers measure the decoders rather than memory.
const CODEC_LINES: usize = 256;

/// Per-codec compression/decompression throughput over the workload
/// classes, as a second artifact (`target/bench/codec_throughput.json`):
/// the pcodec-style record CI compares PR-over-PR, with the scalar
/// reference decoder measured alongside the dispatch-table/SWAR fast path
/// so decode speedups stay visible.
fn codec_throughput_bench() {
    let iters = env_u64("CMPSIM_CODEC_ITERS").unwrap_or(200) as u32;
    let mut r = Runner::new("codec_throughput", 1, 3);
    let mut rows = Vec::new();
    for (label, class) in CODEC_CLASSES {
        let mut lines = vec![[0u8; LINE_BYTES]; CODEC_LINES];
        for (i, line) in lines.iter_mut().enumerate() {
            // Deterministic per-line entropy: same content every run, so
            // PR-over-PR artifact deltas measure code, not data.
            let addr_hash = (i as u64 ^ SEED).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            class.fill(addr_hash, line);
        }
        for kind in CodecKind::all() {
            // One unrecorded warmup pass, then the measured sample.
            measure_codec_throughput(kind, label, &lines, iters.div_ceil(4));
            let row = measure_codec_throughput(kind, label, &lines, iters);
            let p = row.metric_prefix();
            r.metric(&format!("{p}/compress_mwps"), row.compress_mwps);
            r.metric(&format!("{p}/decompress_mwps"), row.decompress_mwps);
            r.metric(&format!("{p}/reference_mwps"), row.reference_mwps);
            r.metric(&format!("{p}/compress_gbps"), row.compress_gbps);
            r.metric(&format!("{p}/decompress_gbps"), row.decompress_gbps);
            r.metric(&format!("{p}/decode_speedup"), row.decode_speedup);
            rows.push(row);
        }
    }
    codec_throughput_table(&rows).print("codec throughput (per workload class)");
    println!("{}", codec_throughput_summary(&rows));
    let path = r.write_json().expect("write codec bench artifact");
    println!("codec throughput artifact: {}", path.display());
}
