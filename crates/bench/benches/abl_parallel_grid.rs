//! Ablation: serial vs parallel execution of the paper's 8×4 experiment
//! grid (8 workloads × {base, compression, prefetching, both}).
//!
//! Asserts bit-identical results at every thread count, then times both
//! paths and writes wall-clock speedups to
//! `target/bench/abl_parallel_grid.json`. Speedup saturates at the
//! machine's core count (`hardware_threads` metric); on a single-core
//! box every configuration measures ~1×.

use cmpsim_bench::SEED;
use cmpsim_core::experiment::{run_grid_parallel, run_grid_serial, SimLength};
use cmpsim_core::{SystemConfig, Variant};
use cmpsim_harness::bench::Runner;
use cmpsim_harness::pool::default_threads;
use cmpsim_trace::all_workloads;

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok()?.parse().ok()
}

fn main() {
    let base = SystemConfig::paper_default(8).with_seed(SEED);
    // Short per-cell runs by default so the sweep finishes in seconds;
    // override for a realistic-length measurement.
    let len = SimLength {
        warmup: env_u64("CMPSIM_WARMUP").unwrap_or(20_000),
        measure: env_u64("CMPSIM_MEASURE").unwrap_or(80_000),
    };
    let specs = all_workloads();
    let variants = [
        Variant::Base,
        Variant::BothCompression,
        Variant::Prefetch,
        Variant::PrefetchCompression,
    ];

    let mut r = Runner::new("abl_parallel_grid", 1, 3);

    let reference = run_grid_serial(&specs, &base, &variants, len).unwrap();
    assert_eq!(reference.len(), specs.len() * variants.len());

    let serial_ns = r
        .bench("grid/serial", || run_grid_serial(&specs, &base, &variants, len).unwrap())
        .median_ns;

    for threads in [1usize, 2, 8] {
        let cells = run_grid_parallel(&specs, &base, &variants, len, threads).unwrap();
        assert_eq!(reference, cells, "parallel grid diverged at {threads} threads");
        let par_ns = r
            .bench(&format!("grid/parallel_{threads}t"), || {
                run_grid_parallel(&specs, &base, &variants, len, threads).unwrap()
            })
            .median_ns;
        r.metric(&format!("grid_speedup_{threads}t"), serial_ns as f64 / par_ns as f64);
    }

    r.metric("hardware_threads", default_threads() as f64);
    r.metric("grid_cells", (specs.len() * variants.len()) as f64);
    println!("parallel grid bit-identical to serial at 1, 2 and 8 threads");
    r.write_json().expect("write bench artifact");
}
