//! Figure 11: Interaction(Pf, Compr) as available pin bandwidth varies
//! from 10 to 80 GB/s. The paper's claim: interaction is large when
//! bandwidth is scarce and shrinks as it becomes plentiful.

use cmpsim_bench::{sim_length, SEED};
use cmpsim_core::experiment::VariantGrid;
use cmpsim_core::report::{pct, Table};
use cmpsim_core::{SystemConfig, Variant};
use cmpsim_link::LinkBandwidth;
use cmpsim_trace::all_workloads;

fn main() {
    let len = sim_length();
    let mut t = Table::new(&["bench", "10 GB/s", "20 GB/s", "40 GB/s", "80 GB/s"]);
    for spec in all_workloads() {
        let mut cells = vec![spec.name.to_string()];
        for bw in [10u32, 20, 40, 80] {
            let base = SystemConfig::paper_default(8)
                .with_seed(SEED)
                .with_link(LinkBandwidth::GBps(bw));
            let grid = VariantGrid::run(
                &spec,
                &base,
                &[
                    Variant::Base,
                    Variant::Prefetch,
                    Variant::BothCompression,
                    Variant::PrefetchCompression,
                ],
                len,
            ).expect("simulation failed");
            cells.push(pct(grid.pf_compr_interaction() * 100.0));
        }
        t.row(&cells);
    }
    t.print("Figure 11: Interaction(Pf, Compr) vs available pin bandwidth");
}
