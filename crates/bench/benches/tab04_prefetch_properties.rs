//! Table 4: prefetch rate (per 1k instructions), coverage (%) and
//! accuracy (%) for the L1I, L1D and L2 prefetchers of every benchmark,
//! side by side with the paper's published values.

use cmpsim_bench::{paper, sim_length, SEED};
use cmpsim_core::experiment::run_variant;
use cmpsim_core::report::Table;
use cmpsim_core::{LevelStats, SystemConfig, Variant};
use cmpsim_trace::all_workloads;

fn main() {
    let base = SystemConfig::paper_default(8).with_seed(SEED);
    let len = sim_length();
    let headers = [
        "bench", "L1I rate", "cov%", "acc%", "L1D rate", "cov%", "acc%", "L2 rate", "cov%",
        "acc%",
    ];
    let mut t = Table::new(&headers);
    let mut p = Table::new(&headers);
    for spec in all_workloads() {
        let r = run_variant(&spec, &base, Variant::Prefetch, len).expect("simulation failed");
        let i = r.stats.instructions;
        let row =
            |l: &LevelStats| (l.prefetch_rate(i), l.coverage_pct(), l.accuracy_pct());
        let (l1i, l1d, l2) = (row(&r.stats.l1i), row(&r.stats.l1d), row(&r.stats.l2));
        t.row(&[
            spec.name.into(),
            format!("{:.1}", l1i.0),
            format!("{:.1}", l1i.1),
            format!("{:.1}", l1i.2),
            format!("{:.1}", l1d.0),
            format!("{:.1}", l1d.1),
            format!("{:.1}", l1d.2),
            format!("{:.1}", l2.0),
            format!("{:.1}", l2.1),
            format!("{:.1}", l2.2),
        ]);
        let pr = paper::PREFETCH_PROPERTIES
            .iter()
            .find(|r| r.name == spec.name)
            .expect("paper row");
        p.row(&[
            spec.name.into(),
            format!("{:.1}", pr.l1i.0),
            format!("{:.1}", pr.l1i.1),
            format!("{:.1}", pr.l1i.2),
            format!("{:.1}", pr.l1d.0),
            format!("{:.1}", pr.l1d.1),
            format!("{:.1}", pr.l1d.2),
            format!("{:.1}", pr.l2.0),
            format!("{:.1}", pr.l2.1),
            format!("{:.1}", pr.l2.2),
        ]);
    }
    t.print("Table 4 (model): prefetching properties");
    p.print("Table 4 (paper): prefetching properties");
}
