//! Micro-benchmarks: FPC codec throughput, VSC cache operations, and
//! end-to-end simulator rate. Uses the cmpsim-harness runner; results
//! land in `target/bench/micro.json`.

use cmpsim_cache::{BlockAddr, VscCache, VscConfig};
use cmpsim_core::{System, SystemConfig, Variant};
use cmpsim_fpc::{compress, compressed_segments, LINE_BYTES};
use cmpsim_harness::bench::Runner;
use cmpsim_trace::workload;

fn line_with_mix(seed: u8) -> [u8; LINE_BYTES] {
    let mut line = [0u8; LINE_BYTES];
    for (i, chunk) in line.chunks_exact_mut(4).enumerate() {
        let w: u32 = match (i + seed as usize) % 4 {
            0 => 0,
            1 => (i as u32).wrapping_mul(7),
            2 => 0x1234_0000 + i as u32,
            _ => 0xDEAD_BEEF ^ (i as u32) << 13,
        };
        chunk.copy_from_slice(&w.to_le_bytes());
    }
    line
}

fn main() {
    let mut r = Runner::new("micro", 5, 30);

    let lines: Vec<[u8; LINE_BYTES]> = (0..64).map(line_with_mix).collect();
    let fpc_median_ns = r
        .bench("fpc/compress_64_lines", || {
            lines.iter().map(|l| u32::from(compressed_segments(l))).sum::<u32>()
        })
        .median_ns;
    let bytes = (lines.len() * LINE_BYTES) as f64;
    r.metric("fpc_compress_gbps", bytes / fpc_median_ns as f64);
    r.bench("fpc/roundtrip_64_lines", || {
        lines.iter().map(|l| compress(l).decompress()[0] as u32).sum::<u32>()
    });

    r.bench("vsc/fill_lookup_4k_ops", || {
        let mut cache: VscCache<u32> = VscCache::new(VscConfig {
            sets: 64,
            tags_per_set: 8,
            segments_per_set: 32,
            line_segments: 8,
        });
        let mut acc = 0u64;
        for i in 0..4096u64 {
            cache.fill(BlockAddr(i * 17 % 1024), 1 + (i % 8) as u8, false, 0);
            acc += u64::from(cache.lookup(BlockAddr(i % 1024)).is_hit());
        }
        acc
    });

    let spec = workload("zeus").expect("zeus exists");
    let sim_median_ns = r
        .bench_with("sim/zeus_8core_100k_instr", 1, 10, || {
            let cfg = Variant::PrefetchCompression.apply(SystemConfig::paper_default(8));
            let mut sys = System::new(cfg, &spec);
            sys.run(20_000, 100_000).expect("simulation failed").runtime()
        })
        .median_ns;
    // 8 cores × 100k measured instructions per iteration.
    r.metric("sim_minstr_per_s", 8.0 * 100_000.0 / (sim_median_ns as f64 / 1e9) / 1e6);

    r.write_json().expect("write bench artifact");
}
