//! Criterion micro-benchmarks: FPC codec throughput, VSC cache
//! operations, and end-to-end simulator rate.

use cmpsim_cache::{BlockAddr, VscCache, VscConfig};
use cmpsim_core::{System, SystemConfig, Variant};
use cmpsim_fpc::{compress, compressed_segments, LINE_BYTES};
use cmpsim_trace::workload;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn line_with_mix(seed: u8) -> [u8; LINE_BYTES] {
    let mut line = [0u8; LINE_BYTES];
    for (i, chunk) in line.chunks_exact_mut(4).enumerate() {
        let w: u32 = match (i + seed as usize) % 4 {
            0 => 0,
            1 => (i as u32).wrapping_mul(7),
            2 => 0x1234_0000 + i as u32,
            _ => 0xDEAD_BEEF ^ (i as u32) << 13,
        };
        chunk.copy_from_slice(&w.to_le_bytes());
    }
    line
}

fn bench_fpc(c: &mut Criterion) {
    let lines: Vec<[u8; LINE_BYTES]> = (0..64).map(|i| line_with_mix(i)).collect();
    let mut g = c.benchmark_group("fpc");
    g.throughput(Throughput::Bytes((lines.len() * LINE_BYTES) as u64));
    g.bench_function("compress_64_lines", |b| {
        b.iter(|| {
            lines.iter().map(|l| u32::from(compressed_segments(l))).sum::<u32>()
        })
    });
    g.bench_function("roundtrip_64_lines", |b| {
        b.iter(|| {
            lines
                .iter()
                .map(|l| compress(l).decompress()[0] as u32)
                .sum::<u32>()
        })
    });
    g.finish();
}

fn bench_vsc(c: &mut Criterion) {
    c.bench_function("vsc_fill_lookup_4k_ops", |b| {
        b.iter(|| {
            let mut cache: VscCache<u32> = VscCache::new(VscConfig {
                sets: 64,
                tags_per_set: 8,
                segments_per_set: 32,
            });
            let mut acc = 0u64;
            for i in 0..4096u64 {
                cache.fill(BlockAddr(i * 17 % 1024), 1 + (i % 8) as u8, false, 0);
                acc += u64::from(cache.lookup(BlockAddr(i % 1024)).is_hit());
            }
            acc
        })
    });
}

fn bench_sim(c: &mut Criterion) {
    let spec = workload("zeus").expect("zeus exists");
    let mut g = c.benchmark_group("sim");
    g.sample_size(10);
    g.bench_function("zeus_8core_100k_instr", |b| {
        b.iter(|| {
            let cfg = Variant::PrefetchCompression.apply(SystemConfig::paper_default(8));
            let mut sys = System::new(cfg, &spec);
            sys.run(20_000, 100_000).runtime()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fpc, bench_vsc, bench_sim);
criterion_main!(benches);
