//! Figure 6: speedup of base stride prefetching and adaptive prefetching
//! relative to no prefetching.

use cmpsim_bench::{paper, sim_length, SEED};
use cmpsim_core::experiment::VariantGrid;
use cmpsim_core::report::{pct, Table};
use cmpsim_core::{SystemConfig, Variant};
use cmpsim_trace::all_workloads;

fn main() {
    let base = SystemConfig::paper_default(8).with_seed(SEED);
    let len = sim_length();
    let mut t = Table::new(&[
        "bench", "pf", "adaptive-pf", "pf (paper)", "adaptive-pf (paper)",
    ]);
    for spec in all_workloads() {
        let grid = VariantGrid::run(
            &spec,
            &base,
            &[Variant::Base, Variant::Prefetch, Variant::AdaptivePrefetch],
            len,
        );
        t.row(&[
            spec.name.into(),
            pct(grid.speedup_pct(Variant::Prefetch)),
            pct(grid.speedup_pct(Variant::AdaptivePrefetch)),
            pct(paper::lookup(&paper::SPEEDUP_PF, spec.name)),
            pct(paper::lookup(&paper::SPEEDUP_ADAPTIVE_PF, spec.name)),
        ]);
    }
    t.print("Figure 6: prefetching speedup (%)");
}
