//! Figure 6: speedup of base stride prefetching and adaptive prefetching
//! relative to no prefetching.

use cmpsim_bench::{paper, parallel_grids, sim_length, SEED};
use cmpsim_core::report::{pct, Table};
use cmpsim_core::{SystemConfig, Variant};

fn main() {
    let base = SystemConfig::paper_default(8).with_seed(SEED);
    let len = sim_length();
    let mut t = Table::new(&[
        "bench", "pf", "adaptive-pf", "pf (paper)", "adaptive-pf (paper)",
    ]);
    let grids = parallel_grids(
        &base,
        &[Variant::Base, Variant::Prefetch, Variant::AdaptivePrefetch],
        len,
    );
    for (spec, grid) in grids {
        t.row(&[
            spec.name.into(),
            pct(grid.speedup_pct(Variant::Prefetch)),
            pct(grid.speedup_pct(Variant::AdaptivePrefetch)),
            pct(paper::lookup(&paper::SPEEDUP_PF, spec.name)),
            pct(paper::lookup(&paper::SPEEDUP_ADAPTIVE_PF, spec.name)),
        ]);
    }
    t.print("Figure 6: prefetching speedup (%)");
}
