//! Figure 7: pin bandwidth demand of prefetching and compression
//! combinations, normalized to the base system (infinite link, EQ 1).

use cmpsim_bench::{sim_length, SEED};
use cmpsim_core::experiment::run_variant;
use cmpsim_core::report::Table;
use cmpsim_core::{SystemConfig, Variant};
use cmpsim_link::LinkBandwidth;
use cmpsim_trace::all_workloads;

fn main() {
    let base = SystemConfig::paper_default(8)
        .with_seed(SEED)
        .with_link(LinkBandwidth::Infinite);
    let len = sim_length();
    let mut t = Table::new(&["bench", "base", "pf", "adaptive-pf", "pf+compr", "adaptive+compr"]);
    for spec in all_workloads() {
        let b = run_variant(&spec, &base, Variant::Base, len).expect("simulation failed").bandwidth_gbps();
        let norm = |v: Variant| {
            let g = run_variant(&spec, &base, v, len).expect("simulation failed").bandwidth_gbps();
            format!("{:.2}", g / b.max(1e-9))
        };
        t.row(&[
            spec.name.into(),
            "1.00".into(),
            norm(Variant::Prefetch),
            norm(Variant::AdaptivePrefetch),
            norm(Variant::PrefetchCompression),
            norm(Variant::AdaptivePrefetchCompression),
        ]);
    }
    t.print("Figure 7: normalized bandwidth demand (base = 1.00)");
    println!(
        "(Paper: prefetching alone raises demand 23-206%; combining with\n\
         compression pulls it back toward or below base.)"
    );
}
