//! Figure 1: performance improvement of prefetching, compression,
//! adaptive prefetching, and prefetching+compression for zeus as the
//! number of cores grows — the paper's motivating figure.

use cmpsim_bench::{sim_length, SEED};
use cmpsim_core::experiment::VariantGrid;
use cmpsim_core::report::{pct, Table};
use cmpsim_core::{SystemConfig, Variant};
use cmpsim_trace::workload;

fn main() {
    let spec = workload("zeus").expect("zeus exists");
    let len = sim_length();
    let mut t = Table::new(&["cores", "pf", "compr", "adaptive-pf", "pf+compr"]);
    for cores in [1u8, 2, 4, 8, 16] {
        let base = SystemConfig::paper_default(cores).with_seed(SEED);
        let grid = VariantGrid::run(
            &spec,
            &base,
            &[
                Variant::Base,
                Variant::Prefetch,
                Variant::BothCompression,
                Variant::AdaptivePrefetch,
                Variant::PrefetchCompression,
            ],
            len,
        ).expect("simulation failed");
        t.row(&[
            cores.to_string(),
            pct(grid.speedup_pct(Variant::Prefetch)),
            pct(grid.speedup_pct(Variant::BothCompression)),
            pct(grid.speedup_pct(Variant::AdaptivePrefetch)),
            pct(grid.speedup_pct(Variant::PrefetchCompression)),
        ]);
    }
    t.print("Figure 1: zeus improvement (%) vs core count");
    println!(
        "(Paper: prefetching's benefit decays with cores — +74% at 1 core\n\
         to -8% at 16 — while compression's grows; combined stays strong.)"
    );
}
