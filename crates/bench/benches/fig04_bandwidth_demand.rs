//! Figure 4: pin bandwidth demand (GB/s) with no compression, cache
//! compression only, link compression only, and both — measured on an
//! infinite-bandwidth link per EQ 1.

use cmpsim_bench::{paper, sim_length, SEED};
use cmpsim_core::experiment::run_variant;
use cmpsim_core::report::{gbps, Table};
use cmpsim_core::{SystemConfig, Variant};
use cmpsim_link::LinkBandwidth;
use cmpsim_trace::all_workloads;

fn main() {
    let base = SystemConfig::paper_default(8)
        .with_seed(SEED)
        .with_link(LinkBandwidth::Infinite);
    let len = sim_length();
    let mut t =
        Table::new(&["bench", "none", "cache", "link", "both", "none (paper)"]);
    for spec in all_workloads() {
        let row: Vec<f64> = [
            Variant::Base,
            Variant::CacheCompression,
            Variant::LinkCompression,
            Variant::BothCompression,
        ]
        .iter()
        .map(|&v| run_variant(&spec, &base, v, len).expect("simulation failed").bandwidth_gbps())
        .collect();
        t.row(&[
            spec.name.into(),
            gbps(row[0]),
            gbps(row[1]),
            gbps(row[2]),
            gbps(row[3]),
            gbps(paper::lookup(&paper::BANDWIDTH_DEMAND, spec.name)),
        ]);
    }
    t.print("Figure 4: pin bandwidth demand (GB/s)");
}
