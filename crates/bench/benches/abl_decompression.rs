//! Ablation: sensitivity of compression's benefit to the decompression
//! latency (the paper's Table 1 assumes 5 cycles; §5.3 analyzes the
//! resulting L2 hit-latency increase of 1.2-3.7 cycles on average).
//!
//! Sweeping the penalty shows how much headroom the 5-cycle design point
//! has before decompression costs eat the capacity gains.

use cmpsim_bench::{sim_length, SEED};
use cmpsim_core::experiment::run_variant;
use cmpsim_core::report::{pct, Table};
use cmpsim_core::{SystemConfig, Variant};
use cmpsim_trace::workload;

fn main() {
    let len = sim_length();
    let mut t = Table::new(&["decompression", "apache compr", "zeus compr", "apache hit-lat", "zeus hit-lat"]);
    for penalty in [0u64, 5, 10, 20] {
        let mut cells = vec![format!("{penalty} cycles")];
        let mut lat = Vec::new();
        for name in ["apache", "zeus"] {
            let spec = workload(name).expect("known workload");
            let mut base = SystemConfig::paper_default(8).with_seed(SEED);
            base.decompression_latency = penalty;
            let b = run_variant(&spec, &base, Variant::Base, len).expect("simulation failed");
            let c = run_variant(&spec, &base, Variant::BothCompression, len).expect("simulation failed");
            cells.push(pct((b.runtime() as f64 / c.runtime() as f64 - 1.0) * 100.0));
            lat.push(format!("{:.1}", c.stats.avg_l2_hit_latency()));
        }
        cells.extend(lat);
        t.row(&cells);
    }
    t.print("Ablation: compression speedup vs decompression latency");
    println!(
        "(Paper §5.3: compression adds 1.2-3.7 cycles of average L2 hit\n\
         latency at the 5-cycle design point; L1 prefetching hides part.)"
    );
}
