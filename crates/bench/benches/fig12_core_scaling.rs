//! Figure 12: performance improvement vs. core count for apache and jbb
//! under prefetching, adaptive prefetching, compression, and
//! adaptive-prefetching+compression.

use cmpsim_bench::{sim_length, SEED};
use cmpsim_core::experiment::VariantGrid;
use cmpsim_core::report::{pct, Table};
use cmpsim_core::{SystemConfig, Variant};
use cmpsim_trace::workload;

fn main() {
    let len = sim_length();
    for name in ["apache", "jbb"] {
        let spec = workload(name).expect("known workload");
        let mut t =
            Table::new(&["cores", "pf", "adaptive-pf", "compr", "adaptive-pf+compr"]);
        for cores in [1u8, 2, 4, 8, 16] {
            let base = SystemConfig::paper_default(cores).with_seed(SEED);
            let grid = VariantGrid::run(
                &spec,
                &base,
                &[
                    Variant::Base,
                    Variant::Prefetch,
                    Variant::AdaptivePrefetch,
                    Variant::BothCompression,
                    Variant::AdaptivePrefetchCompression,
                ],
                len,
            ).expect("simulation failed");
            t.row(&[
                cores.to_string(),
                pct(grid.speedup_pct(Variant::Prefetch)),
                pct(grid.speedup_pct(Variant::AdaptivePrefetch)),
                pct(grid.speedup_pct(Variant::BothCompression)),
                pct(grid.speedup_pct(Variant::AdaptivePrefetchCompression)),
            ]);
        }
        t.print(&format!("Figure 12: {name} improvement (%) vs core count"));
    }
}
