//! Figure 3: percentage reduction in L2 demand misses from cache
//! compression (base vs. cache-compression-only, no prefetching).

use cmpsim_bench::{sim_length, SEED};
use cmpsim_core::experiment::run_variant;
use cmpsim_core::report::Table;
use cmpsim_core::{SystemConfig, Variant};
use cmpsim_trace::all_workloads;

fn main() {
    let base = SystemConfig::paper_default(8).with_seed(SEED);
    let len = sim_length();
    let mut t = Table::new(&["bench", "base MPKI", "compr MPKI", "reduction %", "paper"]);
    // Paper (Fig 3, §4.2 text): commercial 10–23 %, SPEComp small.
    let paper_note = [
        ("apache", "~20%"),
        ("zeus", "~15%"),
        ("oltp", "~10%"),
        ("jbb", "~13%"),
        ("art", "small"),
        ("apsi", "~5%"),
        ("fma3d", "~0%"),
        ("mgrid", "small"),
    ];
    for spec in all_workloads() {
        let b = run_variant(&spec, &base, Variant::Base, len).expect("simulation failed");
        let c = run_variant(&spec, &base, Variant::CacheCompression, len).expect("simulation failed");
        let mb = b.stats.l2.mpki(b.stats.instructions);
        let mc = c.stats.l2.mpki(c.stats.instructions);
        let red = if mb > 0.0 { (1.0 - mc / mb) * 100.0 } else { 0.0 };
        let note = paper_note.iter().find(|(n, _)| *n == spec.name).map(|(_, v)| *v).unwrap_or("?");
        t.row(&[
            spec.name.into(),
            format!("{mb:.2}"),
            format!("{mc:.2}"),
            format!("{red:+.1}"),
            note.into(),
        ]);
    }
    t.print("Figure 3: L2 miss reduction from cache compression");
}
