//! Ablation: the L2 startup-prefetch degree (Table 1 fixes it at 25).
//! jbb's pathology scales with the burst size; zeus's benefit saturates.

use cmpsim_bench::{sim_length, SEED};
use cmpsim_core::experiment::run_variant;
use cmpsim_core::report::{pct, Table};
use cmpsim_core::{SystemConfig, Variant};
use cmpsim_trace::workload;

fn main() {
    let len = sim_length();
    let mut t = Table::new(&["L2 degree", "zeus pf", "jbb pf"]);
    for degree in [4u8, 12, 25, 50] {
        let mut cells = vec![degree.to_string()];
        for name in ["zeus", "jbb"] {
            let spec = workload(name).expect("known workload");
            let mut base = SystemConfig::paper_default(8).with_seed(SEED);
            base.l2_prefetch_degree = degree;
            let b = run_variant(&spec, &base, Variant::Base, len).expect("simulation failed");
            let p = run_variant(&spec, &base, Variant::Prefetch, len).expect("simulation failed");
            cells.push(pct((b.runtime() as f64 / p.runtime() as f64 - 1.0) * 100.0));
        }
        t.row(&cells);
    }
    t.print("Ablation: prefetching speedup vs L2 startup degree");
}
