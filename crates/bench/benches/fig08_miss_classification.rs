//! Figure 8: classification of L2 misses and prefetches, per benchmark,
//! as fractions of the base system's demand misses (the 100 % line) —
//! computed from four runs with inclusion-exclusion exactly as the paper
//! does.

use cmpsim_bench::{sim_length, SEED};
use cmpsim_core::experiment::run_variant;
use cmpsim_core::metrics::MissClassification;
use cmpsim_core::report::Table;
use cmpsim_core::{SystemConfig, Variant};
use cmpsim_trace::all_workloads;

fn main() {
    let base = SystemConfig::paper_default(8).with_seed(SEED);
    let len = sim_length();
    let mut t = Table::new(&[
        "bench",
        "unavoidable",
        "only-compr",
        "only-pf",
        "either",
        "pf-remaining",
        "pf-avoided",
    ]);
    for spec in all_workloads() {
        let b = run_variant(&spec, &base, Variant::Base, len).expect("simulation failed");
        let c = run_variant(&spec, &base, Variant::BothCompression, len).expect("simulation failed");
        let p = run_variant(&spec, &base, Variant::Prefetch, len).expect("simulation failed");
        let both = run_variant(&spec, &base, Variant::PrefetchCompression, len).expect("simulation failed");
        let cls = MissClassification::from_runs(&b, &c, &p, &both);
        let f = |x: f64| format!("{:.1}%", x * 100.0);
        t.row(&[
            spec.name.into(),
            f(cls.unavoidable),
            f(cls.only_compression),
            f(cls.only_prefetching),
            f(cls.either),
            f(cls.prefetches_remaining),
            f(cls.prefetches_avoided),
        ]);
    }
    t.print("Figure 8: L2 miss/prefetch classification (fractions of base misses)");
    println!(
        "(Paper: the 'either' overlap is small — ≤8% — because compression\n\
         and prefetching target largely disjoint miss sets.)"
    );
}
