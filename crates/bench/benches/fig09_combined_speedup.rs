//! Figure 9: speedups of prefetching, compression, and both combined,
//! relative to the base system, for every benchmark.

use cmpsim_bench::{paper, parallel_grids, sim_length, SEED};
use cmpsim_core::report::{pct, Table};
use cmpsim_core::{SystemConfig, Variant};

fn main() {
    let base = SystemConfig::paper_default(8).with_seed(SEED);
    let len = sim_length();
    let mut t = Table::new(&["bench", "pf", "compr", "pf+compr", "pf(paper)", "compr(paper)", "pf+compr(paper)"]);
    let grids = parallel_grids(
        &base,
        &[Variant::Base, Variant::Prefetch, Variant::BothCompression, Variant::PrefetchCompression],
        len,
    );
    for (spec, grid) in grids {
        t.row(&[
            spec.name.into(),
            pct(grid.speedup_pct(Variant::Prefetch)),
            pct(grid.speedup_pct(Variant::BothCompression)),
            pct(grid.speedup_pct(Variant::PrefetchCompression)),
            pct(paper::lookup(&paper::SPEEDUP_PF, spec.name)),
            pct(paper::lookup(&paper::SPEEDUP_COMPR, spec.name)),
            pct(paper::lookup(&paper::SPEEDUP_PF_COMPR, spec.name)),
        ]);
    }
    t.print("Figure 9: speedup of prefetching and compression");
}
