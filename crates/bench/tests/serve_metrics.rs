//! End-to-end tests of the serve daemon's observability surface: the
//! `{"metrics":1}` query answers a valid flat-JSON registry snapshot,
//! and the sealed access log survives a `SIGKILL`ed daemon — the
//! kill-and-reread regression for the tempfile+rename + sealed-append
//! discipline.

use cmpsim_core::flatjson::parse_flat;
use cmpsim_core::seallog;
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cmpsim-serve-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn spawn_serve(store: &PathBuf, access_log: Option<&PathBuf>) -> Child {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_serve"));
    cmd.env("CMPSIM_STORE", store)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    if let Some(log) = access_log {
        cmd.arg("--access-log").arg(log);
    }
    cmd.spawn().expect("spawn serve daemon")
}

const SWEEP: &str = "{\"sweep\":\"t\",\"workloads\":\"apsi\",\"variants\":\"base\",\
                     \"cores\":2,\"warmup\":1000,\"measure\":4000,\"threads\":2}";

#[test]
fn metrics_query_answers_a_valid_snapshot() {
    let dir = temp_dir("metrics-query");
    let store = dir.join("store");
    let mut child = spawn_serve(&store, None);
    let mut stdin = child.stdin.take().expect("stdin");
    let stdout = BufReader::new(child.stdout.take().expect("stdout"));

    writeln!(stdin, "{SWEEP}").expect("send sweep");
    writeln!(stdin, "{{\"metrics\":1}}").expect("send metrics query");
    drop(stdin);

    let mut metrics_line = None;
    for line in stdout.lines() {
        let line = line.expect("read response");
        if line.starts_with("{\"metrics\":1") {
            metrics_line = Some(line);
        }
    }
    assert!(child.wait().expect("daemon exits").success());

    let line = metrics_line.expect("daemon answered the metrics query");
    let kvs = parse_flat(&line).expect("snapshot is valid flat JSON");
    let get = |k: &str| {
        kvs.iter()
            .find(|(name, _)| name == k)
            .and_then(|(_, v)| v.as_u64())
            .unwrap_or_else(|| panic!("snapshot missing {k}: {line}"))
    };
    // Coverage across all three instrumented layers, with the sweep's
    // work visible in each.
    assert_eq!(get("serve_requests"), 2);
    assert_eq!(get("serve_sweeps"), 1);
    assert_eq!(get("serve_cells"), 1);
    assert_eq!(get("grid_cells_computed") + get("grid_cells_cached"), 1);
    assert_eq!(get("store_published"), 1);
    assert!(get("store_resident_bytes") > 0);
    assert_eq!(get("serve_request_nanos_count"), 1, "sweep latency was recorded");
    assert!(get("serve_request_nanos_p99") >= get("serve_request_nanos_p50"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn prometheus_format_exports_text_exposition() {
    let dir = temp_dir("prom");
    let store = dir.join("store");
    let mut child = spawn_serve(&store, None);
    let mut stdin = child.stdin.take().expect("stdin");
    let stdout = BufReader::new(child.stdout.take().expect("stdout"));

    writeln!(stdin, "{SWEEP}").expect("send sweep");
    writeln!(stdin, "{{\"metrics\":1,\"format\":\"prometheus\"}}").expect("send prom query");
    drop(stdin);

    let text: Vec<String> = stdout.lines().map(|l| l.expect("read")).collect();
    assert!(child.wait().expect("daemon exits").success());
    assert!(text.iter().any(|l| l.starts_with("# TYPE cmpsim_store_hits counter")));
    assert!(text.iter().any(|l| l.starts_with("cmpsim_serve_sweeps 1")));
    assert!(text.iter().any(|l| l.contains("cmpsim_serve_request_nanos_bucket{le=")));

    let _ = std::fs::remove_dir_all(&dir);
}

/// SIGKILL the daemon while it is serving and re-read the access log:
/// the sealed-append discipline must leave a cleanly recoverable prefix
/// (a torn tail is allowed; a parse error or half-record is not), and a
/// restarted daemon must append to the same log without rotation.
#[test]
fn killed_daemon_leaves_a_recoverable_access_log() {
    let dir = temp_dir("kill");
    let store = dir.join("store");
    let log = dir.join("access.jsonl");

    let mut child = spawn_serve(&store, Some(&log));
    let mut stdin = child.stdin.take().expect("stdin");
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout"));

    // One completed request so the log has at least one sealed record...
    writeln!(stdin, "{SWEEP}").expect("send sweep");
    let mut line = String::new();
    while stdout.read_line(&mut line).expect("read") > 0 {
        if line.contains("\"done\":1") {
            break;
        }
        line.clear();
    }
    // The done line flushes before the daemon appends the access-log
    // record; wait until that append lands so the kill below tests
    // recovery, not scheduling.
    for _ in 0..200 {
        if seallog::read(&log).map(|c| !c.records.is_empty()).unwrap_or(false) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    // ...then a second in flight when the SIGKILL lands.
    writeln!(stdin, "{SWEEP}").expect("send second sweep");
    child.kill().expect("SIGKILL the daemon");
    let _ = child.wait();

    let got = seallog::read(&log).expect("killed daemon must leave a readable log");
    assert_eq!(got.skipped, 0, "no half-written record may parse as corrupt");
    assert!(!got.records.is_empty(), "the completed request was logged");
    for rec in &got.records {
        let field = |k: &str| rec.iter().find(|(name, _)| name == k).map(|(_, v)| v.clone());
        assert_eq!(field("conn").and_then(|v| v.as_u64()), Some(1));
        assert!(field("req").and_then(|v| v.as_u64()).is_some());
        assert!(field("kind").is_some());
        assert!(field("elapsed_us").and_then(|v| v.as_u64()).is_some());
    }
    let records_before = got.records.len();

    // A restarted daemon appends to the same (valid) log — no .stale
    // rotation, prior records intact.
    let mut child = spawn_serve(&store, Some(&log));
    let mut stdin = child.stdin.take().expect("stdin");
    writeln!(stdin, "{{\"metrics\":1}}").expect("send metrics query");
    drop(stdin);
    let _ = child.wait();

    let again = seallog::read(&log).expect("log still reads after restart");
    assert!(again.records.len() > records_before, "restart appended to the same log");
    assert!(!log.with_extension("jsonl.stale").exists() && !dir.join("access.jsonl.stale").exists());

    let _ = std::fs::remove_dir_all(&dir);
}
