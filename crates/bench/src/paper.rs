//! Published numbers from the paper, used as the `paper` reference
//! columns in the regenerated tables and in EXPERIMENTS.md.
//!
//! Values come from Tables 3–5 and the prose of §4–§5. Table 3's exact
//! per-benchmark ratios appear only in a figure; the values here are the
//! calibration targets stated in DESIGN.md (consistent with the text:
//! commercial up to 1.8, SPEComp 1.01–1.19).

/// Benchmarks in the paper's presentation order.
pub const BENCHMARKS: [&str; 8] =
    ["apache", "zeus", "oltp", "jbb", "art", "apsi", "fma3d", "mgrid"];

/// Table 3 (calibrated): L2 compression ratio per benchmark.
pub const COMPRESSION_RATIO: [(&str, f64); 8] = [
    ("apache", 1.75),
    ("zeus", 1.60),
    ("oltp", 1.50),
    ("jbb", 1.40),
    ("art", 1.15),
    ("apsi", 1.01),
    ("fma3d", 1.19),
    ("mgrid", 1.08),
];

/// Figure 4: pin bandwidth demand (GB/s) of the base system.
pub const BANDWIDTH_DEMAND: [(&str, f64); 8] = [
    ("apache", 8.8),
    ("zeus", 7.6),
    ("oltp", 5.0),
    ("jbb", 6.5),
    ("art", 7.6),
    ("apsi", 10.0),
    ("fma3d", 27.7),
    ("mgrid", 20.0),
];

/// Table 5 row 1: speedup (%) of stride prefetching alone.
pub const SPEEDUP_PF: [(&str, f64); 8] = [
    ("apache", -0.9),
    ("zeus", 21.3),
    ("oltp", 0.3),
    ("jbb", -24.5),
    ("art", 6.4),
    ("apsi", 13.6),
    ("fma3d", -3.4),
    ("mgrid", 18.9),
];

/// Table 5 row 2: speedup (%) of cache+link compression alone.
pub const SPEEDUP_COMPR: [(&str, f64); 8] = [
    ("apache", 20.5),
    ("zeus", 9.7),
    ("oltp", 5.6),
    ("jbb", 5.9),
    ("art", 3.1),
    ("apsi", 4.2),
    ("fma3d", 22.6),
    ("mgrid", 2.9),
];

/// Table 5 row 3: speedup (%) of prefetching + compression.
pub const SPEEDUP_PF_COMPR: [(&str, f64); 8] = [
    ("apache", 37.3),
    ("zeus", 50.7),
    ("oltp", 9.9),
    ("jbb", -6.5),
    ("art", 10.6),
    ("apsi", 15.5),
    ("fma3d", 18.6),
    ("mgrid", 48.7),
];

/// Table 5 row 4: speedup (%) of adaptive prefetching + compression.
pub const SPEEDUP_ADAPTIVE_PF_COMPR: [(&str, f64); 8] = [
    ("apache", 39.2),
    ("zeus", 50.8),
    ("oltp", 13.1),
    ("jbb", 1.7),
    ("art", 10.7),
    ("apsi", 16.1),
    ("fma3d", 18.5),
    ("mgrid", 49.9),
];

/// Table 5 row 5: Interaction(Pf, Compr) (%).
pub const INTERACTION: [(&str, f64); 8] = [
    ("apache", 15.0),
    ("zeus", 13.2),
    ("oltp", 3.8),
    ("jbb", 16.9),
    ("art", 0.9),
    ("apsi", -2.5),
    ("fma3d", 0.2),
    ("mgrid", 21.5),
];

/// Figure 6 (prose of §4.3): speedup (%) of *adaptive* prefetching alone.
pub const SPEEDUP_ADAPTIVE_PF: [(&str, f64); 8] = [
    ("apache", 19.0),
    ("zeus", 42.0),
    ("oltp", 12.0),
    ("jbb", 0.8),
    ("art", 7.0),
    ("apsi", 14.0),
    ("fma3d", -1.0),
    ("mgrid", 19.5),
];

/// Table 4: (pf_rate, coverage %, accuracy %) per cache level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefetchRow {
    /// Benchmark name.
    pub name: &'static str,
    /// L1I (rate, coverage, accuracy).
    pub l1i: (f64, f64, f64),
    /// L1D (rate, coverage, accuracy).
    pub l1d: (f64, f64, f64),
    /// L2 (rate, coverage, accuracy).
    pub l2: (f64, f64, f64),
}

/// Table 4 verbatim.
pub const PREFETCH_PROPERTIES: [PrefetchRow; 8] = [
    PrefetchRow { name: "apache", l1i: (4.9, 16.4, 42.0), l1d: (6.1, 8.8, 55.5), l2: (10.5, 37.7, 57.9) },
    PrefetchRow { name: "zeus", l1i: (7.1, 14.5, 38.9), l1d: (5.5, 17.7, 79.2), l2: (8.2, 44.4, 56.0) },
    PrefetchRow { name: "oltp", l1i: (13.5, 20.9, 44.8), l1d: (2.0, 6.6, 58.0), l2: (2.4, 26.4, 41.5) },
    PrefetchRow { name: "jbb", l1i: (1.8, 24.6, 49.6), l1d: (4.2, 23.1, 60.3), l2: (5.5, 34.2, 32.4) },
    PrefetchRow { name: "art", l1i: (0.05, 9.4, 24.1), l1d: (56.3, 30.9, 81.3), l2: (49.7, 56.0, 85.0) },
    PrefetchRow { name: "apsi", l1i: (0.04, 15.7, 30.7), l1d: (8.5, 25.5, 96.9), l2: (4.6, 95.8, 97.6) },
    PrefetchRow { name: "fma3d", l1i: (0.06, 7.5, 14.4), l1d: (7.3, 27.5, 80.9), l2: (8.8, 44.6, 73.5) },
    PrefetchRow { name: "mgrid", l1i: (0.06, 15.5, 26.6), l1d: (8.4, 80.2, 94.2), l2: (6.2, 89.9, 81.9) },
];

/// Looks up a `(name, value)` table.
pub fn lookup(table: &[(&str, f64)], name: &str) -> f64 {
    table
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, v)| *v)
        .unwrap_or(f64::NAN)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_cover_all_benchmarks() {
        for b in BENCHMARKS {
            assert!(!lookup(&SPEEDUP_PF, b).is_nan());
            assert!(!lookup(&SPEEDUP_COMPR, b).is_nan());
            assert!(!lookup(&SPEEDUP_PF_COMPR, b).is_nan());
            assert!(!lookup(&INTERACTION, b).is_nan());
            assert!(PREFETCH_PROPERTIES.iter().any(|r| r.name == b));
        }
        assert!(lookup(&SPEEDUP_PF, "nope").is_nan());
    }
}
