//! Shared plumbing for the figure/table harnesses.
//!
//! Every bench target regenerates one table or figure of the paper (see
//! DESIGN.md §4 for the index). They share the simulation length, seed
//! set and paper reference values defined here so EXPERIMENTS.md can be
//! rebuilt with `cargo bench`.

use cmpsim_core::experiment::SimLength;

/// Paper reference values used in the `paper` columns of the harnesses.
pub mod paper;

/// Seeds used for multi-run confidence intervals (the paper's
/// space-variability methodology).
pub const SEEDS: [u64; 3] = [11, 23, 47];

/// One representative seed for single-run harnesses.
pub const SEED: u64 = 11;

/// Simulation length for harness runs; override the instruction counts
/// with `CMPSIM_MEASURE`/`CMPSIM_WARMUP` (instructions per core) to trade
/// fidelity for wall-clock time.
pub fn sim_length() -> SimLength {
    let std = SimLength::standard();
    let warmup = env_u64("CMPSIM_WARMUP").unwrap_or(std.warmup);
    let measure = env_u64("CMPSIM_MEASURE").unwrap_or(std.measure);
    SimLength { warmup, measure }
}

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok()?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_length_is_standard() {
        // (Assumes the env overrides are unset in the test environment.)
        if std::env::var("CMPSIM_MEASURE").is_err() {
            assert_eq!(sim_length().measure, SimLength::standard().measure);
        }
    }
}
