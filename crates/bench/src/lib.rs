//! Shared plumbing for the figure/table harnesses.
//!
//! Every bench target regenerates one table or figure of the paper (see
//! DESIGN.md §4 for the index). They share the simulation length, seed
//! set and paper reference values defined here so EXPERIMENTS.md can be
//! rebuilt with `cargo bench`.

use cmpsim_core::experiment::{run_grid_parallel, SimLength, VariantGrid};
use cmpsim_core::{SystemConfig, Variant};
use cmpsim_harness::pool::default_threads;
use cmpsim_trace::{all_workloads, WorkloadSpec};

/// Paper reference values used in the `paper` columns of the harnesses.
pub mod paper;

/// Seeds used for multi-run confidence intervals (the paper's
/// space-variability methodology).
pub const SEEDS: [u64; 3] = [11, 23, 47];

/// One representative seed for single-run harnesses.
pub const SEED: u64 = 11;

/// Simulation length for harness runs; override the instruction counts
/// with `CMPSIM_MEASURE`/`CMPSIM_WARMUP` (instructions per core) to trade
/// fidelity for wall-clock time.
pub fn sim_length() -> SimLength {
    let std = SimLength::standard();
    let warmup = env_u64("CMPSIM_WARMUP").unwrap_or(std.warmup);
    let measure = env_u64("CMPSIM_MEASURE").unwrap_or(std.measure);
    SimLength { warmup, measure }
}

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok()?.parse().ok()
}

/// Runs `variants` for every paper workload, fanning the whole
/// `workloads × variants` grid out across cores, and returns one
/// [`VariantGrid`] per workload in presentation order.
///
/// Results are bit-identical to calling `VariantGrid::run` per workload
/// (see the determinism contract on
/// [`run_grid_parallel`]); the figure/table
/// harnesses use this so regenerating EXPERIMENTS.md scales with the
/// machine. Thread count comes from `CMPSIM_THREADS` (default: all
/// cores).
pub fn parallel_grids(
    base: &SystemConfig,
    variants: &[Variant],
    len: SimLength,
) -> Vec<(WorkloadSpec, VariantGrid)> {
    parallel_grids_for(all_workloads(), base, variants, len)
}

/// [`parallel_grids`] over an explicit workload list (e.g. only the
/// commercial benchmarks).
pub fn parallel_grids_for(
    specs: Vec<WorkloadSpec>,
    base: &SystemConfig,
    variants: &[Variant],
    len: SimLength,
) -> Vec<(WorkloadSpec, VariantGrid)> {
    let cells = run_grid_parallel(&specs, base, variants, len, default_threads())
        .expect("simulation failed");
    // To stderr: stdout (the paper tables) must stay byte-identical
    // across thread counts and runs, and this line carries wall-clock.
    eprintln!("{}", cmpsim_core::report::throughput_summary(cells.iter().map(|c| &c.result)));
    specs
        .into_iter()
        .zip(cells.chunks(variants.len()))
        .map(|(spec, chunk)| {
            let grid =
                VariantGrid::from_cells(chunk.iter().map(|c| (c.variant, c.result.clone())));
            (spec, grid)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_length_is_standard() {
        // (Assumes the env overrides are unset in the test environment.)
        if std::env::var("CMPSIM_MEASURE").is_err() {
            assert_eq!(sim_length().measure, SimLength::standard().measure);
        }
    }
}
