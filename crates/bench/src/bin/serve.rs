//! `cmpsim serve` — a sweep daemon in front of the content-addressed
//! result store.
//!
//! Reads flat-JSON sweep requests one per line (the journal/store
//! framing: string and integer values only) and streams back one JSONL
//! record per cell plus a summary with store hit/miss telemetry. Every
//! sweep a daemon process handles shares one [`ResultStore`] handle, so
//! two overlapping requests compute each shared cell exactly once (the
//! second rides the first's in-flight lease) and any later request is
//! served from the store without simulating at all.
//!
//! Transports:
//!
//! - default: requests on stdin, responses on stdout — one process per
//!   client, store sharing across processes via the store directory;
//! - `--socket <path>`: a unix-domain socket; each connection is a
//!   request stream answered on the same connection, all connections
//!   served concurrently against the shared in-process store.
//!
//! Request fields (`workloads`/`variants` are comma-separated lists;
//! both accept `all`, `variants` defaults to the four headline configs):
//!
//! ```text
//! {"sweep":"warm","workloads":"apsi,mgrid","variants":"base,pf",
//!  "cores":4,"seed":11,"warmup":5000,"measure":20000,"threads":4}
//! {"shutdown":1}
//! ```
//!
//! Per-cell responses carry the cell's source (`store` or `computed`)
//! and its headline counters; the closing summary reports the store
//! hit rate for exactly this sweep. Example session:
//!
//! ```sh
//! printf '%s\n' '{"sweep":"s","workloads":"apsi","cores":2,"warmup":2000,"measure":8000}' \
//!   | CMPSIM_STORE=target/store cargo run --release -p cmpsim-bench --bin serve
//! ```

use cmpsim_core::experiment::{run_grid_parallel_store, SimLength};
use cmpsim_core::flatjson::{parse_flat, JsonVal};
use cmpsim_core::store::{CellKey, ResultStore};
use cmpsim_core::{journal, CodecKind, SystemConfig, Variant};
use cmpsim_trace::{all_workloads, WorkloadSpec};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The four headline configurations (the paper's Table 2 sweep).
const HEADLINE: [Variant; 4] = [
    Variant::Base,
    Variant::BothCompression,
    Variant::Prefetch,
    Variant::PrefetchCompression,
];

struct Request {
    sweep: String,
    specs: Vec<WorkloadSpec>,
    variants: Vec<Variant>,
    base: SystemConfig,
    len: SimLength,
    threads: usize,
}

fn parse_request(line: &str) -> Result<Option<Request>, String> {
    let kvs = parse_flat(line).ok_or_else(|| "not a flat JSON object".to_string())?;
    let map: HashMap<String, JsonVal> = kvs.into_iter().collect();
    if map.get("shutdown").and_then(JsonVal::as_u64) == Some(1) {
        return Ok(None);
    }
    let str_field = |k: &str| map.get(k).and_then(JsonVal::as_str);
    let num_field = |k: &str| map.get(k).and_then(JsonVal::as_u64);

    let sweep = str_field("sweep").unwrap_or("sweep").to_string();
    let workloads = str_field("workloads").ok_or("missing \"workloads\"")?;
    let specs: Vec<WorkloadSpec> = if workloads == "all" {
        all_workloads()
    } else {
        workloads
            .split(',')
            .map(|name| {
                cmpsim_trace::workload(name.trim())
                    .ok_or_else(|| format!("unknown workload {name:?}"))
            })
            .collect::<Result<_, _>>()?
    };
    let variants: Vec<Variant> = match str_field("variants") {
        None => HEADLINE.to_vec(),
        Some("all") => Variant::all().to_vec(),
        Some(list) => list
            .split(',')
            .map(|label| {
                let label = label.trim();
                Variant::all()
                    .into_iter()
                    .find(|v| v.label() == label)
                    .ok_or_else(|| format!("unknown variant {label:?}"))
            })
            .collect::<Result<_, _>>()?,
    };
    let cores = num_field("cores").unwrap_or(4).clamp(1, 64) as u8;
    let mut base = SystemConfig::paper_default(cores)
        .with_seed(num_field("seed").unwrap_or(cmpsim_bench::SEED));
    if let Some(codec) = str_field("codec") {
        base = base.with_codec(match codec {
            "fpc" => CodecKind::Fpc,
            "bdi" => CodecKind::Bdi,
            "zca" => CodecKind::Zca,
            other => return Err(format!("unknown codec {other:?}")),
        });
    }
    let default_len = cmpsim_bench::sim_length();
    let len = SimLength {
        warmup: num_field("warmup").unwrap_or(default_len.warmup),
        measure: num_field("measure").unwrap_or(default_len.measure),
    };
    let threads = num_field("threads")
        .map(|t| (t as usize).max(1))
        .unwrap_or_else(cmpsim_harness::pool::default_threads);
    Ok(Some(Request { sweep, specs, variants, base, len, threads }))
}

/// Runs one sweep against the shared store, streaming JSONL to `out`.
fn serve_sweep(req: &Request, store: &Arc<ResultStore>, out: &mut dyn Write) -> std::io::Result<()> {
    let fp = journal::fingerprint(&req.base, req.len);
    // Label each cell's source up front with a counter-neutral probe, so
    // the summary's hit/miss telemetry reflects only the sweep itself.
    let stored_before: Vec<bool> = req
        .specs
        .iter()
        .flat_map(|spec| {
            req.variants.iter().map(|&v| {
                store.contains(fp, &CellKey::new(spec.name, v, req.base.seed))
            })
        })
        .collect();
    let before = store.stats();
    let sweep_result = run_grid_parallel_store(
        &req.specs,
        &req.base,
        &req.variants,
        req.len,
        req.threads,
        store,
    );
    let after = store.stats();
    let cells = match sweep_result {
        Ok(cells) => cells,
        Err(e) => {
            writeln!(
                out,
                "{{\"sweep\":\"{}\",\"error\":\"{}\"}}",
                req.sweep,
                e.to_string().replace(['"', '\\'], "'").replace('\n', " ")
            )?;
            return out.flush();
        }
    };
    for (cell, was_stored) in cells.iter().zip(&stored_before) {
        writeln!(
            out,
            "{{\"sweep\":\"{}\",\"workload\":\"{}\",\"variant\":\"{}\",\"seed\":{},\
             \"source\":\"{}\",\"cycles\":{},\"instructions\":{},\"ipc_milli\":{}}}",
            req.sweep,
            cell.workload,
            cell.variant.label(),
            cell.seed,
            if *was_stored { "store" } else { "computed" },
            cell.result.cycles,
            cell.result.stats.instructions,
            (cell.result.ipc() * 1000.0).round() as u64,
        )?;
    }
    let hits = after.hits - before.hits;
    let misses = after.misses - before.misses;
    let served = hits + misses;
    writeln!(
        out,
        "{{\"sweep\":\"{}\",\"done\":1,\"cells\":{},\"store_hits\":{hits},\
         \"store_misses\":{misses},\"hit_rate_pct\":{},\"corrupt_skipped\":{}}}",
        req.sweep,
        cells.len(),
        if served == 0 { 0 } else { hits * 100 / served },
        after.corrupt_skipped - before.corrupt_skipped,
    )?;
    out.flush()
}

/// Handles one request stream: a line per sweep until EOF or shutdown.
/// Returns whether a shutdown request was seen.
fn serve_stream(
    reader: impl BufRead,
    out: &mut dyn Write,
    store: &Arc<ResultStore>,
) -> std::io::Result<bool> {
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match parse_request(&line) {
            Ok(Some(req)) => serve_sweep(&req, store, out)?,
            Ok(None) => return Ok(true),
            Err(e) => {
                writeln!(out, "{{\"error\":\"{}\"}}", e.replace(['"', '\\'], "'"))?;
                out.flush()?;
            }
        }
    }
    Ok(false)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let store = ResultStore::open_default();
    eprintln!("cmpsim serve: store at {}", store.dir().display());

    match args.as_slice() {
        [] => {
            let stdin = std::io::stdin();
            let mut stdout = std::io::stdout();
            serve_stream(stdin.lock(), &mut stdout, &store).expect("stdio transport failed");
        }
        [flag, path] if flag == "--socket" => {
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path)
                .unwrap_or_else(|e| panic!("cannot bind {path}: {e}"));
            eprintln!("cmpsim serve: listening on {path}");
            let shutdown = Arc::new(AtomicBool::new(false));
            let mut workers = Vec::new();
            for conn in listener.incoming() {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let conn = match conn {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("cmpsim serve: accept failed: {e}");
                        continue;
                    }
                };
                // Concurrent connections share the store handle — this is
                // where overlapping sweeps dedup against each other.
                let store = Arc::clone(&store);
                let shutdown = Arc::clone(&shutdown);
                let sock_path = path.clone();
                workers.push(std::thread::spawn(move || {
                    let reader = BufReader::new(conn.try_clone().expect("clone socket"));
                    let mut writer = conn;
                    match serve_stream(reader, &mut writer, &store) {
                        Ok(true) => {
                            shutdown.store(true, Ordering::SeqCst);
                            // Unblock the accept loop so it can observe
                            // the flag and exit.
                            let _ = std::os::unix::net::UnixStream::connect(&sock_path);
                        }
                        Ok(false) => {}
                        Err(e) => eprintln!("cmpsim serve: connection failed: {e}"),
                    }
                }));
            }
            for w in workers {
                let _ = w.join();
            }
            let _ = std::fs::remove_file(path);
        }
        _ => {
            eprintln!("usage: serve [--socket <path>]   (requests on stdin by default)");
            std::process::exit(2);
        }
    }
}
