//! `cmpsim serve` — a sweep daemon in front of the content-addressed
//! result store.
//!
//! Reads flat-JSON sweep requests one per line (the journal/store
//! framing: string and integer values only) and streams back one JSONL
//! record per cell plus a summary with store hit/miss telemetry. Every
//! sweep a daemon process handles shares one [`ResultStore`] handle, so
//! two overlapping requests compute each shared cell exactly once (the
//! second rides the first's in-flight lease) and any later request is
//! served from the store without simulating at all.
//!
//! Transports:
//!
//! - default: requests on stdin, responses on stdout — one process per
//!   client, store sharing across processes via the store directory;
//! - `--socket <path>`: a unix-domain socket; each connection is a
//!   request stream answered on the same connection, all connections
//!   served concurrently against the shared in-process store.
//!
//! Request fields (`workloads`/`variants` are comma-separated lists;
//! both accept `all`, `variants` defaults to the four headline configs):
//!
//! ```text
//! {"sweep":"warm","workloads":"apsi,mgrid","variants":"base,pf",
//!  "cores":4,"seed":11,"warmup":5000,"measure":20000,"threads":4}
//! {"metrics":1}
//! {"metrics":1,"format":"prometheus"}
//! {"shutdown":1}
//! ```
//!
//! Per-cell responses carry the cell's source (`store` or `computed`)
//! and its headline counters; the closing summary reports the store
//! hit rate for exactly this sweep plus the full [`StoreStats`] delta
//! (published/lease-wait/eviction/resident-byte telemetry).
//! `{"metrics":1}` answers with one flat-JSON line snapshotting the
//! whole service-metric registry (`store_*`, `grid_*`, `serve_*`
//! counters, gauges and latency quantiles); the `prometheus` format
//! variant answers with a Prometheus text block instead (multi-line,
//! terminated by a blank line — the one deliberate departure from the
//! JSONL protocol).
//!
//! Every request carries a connection id and per-connection request id,
//! threaded into the structured access log (`--access-log <path>` or
//! `CMPSIM_ACCESS_LOG`): a crash-safe sealed JSONL file
//! ([`cmpsim_core::seallog`]) whose header goes through tempfile +
//! atomic rename and whose records are CRC-sealed single writes, so a
//! killed daemon never leaves a torn artifact. Example session:
//!
//! ```sh
//! printf '%s\n' '{"sweep":"s","workloads":"apsi","cores":2,"warmup":2000,"measure":8000}' \
//!   | CMPSIM_STORE=target/store cargo run --release -p cmpsim-bench --bin serve
//! ```

use cmpsim_core::experiment::{run_grid_parallel_store, SimLength};
use cmpsim_core::flatjson::{parse_flat, JsonVal};
use cmpsim_core::seallog::SealedLog;
use cmpsim_core::store::{CellKey, ResultStore};
use cmpsim_core::{journal, CodecKind, SystemConfig, Variant};
use cmpsim_harness::metrics::{self, Counter, Histogram};
use cmpsim_trace::{all_workloads, WorkloadSpec};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixListener;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The four headline configurations (the paper's Table 2 sweep).
const HEADLINE: [Variant; 4] = [
    Variant::Base,
    Variant::BothCompression,
    Variant::Prefetch,
    Variant::PrefetchCompression,
];

struct Request {
    sweep: String,
    specs: Vec<WorkloadSpec>,
    variants: Vec<Variant>,
    base: SystemConfig,
    len: SimLength,
    threads: usize,
}

/// One parsed request line.
enum Parsed {
    Sweep(Box<Request>),
    /// `{"metrics":1}` — snapshot the service-metric registry.
    Metrics { prometheus: bool },
    Shutdown,
}

/// Request-path service metrics, registered under `serve_*` names.
/// `None` when `CMPSIM_METRICS=0`.
struct ServeMetrics {
    connections: Counter,
    requests: Counter,
    sweeps: Counter,
    cells: Counter,
    errors: Counter,
    request_nanos: Histogram,
}

impl ServeMetrics {
    fn arm() -> Option<Arc<ServeMetrics>> {
        if !metrics::enabled() {
            return None;
        }
        let r = metrics::global();
        Some(Arc::new(ServeMetrics {
            connections: r.counter("serve_connections"),
            requests: r.counter("serve_requests"),
            sweeps: r.counter("serve_sweeps"),
            cells: r.counter("serve_cells"),
            errors: r.counter("serve_errors"),
            request_nanos: r.histogram("serve_request_nanos"),
        }))
    }
}

/// Per-connection context: ids for the access log plus the shared
/// metric handles and (optional) sealed access log.
struct Ctx {
    conn: u64,
    metrics: Option<Arc<ServeMetrics>>,
    log: Option<Arc<Mutex<SealedLog>>>,
}

impl Ctx {
    /// Appends one access-log record; `sweep` is already sanitized.
    fn log_request(&self, req_id: u64, kind: &str, sweep: &str, cells: usize, t0: Instant) {
        let Some(log) = &self.log else { return };
        let elapsed_us = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        let body = format!(
            "{{\"conn\":{},\"req\":{req_id},\"kind\":\"{kind}\",\"sweep\":\"{sweep}\",\
             \"cells\":{cells},\"elapsed_us\":{elapsed_us}",
            self.conn,
        );
        if let Err(e) = log.lock().unwrap_or_else(std::sync::PoisonError::into_inner).append(body)
        {
            eprintln!("cmpsim serve: access log append failed: {e}");
        }
    }
}

/// Strips characters that would break a flat-JSON string value.
fn sanitize(s: &str) -> String {
    s.replace(['"', '\\'], "'").replace('\n', " ")
}

fn parse_request(line: &str) -> Result<Parsed, String> {
    let kvs = parse_flat(line).ok_or_else(|| "not a flat JSON object".to_string())?;
    let map: HashMap<String, JsonVal> = kvs.into_iter().collect();
    if map.get("shutdown").and_then(JsonVal::as_u64) == Some(1) {
        return Ok(Parsed::Shutdown);
    }
    let str_field = |k: &str| map.get(k).and_then(JsonVal::as_str);
    let num_field = |k: &str| map.get(k).and_then(JsonVal::as_u64);
    if num_field("metrics") == Some(1) {
        return Ok(Parsed::Metrics { prometheus: str_field("format") == Some("prometheus") });
    }

    let sweep = str_field("sweep").unwrap_or("sweep").to_string();
    let workloads = str_field("workloads").ok_or("missing \"workloads\"")?;
    let specs: Vec<WorkloadSpec> = if workloads == "all" {
        all_workloads()
    } else {
        workloads
            .split(',')
            .map(|name| {
                cmpsim_trace::workload(name.trim())
                    .ok_or_else(|| format!("unknown workload {name:?}"))
            })
            .collect::<Result<_, _>>()?
    };
    let variants: Vec<Variant> = match str_field("variants") {
        None => HEADLINE.to_vec(),
        Some("all") => Variant::all().to_vec(),
        Some(list) => list
            .split(',')
            .map(|label| {
                let label = label.trim();
                Variant::all()
                    .into_iter()
                    .find(|v| v.label() == label)
                    .ok_or_else(|| format!("unknown variant {label:?}"))
            })
            .collect::<Result<_, _>>()?,
    };
    let cores = num_field("cores").unwrap_or(4).clamp(1, 64) as u8;
    let mut base = SystemConfig::paper_default(cores)
        .with_seed(num_field("seed").unwrap_or(cmpsim_bench::SEED));
    if let Some(codec) = str_field("codec") {
        base = base.with_codec(match codec {
            "fpc" => CodecKind::Fpc,
            "bdi" => CodecKind::Bdi,
            "zca" => CodecKind::Zca,
            other => return Err(format!("unknown codec {other:?}")),
        });
    }
    let default_len = cmpsim_bench::sim_length();
    let len = SimLength {
        warmup: num_field("warmup").unwrap_or(default_len.warmup),
        measure: num_field("measure").unwrap_or(default_len.measure),
    };
    let threads = num_field("threads")
        .map(|t| (t as usize).max(1))
        .unwrap_or_else(cmpsim_harness::pool::default_threads);
    Ok(Parsed::Sweep(Box::new(Request { sweep, specs, variants, base, len, threads })))
}

/// Runs one sweep against the shared store, streaming JSONL to `out`.
/// Returns the number of cell records streamed.
fn serve_sweep(
    req: &Request,
    store: &Arc<ResultStore>,
    out: &mut dyn Write,
) -> std::io::Result<usize> {
    let fp = journal::fingerprint(&req.base, req.len);
    // Label each cell's source up front with a counter-neutral probe, so
    // the summary's hit/miss telemetry reflects only the sweep itself.
    let stored_before: Vec<bool> = req
        .specs
        .iter()
        .flat_map(|spec| {
            req.variants.iter().map(|&v| {
                store.contains(fp, &CellKey::new(spec.name, v, req.base.seed))
            })
        })
        .collect();
    let before = store.stats();
    let sweep_result = run_grid_parallel_store(
        &req.specs,
        &req.base,
        &req.variants,
        req.len,
        req.threads,
        store,
    );
    let after = store.stats();
    let cells = match sweep_result {
        Ok(cells) => cells,
        Err(e) => {
            writeln!(out, "{{\"sweep\":\"{}\",\"error\":\"{}\"}}", req.sweep, sanitize(&e.to_string()))?;
            out.flush()?;
            return Ok(0);
        }
    };
    for (cell, was_stored) in cells.iter().zip(&stored_before) {
        writeln!(
            out,
            "{{\"sweep\":\"{}\",\"workload\":\"{}\",\"variant\":\"{}\",\"seed\":{},\
             \"source\":\"{}\",\"cycles\":{},\"instructions\":{},\"ipc_milli\":{}}}",
            req.sweep,
            cell.workload,
            cell.variant.label(),
            cell.seed,
            if *was_stored { "store" } else { "computed" },
            cell.result.cycles,
            cell.result.stats.instructions,
            (cell.result.ipc() * 1000.0).round() as u64,
        )?;
    }
    let hits = after.hits - before.hits;
    let misses = after.misses - before.misses;
    let served = hits + misses;
    // The closing summary carries the full StoreStats delta for this
    // sweep, plus the store's current on-disk footprint.
    writeln!(
        out,
        "{{\"sweep\":\"{}\",\"done\":1,\"cells\":{},\"store_hits\":{hits},\
         \"store_misses\":{misses},\"hit_rate_pct\":{},\"corrupt_skipped\":{},\
         \"published\":{},\"lease_waits\":{},\"evicted_files\":{},\"evicted_bytes\":{},\
         \"resident_bytes\":{}}}",
        req.sweep,
        cells.len(),
        if served == 0 { 0 } else { hits * 100 / served },
        after.corrupt_skipped - before.corrupt_skipped,
        after.published - before.published,
        after.shared_waits - before.shared_waits,
        after.evicted_files - before.evicted_files,
        after.evicted_bytes - before.evicted_bytes,
        store.resident_bytes(),
    )?;
    out.flush()?;
    Ok(cells.len())
}

/// Answers `{"metrics":1}`: refreshes the store-occupancy gauge, then
/// writes the registry snapshot as one flat-JSON line (or a Prometheus
/// text block when requested).
fn serve_metrics(
    store: &Arc<ResultStore>,
    prometheus: bool,
    out: &mut dyn Write,
) -> std::io::Result<()> {
    store.resident_bytes();
    let snap = metrics::global().snapshot();
    if prometheus {
        out.write_all(snap.to_prometheus().as_bytes())?;
        out.write_all(b"\n")?;
    } else {
        writeln!(out, "{}", snap.to_flat_json())?;
    }
    out.flush()
}

/// Handles one request stream: a line per sweep until EOF or shutdown.
/// Returns whether a shutdown request was seen.
fn serve_stream(
    reader: impl BufRead,
    out: &mut dyn Write,
    store: &Arc<ResultStore>,
    ctx: &Ctx,
) -> std::io::Result<bool> {
    if let Some(m) = &ctx.metrics {
        m.connections.inc();
    }
    let mut req_id = 0u64;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        req_id += 1;
        let t0 = Instant::now();
        if let Some(m) = &ctx.metrics {
            m.requests.inc();
        }
        match parse_request(&line) {
            Ok(Parsed::Sweep(req)) => {
                let cells = serve_sweep(&req, store, out)?;
                if let Some(m) = &ctx.metrics {
                    m.sweeps.inc();
                    m.cells.add(cells as u64);
                    m.request_nanos.record_elapsed(t0);
                }
                ctx.log_request(req_id, "sweep", &sanitize(&req.sweep), cells, t0);
            }
            Ok(Parsed::Metrics { prometheus }) => {
                serve_metrics(store, prometheus, out)?;
                if let Some(m) = &ctx.metrics {
                    m.request_nanos.record_elapsed(t0);
                }
                ctx.log_request(req_id, "metrics", "", 0, t0);
            }
            Ok(Parsed::Shutdown) => {
                ctx.log_request(req_id, "shutdown", "", 0, t0);
                return Ok(true);
            }
            Err(e) => {
                writeln!(out, "{{\"error\":\"{}\"}}", sanitize(&e))?;
                out.flush()?;
                if let Some(m) = &ctx.metrics {
                    m.errors.inc();
                    m.request_nanos.record_elapsed(t0);
                }
                ctx.log_request(req_id, "parse_error", "", 0, t0);
            }
        }
    }
    Ok(false)
}

/// The daemon's closing summary: the full lifetime [`StoreStats`] of
/// this process's store handle, on stderr.
fn closing_summary(store: &Arc<ResultStore>) {
    let s = store.stats();
    eprintln!(
        "cmpsim serve: closing summary: hits {} misses {} ({:.0}% hit rate), published {}, \
         lease waits {}, corrupt skipped {}, evicted {} files / {} bytes, resident {} bytes",
        s.hits,
        s.misses,
        s.hit_rate_pct(),
        s.published,
        s.shared_waits,
        s.corrupt_skipped,
        s.evicted_files,
        s.evicted_bytes,
        store.resident_bytes(),
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut socket: Option<String> = None;
    let mut access_log: Option<String> = std::env::var("CMPSIM_ACCESS_LOG").ok();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match (flag.as_str(), it.next()) {
            ("--socket", Some(path)) => socket = Some(path.clone()),
            ("--access-log", Some(path)) => access_log = Some(path.clone()),
            _ => {
                eprintln!(
                    "usage: serve [--socket <path>] [--access-log <path>]   \
                     (requests on stdin by default; CMPSIM_ACCESS_LOG also sets the log)"
                );
                std::process::exit(2);
            }
        }
    }

    let store = ResultStore::open_default();
    eprintln!("cmpsim serve: store at {}", store.dir().display());
    let serve_metrics = ServeMetrics::arm();
    let log = access_log.and_then(|path| match SealedLog::open(&path) {
        Ok(log) => {
            eprintln!("cmpsim serve: access log at {path}");
            Some(Arc::new(Mutex::new(log)))
        }
        Err(e) => {
            eprintln!("cmpsim serve: cannot open access log {path}: {e}");
            None
        }
    });

    match socket {
        None => {
            let stdin = std::io::stdin();
            let mut stdout = std::io::stdout();
            let ctx = Ctx { conn: 1, metrics: serve_metrics, log };
            serve_stream(stdin.lock(), &mut stdout, &store, &ctx)
                .expect("stdio transport failed");
            closing_summary(&store);
        }
        Some(path) => {
            let _ = std::fs::remove_file(&path);
            let listener = UnixListener::bind(&path)
                .unwrap_or_else(|e| panic!("cannot bind {path}: {e}"));
            eprintln!("cmpsim serve: listening on {path}");
            let shutdown = Arc::new(AtomicBool::new(false));
            let conn_ids = AtomicU64::new(0);
            let mut workers = Vec::new();
            for conn in listener.incoming() {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let conn = match conn {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("cmpsim serve: accept failed: {e}");
                        continue;
                    }
                };
                // Concurrent connections share the store handle — this is
                // where overlapping sweeps dedup against each other.
                let store = Arc::clone(&store);
                let shutdown = Arc::clone(&shutdown);
                let sock_path = path.clone();
                let ctx = Ctx {
                    conn: conn_ids.fetch_add(1, Ordering::Relaxed) + 1,
                    metrics: serve_metrics.clone(),
                    log: log.clone(),
                };
                workers.push(std::thread::spawn(move || {
                    let reader = BufReader::new(conn.try_clone().expect("clone socket"));
                    let mut writer = conn;
                    match serve_stream(reader, &mut writer, &store, &ctx) {
                        Ok(true) => {
                            shutdown.store(true, Ordering::SeqCst);
                            // Unblock the accept loop so it can observe
                            // the flag and exit.
                            let _ = std::os::unix::net::UnixStream::connect(&sock_path);
                        }
                        Ok(false) => {}
                        Err(e) => eprintln!("cmpsim serve: connection failed: {e}"),
                    }
                }));
            }
            for w in workers {
                let _ = w.join();
            }
            let _ = std::fs::remove_file(&path);
            closing_summary(&store);
        }
    }
}
