//! Calibration diagnostic: per-workload base-system characteristics vs.
//! the paper's published targets. Not a paper artifact itself — this is
//! the tool used to tune the synthetic workload parameters.
//!
//! ```sh
//! CMPSIM_MEASURE=600000 cargo run --release -p cmpsim-bench --bin calibrate [bench...]
//! ```

use cmpsim_bench::{paper, sim_length, SEED};
use cmpsim_core::report::Table;
use cmpsim_core::{System, SystemConfig, Variant};
use cmpsim_harness::pool;
use cmpsim_link::LinkBandwidth;
use cmpsim_trace::all_workloads;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let len = sim_length();
    let base = SystemConfig::paper_default(8).with_seed(SEED);

    let specs: Vec<_> = all_workloads()
        .into_iter()
        .filter(|spec| args.is_empty() || args.iter().any(|a| a == spec.name))
        .collect();

    // Each workload needs two independent runs (base on an infinite
    // link for bandwidth *demand*, cache-compression for the ratio);
    // fan the whole set out across cores.
    let jobs: Vec<_> = specs
        .iter()
        .map(|spec| {
            let base = &base;
            move || {
                let cfg =
                    Variant::Base.apply(base.clone()).with_link(LinkBandwidth::Infinite);
                let mut sys = System::new(cfg, spec);
                let r = sys.run(len.warmup, len.measure).expect("simulation failed");

                let ccfg = Variant::CacheCompression.apply(base.clone());
                let mut csys = System::new(ccfg, spec);
                let cr = csys.run(len.warmup, len.measure).expect("simulation failed");
                (r, cr)
            }
        })
        .collect();
    let results = pool::run_indexed(pool::default_threads(), jobs);

    let mut t = Table::new(&[
        "bench", "IPC", "L1I mpki", "L1D mpki", "L2 mpki", "GB/s", "GB/s(paper)", "ratio",
        "ratio(paper)",
    ]);
    for (spec, (r, cr)) in specs.iter().zip(results) {
        let i = r.stats.instructions;
        t.row(&[
            spec.name.into(),
            format!("{:.2}", r.ipc()),
            format!("{:.1}", r.stats.l1i.mpki(i)),
            format!("{:.1}", r.stats.l1d.mpki(i)),
            format!("{:.1}", r.stats.l2.mpki(i)),
            format!("{:.1}", r.bandwidth_gbps()),
            format!("{:.1}", paper::lookup(&paper::BANDWIDTH_DEMAND, spec.name)),
            format!("{:.2}", cr.stats.compression_ratio()),
            format!("{:.2}", paper::lookup(&paper::COMPRESSION_RATIO, spec.name)),
        ]);
    }
    t.print("calibration: base-system characteristics vs paper");
}
