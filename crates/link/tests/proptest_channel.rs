//! Property tests for the off-chip link: byte conservation, lane
//! monotonicity, and queueing consistency under arbitrary traffic
//! (cmpsim-harness port — same invariants as the proptest suite).

use cmpsim_cache::BlockAddr;
use cmpsim_harness::{gen, prop::check, prop_assert, prop_assert_eq};
use cmpsim_link::{Channel, LinkBandwidth, Message};

fn arbitrary_message(kind: u8, addr: u64, segs: u8) -> Message {
    let a = BlockAddr(addr);
    let s = segs % 8 + 1;
    match kind % 3 {
        0 => Message::read_request(a, kind % 2 == 0),
        1 => Message::data_response(a, s, kind % 2 == 1),
        _ => Message::writeback(a, s),
    }
}

/// total_bytes equals the sum of message sizes; busy time equals the
/// sum of serialization durations.
#[test]
fn byte_and_time_conservation() {
    let msgs = gen::vec_of(
        gen::quad(gen::u8s(..), gen::u64s(0..1000), gen::u8s(..), gen::u64s(0..10_000)),
        1..200,
    );
    check("byte_and_time_conservation", &msgs, |msgs| {
        let mut link = Channel::new(LinkBandwidth::GBps(20), 5);
        let mut bytes = 0u64;
        let mut busy = 0u64;
        let mut now = 0u64;
        for &(kind, addr, segs, dt) in msgs {
            now += dt;
            let m = arbitrary_message(kind, addr, segs);
            bytes += m.size_bytes() as u64;
            busy += link.duration_cycles(m.size_bytes());
            let t = link.send(now, &m);
            prop_assert!(t.start >= now, "transfer cannot start in the past");
            prop_assert!(t.done >= t.start);
        }
        prop_assert_eq!(link.stats().total_bytes, bytes);
        prop_assert_eq!(link.stats().busy_cycles, busy);
        Ok(())
    });
}

/// Within a lane, transfers never overlap: each message's start is at
/// or after the previous same-lane message's completion.
#[test]
fn same_lane_transfers_serialize() {
    let sends = gen::vec_of(gen::pair(gen::u64s(0..500), gen::u8s(1..=8)), 1..100);
    check("same_lane_transfers_serialize", &sends, |sends| {
        let mut link = Channel::new(LinkBandwidth::GBps(10), 5);
        let mut now = 0u64;
        let mut prev_done = 0u64;
        for &(dt, segs) in sends {
            now += dt;
            let t = link.send(now, &Message::data_response(BlockAddr(0), segs, false));
            prop_assert!(t.start >= prev_done, "overlapping transfers on one lane");
            prev_done = t.done;
        }
        Ok(())
    });
}

/// Infinite bandwidth: zero queueing, zero busy time, exact byte
/// accounting.
#[test]
fn infinite_link_properties() {
    let msgs = gen::vec_of(
        gen::triple(gen::u8s(..), gen::u64s(0..100), gen::u8s(..)),
        1..100,
    );
    check("infinite_link_properties", &msgs, |msgs| {
        let mut link = Channel::new(LinkBandwidth::Infinite, 5);
        for &(kind, addr, segs) in msgs {
            let m = arbitrary_message(kind, addr, segs);
            let t = link.send(7, &m);
            prop_assert_eq!(t.start, 7);
            prop_assert_eq!(t.done, 7);
        }
        prop_assert_eq!(link.stats().queue_delay_cycles, 0);
        prop_assert_eq!(link.stats().busy_cycles, 0);
        Ok(())
    });
}
