//! Off-chip message formats.

use cmpsim_cache::BlockAddr;
use cmpsim_fpc::{segment_bytes_for, MAX_SEGMENTS};

/// Bytes in every message header (address, type, and for data messages the
/// flit-count length field the paper describes in §2).
pub const HEADER_BYTES: usize = 8;

/// The role a message plays on the memory interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageKind {
    /// L2 miss request to the memory controller (no data payload).
    ReadRequest,
    /// Memory's data response for a read request.
    DataResponse,
    /// Dirty L2 eviction carrying data back to memory.
    Writeback,
}

/// One message on the off-chip link.
///
/// Data-carrying messages are transferred as `segments` flits of
/// [`cmpsim_fpc::SEGMENT_BYTES`] each, after the header. With link compression
/// disabled, every line uses all 8 flits; with it enabled, the configured
/// codec's segment count of the line's contents is used. The flit frame
/// (`1..=MAX_SEGMENTS`) is shared by every codec; which codec produced a
/// count is invisible at this layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Message {
    /// Message role.
    pub kind: MessageKind,
    /// Line the message concerns.
    pub addr: BlockAddr,
    /// Data flits (0 for requests, 1..=8 for data messages).
    pub segments: u8,
    /// Whether the message is a prefetch-initiated transfer (for traffic
    /// accounting; prefetches and demand transfers share the link).
    pub for_prefetch: bool,
}

impl Message {
    /// A read request (header only).
    pub fn read_request(addr: BlockAddr, for_prefetch: bool) -> Self {
        Message { kind: MessageKind::ReadRequest, addr, segments: 0, for_prefetch }
    }

    /// A data response carrying `segments` flits.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is 0 or exceeds 8.
    pub fn data_response(addr: BlockAddr, segments: u8, for_prefetch: bool) -> Self {
        assert!((1..=MAX_SEGMENTS).contains(&segments), "bad segment count {segments}");
        Message { kind: MessageKind::DataResponse, addr, segments, for_prefetch }
    }

    /// A dirty writeback carrying `segments` flits.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is 0 or exceeds 8.
    pub fn writeback(addr: BlockAddr, segments: u8) -> Self {
        assert!((1..=MAX_SEGMENTS).contains(&segments), "bad segment count {segments}");
        Message { kind: MessageKind::Writeback, addr, segments, for_prefetch: false }
    }

    /// Exact size on the link in bytes: header plus one flit per segment
    /// (via the codec layer's shared [`segment_bytes_for`] geometry).
    pub fn size_bytes(&self) -> usize {
        if self.segments == 0 {
            return HEADER_BYTES;
        }
        HEADER_BYTES + segment_bytes_for(self.segments)
    }

    /// Whether the message carries line data.
    pub fn carries_data(&self) -> bool {
        self.segments > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        let a = BlockAddr(5);
        assert_eq!(Message::read_request(a, false).size_bytes(), 8);
        assert_eq!(Message::data_response(a, 8, false).size_bytes(), 72);
        assert_eq!(Message::data_response(a, 1, false).size_bytes(), 16);
        assert_eq!(Message::writeback(a, 3).size_bytes(), 32);
    }

    #[test]
    fn compression_saves_bytes() {
        let a = BlockAddr(5);
        let uncompressed = Message::data_response(a, 8, false).size_bytes();
        let compressed = Message::data_response(a, 2, false).size_bytes();
        assert!(compressed < uncompressed);
        // 2 segments: 8 + 16 = 24 vs 72 → a 67% reduction on this message.
        assert_eq!(compressed, 24);
    }

    #[test]
    fn data_flag() {
        let a = BlockAddr(0);
        assert!(!Message::read_request(a, true).carries_data());
        assert!(Message::data_response(a, 4, true).carries_data());
    }

    #[test]
    #[should_panic(expected = "bad segment count")]
    fn zero_segment_response_panics() {
        Message::data_response(BlockAddr(0), 0, false);
    }
}
