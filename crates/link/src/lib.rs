//! Off-chip interconnect model: messages, flits, bandwidth and link
//! compression.
//!
//! The paper's CMP talks to its off-chip memory controller over a pin
//! interface with 20 GB/s of bandwidth (Table 1). **Link compression**
//! (§2) transfers each 64-byte line as 1–8 *flits* of one 8-byte segment
//! each, using the same FPC segmentation as the cache, so compressible
//! lines consume proportionally less pin bandwidth.
//!
//! This crate provides:
//!
//! - [`Message`]: typed request/response/writeback messages with exact
//!   byte sizes (8-byte header + one flit per data segment),
//! - [`Channel`]: a serializing bandwidth model that yields transfer
//!   start/completion times with FIFO queueing delay, plus the counters
//!   behind the paper's *pin bandwidth demand* metric (EQ 1, measured on
//!   an infinite-bandwidth link), and
//! - [`LinkBandwidth`]: finite GB/s or `Infinite` for demand measurement.

mod channel;
mod message;

pub use channel::{Channel, ChannelStats, LinkBandwidth, Transfer};
pub use message::{Message, MessageKind, HEADER_BYTES};
