//! Serializing bandwidth channel with FIFO queueing.

use crate::message::Message;

/// Available pin bandwidth for the off-chip link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkBandwidth {
    /// Finite bandwidth in GB/s (the paper sweeps 10–80, default 20).
    GBps(u32),
    /// Unlimited bandwidth: transfers serialize in zero time. Used to
    /// measure *pin bandwidth demand* (EQ 1), "defined as the bandwidth
    /// utilization on a system with infinite available pin bandwidth".
    Infinite,
}

/// The scheduled occupancy of one message on the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Cycle the first flit leaves (after queueing behind earlier traffic).
    pub start: u64,
    /// Cycle the last flit arrives; the payload is usable from here.
    pub done: u64,
}

impl Transfer {
    /// Cycles spent waiting behind earlier messages.
    pub fn queue_delay(&self, requested_at: u64) -> u64 {
        self.start.saturating_sub(requested_at)
    }
}

/// Traffic counters for the link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Total bytes transferred (headers + flits) — numerator of EQ 1.
    pub total_bytes: u64,
    /// Bytes belonging to data flits only (no headers).
    pub data_bytes: u64,
    /// Bytes of messages flagged as prefetch traffic.
    pub prefetch_bytes: u64,
    /// Messages sent.
    pub messages: u64,
    /// Sum of per-message queueing delays in cycles.
    pub queue_delay_cycles: u64,
    /// Cycles the link spent busy transferring.
    pub busy_cycles: u64,
    /// Messages lost in transit by fault injection. The flits still
    /// crossed the wire (their bytes and busy cycles are counted above);
    /// only the payload never arrived.
    pub dropped_messages: u64,
    /// Messages whose flits were corrupted in transit by fault injection
    /// (detected at the receiver, forcing a retransmit).
    pub corrupted_messages: u64,
}

impl ChannelStats {
    /// Mean queueing delay per message, in cycles.
    pub fn avg_queue_delay(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.queue_delay_cycles as f64 / self.messages as f64
        }
    }

    /// Checks flit conservation: every byte counted on the link is either
    /// one message header or one data flit, so
    /// `total_bytes == messages × HEADER_BYTES + data_bytes`, and the
    /// prefetch/data sub-counters can never exceed the total. Used by the
    /// simulator's opt-in invariant checker (`CMPSIM_CHECK=1`).
    ///
    /// # Errors
    ///
    /// Returns a description of the violated conservation law.
    pub fn check(&self) -> Result<(), String> {
        let expected = self.messages * crate::message::HEADER_BYTES as u64 + self.data_bytes;
        if self.total_bytes != expected {
            return Err(format!(
                "flit conservation violated: total_bytes {} != {} messages × {}B headers \
                 + {} data bytes = {}",
                self.total_bytes,
                self.messages,
                crate::message::HEADER_BYTES,
                self.data_bytes,
                expected
            ));
        }
        if self.data_bytes > self.total_bytes {
            return Err(format!(
                "data bytes {} exceed total bytes {}",
                self.data_bytes, self.total_bytes
            ));
        }
        if self.prefetch_bytes > self.total_bytes {
            return Err(format!(
                "prefetch bytes {} exceed total bytes {}",
                self.prefetch_bytes, self.total_bytes
            ));
        }
        Ok(())
    }
}

/// A bandwidth-metered, FIFO-serializing, full-duplex link.
///
/// The pin interface is modeled as two independent lanes, each with the
/// configured bandwidth: *upstream* (read requests and writebacks toward
/// the memory controller) and *downstream* (data responses toward the
/// chip). Within a lane, messages serialize FIFO, so bursts of misses
/// produce queueing delays — the contention effect at the heart of the
/// paper.
///
/// # Examples
///
/// ```
/// use cmpsim_link::{Channel, LinkBandwidth, Message};
/// use cmpsim_cache::BlockAddr;
///
/// // 20 GB/s at 5 GHz = 4 bytes/cycle: a 72-byte message takes 18 cycles.
/// let mut link = Channel::new(LinkBandwidth::GBps(20), 5);
/// let t = link.send(100, &Message::data_response(BlockAddr(0), 8, false));
/// assert_eq!(t.start, 100);
/// assert_eq!(t.done, 118);
/// // A second response queues behind the first on the same lane…
/// let t2 = link.send(100, &Message::data_response(BlockAddr(1), 8, false));
/// assert_eq!(t2.start, 118);
/// // …while a request rides the free upstream lane immediately.
/// let t3 = link.send(100, &Message::read_request(BlockAddr(2), false));
/// assert_eq!(t3.start, 100);
/// ```
#[derive(Debug, Clone)]
pub struct Channel {
    bandwidth: LinkBandwidth,
    clock_ghz: u32,
    /// Per-lane occupancy. With width 1 both directions share lane 0;
    /// otherwise direction `d` owns lanes `d, d + 2, d + 4, …` (so the
    /// default width 2 is exactly `[upstream, downstream]`).
    next_free: Vec<u64>,
    stats: ChannelStats,
}

impl Channel {
    /// Creates a link with the given bandwidth on a `clock_ghz` GHz chip,
    /// with the default full-duplex width of 2 lanes (one per direction).
    ///
    /// # Panics
    ///
    /// Panics if `clock_ghz` is zero.
    pub fn new(bandwidth: LinkBandwidth, clock_ghz: u32) -> Self {
        Self::with_width(bandwidth, clock_ghz, 2)
    }

    /// Creates a link with `width` sub-links, each with the configured
    /// bandwidth. Width 1 is a half-duplex link both directions contend
    /// for; width 2 is the paper's full-duplex pin interface; wider links
    /// give each direction `width / 2` (rounded toward upstream) parallel
    /// lanes, a message picking the earliest-free lane of its direction.
    ///
    /// # Panics
    ///
    /// Panics if `clock_ghz` or `width` is zero.
    pub fn with_width(bandwidth: LinkBandwidth, clock_ghz: u32, width: usize) -> Self {
        assert!(clock_ghz > 0, "clock must be positive");
        assert!(width > 0, "link needs at least one lane");
        Channel { bandwidth, clock_ghz, next_free: vec![0; width], stats: ChannelStats::default() }
    }

    /// The configured bandwidth.
    pub fn bandwidth(&self) -> LinkBandwidth {
        self.bandwidth
    }

    /// The configured number of sub-links.
    pub fn width(&self) -> usize {
        self.next_free.len()
    }

    /// The lanes direction `d` (0 = upstream, 1 = downstream) schedules
    /// on: lane 0 only at width 1, else `d, d + 2, d + 4, …`.
    fn lanes_for(&self, direction: usize) -> impl Iterator<Item = usize> + '_ {
        let width = self.next_free.len();
        let (start, step) = if width == 1 { (0, 1) } else { (direction, 2) };
        (start..width).step_by(step)
    }

    /// Serialization time of `bytes` on this link, ignoring queueing.
    pub fn duration_cycles(&self, bytes: usize) -> u64 {
        match self.bandwidth {
            LinkBandwidth::Infinite => 0,
            LinkBandwidth::GBps(gbps) => {
                // bytes/cycle = GB/s ÷ Gcycles/s; duration rounds up.
                let bytes = bytes as u64;
                (bytes * u64::from(self.clock_ghz)).div_ceil(u64::from(gbps))
            }
        }
    }

    /// Schedules `msg` at time `now` on its direction lane, returning the
    /// occupancy window.
    pub fn send(&mut self, now: u64, msg: &Message) -> Transfer {
        let direction = match msg.kind {
            crate::MessageKind::DataResponse => 1,
            crate::MessageKind::ReadRequest | crate::MessageKind::Writeback => 0,
        };
        // Earliest-free lane of the direction (lowest index on ties, so
        // the default width 2 degenerates to the fixed per-direction
        // lane it has always been).
        let lane = self
            .lanes_for(direction)
            .min_by_key(|&l| (self.next_free[l], l))
            .expect("width >= 1 guarantees a lane");
        let bytes = msg.size_bytes();
        let duration = self.duration_cycles(bytes);
        let start = now.max(self.next_free[lane]);
        let done = start + duration;
        self.next_free[lane] = done;

        self.stats.total_bytes += bytes as u64;
        self.stats.data_bytes += if msg.segments == 0 {
            0
        } else {
            cmpsim_fpc::segment_bytes_for(msg.segments) as u64
        };
        if msg.for_prefetch {
            self.stats.prefetch_bytes += bytes as u64;
        }
        self.stats.messages += 1;
        self.stats.queue_delay_cycles += start - now;
        self.stats.busy_cycles += duration;

        Transfer { start, done }
    }

    /// Sends `msg` but loses it in transit: the flits occupy the lane
    /// and burn bandwidth exactly like [`send`](Channel::send) — so the
    /// conservation law checked by [`ChannelStats::check`] still holds —
    /// but the caller must treat the payload as undelivered and retry.
    /// Returns the occupancy window of the doomed transfer (its `done`
    /// is when the loss could at the earliest be detected downstream).
    pub fn send_dropped(&mut self, now: u64, msg: &Message) -> Transfer {
        let tr = self.send(now, msg);
        self.stats.dropped_messages += 1;
        tr
    }

    /// Sends `msg` with its data flits corrupted in transit: delivery
    /// timing and byte accounting match [`send`](Channel::send), but the
    /// receiver's integrity check will reject the payload, forcing a
    /// retransmit.
    pub fn send_corrupted(&mut self, now: u64, msg: &Message) -> Transfer {
        let tr = self.send(now, msg);
        self.stats.corrupted_messages += 1;
        tr
    }

    /// Receiver-side integrity gate for a delivered data payload: the
    /// line image reconstructed by the codec's fast decoder is accepted
    /// only if its FNV checksum matches the checksum computed over the
    /// line before serialization. [`send_corrupted`](Channel::send_corrupted)
    /// transfers are exactly those that fail this check — a single-bit
    /// flit flip always perturbs the FNV-1a checksum — which is what
    /// triggers the engine's NACK + retransmit path.
    pub fn payload_intact(
        delivered: &[u8; cmpsim_fpc::LINE_BYTES],
        expected_checksum: u32,
    ) -> bool {
        cmpsim_fpc::integrity::line_checksum(delivered) == expected_checksum
    }

    /// Traffic counters.
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// Remaining busy cycles per direction (`[upstream, downstream]`) as
    /// seen from cycle `now` — the queue depth, in time units, behind
    /// which a new message would wait (the earliest-free lane of the
    /// direction, since that is where it would schedule). Diagnostic
    /// input for the simulator's livelock dump.
    pub fn lane_backlog(&self, now: u64) -> [u64; 2] {
        let backlog = |d: usize| {
            self.lanes_for(d)
                .map(|l| self.next_free[l].saturating_sub(now))
                .min()
                .unwrap_or(0)
        };
        [backlog(0), backlog(1)]
    }

    /// Clears counters (end of warmup) without resetting link occupancy.
    pub fn reset_stats(&mut self) {
        self.stats = ChannelStats::default();
    }

    /// Observed traffic rate over `elapsed_cycles`, in GB/s (EQ 1's
    /// *bandwidth demand* when the link is [`LinkBandwidth::Infinite`]).
    pub fn traffic_gbps(&self, elapsed_cycles: u64) -> f64 {
        if elapsed_cycles == 0 {
            return 0.0;
        }
        self.stats.total_bytes as f64 / elapsed_cycles as f64 * f64::from(self.clock_ghz)
    }

    /// Fraction of the link's aggregate capacity (all configured lanes)
    /// spent busy over `elapsed_cycles`, as a percentage in `[0, 100]`.
    /// Capacity is `width × elapsed`, not a hardcoded 2 — a half-duplex
    /// width-1 link saturates at half the busy cycles a full-duplex one
    /// does. Queueing can push accumulated busy cycles past the elapsed
    /// window on one lane, so the value is clamped. Telemetry input; 0
    /// for an empty window.
    pub fn utilization_pct(&self, elapsed_cycles: u64) -> f64 {
        if elapsed_cycles == 0 {
            return 0.0;
        }
        let capacity = self.next_free.len() as f64 * elapsed_cycles as f64;
        (self.stats.busy_cycles as f64 / capacity * 100.0).clamp(0.0, 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpsim_cache::BlockAddr;

    #[test]
    fn serialization_times() {
        let link = Channel::new(LinkBandwidth::GBps(20), 5);
        assert_eq!(link.duration_cycles(72), 18);
        assert_eq!(link.duration_cycles(8), 2);
        assert_eq!(link.duration_cycles(1), 1, "rounds up");
        let fat = Channel::new(LinkBandwidth::GBps(80), 5);
        assert_eq!(fat.duration_cycles(72), 5, "72*5/80 = 4.5 → 5");
    }

    #[test]
    fn infinite_bandwidth_is_instant_but_counted() {
        let mut link = Channel::new(LinkBandwidth::Infinite, 5);
        let t = link.send(50, &Message::data_response(BlockAddr(0), 8, false));
        assert_eq!(t, Transfer { start: 50, done: 50 });
        assert_eq!(link.stats().total_bytes, 72);
        assert!((link.traffic_gbps(100) - 3.6).abs() < 1e-9);
    }

    #[test]
    fn fifo_queueing() {
        let mut link = Channel::new(LinkBandwidth::GBps(20), 5);
        let a = link.send(0, &Message::data_response(BlockAddr(0), 8, false));
        let b = link.send(0, &Message::data_response(BlockAddr(1), 8, false));
        assert_eq!(a.done, 18);
        assert_eq!(b.start, 18);
        assert_eq!(b.done, 36);
        assert_eq!(b.queue_delay(0), 18);
        assert_eq!(link.stats().queue_delay_cycles, 18);
        assert_eq!(link.stats().busy_cycles, 36);
    }

    #[test]
    fn idle_gaps_are_not_queueing() {
        let mut link = Channel::new(LinkBandwidth::GBps(20), 5);
        link.send(0, &Message::read_request(BlockAddr(0), false));
        let t = link.send(1000, &Message::read_request(BlockAddr(1), false));
        assert_eq!(t.start, 1000);
        assert_eq!(t.queue_delay(1000), 0);
    }

    #[test]
    fn lanes_are_independent() {
        let mut link = Channel::new(LinkBandwidth::GBps(20), 5);
        let down = link.send(0, &Message::data_response(BlockAddr(0), 8, false));
        let up = link.send(0, &Message::writeback(BlockAddr(1), 8));
        assert_eq!(down.start, 0);
        assert_eq!(up.start, 0, "writebacks ride the upstream lane");
        let up2 = link.send(0, &Message::read_request(BlockAddr(2), false));
        assert_eq!(up2.start, 18, "requests queue behind writebacks");
    }

    #[test]
    fn prefetch_bytes_tracked() {
        let mut link = Channel::new(LinkBandwidth::GBps(20), 5);
        link.send(0, &Message::data_response(BlockAddr(0), 4, true));
        link.send(0, &Message::data_response(BlockAddr(1), 4, false));
        assert_eq!(link.stats().prefetch_bytes, 40);
        assert_eq!(link.stats().total_bytes, 80);
        assert_eq!(link.stats().data_bytes, 64);
    }

    #[test]
    fn flit_conservation_holds_and_detects_corruption() {
        let mut link = Channel::new(LinkBandwidth::GBps(20), 5);
        assert_eq!(link.stats().check(), Ok(()));
        link.send(0, &Message::read_request(BlockAddr(0), false));
        link.send(0, &Message::data_response(BlockAddr(0), 3, true));
        link.send(5, &Message::writeback(BlockAddr(1), 8));
        assert_eq!(link.stats().check(), Ok(()));
        link.reset_stats();
        assert_eq!(link.stats().check(), Ok(()));

        // A corrupted counter set is rejected with a description.
        let bad = ChannelStats { total_bytes: 100, data_bytes: 8, messages: 1, ..Default::default() };
        assert!(bad.check().unwrap_err().contains("flit conservation"));
        let bad = ChannelStats {
            total_bytes: 16,
            data_bytes: 8,
            prefetch_bytes: 99,
            messages: 1,
            ..Default::default()
        };
        assert!(bad.check().unwrap_err().contains("prefetch bytes"));
    }

    #[test]
    fn payload_intact_accepts_clean_and_rejects_flipped_deliveries() {
        let mut line = [0u8; cmpsim_fpc::LINE_BYTES];
        for (i, b) in line.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(31);
        }
        let checksum = cmpsim_fpc::integrity::line_checksum(&line);
        assert!(Channel::payload_intact(&line, checksum));
        for bit in [0u16, 7, 63, 255, 511] {
            let mut delivered = line;
            cmpsim_fpc::integrity::flip_bit(&mut delivered, bit);
            assert!(
                !Channel::payload_intact(&delivered, checksum),
                "bit {bit}: single-bit corruption must be rejected"
            );
        }
    }

    #[test]
    fn lane_backlog_reports_queue_depth() {
        let mut link = Channel::new(LinkBandwidth::GBps(20), 5);
        assert_eq!(link.lane_backlog(0), [0, 0]);
        link.send(0, &Message::data_response(BlockAddr(0), 8, false)); // 18 cycles downstream
        link.send(0, &Message::read_request(BlockAddr(1), false)); // 2 cycles upstream
        assert_eq!(link.lane_backlog(0), [2, 18]);
        assert_eq!(link.lane_backlog(10), [0, 8]);
        assert_eq!(link.lane_backlog(100), [0, 0]);
    }

    #[test]
    fn utilization_spans_both_lanes_and_clamps() {
        let mut link = Channel::new(LinkBandwidth::GBps(20), 5);
        assert_eq!(link.utilization_pct(0), 0.0);
        assert_eq!(link.utilization_pct(100), 0.0);
        link.send(0, &Message::data_response(BlockAddr(0), 8, false)); // 18 busy cycles
        assert!((link.utilization_pct(18) - 50.0).abs() < 1e-9, "one of two lanes busy");
        link.send(0, &Message::data_response(BlockAddr(1), 8, false)); // queued: 36 total
        assert_eq!(link.utilization_pct(10), 100.0, "clamped when busy exceeds window");
    }

    #[test]
    fn utilization_capacity_follows_width() {
        // One 18-busy-cycle response over an 18-cycle window: capacity is
        // width × elapsed, so the same traffic reads 100% / 50% / 25% at
        // widths 1 / 2 / 4. (The pre-fix code hardcoded the divisor at 2
        // and would report 50% regardless of width.)
        for (width, expected) in [(1usize, 100.0), (2, 50.0), (4, 25.0)] {
            let mut link = Channel::with_width(LinkBandwidth::GBps(20), 5, width);
            link.send(0, &Message::data_response(BlockAddr(0), 8, false));
            assert_eq!(link.stats().busy_cycles, 18);
            assert!(
                (link.utilization_pct(18) - expected).abs() < 1e-9,
                "width {width}: got {} want {expected}",
                link.utilization_pct(18)
            );
        }
    }

    #[test]
    fn width_one_is_half_duplex() {
        let mut link = Channel::with_width(LinkBandwidth::GBps(20), 5, 1);
        let down = link.send(0, &Message::data_response(BlockAddr(0), 8, false));
        let up = link.send(0, &Message::read_request(BlockAddr(1), false));
        assert_eq!(down.done, 18);
        assert_eq!(up.start, 18, "requests contend with responses on the single lane");
        assert_eq!(link.lane_backlog(0), [20, 20], "one shared lane, one shared backlog");
    }

    #[test]
    fn width_four_gives_each_direction_two_lanes() {
        let mut link = Channel::with_width(LinkBandwidth::GBps(20), 5, 4);
        let a = link.send(0, &Message::data_response(BlockAddr(0), 8, false));
        let b = link.send(0, &Message::data_response(BlockAddr(1), 8, false));
        let c = link.send(0, &Message::data_response(BlockAddr(2), 8, false));
        assert_eq!(a.start, 0);
        assert_eq!(b.start, 0, "second response rides the second downstream lane");
        assert_eq!(c.start, 18, "third queues behind the earliest-free lane");
        assert_eq!(link.lane_backlog(0), [0, 18], "upstream untouched; earliest busy lane wins");
        let up = link.send(0, &Message::writeback(BlockAddr(3), 8));
        assert_eq!(up.start, 0, "upstream lanes are independent of downstream");
    }

    #[test]
    fn default_width_two_matches_historic_lane_assignment() {
        // Channel::new must stay bit-identical to the fixed
        // [upstream, downstream] lanes (the grid-digest golden gate
        // depends on it).
        let mut fixed = Channel::new(LinkBandwidth::GBps(20), 5);
        assert_eq!(fixed.width(), 2);
        let a = fixed.send(0, &Message::data_response(BlockAddr(0), 8, false));
        let b = fixed.send(0, &Message::read_request(BlockAddr(1), false));
        let c = fixed.send(0, &Message::data_response(BlockAddr(2), 8, false));
        assert_eq!((a.start, b.start, c.start), (0, 0, 18));
    }

    #[test]
    fn reset_keeps_occupancy() {
        let mut link = Channel::new(LinkBandwidth::GBps(20), 5);
        link.send(0, &Message::data_response(BlockAddr(0), 8, false));
        link.reset_stats();
        assert_eq!(link.stats().total_bytes, 0);
        let t = link.send(0, &Message::data_response(BlockAddr(1), 8, false));
        assert_eq!(t.start, 18, "stats reset must not free the link early");
    }

    #[test]
    fn faulted_sends_burn_bandwidth_and_keep_conservation() {
        let mut link = Channel::new(LinkBandwidth::GBps(20), 5);
        let good = link.send(0, &Message::data_response(BlockAddr(0), 8, false));
        let dropped = link.send_dropped(0, &Message::read_request(BlockAddr(1), false));
        let corrupt = link.send_corrupted(0, &Message::data_response(BlockAddr(2), 8, false));

        // Timing is identical to an intact send: the doomed message still
        // occupied its lane (the corrupt response queued behind the good
        // one; the dropped request rode the free upstream lane).
        assert_eq!(dropped.start, 0);
        assert_eq!(corrupt.start, good.done);

        let s = link.stats();
        assert_eq!(s.dropped_messages, 1);
        assert_eq!(s.corrupted_messages, 1);
        assert_eq!(s.messages, 3, "faulted messages are still traffic");
        assert_eq!(s.check(), Ok(()), "flit conservation must survive faults");

        link.reset_stats();
        assert_eq!(link.stats().dropped_messages, 0);
        assert_eq!(link.stats().corrupted_messages, 0);
    }
}
