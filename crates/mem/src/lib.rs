//! Off-chip memory controller and DRAM model.
//!
//! The paper's memory interface (§2) is deliberately simple: 4 GB of DRAM
//! with a 400-cycle access time (Table 1), and a *form-preserving* storage
//! scheme for link compression — "each 64-byte cache line is stored in
//! memory using the form — uncompressed or compressed — that the processor
//! sends across the memory interface, with a bit encoded in the ECC to
//! indicate this meta information". Memory capacity is *not* increased by
//! compression (that would be memory compression à la MXT, which the paper
//! explicitly does not model).
//!
//! [`MemoryController`] tracks the stored form of every line that has been
//! written back, charges the fixed DRAM latency, and counts accesses.
//! Queueing happens upstream on the [`cmpsim_link::Channel`]; the
//! per-processor limit of 16 outstanding requests is enforced by the core
//! model's MSHRs.

use cmpsim_cache::BlockAddr;
use cmpsim_fpc::MAX_SEGMENTS;
use std::collections::HashMap;

/// How a line is stored in DRAM (the ECC-encoded meta bit plus the
/// segment count implied by its header).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoredForm {
    /// Segments the stored image occupies on the link (8 = uncompressed).
    pub segments: u8,
}

impl StoredForm {
    /// Uncompressed storage in the shared segment frame.
    pub fn uncompressed() -> Self {
        StoredForm { segments: MAX_SEGMENTS }
    }

    /// Whether the ECC bit marks the line compressed (fewer segments than
    /// the shared 8-segment frame; see [`StoredForm::is_compressed_in`]
    /// for a codec-specific geometry).
    pub fn is_compressed(&self) -> bool {
        self.is_compressed_in(MAX_SEGMENTS)
    }

    /// Whether the form is compressed under a codec whose uncompressed
    /// line occupies `line_segments` segments.
    pub fn is_compressed_in(&self, line_segments: u8) -> bool {
        self.segments < line_segments
    }
}

/// Access counters for the memory controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Read accesses served.
    pub reads: u64,
    /// Writeback accesses absorbed.
    pub writes: u64,
    /// Reads that returned a compressed-form line.
    pub compressed_reads: u64,
    /// Fault-injected stall bursts (refresh storms, ECC scrubs) applied
    /// to responses.
    pub stall_bursts: u64,
    /// Total extra cycles those bursts added.
    pub stall_cycles: u64,
}

/// The off-chip memory controller + DRAM array.
///
/// # Examples
///
/// ```
/// use cmpsim_mem::MemoryController;
/// use cmpsim_cache::BlockAddr;
///
/// let mut mem = MemoryController::new(400);
/// let (done, form) = mem.read(BlockAddr(7), 1_000, || 3);
/// assert_eq!(done, 1_400);
/// assert_eq!(form.segments, 3);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryController {
    latency: u64,
    /// Segments of an uncompressed line under the configured codec: the
    /// bound for sent-form clamping/validation and the threshold for the
    /// ECC compressed bit.
    line_segments: u8,
    stored: HashMap<BlockAddr, StoredForm>,
    stats: MemoryStats,
}

impl MemoryController {
    /// A controller with the given fixed access latency in cycles, using
    /// the shared 8-segment line frame.
    pub fn new(latency: u64) -> Self {
        Self::with_line_segments(latency, MAX_SEGMENTS)
    }

    /// A controller whose sent-form storage validates against a codec
    /// whose uncompressed line occupies `line_segments` segments.
    ///
    /// # Panics
    ///
    /// Panics if `line_segments` is zero.
    pub fn with_line_segments(latency: u64, line_segments: u8) -> Self {
        assert!(line_segments > 0, "a line needs at least one segment");
        MemoryController {
            latency,
            line_segments,
            stored: HashMap::new(),
            stats: MemoryStats::default(),
        }
    }

    /// The fixed DRAM access latency.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Reads `addr` at time `now`. Returns `(completion_cycle, form)`.
    ///
    /// If the line was previously written back, its stored form is
    /// returned verbatim (the ECC bit says whether it is compressed). A
    /// line never seen before is materialized using `fresh_segments`,
    /// which the caller computes from the workload's value model (8 when
    /// link compression is off).
    pub fn read(
        &mut self,
        addr: BlockAddr,
        now: u64,
        fresh_segments: impl FnOnce() -> u8,
    ) -> (u64, StoredForm) {
        let line_segments = self.line_segments;
        let form = *self
            .stored
            .entry(addr)
            .or_insert_with(|| StoredForm { segments: fresh_segments().clamp(1, line_segments) });
        self.stats.reads += 1;
        if form.is_compressed_in(line_segments) {
            self.stats.compressed_reads += 1;
        }
        (now + self.latency, form)
    }

    /// Absorbs a writeback of `addr` stored in the sent form.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is 0 or exceeds the configured line geometry.
    pub fn write(&mut self, addr: BlockAddr, segments: u8) {
        assert!((1..=self.line_segments).contains(&segments), "bad segment count");
        self.stored.insert(addr, StoredForm { segments });
        self.stats.writes += 1;
    }

    /// Applies a fault-injected stall burst to one response: a refresh
    /// storm or ECC scrub delaying the controller. `entropy` (from the
    /// fault plan) picks the burst length deterministically, between a
    /// quarter and one-and-a-quarter DRAM latencies; the caller adds the
    /// returned extra cycles to the response's completion time.
    pub fn stall_burst(&mut self, entropy: u64) -> u64 {
        let extra = self.latency / 4 + 1 + entropy % self.latency.max(1);
        self.stats.stall_bursts += 1;
        self.stats.stall_cycles += extra;
        extra
    }

    /// The stored form of `addr`, if it has ever been touched.
    pub fn stored_form(&self, addr: BlockAddr) -> Option<StoredForm> {
        self.stored.get(&addr).copied()
    }

    /// Access counters.
    pub fn stats(&self) -> &MemoryStats {
        &self.stats
    }

    /// Clears counters (end of warmup), keeping the stored contents.
    pub fn reset_stats(&mut self) {
        self.stats = MemoryStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_latency() {
        let mut mem = MemoryController::new(400);
        let (done, _) = mem.read(BlockAddr(0), 123, || 8);
        assert_eq!(done, 523);
    }

    #[test]
    fn fresh_lines_use_provided_form() {
        let mut mem = MemoryController::new(400);
        let (_, form) = mem.read(BlockAddr(1), 0, || 2);
        assert_eq!(form.segments, 2);
        assert!(form.is_compressed());
        // Second read must reuse the materialized form, not re-ask.
        let (_, form2) = mem.read(BlockAddr(1), 0, || 7);
        assert_eq!(form2.segments, 2);
    }

    #[test]
    fn writeback_form_is_preserved() {
        let mut mem = MemoryController::new(400);
        mem.write(BlockAddr(2), 5);
        let (_, form) = mem.read(BlockAddr(2), 0, || 8);
        assert_eq!(form.segments, 5);
        assert!(form.is_compressed());
        mem.write(BlockAddr(2), 8);
        let (_, form) = mem.read(BlockAddr(2), 0, || 1);
        assert!(!form.is_compressed());
    }

    #[test]
    fn stats_count() {
        let mut mem = MemoryController::new(400);
        mem.read(BlockAddr(0), 0, || 3);
        mem.read(BlockAddr(1), 0, || 8);
        mem.write(BlockAddr(0), 3);
        assert_eq!(mem.stats().reads, 2);
        assert_eq!(mem.stats().writes, 1);
        assert_eq!(mem.stats().compressed_reads, 1);
        mem.reset_stats();
        assert_eq!(mem.stats().reads, 0);
        assert!(mem.stored_form(BlockAddr(0)).is_some(), "contents survive reset");
    }

    #[test]
    fn stall_bursts_are_bounded_and_counted() {
        let mut mem = MemoryController::new(400);
        let mut total = 0;
        for entropy in [0u64, 17, 399, 400, u64::MAX] {
            let extra = mem.stall_burst(entropy);
            assert!(extra >= 400 / 4 + 1, "burst at least a quarter latency: {extra}");
            assert!(extra <= 400 / 4 + 400, "burst bounded: {extra}");
            assert_eq!(extra, mem.stall_burst(entropy) , "same entropy, same burst");
            total += extra * 2;
        }
        assert_eq!(mem.stats().stall_bursts, 10);
        assert_eq!(mem.stats().stall_cycles, total);
        mem.reset_stats();
        assert_eq!(mem.stats().stall_bursts, 0);
        assert_eq!(mem.stats().stall_cycles, 0);
        // A zero-latency controller must still make a positive burst.
        let mut fast = MemoryController::new(0);
        assert!(fast.stall_burst(5) > 0);
    }

    #[test]
    fn fresh_segments_clamped() {
        let mut mem = MemoryController::new(1);
        let (_, form) = mem.read(BlockAddr(9), 0, || 0);
        assert_eq!(form.segments, 1);
    }

    #[test]
    fn codec_geometry_bounds_sent_forms() {
        // A narrower line frame: clamping, the write assert and the
        // compressed-read counter all follow the configured geometry.
        let mut mem = MemoryController::with_line_segments(1, 4);
        let (_, form) = mem.read(BlockAddr(0), 0, || 7);
        assert_eq!(form.segments, 4, "fresh form clamps to the codec frame");
        assert!(!form.is_compressed_in(4));
        mem.write(BlockAddr(1), 3);
        let (_, form) = mem.read(BlockAddr(1), 0, || 4);
        assert!(form.is_compressed_in(4));
        assert_eq!(mem.stats().compressed_reads, 1);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            mem.write(BlockAddr(2), 5);
        }));
        assert!(r.is_err(), "writeback beyond the codec frame must panic");
    }
}
