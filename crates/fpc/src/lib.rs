//! Frequent Pattern Compression (FPC) for 64-byte cache lines.
//!
//! This crate implements the compression scheme used by the paper
//! *"Interactions Between Compression and Prefetching in Chip
//! Multiprocessors"* (Alameldeen & Wood, HPCA 2007) for both the shared L2
//! cache and the off-chip link: **Frequent Pattern Compression**
//! (Alameldeen & Wood, *Frequent Pattern Compression: A Significance-Based
//! Compression Scheme for L2 Caches*, UW-Madison TR-1500).
//!
//! FPC scans a cache line as a sequence of 32-bit words and encodes each
//! word with a 3-bit prefix followed by a variable-length payload. Runs of
//! zero words are collapsed into a single token. The compressed size of a
//! line is then rounded up to a whole number of 8-byte *segments*; the
//! decoupled variable-segment cache and the link both allocate space in
//! segment granularity (1..=8 segments; a line that needs 8 is stored
//! uncompressed).
//!
//! Beyond FPC itself, the crate defines the pluggable [`Codec`] trait the
//! rest of the simulator compresses through, with three implementations:
//! [`Fpc`] (this crate's fast path), [`Bdi`] (base-delta-immediate) and
//! [`Zca`] (zero-content lines). See the [`codec`](self::Codec) docs for
//! the contract and the monomorphized dispatch scheme.
//!
//! # Examples
//!
//! ```
//! use cmpsim_fpc::{compress, LINE_BYTES};
//!
//! // A line of small integers compresses well.
//! let mut line = [0u8; LINE_BYTES];
//! for (i, chunk) in line.chunks_exact_mut(4).enumerate() {
//!     chunk.copy_from_slice(&(i as u32).to_le_bytes());
//! }
//! let compressed = compress(&line);
//! assert!(compressed.segments() < 8, "small integers fit in fewer segments");
//! assert_eq!(compressed.decompress(), line, "FPC is lossless");
//! ```

mod bdi;
mod codec;
pub mod integrity;
mod line;
mod pattern;
mod segment;
mod zca;

pub use bdi::{Bdi, BdiLine};
pub use codec::{Codec, CodecKind, CompressedRepr, Fpc};
pub use line::{compress, compressed_segments, CompressedLine};
pub use pattern::{encode_word, encode_word_sized, Pattern, Token, PREFIX_BITS};
pub use segment::{
    bits_to_segments, segment_bytes_for, LINE_BYTES, MAX_COMPRESSED_SEGMENTS, MAX_SEGMENTS,
    SEGMENT_BITS, SEGMENT_BYTES, WORDS_PER_LINE, WORD_BYTES,
};
pub use zca::{Zca, ZcaLine};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_line_is_one_segment() {
        let line = [0u8; LINE_BYTES];
        let c = compress(&line);
        assert_eq!(c.segments(), 1);
        assert!(c.is_compressible());
        assert_eq!(c.decompress(), line);
    }

    #[test]
    fn random_looking_line_is_incompressible() {
        let mut line = [0u8; LINE_BYTES];
        // High-entropy bytes: no word matches any frequent pattern.
        let mut state = 0x9e3779b97f4a7c15u64;
        for b in line.iter_mut() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *b = (state >> 33) as u8 | 0x80; // keep high bits set
        }
        let c = compress(&line);
        assert_eq!(c.segments(), MAX_SEGMENTS);
        assert!(!c.is_compressible());
        assert_eq!(c.decompress(), line);
    }
}
