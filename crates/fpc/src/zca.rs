//! Zero-content-line codec (ZCA).
//!
//! The cheapest useful codec: detect all-zero lines and store them in a
//! single segment; everything else stays uncompressed. Dusser et al.'s
//! zero-content augmented caches showed null blocks alone capture a large
//! share of the compressible working set in many workloads; as a [`Codec`]
//! it doubles as the lower bound in codec comparisons — any scheme that
//! cannot beat ZCA on a workload is not earning its decompressor.
//!
//! (A hardware ZCA holds zero lines in dedicated tags with no data at
//! all; the VSC's 1-segment minimum allocation is the closest expressible
//! point in the shared segment frame.)

use crate::codec::{Codec, CompressedRepr};
use crate::segment::{LINE_BYTES, MAX_SEGMENTS};

/// A ZCA-compressed line: either known-zero or raw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZcaLine {
    /// All 64 bytes zero.
    Zero,
    /// Anything else, stored raw.
    Uncompressed(Box<[u8; LINE_BYTES]>),
}

impl CompressedRepr for ZcaLine {
    fn segments(&self) -> u8 {
        match self {
            ZcaLine::Zero => 1,
            ZcaLine::Uncompressed(_) => MAX_SEGMENTS,
        }
    }

    /// Fast path: the `Zero` arm is a single `[0u8; LINE_BYTES]` return —
    /// the compiler lowers it to wide zero stores with no per-byte work —
    /// and the raw arm is one 64-byte copy out of the box.
    #[inline]
    fn decompress(&self) -> [u8; LINE_BYTES] {
        match self {
            ZcaLine::Zero => [0u8; LINE_BYTES],
            ZcaLine::Uncompressed(raw) => **raw,
        }
    }

    fn decompress_reference(&self) -> [u8; LINE_BYTES] {
        // The scalar oracle: materialize the zero line byte-by-byte so the
        // fast return above has a genuinely independent implementation to
        // be differential-tested against.
        match self {
            ZcaLine::Zero => {
                let mut out = [0xFFu8; LINE_BYTES];
                for b in out.iter_mut() {
                    *b = 0;
                }
                out
            }
            ZcaLine::Uncompressed(raw) => {
                let mut out = [0u8; LINE_BYTES];
                for (dst, src) in out.iter_mut().zip(raw.iter()) {
                    *dst = *src;
                }
                out
            }
        }
    }
}

/// The zero-content-line codec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Zca;

impl Codec for Zca {
    type Compressed = ZcaLine;

    const NAME: &'static str = "zca";

    fn compress(line: &[u8; LINE_BYTES]) -> ZcaLine {
        if line.iter().all(|&b| b == 0) {
            ZcaLine::Zero
        } else {
            ZcaLine::Uncompressed(Box::new(*line))
        }
    }

    fn segments(line: &[u8; LINE_BYTES]) -> u8 {
        if line.iter().all(|&b| b == 0) {
            1
        } else {
            MAX_SEGMENTS
        }
    }

    fn decompression_latency(_base: u64) -> u64 {
        // Materializing zeros: the fill mux, no pipeline.
        0
    }

    fn compression_latency(_base: u64) -> u64 {
        // A wide NOR over the line.
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_line_is_one_segment() {
        let line = [0u8; LINE_BYTES];
        let c = Zca::compress(&line);
        assert_eq!(c, ZcaLine::Zero);
        assert_eq!(c.segments(), 1);
        assert_eq!(c.decompress(), line);
        assert_eq!(Zca::segments(&line), 1);
    }

    #[test]
    fn one_nonzero_byte_stores_raw() {
        let mut line = [0u8; LINE_BYTES];
        line[63] = 1;
        let c = Zca::compress(&line);
        assert_eq!(c.segments(), MAX_SEGMENTS);
        assert_eq!(c.decompress(), line);
        assert_eq!(Zca::segments(&line), MAX_SEGMENTS);
    }
}
