//! Base-delta-immediate (BDI) compression for 64-byte cache lines.
//!
//! BDI (Pekhimenko et al., *Base-Delta-Immediate Compression: Practical
//! Data Compression for On-Chip Caches*, PACT 2012) observes that the
//! values in a cache line often cluster in a narrow range: the line can
//! then be stored as one full-width *base* plus a short *delta* per
//! element, with a second implicit base of zero (the "immediate" part)
//! covering small values and zeros in the same line.
//!
//! This implementation evaluates the configurations below in order of
//! encoded size and keeps the first that fits. Element width `k` ∈
//! {8, 4, 2} bytes, delta width `d` < `k`; encoded size is
//! `k + (64/k)·d` bytes (the per-element immediate mask lives in the tag
//! metadata, as in the paper, and is not charged against the data space):
//!
//! | class    | size (B) | segments |
//! |----------|----------|----------|
//! | zeros    | 1        | 1        |
//! | (2, 0)   | 2        | 1        |
//! | (4, 0)   | 4        | 1        |
//! | (8, 0)   | 8        | 1        |
//! | (8, 1)   | 16       | 2        |
//! | (4, 1)   | 20       | 3        |
//! | (8, 2)   | 24       | 3        |
//! | (2, 1)   | 34       | 5        |
//! | (4, 2)   | 36       | 5        |
//! | (8, 4)   | 40       | 5        |
//! | raw      | 64       | 8        |
//!
//! The `d = 0` rows are the degenerate "every element equals the base or
//! zero" classes; `(8, 0)` subsumes the paper's repeated-value class.
//!
//! Two deliberate choices versus the PACT'12 hardware description:
//!
//! 1. **The base is the minimum non-immediate element**, not the first
//!    element, and deltas are unsigned `d`-byte offsets from it. A
//!    configuration fits iff `max − min < 2^(8d)` over the non-immediate
//!    elements — the widest usable window, and it makes compressed size
//!    *monotone under zero-filling*: zeroing an element only ever removes
//!    a constraint (the element moves to the zero base), so no feasible
//!    configuration becomes infeasible. First-element basing lacks this
//!    property (zeroing the base element can re-anchor the deltas and
//!    grow the encoding), which would break the cross-codec conformance
//!    kit's zero-fill monotonicity law.
//! 2. An element is immediate iff its value is below `2^(8d)` (an
//!    unsigned `d`-byte offset from the zero base), mirroring choice 1.

use crate::codec::{Codec, CompressedRepr};
use crate::segment::{bits_to_segments, LINE_BYTES, MAX_SEGMENTS};

/// `(element_bytes, delta_bytes)` configurations in increasing encoded
/// size: `k + (64/k)·d` bytes.
const CONFIGS: [(u8, u8); 9] =
    [(2, 0), (4, 0), (8, 0), (8, 1), (4, 1), (8, 2), (2, 1), (4, 2), (8, 4)];

/// Encoded size in bytes of configuration `(k, d)`.
fn config_bytes(k: u8, d: u8) -> u32 {
    u32::from(k) + (LINE_BYTES as u32 / u32::from(k)) * u32::from(d)
}

/// Reads element `i` of the line at `k`-byte granularity (little-endian,
/// zero-extended to u64).
fn element(line: &[u8; LINE_BYTES], k: u8, i: usize) -> u64 {
    let k = usize::from(k);
    let mut v = [0u8; 8];
    v[..k].copy_from_slice(&line[i * k..i * k + k]);
    u64::from_le_bytes(v)
}

/// Whether configuration `(k, d)` can encode the line, and if so the
/// base (minimum non-immediate element; 0 if all elements are immediate).
fn config_fits(line: &[u8; LINE_BYTES], k: u8, d: u8) -> Option<u64> {
    // Offsets are unsigned d-byte values: an element is coverable from a
    // base `b` iff `v - b < 2^(8d)`; the zero base covers `v < 2^(8d)`.
    let window = 1u128 << (8 * u32::from(d));
    let n = LINE_BYTES / usize::from(k);
    let mut min: Option<u64> = None;
    let mut max: Option<u64> = None;
    for i in 0..n {
        let v = element(line, k, i);
        if u128::from(v) < window {
            continue; // immediate: delta from the zero base
        }
        min = Some(min.map_or(v, |m| m.min(v)));
        max = Some(max.map_or(v, |m| m.max(v)));
    }
    match (min, max) {
        (None, None) => Some(0),
        (Some(lo), Some(hi)) if u128::from(hi - lo) < window => Some(lo),
        _ => None,
    }
}

/// The winning configuration for a line: `None` for all-zeros, the raw
/// fallback, or `Some((k, d, base))`.
fn best_config(line: &[u8; LINE_BYTES]) -> Option<(u8, u8, u64)> {
    CONFIGS
        .iter()
        .find_map(|&(k, d)| config_fits(line, k, d).map(|base| (k, d, base)))
}

/// A BDI-compressed line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BdiLine {
    /// All 64 bytes zero: encoded in a single tag-borne byte.
    Zeros,
    /// Base plus per-element unsigned deltas; elements flagged in
    /// `immediate` take their delta from the implicit zero base instead.
    BaseDelta {
        /// Element width in bytes (8, 4, or 2).
        elem_bytes: u8,
        /// Delta width in bytes (< `elem_bytes`; 0 means every element
        /// equals the base or zero exactly).
        delta_bytes: u8,
        /// The stored full-width base (minimum non-immediate element).
        base: u64,
        /// Bit `i` set: element `i`'s delta is an offset from zero.
        immediate: u32,
        /// Per-element unsigned deltas (`64 / elem_bytes` entries).
        deltas: Vec<u64>,
    },
    /// No configuration fit: stored raw.
    Uncompressed(Box<[u8; LINE_BYTES]>),
}

impl BdiLine {
    /// Encoded size in bytes (before segment rounding).
    pub fn size_bytes(&self) -> u32 {
        match self {
            BdiLine::Zeros => 1,
            BdiLine::BaseDelta { elem_bytes, delta_bytes, .. } => {
                config_bytes(*elem_bytes, *delta_bytes)
            }
            BdiLine::Uncompressed(_) => LINE_BYTES as u32,
        }
    }
}

impl CompressedRepr for BdiLine {
    fn segments(&self) -> u8 {
        bits_to_segments(self.size_bytes() * 8)
    }

    fn decompress(&self) -> [u8; LINE_BYTES] {
        match self {
            BdiLine::Zeros => [0u8; LINE_BYTES],
            BdiLine::BaseDelta { elem_bytes, base, immediate, deltas, .. } => {
                let mut out = [0u8; LINE_BYTES];
                // Monomorphize on the element width so each variant's
                // shifts and masks are compile-time constants.
                match elem_bytes {
                    2 => expand_elements::<2>(*base, *immediate, deltas, &mut out),
                    4 => expand_elements::<4>(*base, *immediate, deltas, &mut out),
                    _ => expand_elements::<8>(*base, *immediate, deltas, &mut out),
                }
                out
            }
            BdiLine::Uncompressed(raw) => **raw,
        }
    }

    fn decompress_reference(&self) -> [u8; LINE_BYTES] {
        match self {
            BdiLine::Zeros => [0u8; LINE_BYTES],
            BdiLine::BaseDelta { elem_bytes, base, immediate, deltas, .. } => {
                // The scalar oracle: per-element base select via branch,
                // per-element narrow byte copy.
                let k = usize::from(*elem_bytes);
                let mut out = [0u8; LINE_BYTES];
                for (i, delta) in deltas.iter().enumerate() {
                    let from = if immediate & (1 << i) != 0 { 0 } else { *base };
                    let v = from.wrapping_add(*delta);
                    out[i * k..i * k + k].copy_from_slice(&v.to_le_bytes()[..k]);
                }
                out
            }
            BdiLine::Uncompressed(raw) => **raw,
        }
    }
}

/// SWAR reconstruction of a base-delta payload, monomorphized per element
/// width `K`: for each element the stored base is selected branchlessly
/// against the implicit zero base (an all-ones/all-zeros mask derived from
/// the immediate bit), the unsigned delta is added at full width, and
/// `8 / K` reconstructed elements are packed into each output `u64` so the
/// line goes out as eight 64-bit stores regardless of element width.
fn expand_elements<const K: usize>(
    base: u64,
    immediate: u32,
    deltas: &[u64],
    out: &mut [u8; LINE_BYTES],
) {
    let per_store = 8 / K;
    let elem_mask: u64 = if K == 8 { u64::MAX } else { (1u64 << (8 * K)) - 1 };
    for (g, chunk) in out.chunks_exact_mut(8).enumerate() {
        let mut packed = 0u64;
        for e in 0..per_store {
            let i = g * per_store + e;
            // All-zeros when bit i flags an immediate (zero-base) element,
            // all-ones when the element reconstructs from the stored base.
            let keep = u64::from(immediate >> i & 1).wrapping_sub(1);
            let v = (base & keep).wrapping_add(deltas[i]) & elem_mask;
            packed |= v << (8 * K * e);
        }
        chunk.copy_from_slice(&packed.to_le_bytes());
    }
}

/// The base-delta-immediate codec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bdi;

impl Codec for Bdi {
    type Compressed = BdiLine;

    const NAME: &'static str = "bdi";

    fn compress(line: &[u8; LINE_BYTES]) -> BdiLine {
        if line.iter().all(|&b| b == 0) {
            return BdiLine::Zeros;
        }
        let Some((k, d, base)) = best_config(line) else {
            return BdiLine::Uncompressed(Box::new(*line));
        };
        let window = 1u128 << (8 * u32::from(d));
        let n = LINE_BYTES / usize::from(k);
        let mut immediate = 0u32;
        let mut deltas = Vec::with_capacity(n);
        for i in 0..n {
            let v = element(line, k, i);
            if u128::from(v) < window {
                immediate |= 1 << i;
                deltas.push(v);
            } else {
                deltas.push(v - base);
            }
        }
        BdiLine::BaseDelta { elem_bytes: k, delta_bytes: d, base, immediate, deltas }
    }

    fn segments(line: &[u8; LINE_BYTES]) -> u8 {
        if line.iter().all(|&b| b == 0) {
            return 1;
        }
        match best_config(line) {
            Some((k, d, _)) => bits_to_segments(config_bytes(k, d) * 8),
            None => MAX_SEGMENTS,
        }
    }

    fn decompression_latency(_base: u64) -> u64 {
        // One wide vector add over the deltas (PACT'12 §4: decompression
        // in a single cycle).
        1
    }

    fn compression_latency(_base: u64) -> u64 {
        // All configurations are evaluated in parallel in hardware; two
        // cycles to pick the winner and pack.
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_of_u64s(vals: [u64; 8]) -> [u8; LINE_BYTES] {
        let mut out = [0u8; LINE_BYTES];
        for (i, v) in vals.iter().enumerate() {
            out[i * 8..(i + 1) * 8].copy_from_slice(&v.to_le_bytes());
        }
        out
    }

    fn roundtrip(line: &[u8; LINE_BYTES]) -> u8 {
        let c = Bdi::compress(line);
        assert_eq!(c.decompress(), *line, "lossless");
        assert_eq!(c.segments(), Bdi::segments(line), "fast path agrees");
        c.segments()
    }

    #[test]
    fn zero_line_is_one_segment() {
        assert_eq!(roundtrip(&[0u8; LINE_BYTES]), 1);
        assert_eq!(Bdi::compress(&[0u8; LINE_BYTES]), BdiLine::Zeros);
    }

    #[test]
    fn repeated_value_is_one_segment() {
        // (8, 0): every element equals the base.
        let line = line_of_u64s([0xDEAD_BEEF_1234_5678; 8]);
        assert_eq!(roundtrip(&line), 1);
    }

    #[test]
    fn repeated_value_with_zeros_stays_one_segment() {
        // (8, 0) with the zero base covering the holes.
        let mut vals = [0xDEAD_BEEF_1234_5678u64; 8];
        vals[2] = 0;
        vals[5] = 0;
        assert_eq!(roundtrip(&line_of_u64s(vals)), 1);
    }

    #[test]
    fn clustered_u64s_take_two_segments() {
        // (8, 1): heap pointers within a 256-byte window.
        let base = 0x7FFF_AB00_0000_1000u64;
        let vals = [base, base + 8, base + 16, base + 255, base + 32, base, base + 64, base + 128];
        assert_eq!(roundtrip(&line_of_u64s(vals)), 2);
    }

    #[test]
    fn small_ints_compress_via_narrow_elements() {
        // 16 u32 elements, all small: (4, 1) at worst.
        let mut line = [0u8; LINE_BYTES];
        for (i, chunk) in line.chunks_exact_mut(4).enumerate() {
            chunk.copy_from_slice(&(40 + i as u32).to_le_bytes());
        }
        assert!(roundtrip(&line) <= 3);
    }

    #[test]
    fn high_entropy_is_uncompressed() {
        let mut line = [0u8; LINE_BYTES];
        let mut state = 0x9e3779b97f4a7c15u64;
        for b in line.iter_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *b = (state >> 33) as u8 | 0x80;
        }
        assert_eq!(roundtrip(&line), MAX_SEGMENTS);
        assert!(matches!(Bdi::compress(&line), BdiLine::Uncompressed(_)));
    }

    #[test]
    fn zero_filling_never_grows_the_encoding() {
        // The documented monotonicity law, on a line engineered to
        // re-anchor its base when elements vanish.
        let base = 0x10_0000u64;
        let mut vals = [base, base + 200, base + 100, 3, base + 50, 0, base + 255, base + 7];
        let mut prev = Bdi::segments(&line_of_u64s(vals));
        for i in 0..8 {
            vals[i] = 0;
            let now = roundtrip(&line_of_u64s(vals));
            assert!(now <= prev, "zeroing element {i} grew {prev} -> {now}");
            prev = now;
        }
        assert_eq!(prev, 1);
    }

    #[test]
    fn config_order_is_by_size() {
        let mut sizes: Vec<u32> = CONFIGS.iter().map(|&(k, d)| config_bytes(k, d)).collect();
        let sorted = { let mut s = sizes.clone(); s.sort_unstable(); s };
        assert_eq!(sizes, sorted);
        sizes.dedup();
        assert_eq!(sizes.len(), CONFIGS.len(), "no duplicate sizes");
    }
}
