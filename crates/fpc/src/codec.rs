//! The pluggable cache-line codec abstraction.
//!
//! The paper evaluates exactly one compression scheme (FPC), but nothing
//! in the system model depends on *which* codec sizes a line: the VSC
//! cache, the link and the memory controller only ever see a segment
//! count in `1..=MAX_SEGMENTS`. [`Codec`] captures that contract —
//! compress to a token stream, decompress losslessly, report sizes in
//! segments of the shared [`SEGMENT_BYTES`]/[`MAX_SEGMENTS`] frame, and
//! model per-codec compression/decompression latency. Three
//! implementations ship:
//!
//! - [`Fpc`] — the paper's Frequent Pattern Compression (the existing
//!   [`compress`]/[`compressed_segments`] fast path, unchanged),
//! - [`crate::Bdi`] — base-delta-immediate (Pekhimenko et al.), and
//! - [`crate::Zca`] — a zero-content-line codec that compresses only
//!   all-zero lines.
//!
//! The simulator selects a codec through [`CodecKind`] in its system
//! config. Hot paths do not match on the enum per line: the engine
//! resolves [`CodecKind::segments_fn`] once at construction, yielding the
//! *monomorphized* sizing function of the chosen codec as a plain `fn`
//! pointer, so per-line sizing carries no dispatch branch.

use crate::line::{compress, compressed_segments, CompressedLine};
use crate::segment::{LINE_BYTES, MAX_SEGMENTS};

/// A compressed image of one 64-byte line: knows its storage size and can
/// reconstruct the original bytes exactly.
pub trait CompressedRepr {
    /// Storage size in segments (`1..=MAX_SEGMENTS`; `MAX_SEGMENTS` means
    /// the line is kept uncompressed).
    fn segments(&self) -> u8;

    /// Reconstructs the original line. Lossless: for any codec `C`,
    /// `C::compress(&line).decompress() == line`.
    ///
    /// This is the codec's *fast* decode path (dispatch-table/SWAR); the
    /// conformance kit's decode law pins it byte-for-byte against
    /// [`CompressedRepr::decompress_reference`].
    fn decompress(&self) -> [u8; LINE_BYTES];

    /// Scalar reference decoder: a deliberately independent, per-element
    /// implementation kept in-tree as the differential oracle for
    /// [`CompressedRepr::decompress`] and as the baseline the
    /// codec-throughput gate measures decode speedups against.
    fn decompress_reference(&self) -> [u8; LINE_BYTES];
}

/// A cache-line compression scheme.
///
/// All codecs share the system's segment frame: a 64-byte line, 8-byte
/// segments, 8 segments uncompressed. A codec only decides *how many* of
/// those segments a given line's contents need, plus the latency its
/// (de)compression pipeline costs.
pub trait Codec {
    /// The codec's compressed representation.
    type Compressed: CompressedRepr;

    /// Short name used in reports and artifacts.
    const NAME: &'static str;

    /// Fully compresses a line to its token-stream representation.
    fn compress(line: &[u8; LINE_BYTES]) -> Self::Compressed;

    /// Sizing-only fast path: the segment count `compress` would report,
    /// without materializing the representation. Must agree exactly with
    /// `Self::compress(line).segments()` (the conformance kit checks).
    fn segments(line: &[u8; LINE_BYTES]) -> u8;

    /// Segments an uncompressed line occupies. All shipped codecs use the
    /// shared 8×8-byte frame.
    fn max_segments() -> u8 {
        MAX_SEGMENTS
    }

    /// Decompression pipeline latency in cycles, given the system's
    /// configured FPC-calibrated base penalty (Table 1's 5 cycles).
    fn decompression_latency(base: u64) -> u64;

    /// Compression pipeline latency in cycles, given the same base. Not
    /// yet charged by the engine (compression happens off the critical
    /// path, at fill/writeback), but part of the codec model so adaptive
    /// policies can weigh it.
    fn compression_latency(base: u64) -> u64;
}

/// The paper's Frequent Pattern Compression, routed through the [`Codec`]
/// trait. `compress`/`segments` are the existing crate entry points — the
/// differential oracle test pins this byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fpc;

impl CompressedRepr for CompressedLine {
    fn segments(&self) -> u8 {
        CompressedLine::segments(self)
    }

    fn decompress(&self) -> [u8; LINE_BYTES] {
        CompressedLine::decompress(self)
    }

    fn decompress_reference(&self) -> [u8; LINE_BYTES] {
        CompressedLine::decompress_reference(self)
    }
}

impl Codec for Fpc {
    type Compressed = CompressedLine;

    const NAME: &'static str = "fpc";

    fn compress(line: &[u8; LINE_BYTES]) -> CompressedLine {
        compress(line)
    }

    fn segments(line: &[u8; LINE_BYTES]) -> u8 {
        compressed_segments(line)
    }

    fn decompression_latency(base: u64) -> u64 {
        // The configured penalty *is* the FPC pipeline (Table 1).
        base
    }

    fn compression_latency(base: u64) -> u64 {
        base
    }
}

/// Runtime codec selector for the system config.
///
/// The enum exists only at configuration time; per-line sizing goes
/// through [`CodecKind::segments_fn`], which returns the selected codec's
/// monomorphized `Codec::segments` as a `fn` pointer resolved once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodecKind {
    /// Frequent Pattern Compression (the paper's codec; the default).
    Fpc,
    /// Base-delta-immediate.
    Bdi,
    /// Zero-content lines only.
    Zca,
}

impl CodecKind {
    /// All codecs, in presentation order.
    pub fn all() -> [CodecKind; 3] {
        [CodecKind::Fpc, CodecKind::Bdi, CodecKind::Zca]
    }

    /// Short label used in reports and artifact names.
    pub fn label(self) -> &'static str {
        match self {
            CodecKind::Fpc => Fpc::NAME,
            CodecKind::Bdi => crate::Bdi::NAME,
            CodecKind::Zca => crate::Zca::NAME,
        }
    }

    /// The selected codec's sizing function, as a monomorphized `fn`
    /// pointer: resolve once, then size lines branch-free.
    pub fn segments_fn(self) -> fn(&[u8; LINE_BYTES]) -> u8 {
        match self {
            CodecKind::Fpc => Fpc::segments,
            CodecKind::Bdi => crate::Bdi::segments,
            CodecKind::Zca => crate::Zca::segments,
        }
    }

    /// The selected codec's compress → fast-decode round trip, as one
    /// monomorphized `fn` pointer. The engine and link resolve this once
    /// at construction and use it wherever they must *materialize* the
    /// bytes a compressed line stores or delivers (chaos integrity checks,
    /// invariant probes, corrupted-delivery verification), so those sites
    /// ride the dispatch-table/SWAR decoders with no per-line enum branch.
    /// For every lossless codec this is an identity on the line image.
    pub fn image_fn(self) -> fn(&[u8; LINE_BYTES]) -> [u8; LINE_BYTES] {
        fn image<C: Codec>(line: &[u8; LINE_BYTES]) -> [u8; LINE_BYTES] {
            C::compress(line).decompress()
        }
        match self {
            CodecKind::Fpc => image::<Fpc>,
            CodecKind::Bdi => image::<crate::Bdi>,
            CodecKind::Zca => image::<crate::Zca>,
        }
    }

    /// Segments of an uncompressed line under this codec.
    pub fn max_segments(self) -> u8 {
        match self {
            CodecKind::Fpc => Fpc::max_segments(),
            CodecKind::Bdi => crate::Bdi::max_segments(),
            CodecKind::Zca => crate::Zca::max_segments(),
        }
    }

    /// Decompression latency for this codec given the configured base
    /// penalty.
    pub fn decompression_latency(self, base: u64) -> u64 {
        match self {
            CodecKind::Fpc => Fpc::decompression_latency(base),
            CodecKind::Bdi => crate::Bdi::decompression_latency(base),
            CodecKind::Zca => crate::Zca::decompression_latency(base),
        }
    }

    /// Compression latency for this codec given the configured base
    /// penalty.
    pub fn compression_latency(self, base: u64) -> u64 {
        match self {
            CodecKind::Fpc => Fpc::compression_latency(base),
            CodecKind::Bdi => crate::Bdi::compression_latency(base),
            CodecKind::Zca => crate::Zca::compression_latency(base),
        }
    }
}

impl Default for CodecKind {
    fn default() -> Self {
        CodecKind::Fpc
    }
}

impl std::fmt::Display for CodecKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fpc_trait_routes_to_crate_entry_points() {
        let mut line = [0u8; LINE_BYTES];
        line[0] = 0x7f;
        assert_eq!(Fpc::segments(&line), compressed_segments(&line));
        let c = Fpc::compress(&line);
        assert_eq!(c, compress(&line));
        assert_eq!(CompressedRepr::segments(&c), compressed_segments(&line));
        assert_eq!(CompressedRepr::decompress(&c), line);
    }

    #[test]
    fn kind_resolves_each_codec() {
        let zero = [0u8; LINE_BYTES];
        for kind in CodecKind::all() {
            assert_eq!(kind.max_segments(), MAX_SEGMENTS);
            assert_eq!((kind.segments_fn())(&zero), 1, "{kind}: zero line is minimal");
        }
        assert_eq!(CodecKind::default(), CodecKind::Fpc);
    }

    #[test]
    fn image_fn_is_identity_and_reference_decode_agrees() {
        let mut lines = vec![[0u8; LINE_BYTES], [0x7Fu8; LINE_BYTES]];
        let mut mixed = [0u8; LINE_BYTES];
        for (i, b) in mixed.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(37) | u8::from(i % 3 == 0) * 0x80;
        }
        lines.push(mixed);
        for kind in CodecKind::all() {
            let image = kind.image_fn();
            for line in &lines {
                assert_eq!(image(line), *line, "{kind}: compress→decode must be lossless");
            }
        }
        for line in &lines {
            assert_eq!(Fpc::compress(line).decompress_reference(), *line);
            assert_eq!(crate::Bdi::compress(line).decompress_reference(), *line);
            assert_eq!(crate::Zca::compress(line).decompress_reference(), *line);
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = CodecKind::all().iter().map(|k| k.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 3);
    }

    #[test]
    fn fpc_latency_model_is_the_configured_base() {
        assert_eq!(CodecKind::Fpc.decompression_latency(5), 5);
        assert_eq!(CodecKind::Fpc.compression_latency(5), 5);
    }
}
