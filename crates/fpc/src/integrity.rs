//! Line-integrity primitives for the fault model.
//!
//! A compressed line that suffers a bit flip in storage or transit
//! decompresses to the wrong bytes; the simulator's chaos engine models
//! the *detection* side of that with a per-line checksum over the
//! decompressed image (the role ECC or Touché-style tag signatures play
//! in real designs). FNV-1a is used because single-byte corruption is
//! **provably** detected: the per-byte step — xor the byte into the
//! state, multiply by an odd prime — is a bijection on the state for a
//! fixed byte, so two lines differing in any one byte can never collapse
//! to the same digest (divergence introduced at the differing byte is
//! preserved by every subsequent bijective step). A single-bit flip is a
//! single-byte difference, hence always caught.

use crate::segment::LINE_BYTES;

/// 32-bit FNV-1a over a line's decompressed image.
pub fn line_checksum(line: &[u8; LINE_BYTES]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in line {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Flips one bit of a line in place. `bit` is taken modulo the line's
/// 512 bits, so any entropy source can drive it directly.
pub fn flip_bit(line: &mut [u8; LINE_BYTES], bit: u16) {
    let bit = usize::from(bit) % (LINE_BYTES * 8);
    line[bit / 8] ^= 1 << (bit % 8);
}

/// Whether flipping `bit` of `line` is detected by [`line_checksum`].
///
/// Always true (see the module docs for why), but the simulator calls
/// this rather than assuming so: the detection event in the model is the
/// actual checksum comparison, not an axiom.
pub fn detects_corruption(line: &[u8; LINE_BYTES], bit: u16) -> bool {
    let mut corrupted = *line;
    flip_bit(&mut corrupted, bit);
    line_checksum(&corrupted) != line_checksum(line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line::compress;

    fn patterned_lines() -> Vec<[u8; LINE_BYTES]> {
        let mut lines = vec![[0u8; LINE_BYTES], [0xFF; LINE_BYTES]];
        let mut small = [0u8; LINE_BYTES];
        for (i, chunk) in small.chunks_exact_mut(4).enumerate() {
            chunk.copy_from_slice(&(i as u32).to_le_bytes());
        }
        lines.push(small);
        let mut noisy = [0u8; LINE_BYTES];
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        for b in noisy.iter_mut() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *b = (state >> 56) as u8;
        }
        lines.push(noisy);
        lines
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        for line in patterned_lines() {
            for bit in 0..(LINE_BYTES * 8) as u16 {
                assert!(detects_corruption(&line, bit), "bit {bit} slipped through");
            }
        }
    }

    #[test]
    fn flip_is_an_involution_and_wraps() {
        let mut line = [0x5Au8; LINE_BYTES];
        let orig = line;
        flip_bit(&mut line, 3);
        assert_ne!(line, orig);
        flip_bit(&mut line, 3);
        assert_eq!(line, orig);
        // 512 + k wraps onto bit k.
        flip_bit(&mut line, 512 + 9);
        let mut expect = orig;
        flip_bit(&mut expect, 9);
        assert_eq!(line, expect);
    }

    #[test]
    fn corruption_survives_a_compression_round_trip() {
        // The fault model's premise: a bit flipped in the stored image
        // reaches the consumer through decompression and the checksum of
        // the decompressed bytes exposes it.
        for line in patterned_lines() {
            let crc = line_checksum(&line);
            let mut stored = compress(&line).decompress();
            assert_eq!(line_checksum(&stored), crc, "round trip is lossless");
            flip_bit(&mut stored, 101);
            assert_ne!(line_checksum(&stored), crc, "post-flip digest must differ");
        }
    }

    #[test]
    fn checksum_is_order_sensitive() {
        let mut a = [0u8; LINE_BYTES];
        let mut b = [0u8; LINE_BYTES];
        a[0] = 1;
        b[1] = 1;
        assert_ne!(line_checksum(&a), line_checksum(&b));
    }
}
