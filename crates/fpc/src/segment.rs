//! Segment-granularity size constants and conversions.
//!
//! Both the decoupled variable-segment L2 cache and the off-chip link
//! allocate space for (possibly compressed) cache lines in units of 8-byte
//! segments. An uncompressed 64-byte line occupies [`MAX_SEGMENTS`] (8)
//! segments; a line counts as *compressed* only if it fits in at most
//! [`MAX_COMPRESSED_SEGMENTS`] (7) segments.

/// Bytes in a cache line (fixed at 64 by the paper's Table 1).
pub const LINE_BYTES: usize = 64;

/// Bytes in a 32-bit FPC word.
pub const WORD_BYTES: usize = 4;

/// 32-bit words per cache line.
pub const WORDS_PER_LINE: usize = LINE_BYTES / WORD_BYTES;

/// Bytes per segment (the link transfers one segment per flit).
pub const SEGMENT_BYTES: usize = 8;

/// Bits per segment.
pub const SEGMENT_BITS: u32 = (SEGMENT_BYTES * 8) as u32;

/// Segments occupied by an uncompressed line.
pub const MAX_SEGMENTS: u8 = (LINE_BYTES / SEGMENT_BYTES) as u8;

/// Largest segment count that still counts as "compressed" (paper §2:
/// "compressed blocks use between one and seven segments").
pub const MAX_COMPRESSED_SEGMENTS: u8 = MAX_SEGMENTS - 1;

/// Converts a compressed bit count to a segment count.
///
/// The result is clamped to `1..=MAX_SEGMENTS`: even an all-zero line needs
/// one segment of storage, and a line whose FPC encoding would exceed seven
/// segments is stored uncompressed in eight.
///
/// # Examples
///
/// ```
/// use cmpsim_fpc::bits_to_segments;
/// assert_eq!(bits_to_segments(0), 1);
/// assert_eq!(bits_to_segments(64), 1);
/// assert_eq!(bits_to_segments(65), 2);
/// assert_eq!(bits_to_segments(1000), 8); // too big: stored uncompressed
/// ```
pub fn bits_to_segments(bits: u32) -> u8 {
    let segs = bits.div_ceil(SEGMENT_BITS).max(1);
    if segs > u32::from(MAX_COMPRESSED_SEGMENTS) {
        MAX_SEGMENTS
    } else {
        segs as u8
    }
}

/// Bytes transferred on the link for a line stored in `segments` segments.
///
/// # Panics
///
/// Panics if `segments` is zero or exceeds [`MAX_SEGMENTS`].
pub fn segment_bytes_for(segments: u8) -> usize {
    assert!(
        (1..=MAX_SEGMENTS).contains(&segments),
        "segment count {segments} out of range 1..={MAX_SEGMENTS}"
    );
    usize::from(segments) * SEGMENT_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries() {
        assert_eq!(bits_to_segments(1), 1);
        assert_eq!(bits_to_segments(64), 1);
        assert_eq!(bits_to_segments(128), 2);
        assert_eq!(bits_to_segments(7 * 64), 7);
        assert_eq!(bits_to_segments(7 * 64 + 1), 8);
        assert_eq!(bits_to_segments(u32::MAX), 8);
    }

    #[test]
    fn segment_bytes() {
        assert_eq!(segment_bytes_for(1), 8);
        assert_eq!(segment_bytes_for(8), 64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_segments_panics() {
        segment_bytes_for(0);
    }

    #[test]
    fn constants_are_consistent() {
        assert_eq!(WORDS_PER_LINE, 16);
        assert_eq!(MAX_SEGMENTS, 8);
        assert_eq!(MAX_COMPRESSED_SEGMENTS, 7);
    }
}
