//! Line-level FPC compression: tokenization, sizing and exact decompression.

use crate::pattern::{encode_word_sized, Token, MAX_ZERO_RUN};
use crate::segment::{bits_to_segments, LINE_BYTES, MAX_SEGMENTS, WORDS_PER_LINE};

/// A losslessly compressed 64-byte cache line.
///
/// Holds the token stream plus the pre-computed encoded size. Construct via
/// [`compress`]; recover the original bytes with
/// [`CompressedLine::decompress`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedLine {
    tokens: Vec<Token>,
    bits: u32,
}

impl CompressedLine {
    /// Encoded size in bits (prefixes + payloads, before segment rounding).
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Storage size in 8-byte segments, clamped to `1..=8`.
    ///
    /// A line whose encoding would need all 8 segments is stored
    /// *uncompressed*, so 8 here means "not compressed".
    pub fn segments(&self) -> u8 {
        bits_to_segments(self.bits)
    }

    /// Whether the line benefits from compression (fits in ≤ 7 segments).
    pub fn is_compressible(&self) -> bool {
        self.segments() < MAX_SEGMENTS
    }

    /// The encoded token stream, in line order.
    pub fn tokens(&self) -> &[Token] {
        &self.tokens
    }

    /// Reconstructs the original 64 bytes exactly.
    pub fn decompress(&self) -> [u8; LINE_BYTES] {
        let mut words = [0u32; WORDS_PER_LINE];
        let mut idx = 0;
        for tok in &self.tokens {
            tok.expand_into(&mut words[idx..]);
            idx += tok.word_count();
        }
        debug_assert_eq!(idx, WORDS_PER_LINE, "token stream must cover the line");
        let mut out = [0u8; LINE_BYTES];
        for (chunk, word) in out.chunks_exact_mut(4).zip(words.iter()) {
            chunk.copy_from_slice(&word.to_le_bytes());
        }
        out
    }
}

/// Compresses a 64-byte line with FPC.
///
/// Words are read as little-endian `u32`s; consecutive zero words collapse
/// into zero-run tokens of up to 8 words.
///
/// # Examples
///
/// ```
/// use cmpsim_fpc::compress;
/// let line = [0u8; 64];
/// assert_eq!(compress(&line).segments(), 1);
/// ```
pub fn compress(line: &[u8; LINE_BYTES]) -> CompressedLine {
    let mut words = [0u32; WORDS_PER_LINE];
    for (w, chunk) in words.iter_mut().zip(line.chunks_exact(4)) {
        *w = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
    }

    let n_tokens = token_count(&words);
    let mut tokens = Vec::with_capacity(n_tokens);
    let mut bits = 0u32;
    let mut i = 0;
    while i < WORDS_PER_LINE {
        if words[i] == 0 {
            // Greedy run split: a run longer than MAX_ZERO_RUN emits a
            // full-length token first, matching the sizing fast path.
            let mut count = 1u8;
            while count < MAX_ZERO_RUN
                && i + usize::from(count) < WORDS_PER_LINE
                && words[i + usize::from(count)] == 0
            {
                count += 1;
            }
            let tok = Token::ZeroRun { count };
            bits += tok.bits();
            tokens.push(tok);
            i += usize::from(count);
        } else {
            let (tok, tok_bits) = encode_word_sized(words[i]);
            bits += tok_bits;
            tokens.push(tok);
            i += 1;
        }
    }
    debug_assert_eq!(tokens.len(), n_tokens, "token pre-size must be exact");

    CompressedLine { tokens, bits }
}

/// Exact number of tokens [`compress`] will emit for these words: one per
/// nonzero word plus one per zero-run token (see [`zero_run_tokens`]).
fn token_count(words: &[u32; WORDS_PER_LINE]) -> usize {
    let mut mask = 0u32;
    let mut nonzero = 0usize;
    for (i, &w) in words.iter().enumerate() {
        mask |= u32::from(w == 0) << i;
        nonzero += usize::from(w != 0);
    }
    nonzero + zero_run_tokens(mask) as usize
}

/// Number of `ZeroRun` tokens needed to cover the zero words flagged in
/// the 16-bit `mask` (bit *i* set ⇔ word *i* is zero), without walking the
/// runs: each maximal run of length L costs `ceil(L / 8)` tokens.
///
/// Run *starts* are positions whose predecessor bit is clear, counted with
/// one popcount of `mask & !(mask << 1)`. A second token is only ever
/// needed for a run of ≥ 9 words, and a 16-bit mask fits at most one such
/// run (two would need 9 + 9 zeros plus a separating one-bit = 19 bits),
/// so the correction is a single flag: the doubling chain
/// `c2 = m & m>>1`, `c4 = c2 & c2>>2`, `c8 = c4 & c4>>4` marks positions
/// starting 2/4/8 consecutive zeros, and `c8 & (m >> 8)` is nonzero
/// exactly when some run reaches 9.
fn zero_run_tokens(mask: u32) -> u32 {
    debug_assert!(mask < 1 << WORDS_PER_LINE);
    let runs = (mask & !(mask << 1)).count_ones();
    let c2 = mask & (mask >> 1);
    let c4 = c2 & (c2 >> 2);
    let c8 = c4 & (c4 >> 4);
    runs + u32::from(c8 & (mask >> 8) != 0)
}

/// Encoded bits of one **nonzero** word, from a branchless evaluation of
/// the pattern chain (priority order matches
/// [`crate::pattern::encode_word`]): each class predicate is computed as a
/// 0/1 flag via wrapping-add range checks, then the first match in
/// priority order selects the size arithmetically.
#[inline]
fn nonzero_word_bits(w: u32) -> u32 {
    // Sign-extension tests: w is a sign-extended k-bit value exactly when
    // w + 2^(k-1) (wrapping) fits in k bits.
    let s4 = u32::from(w.wrapping_add(8) < 16);
    let s8 = u32::from(w.wrapping_add(0x80) < 0x100);
    let s16 = u32::from(w.wrapping_add(0x8000) < 0x1_0000);
    let zp16 = u32::from(w & 0xFFFF == 0);
    let hi = w >> 16;
    let lo = w & 0xFFFF;
    // Halfword h sign-extends from a byte when (h + 0x80) mod 2^16 < 0x100.
    let tsb = u32::from(hi.wrapping_add(0x80) & 0xFFFF < 0x100)
        & u32::from(lo.wrapping_add(0x80) & 0xFFFF < 0x100);
    let rb = u32::from(w == (w & 0xFF).wrapping_mul(0x0101_0101));

    // First-match selection: Signed4 (7 bits) > Signed8 (11) >
    // {Signed16, ZeroPadded16, TwoSignedBytes} (all 19) > RepeatedBytes
    // (11) > Uncompressed (35). The three 19-bit classes share a flag
    // since only their size matters here.
    let c19 = s16 | zp16 | tsb;
    let not4 = 1 - s4;
    let pick8 = not4 * s8;
    let rem = not4 * (1 - s8);
    let pick19 = rem * c19;
    let rem = rem * (1 - c19);
    let pick_rb = rem * rb;
    let pick_un = rem * (1 - rb);
    s4 * 7 + pick8 * 11 + pick19 * 19 + pick_rb * 11 + pick_un * 35
}

/// Fast path: compressed size in segments without building a token vector.
///
/// Equivalent to `compress(line).segments()` but allocation-free and
/// branch-light; this is the call on the simulator's hot path (every L2
/// fill and link transfer). The line is read as eight 64-bit loads (two
/// words each); zero words are collected into a 16-bit occupancy mask and
/// charged via [`zero_run_tokens`], while nonzero words are sized by the
/// branchless [`nonzero_word_bits`] — a zero word's contribution from
/// that path is masked off arithmetically rather than with a branch.
pub fn compressed_segments(line: &[u8; LINE_BYTES]) -> u8 {
    let mut bits = 0u32;
    let mut mask = 0u32;
    for (i, chunk) in line.chunks_exact(8).enumerate() {
        let pair = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        let lo = pair as u32;
        let hi = (pair >> 32) as u32;
        mask |= u32::from(lo == 0) << (2 * i);
        mask |= u32::from(hi == 0) << (2 * i + 1);
        bits += nonzero_word_bits(lo) * u32::from(lo != 0);
        bits += nonzero_word_bits(hi) * u32::from(hi != 0);
    }
    bits += zero_run_tokens(mask) * 6;
    bits_to_segments(bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Pattern;

    fn line_of_words(words: &[u32; WORDS_PER_LINE]) -> [u8; LINE_BYTES] {
        let mut line = [0u8; LINE_BYTES];
        for (chunk, w) in line.chunks_exact_mut(4).zip(words.iter()) {
            chunk.copy_from_slice(&w.to_le_bytes());
        }
        line
    }

    #[test]
    fn zero_runs_are_aggregated() {
        let line = [0u8; LINE_BYTES];
        let c = compress(&line);
        // 16 zero words → two ZeroRun tokens of 8.
        assert_eq!(c.tokens().len(), 2);
        assert!(c
            .tokens()
            .iter()
            .all(|t| t.pattern() == Pattern::ZeroRun && t.word_count() == 8));
        assert_eq!(c.bits(), 12);
    }

    #[test]
    fn interleaved_zeros_break_runs() {
        let mut words = [0u32; WORDS_PER_LINE];
        words[5] = 0xDEAD_BEEF;
        let line = line_of_words(&words);
        let c = compress(&line);
        // run(5) + uncompressed + run(8) + run(2)
        assert_eq!(c.tokens().len(), 4);
        assert_eq!(c.decompress(), line);
    }

    #[test]
    fn fast_path_matches_full_compression() {
        let mut words = [0u32; WORDS_PER_LINE];
        for (i, w) in words.iter_mut().enumerate() {
            *w = match i % 5 {
                0 => 0,
                1 => 7,
                2 => 0x1234_0000,
                3 => 0xDEAD_BEEF,
                _ => 0xABAB_ABAB,
            };
        }
        let line = line_of_words(&words);
        assert_eq!(compressed_segments(&line), compress(&line).segments());
    }

    #[test]
    fn pointer_heavy_line_compresses_moderately() {
        // Pointers share high-order bits; as LE u32 pairs, the high word of
        // each 64-bit pointer is small → Signed8/Signed16.
        let mut words = [0u32; WORDS_PER_LINE];
        for (i, pair) in words.chunks_exact_mut(2).enumerate() {
            let ptr: u64 = 0x0000_7F3A_0000_1000 + (i as u64) * 64;
            pair[0] = ptr as u32;
            pair[1] = (ptr >> 32) as u32;
        }
        let line = line_of_words(&words);
        let c = compress(&line);
        assert!(c.is_compressible());
        assert_eq!(c.decompress(), line);
    }

    #[test]
    fn sizes_monotone_under_zeroing() {
        // Zeroing a word never increases the compressed size.
        let mut words = [0xDEAD_BEEFu32; WORDS_PER_LINE];
        let mut prev = compress(&line_of_words(&words)).bits();
        for i in 0..WORDS_PER_LINE {
            words[i] = 0;
            let now = compress(&line_of_words(&words)).bits();
            assert!(now <= prev, "zeroing word {i} increased size");
            prev = now;
        }
    }
}
