//! Line-level FPC compression: tokenization, sizing and exact decompression.

use crate::pattern::{
    encode_word_packed, Token, MAX_ZERO_RUN, PACKED_PAYLOAD_SHIFT, PACKED_PREFIX_MASK,
};
use crate::segment::{bits_to_segments, LINE_BYTES, MAX_SEGMENTS, WORDS_PER_LINE};

/// A losslessly compressed 64-byte cache line.
///
/// Holds the token stream in its [packed wire form](Token::pack) plus the
/// pre-computed encoded size. Construct via [`compress`]; recover the
/// original bytes with [`CompressedLine::decompress`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedLine {
    packed: Vec<u64>,
    bits: u32,
}

/// One entry of the decode dispatch table: expands the payload of a packed
/// token into `out` starting at word index `idx`, returning the next word
/// index. Indexed by the token's 3-bit prefix code, so decode never
/// matches on a pattern enum.
type DecodeHandler = fn(u64, &mut [u8; LINE_BYTES], usize) -> usize;

/// Dispatch table for decoding into a **pre-zeroed** buffer: the zero-run
/// handler is a pure index advance, so a zero-heavy line costs one table
/// call per run and no stores at all.
static DECODE_PREZEROED: [DecodeHandler; 8] = [
    h_zero_skip,
    h_signed4,
    h_signed8,
    h_signed16,
    h_zero_padded16,
    h_two_signed_bytes,
    h_repeated_bytes,
    h_uncompressed,
];

/// Dispatch table for decoding into a caller-owned buffer of unknown
/// content: identical to [`DECODE_PREZEROED`] except the zero-run handler
/// actually stores the zeros.
static DECODE_FILLING: [DecodeHandler; 8] = [
    h_zero_fill,
    h_signed4,
    h_signed8,
    h_signed16,
    h_zero_padded16,
    h_two_signed_bytes,
    h_repeated_bytes,
    h_uncompressed,
];

/// Stores one reconstructed word. The byte range is a compile-time-known
/// 4-byte window, so this compiles to a single 32-bit store.
#[inline(always)]
fn put_word(out: &mut [u8; LINE_BYTES], idx: usize, word: u32) {
    out[idx * 4..idx * 4 + 4].copy_from_slice(&word.to_le_bytes());
}

fn h_zero_skip(payload: u64, _out: &mut [u8; LINE_BYTES], idx: usize) -> usize {
    idx + 1 + (payload & 0x7) as usize
}

fn h_zero_fill(payload: u64, out: &mut [u8; LINE_BYTES], idx: usize) -> usize {
    let count = 1 + (payload & 0x7) as usize;
    // The range is 4-byte aligned within the line; `fill` on a byte slice
    // lowers to wide stores, so an 8-word run is a pair of u64 stores.
    out[idx * 4..(idx + count) * 4].fill(0);
    idx + count
}

fn h_signed4(payload: u64, out: &mut [u8; LINE_BYTES], idx: usize) -> usize {
    // Branchless sign extension: shift the 4-bit payload to the top and
    // arithmetic-shift it back down.
    put_word(out, idx, (((payload as u32) << 28) as i32 >> 28) as u32);
    idx + 1
}

fn h_signed8(payload: u64, out: &mut [u8; LINE_BYTES], idx: usize) -> usize {
    put_word(out, idx, payload as u8 as i8 as i32 as u32);
    idx + 1
}

fn h_signed16(payload: u64, out: &mut [u8; LINE_BYTES], idx: usize) -> usize {
    put_word(out, idx, payload as u16 as i16 as i32 as u32);
    idx + 1
}

fn h_zero_padded16(payload: u64, out: &mut [u8; LINE_BYTES], idx: usize) -> usize {
    put_word(out, idx, (payload as u32) << 16);
    idx + 1
}

fn h_two_signed_bytes(payload: u64, out: &mut [u8; LINE_BYTES], idx: usize) -> usize {
    // Sign-extend both bytes branchlessly and splice the halfwords.
    let high = ((payload >> 8) as u8 as i8 as i32 as u32) << 16;
    let low = (payload as u8 as i8 as i32 as u32) & 0xFFFF;
    put_word(out, idx, high | low);
    idx + 1
}

fn h_repeated_bytes(payload: u64, out: &mut [u8; LINE_BYTES], idx: usize) -> usize {
    put_word(out, idx, (payload as u32 & 0xFF).wrapping_mul(0x0101_0101));
    idx + 1
}

fn h_uncompressed(payload: u64, out: &mut [u8; LINE_BYTES], idx: usize) -> usize {
    put_word(out, idx, payload as u32);
    idx + 1
}

impl CompressedLine {
    /// Encoded size in bits (prefixes + payloads, before segment rounding).
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Storage size in 8-byte segments, clamped to `1..=8`.
    ///
    /// A line whose encoding would need all 8 segments is stored
    /// *uncompressed*, so 8 here means "not compressed".
    pub fn segments(&self) -> u8 {
        bits_to_segments(self.bits)
    }

    /// Whether the line benefits from compression (fits in ≤ 7 segments).
    pub fn is_compressible(&self) -> bool {
        self.segments() < MAX_SEGMENTS
    }

    /// The encoded token stream, in line order, unpacked from the wire
    /// form. Diagnostic path — the decoders below never materialize
    /// [`Token`]s.
    pub fn tokens(&self) -> Vec<Token> {
        self.packed.iter().map(|&p| Token::unpack(p)).collect()
    }

    /// Reconstructs the original 64 bytes exactly.
    ///
    /// Fast path: the output buffer starts zeroed, and each packed token's
    /// 3-bit prefix indexes [`DECODE_PREZEROED`] directly — no pattern
    /// `match`, no intermediate word array, and zero runs (the dominant
    /// token class on sparse lines) reduce to an index advance.
    /// [`CompressedLine::decompress_reference`] is the scalar oracle this
    /// path is differential-tested against.
    pub fn decompress(&self) -> [u8; LINE_BYTES] {
        let mut out = [0u8; LINE_BYTES];
        let mut idx = 0usize;
        for &p in &self.packed {
            idx = DECODE_PREZEROED[(p & PACKED_PREFIX_MASK) as usize](
                p >> PACKED_PAYLOAD_SHIFT,
                &mut out,
                idx,
            );
        }
        debug_assert_eq!(idx, WORDS_PER_LINE, "token stream must cover the line");
        out
    }

    /// Reconstructs the line into a caller-owned buffer whose prior
    /// content is arbitrary (zero runs are stored, via [`DECODE_FILLING`]).
    pub fn decompress_into(&self, out: &mut [u8; LINE_BYTES]) {
        let mut idx = 0usize;
        for &p in &self.packed {
            idx = DECODE_FILLING[(p & PACKED_PREFIX_MASK) as usize](
                p >> PACKED_PAYLOAD_SHIFT,
                out,
                idx,
            );
        }
        debug_assert_eq!(idx, WORDS_PER_LINE, "token stream must cover the line");
    }

    /// Reference decoder: the seed engine's scalar loop, kept in-tree as
    /// the differential oracle for [`CompressedLine::decompress`] and as
    /// the baseline the codec-throughput gate measures decode speedups
    /// against. Unpacks each token, expands through the per-pattern
    /// `match` in [`Token::expand_into`] — zero stores included — then
    /// assembles bytes in a second pass.
    pub fn decompress_reference(&self) -> [u8; LINE_BYTES] {
        let mut words = [0u32; WORDS_PER_LINE];
        let mut idx = 0;
        for &p in &self.packed {
            let tok = Token::unpack(p);
            tok.expand_into(&mut words[idx..]);
            idx += tok.word_count();
        }
        debug_assert_eq!(idx, WORDS_PER_LINE, "token stream must cover the line");
        let mut out = [0u8; LINE_BYTES];
        for (chunk, word) in out.chunks_exact_mut(4).zip(words.iter()) {
            chunk.copy_from_slice(&word.to_le_bytes());
        }
        out
    }
}

/// Compresses a 64-byte line with FPC.
///
/// Words are read as little-endian `u32`s; consecutive zero words collapse
/// into zero-run tokens of up to 8 words.
///
/// # Examples
///
/// ```
/// use cmpsim_fpc::compress;
/// let line = [0u8; 64];
/// assert_eq!(compress(&line).segments(), 1);
/// ```
pub fn compress(line: &[u8; LINE_BYTES]) -> CompressedLine {
    let mut words = [0u32; WORDS_PER_LINE];
    for (w, chunk) in words.iter_mut().zip(line.chunks_exact(4)) {
        *w = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
    }

    let n_tokens = token_count(&words);
    let mut packed = Vec::with_capacity(n_tokens);
    let mut bits = 0u32;
    let mut i = 0;
    while i < WORDS_PER_LINE {
        if words[i] == 0 {
            // Greedy run split: a run longer than MAX_ZERO_RUN emits a
            // full-length token first, matching the sizing fast path.
            let mut count = 1u8;
            while count < MAX_ZERO_RUN
                && i + usize::from(count) < WORDS_PER_LINE
                && words[i + usize::from(count)] == 0
            {
                count += 1;
            }
            packed.push(Token::ZeroRun { count }.pack());
            bits += Token::ZeroRun { count }.bits();
            i += usize::from(count);
        } else {
            let (tok, tok_bits) = encode_word_packed(words[i]);
            bits += tok_bits;
            packed.push(tok);
            i += 1;
        }
    }
    debug_assert_eq!(packed.len(), n_tokens, "token pre-size must be exact");

    CompressedLine { packed, bits }
}

/// Exact number of tokens [`compress`] will emit for these words: one per
/// nonzero word plus one per zero-run token (see [`zero_run_tokens`]).
fn token_count(words: &[u32; WORDS_PER_LINE]) -> usize {
    let mut mask = 0u32;
    let mut nonzero = 0usize;
    for (i, &w) in words.iter().enumerate() {
        mask |= u32::from(w == 0) << i;
        nonzero += usize::from(w != 0);
    }
    nonzero + zero_run_tokens(mask) as usize
}

/// Number of `ZeroRun` tokens needed to cover the zero words flagged in
/// the 16-bit `mask` (bit *i* set ⇔ word *i* is zero), without walking the
/// runs: each maximal run of length L costs `ceil(L / 8)` tokens.
///
/// Run *starts* are positions whose predecessor bit is clear, counted with
/// one popcount of `mask & !(mask << 1)`. A second token is only ever
/// needed for a run of ≥ 9 words, and a 16-bit mask fits at most one such
/// run (two would need 9 + 9 zeros plus a separating one-bit = 19 bits),
/// so the correction is a single flag: the doubling chain
/// `c2 = m & m>>1`, `c4 = c2 & c2>>2`, `c8 = c4 & c4>>4` marks positions
/// starting 2/4/8 consecutive zeros, and `c8 & (m >> 8)` is nonzero
/// exactly when some run reaches 9.
fn zero_run_tokens(mask: u32) -> u32 {
    debug_assert!(mask < 1 << WORDS_PER_LINE);
    let runs = (mask & !(mask << 1)).count_ones();
    let c2 = mask & (mask >> 1);
    let c4 = c2 & (c2 >> 2);
    let c8 = c4 & (c4 >> 4);
    runs + u32::from(c8 & (mask >> 8) != 0)
}

/// Encoded bits of one **nonzero** word, from a branchless evaluation of
/// the pattern chain (priority order matches
/// [`crate::pattern::encode_word`]): each class predicate is computed as a
/// 0/1 flag via wrapping-add range checks, then the first match in
/// priority order selects the size arithmetically.
#[inline]
fn nonzero_word_bits(w: u32) -> u32 {
    // Sign-extension tests: w is a sign-extended k-bit value exactly when
    // w + 2^(k-1) (wrapping) fits in k bits.
    let s4 = u32::from(w.wrapping_add(8) < 16);
    let s8 = u32::from(w.wrapping_add(0x80) < 0x100);
    let s16 = u32::from(w.wrapping_add(0x8000) < 0x1_0000);
    let zp16 = u32::from(w & 0xFFFF == 0);
    let hi = w >> 16;
    let lo = w & 0xFFFF;
    // Halfword h sign-extends from a byte when (h + 0x80) mod 2^16 < 0x100.
    let tsb = u32::from(hi.wrapping_add(0x80) & 0xFFFF < 0x100)
        & u32::from(lo.wrapping_add(0x80) & 0xFFFF < 0x100);
    let rb = u32::from(w == (w & 0xFF).wrapping_mul(0x0101_0101));

    // First-match selection: Signed4 (7 bits) > Signed8 (11) >
    // {Signed16, ZeroPadded16, TwoSignedBytes} (all 19) > RepeatedBytes
    // (11) > Uncompressed (35). The three 19-bit classes share a flag
    // since only their size matters here.
    let c19 = s16 | zp16 | tsb;
    let not4 = 1 - s4;
    let pick8 = not4 * s8;
    let rem = not4 * (1 - s8);
    let pick19 = rem * c19;
    let rem = rem * (1 - c19);
    let pick_rb = rem * rb;
    let pick_un = rem * (1 - rb);
    s4 * 7 + pick8 * 11 + pick19 * 19 + pick_rb * 11 + pick_un * 35
}

/// Fast path: compressed size in segments without building a token vector.
///
/// Equivalent to `compress(line).segments()` but allocation-free and
/// branch-light; this is the call on the simulator's hot path (every L2
/// fill and link transfer). The line is read as eight 64-bit loads (two
/// words each); zero words are collected into a 16-bit occupancy mask and
/// charged via [`zero_run_tokens`], while nonzero words are sized by the
/// branchless [`nonzero_word_bits`] — a zero word's contribution from
/// that path is masked off arithmetically rather than with a branch.
pub fn compressed_segments(line: &[u8; LINE_BYTES]) -> u8 {
    let mut bits = 0u32;
    let mut mask = 0u32;
    for (i, chunk) in line.chunks_exact(8).enumerate() {
        let pair = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        let lo = pair as u32;
        let hi = (pair >> 32) as u32;
        mask |= u32::from(lo == 0) << (2 * i);
        mask |= u32::from(hi == 0) << (2 * i + 1);
        bits += nonzero_word_bits(lo) * u32::from(lo != 0);
        bits += nonzero_word_bits(hi) * u32::from(hi != 0);
    }
    bits += zero_run_tokens(mask) * 6;
    bits_to_segments(bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Pattern;

    fn line_of_words(words: &[u32; WORDS_PER_LINE]) -> [u8; LINE_BYTES] {
        let mut line = [0u8; LINE_BYTES];
        for (chunk, w) in line.chunks_exact_mut(4).zip(words.iter()) {
            chunk.copy_from_slice(&w.to_le_bytes());
        }
        line
    }

    #[test]
    fn zero_runs_are_aggregated() {
        let line = [0u8; LINE_BYTES];
        let c = compress(&line);
        // 16 zero words → two ZeroRun tokens of 8.
        assert_eq!(c.tokens().len(), 2);
        assert!(c
            .tokens()
            .iter()
            .all(|t| t.pattern() == Pattern::ZeroRun && t.word_count() == 8));
        assert_eq!(c.bits(), 12);
    }

    #[test]
    fn interleaved_zeros_break_runs() {
        let mut words = [0u32; WORDS_PER_LINE];
        words[5] = 0xDEAD_BEEF;
        let line = line_of_words(&words);
        let c = compress(&line);
        // run(5) + uncompressed + run(8) + run(2)
        assert_eq!(c.tokens().len(), 4);
        assert_eq!(c.decompress(), line);
    }

    #[test]
    fn fast_path_matches_full_compression() {
        let mut words = [0u32; WORDS_PER_LINE];
        for (i, w) in words.iter_mut().enumerate() {
            *w = match i % 5 {
                0 => 0,
                1 => 7,
                2 => 0x1234_0000,
                3 => 0xDEAD_BEEF,
                _ => 0xABAB_ABAB,
            };
        }
        let line = line_of_words(&words);
        assert_eq!(compressed_segments(&line), compress(&line).segments());
    }

    #[test]
    fn pointer_heavy_line_compresses_moderately() {
        // Pointers share high-order bits; as LE u32 pairs, the high word of
        // each 64-bit pointer is small → Signed8/Signed16.
        let mut words = [0u32; WORDS_PER_LINE];
        for (i, pair) in words.chunks_exact_mut(2).enumerate() {
            let ptr: u64 = 0x0000_7F3A_0000_1000 + (i as u64) * 64;
            pair[0] = ptr as u32;
            pair[1] = (ptr >> 32) as u32;
        }
        let line = line_of_words(&words);
        let c = compress(&line);
        assert!(c.is_compressible());
        assert_eq!(c.decompress(), line);
    }

    #[test]
    fn fast_decode_matches_reference_and_fills_dirty_buffers() {
        let lines: [[u32; WORDS_PER_LINE]; 4] = [
            [0; WORDS_PER_LINE],
            {
                let mut w = [0u32; WORDS_PER_LINE];
                w[5] = 0xDEAD_BEEF;
                w[11] = 7;
                w
            },
            {
                let mut w = [0xABAB_ABABu32; WORDS_PER_LINE];
                w[0] = 0x1234_0000;
                w[15] = (-30_000i32) as u32;
                w
            },
            {
                let mut w = [0u32; WORDS_PER_LINE];
                for (i, x) in w.iter_mut().enumerate() {
                    *x = match i % 6 {
                        0 => 0,
                        1 => (-3i32) as u32,
                        2 => 100,
                        3 => 0x0042_FF85,
                        4 => 0x00FF_00FF,
                        _ => 0xDEAD_BEEF,
                    };
                }
                w
            },
        ];
        for words in &lines {
            let line = line_of_words(words);
            let c = compress(&line);
            assert_eq!(c.decompress(), line, "fast decode must be exact");
            assert_eq!(c.decompress_reference(), line, "reference decode must be exact");
            let mut dirty = [0xA5u8; LINE_BYTES];
            c.decompress_into(&mut dirty);
            assert_eq!(dirty, line, "filling decode must overwrite stale bytes");
        }
    }

    #[test]
    fn sizes_monotone_under_zeroing() {
        // Zeroing a word never increases the compressed size.
        let mut words = [0xDEAD_BEEFu32; WORDS_PER_LINE];
        let mut prev = compress(&line_of_words(&words)).bits();
        for i in 0..WORDS_PER_LINE {
            words[i] = 0;
            let now = compress(&line_of_words(&words)).bits();
            assert!(now <= prev, "zeroing word {i} increased size");
            prev = now;
        }
    }
}
