//! Line-level FPC compression: tokenization, sizing and exact decompression.

use crate::pattern::{encode_word, Token, MAX_ZERO_RUN};
use crate::segment::{bits_to_segments, LINE_BYTES, MAX_SEGMENTS, WORDS_PER_LINE};

/// A losslessly compressed 64-byte cache line.
///
/// Holds the token stream plus the pre-computed encoded size. Construct via
/// [`compress`]; recover the original bytes with
/// [`CompressedLine::decompress`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedLine {
    tokens: Vec<Token>,
    bits: u32,
}

impl CompressedLine {
    /// Encoded size in bits (prefixes + payloads, before segment rounding).
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Storage size in 8-byte segments, clamped to `1..=8`.
    ///
    /// A line whose encoding would need all 8 segments is stored
    /// *uncompressed*, so 8 here means "not compressed".
    pub fn segments(&self) -> u8 {
        bits_to_segments(self.bits)
    }

    /// Whether the line benefits from compression (fits in ≤ 7 segments).
    pub fn is_compressible(&self) -> bool {
        self.segments() < MAX_SEGMENTS
    }

    /// The encoded token stream, in line order.
    pub fn tokens(&self) -> &[Token] {
        &self.tokens
    }

    /// Reconstructs the original 64 bytes exactly.
    pub fn decompress(&self) -> [u8; LINE_BYTES] {
        let mut words = [0u32; WORDS_PER_LINE];
        let mut idx = 0;
        for tok in &self.tokens {
            tok.expand_into(&mut words[idx..]);
            idx += tok.word_count();
        }
        debug_assert_eq!(idx, WORDS_PER_LINE, "token stream must cover the line");
        let mut out = [0u8; LINE_BYTES];
        for (chunk, word) in out.chunks_exact_mut(4).zip(words.iter()) {
            chunk.copy_from_slice(&word.to_le_bytes());
        }
        out
    }
}

/// Compresses a 64-byte line with FPC.
///
/// Words are read as little-endian `u32`s; consecutive zero words collapse
/// into zero-run tokens of up to 8 words.
///
/// # Examples
///
/// ```
/// use cmpsim_fpc::compress;
/// let line = [0u8; 64];
/// assert_eq!(compress(&line).segments(), 1);
/// ```
pub fn compress(line: &[u8; LINE_BYTES]) -> CompressedLine {
    let mut tokens = Vec::with_capacity(WORDS_PER_LINE);
    let mut bits = 0u32;
    let mut zero_run = 0u8;

    let flush_run = |run: &mut u8, tokens: &mut Vec<Token>, bits: &mut u32| {
        while *run > 0 {
            let count = (*run).min(MAX_ZERO_RUN);
            let tok = Token::ZeroRun { count };
            *bits += tok.bits();
            tokens.push(tok);
            *run -= count;
        }
    };

    for chunk in line.chunks_exact(4) {
        let word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        if word == 0 {
            zero_run += 1;
            continue;
        }
        flush_run(&mut zero_run, &mut tokens, &mut bits);
        let tok = encode_word(word);
        bits += tok.bits();
        tokens.push(tok);
    }
    flush_run(&mut zero_run, &mut tokens, &mut bits);

    CompressedLine { tokens, bits }
}

/// Fast path: compressed size in segments without building a token vector.
///
/// Equivalent to `compress(line).segments()` but allocation-free; this is
/// the call on the simulator's hot path (every L2 fill and link transfer).
pub fn compressed_segments(line: &[u8; LINE_BYTES]) -> u8 {
    let mut bits = 0u32;
    let mut zero_run = 0u32;
    for chunk in line.chunks_exact(4) {
        let word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        if word == 0 {
            zero_run += 1;
            continue;
        }
        if zero_run > 0 {
            bits += zero_run.div_ceil(u32::from(MAX_ZERO_RUN)) * 6;
            zero_run = 0;
        }
        bits += encode_word(word).bits();
    }
    if zero_run > 0 {
        bits += zero_run.div_ceil(u32::from(MAX_ZERO_RUN)) * 6;
    }
    bits_to_segments(bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Pattern;

    fn line_of_words(words: &[u32; WORDS_PER_LINE]) -> [u8; LINE_BYTES] {
        let mut line = [0u8; LINE_BYTES];
        for (chunk, w) in line.chunks_exact_mut(4).zip(words.iter()) {
            chunk.copy_from_slice(&w.to_le_bytes());
        }
        line
    }

    #[test]
    fn zero_runs_are_aggregated() {
        let line = [0u8; LINE_BYTES];
        let c = compress(&line);
        // 16 zero words → two ZeroRun tokens of 8.
        assert_eq!(c.tokens().len(), 2);
        assert!(c
            .tokens()
            .iter()
            .all(|t| t.pattern() == Pattern::ZeroRun && t.word_count() == 8));
        assert_eq!(c.bits(), 12);
    }

    #[test]
    fn interleaved_zeros_break_runs() {
        let mut words = [0u32; WORDS_PER_LINE];
        words[5] = 0xDEAD_BEEF;
        let line = line_of_words(&words);
        let c = compress(&line);
        // run(5) + uncompressed + run(8) + run(2)
        assert_eq!(c.tokens().len(), 4);
        assert_eq!(c.decompress(), line);
    }

    #[test]
    fn fast_path_matches_full_compression() {
        let mut words = [0u32; WORDS_PER_LINE];
        for (i, w) in words.iter_mut().enumerate() {
            *w = match i % 5 {
                0 => 0,
                1 => 7,
                2 => 0x1234_0000,
                3 => 0xDEAD_BEEF,
                _ => 0xABAB_ABAB,
            };
        }
        let line = line_of_words(&words);
        assert_eq!(compressed_segments(&line), compress(&line).segments());
    }

    #[test]
    fn pointer_heavy_line_compresses_moderately() {
        // Pointers share high-order bits; as LE u32 pairs, the high word of
        // each 64-bit pointer is small → Signed8/Signed16.
        let mut words = [0u32; WORDS_PER_LINE];
        for (i, pair) in words.chunks_exact_mut(2).enumerate() {
            let ptr: u64 = 0x0000_7F3A_0000_1000 + (i as u64) * 64;
            pair[0] = ptr as u32;
            pair[1] = (ptr >> 32) as u32;
        }
        let line = line_of_words(&words);
        let c = compress(&line);
        assert!(c.is_compressible());
        assert_eq!(c.decompress(), line);
    }

    #[test]
    fn sizes_monotone_under_zeroing() {
        // Zeroing a word never increases the compressed size.
        let mut words = [0xDEAD_BEEFu32; WORDS_PER_LINE];
        let mut prev = compress(&line_of_words(&words)).bits();
        for i in 0..WORDS_PER_LINE {
            words[i] = 0;
            let now = compress(&line_of_words(&words)).bits();
            assert!(now <= prev, "zeroing word {i} increased size");
            prev = now;
        }
    }
}
