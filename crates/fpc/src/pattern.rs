//! Word-level FPC patterns.
//!
//! Each 32-bit word of a cache line is classified against a fixed set of
//! *frequent patterns*, in priority order. A matching word is encoded as a
//! 3-bit prefix plus a short payload; a word matching no pattern is stored
//! verbatim behind the `Uncompressed` prefix. Runs of all-zero words are
//! collapsed into a single `ZeroRun` token at the line level (see
//! [`crate::compress`]).
//!
//! Words are interpreted as **little-endian** `u32`s; this choice is
//! internally consistent between compression and decompression and does not
//! affect compressed sizes for the value distributions the simulator
//! generates.

/// Number of prefix bits identifying the pattern of each token.
pub const PREFIX_BITS: u32 = 3;

/// Maximum number of zero words one `ZeroRun` token can cover
/// (3-bit run-length payload encodes 1..=8).
pub const MAX_ZERO_RUN: u8 = 8;

/// The FPC frequent-pattern vocabulary, in match-priority order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Pattern {
    /// Run of 1..=8 all-zero words (payload: 3-bit run length).
    ZeroRun,
    /// Word is a sign-extended 4-bit value (payload: 4 bits).
    Signed4,
    /// Word is a sign-extended 8-bit value (payload: 8 bits).
    Signed8,
    /// Word is a sign-extended 16-bit value (payload: 16 bits).
    Signed16,
    /// Low halfword is zero; only the high halfword is stored (16 bits).
    ZeroPadded16,
    /// Each halfword is a sign-extended byte (payload: 2 bytes = 16 bits).
    TwoSignedBytes,
    /// All four bytes are equal (payload: 8 bits).
    RepeatedBytes,
    /// No pattern matched; word stored verbatim (payload: 32 bits).
    Uncompressed,
}

impl Pattern {
    /// The 3-bit prefix code identifying this pattern in the packed token
    /// form (declaration order, so `ZeroRun` is 0 and `Uncompressed` is
    /// 7). This is the index into the decode dispatch table.
    pub fn prefix_code(self) -> u8 {
        self as u8
    }

    /// Payload bits used by this pattern (excluding the 3-bit prefix).
    pub fn payload_bits(self) -> u32 {
        match self {
            Pattern::ZeroRun => 3,
            Pattern::Signed4 => 4,
            Pattern::Signed8 | Pattern::RepeatedBytes => 8,
            Pattern::Signed16 | Pattern::ZeroPadded16 | Pattern::TwoSignedBytes => 16,
            Pattern::Uncompressed => 32,
        }
    }

    /// Total encoded bits (prefix + payload).
    pub fn encoded_bits(self) -> u32 {
        PREFIX_BITS + self.payload_bits()
    }
}

/// A single encoded token of a compressed line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Token {
    /// `count` consecutive all-zero words (1..=8).
    ZeroRun {
        /// Number of zero words covered, 1..=8.
        count: u8,
    },
    /// Sign-extended 4-bit value.
    Signed4(i8),
    /// Sign-extended 8-bit value.
    Signed8(i8),
    /// Sign-extended 16-bit value.
    Signed16(i16),
    /// High halfword of a word whose low halfword is zero.
    ZeroPadded16(u16),
    /// The two bytes whose sign-extensions form the two halfwords.
    TwoSignedBytes(i8, i8),
    /// The byte repeated in all four positions.
    RepeatedBytes(u8),
    /// Verbatim word.
    Uncompressed(u32),
}

/// Bit position of the payload inside a [packed token](Token::pack).
pub const PACKED_PAYLOAD_SHIFT: u32 = PREFIX_BITS;

/// Mask extracting the 3-bit prefix code from a packed token.
pub const PACKED_PREFIX_MASK: u64 = (1 << PREFIX_BITS) - 1;

impl Token {
    /// Packs this token into its wire form: the 3-bit
    /// [prefix code](Pattern::prefix_code) in bits `0..3`, the raw
    /// (un-sign-extended) payload in bits `3..35`, upper bits zero.
    ///
    /// The prefix doubles as the index into the decode dispatch table, so
    /// `packed & PACKED_PREFIX_MASK` selects the handler and
    /// `packed >> PACKED_PAYLOAD_SHIFT` is everything the handler needs.
    /// A `ZeroRun` stores `count - 1` (3 bits encode runs of 1..=8);
    /// `TwoSignedBytes` stores the high byte above the low byte.
    pub fn pack(&self) -> u64 {
        let (code, payload) = match *self {
            Token::ZeroRun { count } => {
                debug_assert!((1..=MAX_ZERO_RUN).contains(&count));
                (Pattern::ZeroRun, u64::from(count - 1))
            }
            Token::Signed4(v) => (Pattern::Signed4, u64::from(v as u8 & 0xF)),
            Token::Signed8(v) => (Pattern::Signed8, u64::from(v as u8)),
            Token::Signed16(v) => (Pattern::Signed16, u64::from(v as u16)),
            Token::ZeroPadded16(h) => (Pattern::ZeroPadded16, u64::from(h)),
            Token::TwoSignedBytes(hi, lo) => (
                Pattern::TwoSignedBytes,
                u64::from(hi as u8) << 8 | u64::from(lo as u8),
            ),
            Token::RepeatedBytes(b) => (Pattern::RepeatedBytes, u64::from(b)),
            Token::Uncompressed(w) => (Pattern::Uncompressed, u64::from(w)),
        };
        u64::from(code.prefix_code()) | payload << PACKED_PAYLOAD_SHIFT
    }

    /// Inverse of [`Token::pack`].
    pub fn unpack(packed: u64) -> Token {
        let payload = packed >> PACKED_PAYLOAD_SHIFT;
        match (packed & PACKED_PREFIX_MASK) as u8 {
            0 => Token::ZeroRun { count: (payload & 0x7) as u8 + 1 },
            1 => Token::Signed4((((payload as u8 & 0xF) << 4) as i8) >> 4),
            2 => Token::Signed8(payload as u8 as i8),
            3 => Token::Signed16(payload as u16 as i16),
            4 => Token::ZeroPadded16(payload as u16),
            5 => Token::TwoSignedBytes((payload >> 8) as u8 as i8, payload as u8 as i8),
            6 => Token::RepeatedBytes(payload as u8),
            _ => Token::Uncompressed(payload as u32),
        }
    }

    /// The pattern this token instantiates.
    pub fn pattern(&self) -> Pattern {
        match self {
            Token::ZeroRun { .. } => Pattern::ZeroRun,
            Token::Signed4(_) => Pattern::Signed4,
            Token::Signed8(_) => Pattern::Signed8,
            Token::Signed16(_) => Pattern::Signed16,
            Token::ZeroPadded16(_) => Pattern::ZeroPadded16,
            Token::TwoSignedBytes(_, _) => Pattern::TwoSignedBytes,
            Token::RepeatedBytes(_) => Pattern::RepeatedBytes,
            Token::Uncompressed(_) => Pattern::Uncompressed,
        }
    }

    /// Total encoded size of this token in bits.
    pub fn bits(&self) -> u32 {
        self.pattern().encoded_bits()
    }

    /// Number of source words this token reconstructs.
    pub fn word_count(&self) -> usize {
        match self {
            Token::ZeroRun { count } => usize::from(*count),
            _ => 1,
        }
    }

    /// Reconstructs the source words into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than [`Token::word_count`].
    pub fn expand_into(&self, out: &mut [u32]) {
        match *self {
            Token::ZeroRun { count } => {
                for w in &mut out[..usize::from(count)] {
                    *w = 0;
                }
            }
            Token::Signed4(v) | Token::Signed8(v) => out[0] = v as i32 as u32,
            Token::Signed16(v) => out[0] = v as i32 as u32,
            Token::ZeroPadded16(h) => out[0] = u32::from(h) << 16,
            Token::TwoSignedBytes(hi, lo) => {
                let high = (hi as i16) as u16;
                let low = (lo as i16) as u16;
                out[0] = (u32::from(high) << 16) | u32::from(low);
            }
            Token::RepeatedBytes(b) => out[0] = u32::from_ne_bytes([b, b, b, b]),
            Token::Uncompressed(w) => out[0] = w,
        }
    }
}

/// Classifies and encodes one non-zero-run word.
///
/// Zero words are normally folded into [`Token::ZeroRun`] by the line
/// encoder, but passing a zero word here yields a run of length one, which
/// round-trips correctly.
///
/// # Examples
///
/// ```
/// use cmpsim_fpc::{encode_word, Pattern};
/// assert_eq!(encode_word(7).pattern(), Pattern::Signed4);
/// assert_eq!(encode_word(0xDEADBEEF).pattern(), Pattern::Uncompressed);
/// ```
pub fn encode_word(word: u32) -> Token {
    encode_word_sized(word).0
}

/// Classifies one word and returns the token together with its encoded
/// size in bits, from a single pass over the pattern chain.
///
/// `encode_word(w).bits()` re-derives the size by matching on the token a
/// second time; the line encoder sits on the simulator's hot path and
/// needs both, so this fused form returns the size as a literal from the
/// same branch that classified the word.
pub fn encode_word_sized(word: u32) -> (Token, u32) {
    if word == 0 {
        return (Token::ZeroRun { count: 1 }, PREFIX_BITS + 3);
    }
    let sword = word as i32;
    if (-8..=7).contains(&sword) {
        return (Token::Signed4(sword as i8), PREFIX_BITS + 4);
    }
    if i32::from(sword as i8) == sword {
        return (Token::Signed8(sword as i8), PREFIX_BITS + 8);
    }
    if i32::from(sword as i16) == sword {
        return (Token::Signed16(sword as i16), PREFIX_BITS + 16);
    }
    if word & 0xFFFF == 0 {
        return (Token::ZeroPadded16((word >> 16) as u16), PREFIX_BITS + 16);
    }
    let high = (word >> 16) as u16;
    let low = (word & 0xFFFF) as u16;
    if i16::from(high as i16 as i8) == high as i16 && i16::from(low as i16 as i8) == low as i16 {
        return (Token::TwoSignedBytes(high as i16 as i8, low as i16 as i8), PREFIX_BITS + 16);
    }
    let bytes = word.to_ne_bytes();
    if bytes[0] == bytes[1] && bytes[1] == bytes[2] && bytes[2] == bytes[3] {
        return (Token::RepeatedBytes(bytes[0]), PREFIX_BITS + 8);
    }
    (Token::Uncompressed(word), PREFIX_BITS + 32)
}

/// Classifies one word straight into its [packed form](Token::pack),
/// returning the packed token and its encoded size in bits.
///
/// This is the line encoder's fused front end: classification, payload
/// extraction and wire packing come out of the same branch chain, so
/// `compress` never materializes an intermediate [`Token`].
pub fn encode_word_packed(word: u32) -> (u64, u32) {
    const SHIFT: u32 = PACKED_PAYLOAD_SHIFT;
    if word == 0 {
        // ZeroRun of one word: count - 1 = 0, so the payload is empty.
        return (0, PREFIX_BITS + 3);
    }
    let sword = word as i32;
    if (-8..=7).contains(&sword) {
        return (1 | u64::from(word & 0xF) << SHIFT, PREFIX_BITS + 4);
    }
    if i32::from(sword as i8) == sword {
        return (2 | u64::from(word & 0xFF) << SHIFT, PREFIX_BITS + 8);
    }
    if i32::from(sword as i16) == sword {
        return (3 | u64::from(word & 0xFFFF) << SHIFT, PREFIX_BITS + 16);
    }
    if word & 0xFFFF == 0 {
        return (4 | u64::from(word >> 16) << SHIFT, PREFIX_BITS + 16);
    }
    let high = (word >> 16) as u16;
    let low = (word & 0xFFFF) as u16;
    if i16::from(high as i16 as i8) == high as i16 && i16::from(low as i16 as i8) == low as i16 {
        // Payload layout matches pack(): high byte above low byte.
        return (5 | u64::from(word >> 16 & 0xFF) << (SHIFT + 8) | u64::from(word & 0xFF) << SHIFT, PREFIX_BITS + 16);
    }
    let bytes = word.to_ne_bytes();
    if bytes[0] == bytes[1] && bytes[1] == bytes[2] && bytes[2] == bytes[3] {
        return (6 | u64::from(bytes[0]) << SHIFT, PREFIX_BITS + 8);
    }
    (7 | u64::from(word) << SHIFT, PREFIX_BITS + 32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(word: u32) -> u32 {
        let tok = encode_word(word);
        let mut out = [0u32; 1];
        tok.expand_into(&mut out);
        out[0]
    }

    #[test]
    fn classification() {
        assert_eq!(encode_word(0).pattern(), Pattern::ZeroRun);
        assert_eq!(encode_word(5).pattern(), Pattern::Signed4);
        assert_eq!(encode_word((-8i32) as u32).pattern(), Pattern::Signed4);
        assert_eq!(encode_word(100).pattern(), Pattern::Signed8);
        assert_eq!(encode_word((-100i32) as u32).pattern(), Pattern::Signed8);
        assert_eq!(encode_word(30_000).pattern(), Pattern::Signed16);
        assert_eq!(encode_word((-30_000i32) as u32).pattern(), Pattern::Signed16);
        assert_eq!(encode_word(0x1234_0000).pattern(), Pattern::ZeroPadded16);
        assert_eq!(encode_word(0x0042_FF85).pattern(), Pattern::TwoSignedBytes);
        assert_eq!(encode_word(0xABAB_ABAB).pattern(), Pattern::RepeatedBytes);
        assert_eq!(encode_word(0xDEAD_BEEF).pattern(), Pattern::Uncompressed);
    }

    #[test]
    fn priority_prefers_smaller_encodings() {
        // -1 is representable by many patterns; Signed4 must win.
        assert_eq!(encode_word(u32::MAX).pattern(), Pattern::Signed4);
        // 0x00FF00FF: halves 0x00FF — i16 255 is not a sign-extended i8
        // (i8 max is 127), and bytes are not all equal → uncompressed.
        assert_eq!(encode_word(0x00FF_00FF).pattern(), Pattern::Uncompressed);
    }

    #[test]
    fn all_patterns_roundtrip() {
        for &w in &[
            0u32,
            5,
            (-3i32) as u32,
            100,
            (-100i32) as u32,
            30_000,
            (-30_000i32) as u32,
            0x1234_0000,
            0x0042_FF85,
            0xABAB_ABAB,
            0xDEAD_BEEF,
            u32::MAX,
            1 << 31,
            0x7FFF_FFFF,
        ] {
            assert_eq!(roundtrip(w), w, "word {w:#x} failed to round-trip");
        }
    }

    #[test]
    fn encoded_sizes() {
        assert_eq!(encode_word(0).bits(), 6);
        assert_eq!(encode_word(5).bits(), 7);
        assert_eq!(encode_word(100).bits(), 11);
        assert_eq!(encode_word(30_000).bits(), 19);
        assert_eq!(encode_word(0xDEAD_BEEF).bits(), 35);
    }

    #[test]
    fn sized_encoding_agrees_with_token_bits() {
        // Sweep every pattern class plus boundary words: the fused size
        // must always equal the token's own bits().
        for w in [
            0u32,
            1,
            7,
            8,
            (-8i32) as u32,
            (-9i32) as u32,
            127,
            128,
            (-128i32) as u32,
            (-129i32) as u32,
            32_767,
            32_768,
            (-32_768i32) as u32,
            (-32_769i32) as u32,
            0x0001_0000,
            0x1234_0000,
            0xFFFF_0000,
            0x0042_FF85,
            0x007F_007F,
            0x00FF_00FF,
            0xABAB_ABAB,
            0x8080_8080,
            0xDEAD_BEEF,
            u32::MAX,
            1 << 31,
            0x7FFF_FFFF,
        ] {
            let (tok, bits) = encode_word_sized(w);
            assert_eq!(tok, encode_word(w), "token mismatch for {w:#x}");
            assert_eq!(bits, tok.bits(), "size mismatch for {w:#x}");
        }
    }

    const SWEEP: [u32; 26] = [
        0,
        1,
        7,
        8,
        (-8i32) as u32,
        (-9i32) as u32,
        127,
        128,
        (-128i32) as u32,
        (-129i32) as u32,
        32_767,
        32_768,
        (-32_768i32) as u32,
        (-32_769i32) as u32,
        0x0001_0000,
        0x1234_0000,
        0xFFFF_0000,
        0x0042_FF85,
        0x007F_007F,
        0x00FF_00FF,
        0xABAB_ABAB,
        0x8080_8080,
        0xDEAD_BEEF,
        u32::MAX,
        1 << 31,
        0x7FFF_FFFF,
    ];

    #[test]
    fn pack_unpack_roundtrips_every_pattern() {
        for count in 1..=MAX_ZERO_RUN {
            let tok = Token::ZeroRun { count };
            assert_eq!(Token::unpack(tok.pack()), tok);
        }
        for w in SWEEP {
            let tok = encode_word(w);
            let packed = tok.pack();
            assert_eq!(Token::unpack(packed), tok, "pack/unpack mismatch for {w:#x}");
            assert_eq!(
                (packed & PACKED_PREFIX_MASK) as u8,
                tok.pattern().prefix_code(),
                "prefix code must select the right dispatch slot for {w:#x}"
            );
            assert_eq!(packed >> 35, 0, "payload must fit in bits 3..35 for {w:#x}");
        }
    }

    #[test]
    fn fused_packed_encoder_agrees_with_sized_encoder() {
        for w in SWEEP {
            let (tok, bits) = encode_word_sized(w);
            let (packed, packed_bits) = encode_word_packed(w);
            assert_eq!(packed, tok.pack(), "packed form mismatch for {w:#x}");
            assert_eq!(packed_bits, bits, "size mismatch for {w:#x}");
        }
    }

    #[test]
    fn zero_run_expansion() {
        let tok = Token::ZeroRun { count: 4 };
        let mut out = [u32::MAX; 4];
        tok.expand_into(&mut out);
        assert_eq!(out, [0; 4]);
        assert_eq!(tok.word_count(), 4);
        assert_eq!(tok.bits(), 6);
    }
}
