//! Fuzz equivalence of the word-parallel sizing fast path against the
//! reference encoder: `compressed_segments(line)` must equal
//! `compress(line).segments()` for *every* line.
//!
//! The fast path classifies words branchlessly two-at-a-time and charges
//! zero runs from a 16-bit mask, so the adversarial inputs here target
//! its specific failure modes: words straddling every pattern-class
//! boundary, zero runs of every length and alignment (especially around
//! the 8-word token split), and halfword/byte patterns that distinguish
//! the 19-bit classes from `RepeatedBytes` and `Uncompressed`.

use cmpsim_fpc::{compress, compressed_segments, LINE_BYTES, WORDS_PER_LINE};
use cmpsim_harness::{gen, prop::check, prop_assert_eq};

fn line_of_words(words: &[u32]) -> [u8; LINE_BYTES] {
    assert_eq!(words.len(), WORDS_PER_LINE);
    let mut line = [0u8; LINE_BYTES];
    for (chunk, w) in line.chunks_exact_mut(4).zip(words) {
        chunk.copy_from_slice(&w.to_le_bytes());
    }
    line
}

fn assert_equivalent(line: &[u8; LINE_BYTES]) -> Result<(), String> {
    let reference = compress(line);
    prop_assert_eq!(compressed_segments(line), reference.segments());
    // The decoder is the ground truth that the reference itself is honest —
    // and the dispatch-table fast path, the filling variant and the scalar
    // reference oracle must all reproduce the line exactly.
    prop_assert_eq!(reference.decompress(), *line);
    prop_assert_eq!(reference.decompress_reference(), *line);
    let mut dirty = [0x5Au8; LINE_BYTES];
    reference.decompress_into(&mut dirty);
    prop_assert_eq!(dirty, *line);
    Ok(())
}

/// Words drawn from the boundaries of every FPC pattern class, where the
/// branchless range checks could be off by one.
fn boundary_word() -> gen::Gen<u32> {
    gen::select(vec![
        // ZeroRun / Signed4 boundary.
        0u32,
        1,
        7,
        8,
        (-1i32) as u32,
        (-8i32) as u32,
        (-9i32) as u32,
        // Signed8 edges.
        127,
        128,
        (-128i32) as u32,
        (-129i32) as u32,
        // Signed16 edges.
        32_767,
        32_768,
        (-32_768i32) as u32,
        (-32_769i32) as u32,
        // ZeroPadded16: low halfword exactly zero / almost zero.
        0x0001_0000,
        0x8000_0000,
        0xFFFF_0000,
        0x0001_0001,
        // TwoSignedBytes: each halfword at the sign-extension edge.
        0x007F_007F,
        0x0080_0080,
        0xFF80_FF80,
        0xFF7F_FF7F,
        0x007F_FF80,
        0x00FF_00FF,
        // RepeatedBytes (and near misses).
        0xABAB_ABAB,
        0x8080_8080,
        0xABAB_ABAC,
        // Uncompressed.
        0xDEAD_BEEF,
        0x1234_5678,
    ])
}

/// Lines of pure boundary words: every word sits on a classification edge.
#[test]
fn boundary_lines_agree() {
    check(
        "boundary_lines_agree",
        &gen::vec_exact(boundary_word(), WORDS_PER_LINE),
        |words| assert_equivalent(&line_of_words(words)),
    );
}

/// Zero-heavy lines: most words zero, so runs of every length and
/// alignment occur — including runs ≥ 9 that need a second token.
#[test]
fn zero_run_shapes_agree() {
    let sparse = gen::pair(
        gen::vec_exact(gen::u32s(0..=2), WORDS_PER_LINE),
        boundary_word(),
    )
    .map(|(picks, w)| {
        // pick 0 → zero word (2/3 of positions on average), else the
        // boundary word, yielding dense, varied run structure.
        picks.iter().map(|&p| if p > 0 { 0 } else { w }).collect::<Vec<u32>>()
    });
    check("zero_run_shapes_agree", &sparse, |words| {
        assert_equivalent(&line_of_words(words))
    });
}

/// Every contiguous zero run length and start position, exhaustively.
#[test]
fn exhaustive_single_runs_agree() {
    for start in 0..WORDS_PER_LINE {
        for len in 1..=(WORDS_PER_LINE - start) {
            let mut words = [0xDEAD_BEEFu32; WORDS_PER_LINE];
            for w in &mut words[start..start + len] {
                *w = 0;
            }
            let line = line_of_words(&words);
            assert_eq!(
                compressed_segments(&line),
                compress(&line).segments(),
                "run start {start} len {len}"
            );
        }
    }
}

/// Every 16-bit zero-occupancy mask (all 65 536 run structures) with a
/// fixed nonzero filler: covers every possible run layout the mask-based
/// accounting can see.
#[test]
fn exhaustive_zero_masks_agree() {
    for mask in 0u32..(1 << WORDS_PER_LINE) {
        let mut words = [0x0042_FF85u32; WORDS_PER_LINE];
        for (i, w) in words.iter_mut().enumerate() {
            if mask & (1 << i) != 0 {
                *w = 0;
            }
        }
        let line = line_of_words(&words);
        assert_eq!(
            compressed_segments(&line),
            compress(&line).segments(),
            "mask {mask:#06x}"
        );
    }
}

/// Decode mirror of [`exhaustive_zero_masks_agree`]: for every 16-bit
/// zero-occupancy mask, the dispatch-table fast decoder (whose zero-run
/// handler is a pure index advance over the pre-zeroed buffer) and the
/// filling variant must agree byte-for-byte with the scalar reference
/// decoder — every possible run layout the zero-skip logic can see.
#[test]
fn exhaustive_zero_masks_decode_identically() {
    for mask in 0u32..(1 << WORDS_PER_LINE) {
        let mut words = [0x0042_FF85u32; WORDS_PER_LINE];
        for (i, w) in words.iter_mut().enumerate() {
            if mask & (1 << i) != 0 {
                *w = 0;
            }
        }
        let line = line_of_words(&words);
        let c = compress(&line);
        let reference = c.decompress_reference();
        assert_eq!(reference, line, "mask {mask:#06x}: reference decode");
        assert_eq!(c.decompress(), reference, "mask {mask:#06x}: fast decode");
        let mut dirty = [0xC3u8; LINE_BYTES];
        c.decompress_into(&mut dirty);
        assert_eq!(dirty, reference, "mask {mask:#06x}: filling decode");
    }
}

/// Fully random lines (raw bytes, so words hit every class arbitrarily).
#[test]
fn random_lines_agree() {
    check(
        "random_lines_agree",
        &gen::vec_exact(gen::u8s(..), LINE_BYTES),
        |bytes| {
            let mut line = [0u8; LINE_BYTES];
            line.copy_from_slice(bytes);
            assert_equivalent(&line)
        },
    );
}

/// Random words biased toward small magnitudes (the distribution the
/// simulator's value profiles actually generate).
#[test]
fn small_magnitude_lines_agree() {
    let small = gen::i32s(-300..=300).map(|v| v as u32);
    check(
        "small_magnitude_lines_agree",
        &gen::vec_exact(small, WORDS_PER_LINE),
        |words| assert_equivalent(&line_of_words(words)),
    );
}
