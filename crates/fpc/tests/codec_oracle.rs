//! Differential oracle: the trait-routed FPC must be *the same function*
//! as the crate's historical entry points, byte for byte.
//!
//! The codec refactor routes every call site through [`Codec`], so this
//! test pins the refactor's central claim — `Fpc::compress` /
//! `Fpc::segments` / `CodecKind::Fpc.segments_fn()` are the existing
//! `compress` / `compressed_segments` fast path, not a reimplementation.
//! Any drift here would silently change every simulation result while
//! each path still looked self-consistent.

use cmpsim_fpc::{
    compress, compressed_segments, Codec, CodecKind, CompressedRepr, Fpc, LINE_BYTES,
    WORDS_PER_LINE,
};
use cmpsim_harness::{gen, prop::check, prop_assert, prop_assert_eq};

fn line_of_words(words: &[u32]) -> [u8; LINE_BYTES] {
    assert_eq!(words.len(), WORDS_PER_LINE);
    let mut line = [0u8; LINE_BYTES];
    for (chunk, w) in line.chunks_exact_mut(4).zip(words) {
        chunk.copy_from_slice(&w.to_le_bytes());
    }
    line
}

/// One line, four routes, one answer: inherent fast path, trait sizing,
/// resolved fn pointer, and the full trait compression must all agree
/// (and the representation must be the identical `CompressedLine`).
fn assert_oracle(line: &[u8; LINE_BYTES]) -> Result<(), String> {
    let oracle_repr = compress(line);
    let oracle_segments = compressed_segments(line);

    prop_assert_eq!(Fpc::segments(line), oracle_segments, "trait sizing drifted");
    prop_assert_eq!(
        (CodecKind::Fpc.segments_fn())(line),
        oracle_segments,
        "resolved fn pointer drifted"
    );
    let routed = Fpc::compress(line);
    prop_assert!(routed == oracle_repr, "trait compression built a different representation");
    prop_assert_eq!(CompressedRepr::segments(&routed), oracle_segments);
    prop_assert_eq!(CompressedRepr::decompress(&routed), *line);
    Ok(())
}

/// Random word soup across the full 32-bit space.
#[test]
fn random_lines_agree_with_oracle() {
    check(
        "random_lines_agree_with_oracle",
        &gen::vec_exact(gen::u32s(..), WORDS_PER_LINE),
        |words| assert_oracle(&line_of_words(words)),
    );
}

/// Pattern-class boundary words, where a reimplementation would diverge
/// first.
#[test]
fn boundary_lines_agree_with_oracle() {
    let edges = gen::select(vec![
        0u32,
        7,
        8,
        (-8i32) as u32,
        (-9i32) as u32,
        127,
        128,
        (-129i32) as u32,
        32_767,
        32_768,
        (-32_769i32) as u32,
        0xFFFF_0000,
        0x0080_0080,
        0xABAB_ABAB,
        0xDEAD_BEEF,
    ]);
    check(
        "boundary_lines_agree_with_oracle",
        &gen::vec_exact(edges, WORDS_PER_LINE),
        |words| assert_oracle(&line_of_words(words)),
    );
}

/// Every 16-bit zero-occupancy mask with a fixed nonzero filler — the
/// same exhaustive sweep that validates the word-parallel fast path, now
/// re-run through the trait routes.
#[test]
fn exhaustive_zero_masks_agree_with_oracle() {
    for mask in 0u32..(1 << WORDS_PER_LINE) {
        let mut words = [0x0042_FF85u32; WORDS_PER_LINE];
        for (i, w) in words.iter_mut().enumerate() {
            if mask & (1 << i) != 0 {
                *w = 0;
            }
        }
        let line = line_of_words(&words);
        let oracle = compressed_segments(&line);
        assert_eq!(Fpc::segments(&line), oracle, "mask {mask:#06x}");
        assert_eq!((CodecKind::Fpc.segments_fn())(&line), oracle, "mask {mask:#06x}");
        assert_eq!(Fpc::compress(&line), compress(&line), "mask {mask:#06x}");
    }
}
