//! Exhaustive FPC boundary tests: every pattern class at its minimum and
//! maximum representable 32-bit word values, exact round-trips, and
//! encoded sizes matching the paper's Table 2 segment sizing.

use cmpsim_fpc::{
    bits_to_segments, compress, encode_word, Pattern, LINE_BYTES, MAX_SEGMENTS, WORDS_PER_LINE,
};

fn roundtrip(word: u32) -> u32 {
    let tok = encode_word(word);
    let mut out = [0u32; 1];
    tok.expand_into(&mut out);
    out[0]
}

/// Builds a 64-byte line from 16 little-endian words.
fn line_of(words: [u32; WORDS_PER_LINE]) -> [u8; LINE_BYTES] {
    let mut line = [0u8; LINE_BYTES];
    for (chunk, w) in line.chunks_exact_mut(4).zip(words) {
        chunk.copy_from_slice(&w.to_le_bytes());
    }
    line
}

/// Every 3-bit prefix class at its boundary values. Each case lists the
/// word, the pattern that must win the priority match, and the total
/// encoded bits (3-bit prefix + payload) per the Table 2 sizing.
const BOUNDARY_CASES: &[(u32, Pattern, u32)] = &[
    // ZeroRun: the single zero word (runs are a line-level concern).
    (0x0000_0000, Pattern::ZeroRun, 6),
    // Signed4: sign-extended 4-bit values, -8..=7 (excluding zero).
    (0x0000_0001, Pattern::Signed4, 7),
    (0x0000_0007, Pattern::Signed4, 7), // max
    (0xFFFF_FFFF, Pattern::Signed4, 7), // -1: many classes match, smallest wins
    (0xFFFF_FFF8, Pattern::Signed4, 7), // -8: min
    // Signed8: sign-extended 8-bit values just outside the 4-bit range.
    (0x0000_0008, Pattern::Signed8, 11), // min positive
    (0x0000_007F, Pattern::Signed8, 11), // i8::MAX
    (0xFFFF_FFF7, Pattern::Signed8, 11), // -9: min negative magnitude
    (0xFFFF_FF80, Pattern::Signed8, 11), // i8::MIN; also TwoSignedBytes-shaped
    // Signed16: sign-extended 16-bit values just outside the 8-bit range.
    (0x0000_0080, Pattern::Signed16, 19), // 128: min positive
    (0x0000_7FFF, Pattern::Signed16, 19), // i16::MAX
    (0xFFFF_FF7F, Pattern::Signed16, 19), // -129
    (0xFFFF_8000, Pattern::Signed16, 19), // i16::MIN; low halfword is zero too
    // ZeroPadded16: low halfword zero, high halfword arbitrary.
    (0x0001_0000, Pattern::ZeroPadded16, 19), // min beyond Signed16
    (0x7FFF_0000, Pattern::ZeroPadded16, 19),
    (0x8000_0000, Pattern::ZeroPadded16, 19), // i32::MIN
    (0xFFFE_0000, Pattern::ZeroPadded16, 19), // negative, too wide for Signed16
    // TwoSignedBytes: each halfword a sign-extended byte, low nonzero.
    (0x007F_007F, Pattern::TwoSignedBytes, 19), // both at i8::MAX
    (0xFF80_FF80, Pattern::TwoSignedBytes, 19), // both at i8::MIN
    (0x0001_FFFF, Pattern::TwoSignedBytes, 19), // mixed signs
    (0xFFFF_0001, Pattern::TwoSignedBytes, 19),
    // RepeatedBytes: all four bytes equal, matching nothing smaller.
    (0xABAB_ABAB, Pattern::RepeatedBytes, 11),
    (0x0101_0101, Pattern::RepeatedBytes, 11), // smallest nonzero repeated byte
    (0x7F7F_7F7F, Pattern::RepeatedBytes, 11),
    (0x8080_8080, Pattern::RepeatedBytes, 11),
    (0xFEFE_FEFE, Pattern::RepeatedBytes, 11), // 0xFF would be Signed4's -1
    // Uncompressed: no pattern matches; stored verbatim.
    (0xDEAD_BEEF, Pattern::Uncompressed, 35),
    (0x00FF_00FF, Pattern::Uncompressed, 35), // halfwords not sign-extended bytes
    (0x7FFF_FFFF, Pattern::Uncompressed, 35), // i32::MAX
    (0x0001_0080, Pattern::Uncompressed, 35), // low halfword just past i8::MAX
    (0x8000_0001, Pattern::Uncompressed, 35), // i32::MIN + 1
];

#[test]
fn every_pattern_class_at_its_boundaries() {
    for &(word, pattern, bits) in BOUNDARY_CASES {
        let tok = encode_word(word);
        assert_eq!(tok.pattern(), pattern, "wrong class for {word:#010x}");
        assert_eq!(tok.bits(), bits, "wrong encoded size for {word:#010x}");
        assert_eq!(tok.bits(), pattern.encoded_bits());
        assert_eq!(roundtrip(word), word, "{word:#010x} failed to round-trip");
    }
}

/// The priority order prefers smaller encodings when classes overlap.
#[test]
fn overlapping_classes_pick_the_smallest_encoding() {
    // -1 fits Signed4/8/16, TwoSignedBytes and RepeatedBytes.
    assert_eq!(encode_word(u32::MAX).pattern(), Pattern::Signed4);
    // -128 fits Signed8 (11 bits) and TwoSignedBytes (19 bits).
    assert_eq!(encode_word(0xFFFF_FF80).pattern(), Pattern::Signed8);
    // i16::MIN fits Signed16 and ZeroPadded16 (both 19 bits): priority
    // order, not size, breaks the tie.
    assert_eq!(encode_word(0xFFFF_8000).pattern(), Pattern::Signed16);
}

/// Line-level sizes: compressed bits are the sum of token sizes and the
/// segment count is the Table 2 rounding of that sum.
#[test]
fn line_bits_sum_tokens_and_round_to_segments() {
    // All-zero line: two max-length zero runs (8 words each) = 12 bits,
    // clamped up to one 64-bit segment.
    let zeros = compress(&line_of([0; WORDS_PER_LINE]));
    assert_eq!(zeros.bits(), 12);
    assert_eq!(zeros.segments(), 1);
    assert!(zeros.is_compressible());

    // All-uncompressed line: 16 × 35 = 560 bits > 7 segments, so the
    // line is stored uncompressed in all 8.
    let hard = compress(&line_of([0xDEAD_BEEF; WORDS_PER_LINE]));
    assert_eq!(hard.bits(), 16 * 35);
    assert_eq!(hard.segments(), MAX_SEGMENTS);
    assert!(!hard.is_compressible());

    // Exactly at the compressible ceiling: 12 uncompressed words + 4
    // Signed4 words = 12×35 + 4×7 = 448 bits = exactly 7 segments.
    let mut words = [0xDEAD_BEEFu32; WORDS_PER_LINE];
    for w in words.iter_mut().take(4) {
        *w = 5;
    }
    let edge = compress(&line_of(words));
    assert_eq!(edge.bits(), 448);
    assert_eq!(edge.segments(), 7);
    assert!(edge.is_compressible());

    // One bit class heavier (a Signed8 instead of a Signed4 adds 4
    // bits): 452 bits spills past 7 segments → stored uncompressed.
    words[3] = 100;
    let over = compress(&line_of(words));
    assert_eq!(over.bits(), 452);
    assert_eq!(over.segments(), MAX_SEGMENTS);
    assert!(!over.is_compressible());
}

/// `bits_to_segments` boundaries at every segment edge.
#[test]
fn segment_rounding_at_every_edge() {
    assert_eq!(bits_to_segments(0), 1); // floor: even empty lines take a segment
    for seg in 1u32..=7 {
        assert_eq!(bits_to_segments(seg * 64), seg as u8, "exact {seg}-segment fit");
        let spill = if seg < 7 { seg as u8 + 1 } else { MAX_SEGMENTS };
        assert_eq!(bits_to_segments(seg * 64 + 1), spill, "one bit past {seg} segments");
    }
    assert_eq!(bits_to_segments(8 * 64), MAX_SEGMENTS);
    assert_eq!(bits_to_segments(u32::MAX), MAX_SEGMENTS);
}

/// Every boundary word embedded in a full line round-trips through the
/// line codec, not just the word codec.
#[test]
fn boundary_words_roundtrip_at_line_level() {
    for &(word, _, _) in BOUNDARY_CASES {
        let mut words = [0u32; WORDS_PER_LINE];
        // Surround with values from other classes so runs can't hide bugs.
        for (i, w) in words.iter_mut().enumerate() {
            *w = match i % 4 {
                0 => word,
                1 => 0,
                2 => 0xDEAD_BEEF,
                _ => 5,
            };
        }
        let line = line_of(words);
        let c = compress(&line);
        assert_eq!(c.decompress(), line, "line with {word:#010x} failed round-trip");
        assert_eq!(c.segments(), bits_to_segments(c.bits()));
    }
}
