//! Property-based tests for the FPC codec.

use cmpsim_fpc::{compress, compressed_segments, encode_word, LINE_BYTES, MAX_SEGMENTS};
use proptest::prelude::*;

proptest! {
    /// Every line round-trips exactly through compress/decompress.
    #[test]
    fn roundtrip_exact(line in prop::array::uniform32(any::<u8>()).prop_flat_map(|a| {
        prop::array::uniform32(any::<u8>()).prop_map(move |b| {
            let mut line = [0u8; LINE_BYTES];
            line[..32].copy_from_slice(&a);
            line[32..].copy_from_slice(&b);
            line
        })
    })) {
        let c = compress(&line);
        prop_assert_eq!(c.decompress(), line);
        prop_assert!((1..=MAX_SEGMENTS).contains(&c.segments()));
        prop_assert_eq!(compressed_segments(&line), c.segments());
    }

    /// Single-word encode/expand round-trips for arbitrary words.
    #[test]
    fn word_roundtrip(word in any::<u32>()) {
        let tok = encode_word(word);
        let mut out = [0u32; 8];
        tok.expand_into(&mut out);
        prop_assert_eq!(out[0], word);
    }

    /// Compressed bit count is bounded by the uncompressed encoding
    /// (16 words x 35 bits) and segments never exceed 8.
    #[test]
    fn size_bounds(line in prop::collection::vec(any::<u8>(), LINE_BYTES)) {
        let arr: [u8; LINE_BYTES] = line.try_into().unwrap();
        let c = compress(&arr);
        prop_assert!(c.bits() <= 16 * 35);
        prop_assert!(c.segments() <= MAX_SEGMENTS);
        prop_assert!(c.segments() >= 1);
    }

    /// Lines built only from highly-compressible words stay small.
    #[test]
    fn compressible_lines_are_small(vals in prop::collection::vec(-8i32..=7, 16)) {
        let mut arr = [0u8; LINE_BYTES];
        for (chunk, v) in arr.chunks_exact_mut(4).zip(vals.iter()) {
            chunk.copy_from_slice(&(*v as u32).to_le_bytes());
        }
        let c = compress(&arr);
        // 16 x 7 bits = 112 bits -> 2 segments max.
        prop_assert!(c.segments() <= 2);
    }
}
