//! Property-based tests for the FPC codec (cmpsim-harness port of the
//! original proptest suite — same invariants, hermetic runner).

use cmpsim_fpc::{compress, compressed_segments, encode_word, LINE_BYTES, MAX_SEGMENTS};
use cmpsim_harness::{gen, prop::check, prop_assert, prop_assert_eq};

fn line_from(bytes: &[u8]) -> [u8; LINE_BYTES] {
    let mut line = [0u8; LINE_BYTES];
    line.copy_from_slice(bytes);
    line
}

/// Every line round-trips exactly through compress/decompress.
#[test]
fn roundtrip_exact() {
    check("roundtrip_exact", &gen::vec_exact(gen::u8s(..), LINE_BYTES), |bytes| {
        let line = line_from(bytes);
        let c = compress(&line);
        prop_assert_eq!(c.decompress(), line);
        prop_assert!((1..=MAX_SEGMENTS).contains(&c.segments()));
        prop_assert_eq!(compressed_segments(&line), c.segments());
        Ok(())
    });
}

/// Single-word encode/expand round-trips for arbitrary words.
#[test]
fn word_roundtrip() {
    check("word_roundtrip", &gen::u32s(..), |&word| {
        let tok = encode_word(word);
        let mut out = [0u32; 8];
        tok.expand_into(&mut out);
        prop_assert_eq!(out[0], word);
        Ok(())
    });
}

/// Compressed bit count is bounded by the uncompressed encoding
/// (16 words x 35 bits) and segments never exceed 8.
#[test]
fn size_bounds() {
    check("size_bounds", &gen::vec_exact(gen::u8s(..), LINE_BYTES), |bytes| {
        let c = compress(&line_from(bytes));
        prop_assert!(c.bits() <= 16 * 35);
        prop_assert!(c.segments() <= MAX_SEGMENTS);
        prop_assert!(c.segments() >= 1);
        Ok(())
    });
}

/// Lines built only from highly-compressible words stay small.
#[test]
fn compressible_lines_are_small() {
    check(
        "compressible_lines_are_small",
        &gen::vec_exact(gen::i32s(-8..=7), 16),
        |vals| {
            let mut arr = [0u8; LINE_BYTES];
            for (chunk, v) in arr.chunks_exact_mut(4).zip(vals.iter()) {
                chunk.copy_from_slice(&(*v as u32).to_le_bytes());
            }
            let c = compress(&arr);
            // 16 x 7 bits = 112 bits -> 2 segments max.
            prop_assert!(c.segments() <= 2);
            Ok(())
        },
    );
}
