//! Block addressing primitives.

use cmpsim_fpc::LINE_BYTES;

/// A cache-line address, stored as the *line number* (byte address divided
/// by the 64-byte line size).
///
/// Using line numbers everywhere removes a whole class of alignment bugs:
/// a `BlockAddr` is always line-aligned by construction.
///
/// # Examples
///
/// ```
/// use cmpsim_cache::BlockAddr;
/// let a = BlockAddr::from_byte_addr(0x1234);
/// assert_eq!(a.byte_addr(), 0x1200);
/// assert_eq!(a, BlockAddr::from_byte_addr(0x123F));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr(pub u64);

impl BlockAddr {
    /// The line containing byte address `addr`.
    pub fn from_byte_addr(addr: u64) -> Self {
        BlockAddr(addr / LINE_BYTES as u64)
    }

    /// The first byte address of this line.
    pub fn byte_addr(self) -> u64 {
        self.0 * LINE_BYTES as u64
    }

    /// The line `n` lines after this one (wrapping, for stride arithmetic).
    pub fn offset(self, n: i64) -> Self {
        BlockAddr(self.0.wrapping_add(n as u64))
    }

    /// Set index for a cache with `num_sets` sets (power of two).
    pub fn set_index(self, num_sets: usize) -> usize {
        debug_assert!(num_sets.is_power_of_two(), "set count must be a power of two");
        (self.0 as usize) & (num_sets - 1)
    }

    /// Bank index for a banked cache, taken from the least-significant
    /// block address bits (paper §2: the L2 is "interleaved using the least
    /// significant block address bits").
    pub fn bank_index(self, num_banks: usize) -> usize {
        debug_assert!(num_banks.is_power_of_two(), "bank count must be a power of two");
        (self.0 as usize) & (num_banks - 1)
    }
}

impl std::fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#x}", self.byte_addr())
    }
}

/// The kind of memory access a core performs, as seen by the caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Instruction fetch (L1I path).
    IFetch,
    /// Data load (L1D path).
    Load,
    /// Data store (L1D path, write-allocate).
    Store,
}

impl AccessKind {
    /// Whether this access requires write permission (MSI `Modified`).
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Store)
    }

    /// Whether this access goes to the instruction cache.
    pub fn is_ifetch(self) -> bool {
        matches!(self, AccessKind::IFetch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_alignment() {
        assert_eq!(BlockAddr::from_byte_addr(0).0, 0);
        assert_eq!(BlockAddr::from_byte_addr(63).0, 0);
        assert_eq!(BlockAddr::from_byte_addr(64).0, 1);
        assert_eq!(BlockAddr::from_byte_addr(0x1000).byte_addr(), 0x1000);
    }

    #[test]
    fn set_and_bank_indexing() {
        let a = BlockAddr(0b1011_0101);
        assert_eq!(a.set_index(16), 0b0101);
        assert_eq!(a.bank_index(8), 0b101);
    }

    #[test]
    fn offsets() {
        let a = BlockAddr(100);
        assert_eq!(a.offset(3), BlockAddr(103));
        assert_eq!(a.offset(-3), BlockAddr(97));
    }

    #[test]
    fn access_kinds() {
        assert!(AccessKind::Store.is_write());
        assert!(!AccessKind::Load.is_write());
        assert!(AccessKind::IFetch.is_ifetch());
    }
}
