//! Adaptive cache-compression policy (Alameldeen & Wood, ISCA 2004).
//!
//! The paper (§2) reuses the ISCA 2004 policy: a single global saturating
//! counter weighs the *benefit* of compression (misses avoided because
//! extra lines fit) against its *cost* (decompression latency added to
//! hits that would have occurred anyway). Newly (re)written L2 lines are
//! stored compressed only while the counter is positive.
//!
//! Events, derived from the VSC's LRU-stack depths:
//!
//! - **Benefit** (`+= miss penalty`): a hit at stack depth ≥ the
//!   uncompressed associativity (the line is resident only because
//!   compression packed extra lines in), or a miss matching a dataless
//!   victim tag (compression *could* have kept the line).
//! - **Cost** (`-= decompression penalty`): a hit to a *compressed* line
//!   at depth < the uncompressed associativity (the line would have hit
//!   anyway, and we paid the decompression latency for nothing).
//!
//! The paper observes that for its workloads the policy "always adapted to
//! compress all compressible cache lines"; our tests exercise both
//! directions anyway.

/// What to do with a compressible line at fill time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompressionDecision {
    /// Store the line compressed (if FPC helps).
    Compress,
    /// Store the line uncompressed regardless of compressibility.
    StoreUncompressed,
}

/// The global cost/benefit saturating counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompressionPolicy {
    counter: i64,
    limit: i64,
    benefit: i64,
    cost: i64,
}

impl CompressionPolicy {
    /// Creates the policy with the paper's latencies: benefit = the L2
    /// miss penalty it avoids (memory latency), cost = the decompression
    /// penalty (5 cycles).
    pub fn new(miss_penalty: u32, decompression_penalty: u32) -> Self {
        let benefit = i64::from(miss_penalty);
        // Saturate far enough out that transient phases don't flip the
        // decision on every event (ISCA'04 uses a large saturating range).
        let limit = benefit * 4096;
        CompressionPolicy {
            counter: limit,
            limit,
            benefit,
            cost: i64::from(decompression_penalty),
        }
    }

    /// Current decision for newly written lines.
    pub fn decision(&self) -> CompressionDecision {
        if self.counter > 0 {
            CompressionDecision::Compress
        } else {
            CompressionDecision::StoreUncompressed
        }
    }

    /// Raw counter value (for stats/debugging).
    pub fn counter(&self) -> i64 {
        self.counter
    }

    /// Records a compression benefit: a miss avoided (or avoidable).
    pub fn record_benefit(&mut self) {
        self.counter = (self.counter + self.benefit).min(self.limit);
    }

    /// Records a compression cost: a needless decompression penalty.
    pub fn record_cost(&mut self) {
        self.counter = (self.counter - self.cost).max(-self.limit);
    }

    /// Classifies an L2 data hit and updates the counter.
    ///
    /// `lru_depth` is the 0-based depth among data-resident lines;
    /// `uncompressed_ways` is the associativity the cache would have
    /// without compression (4 for the paper's VSC).
    pub fn on_hit(&mut self, lru_depth: usize, compressed: bool, uncompressed_ways: usize) {
        if lru_depth >= uncompressed_ways {
            self.record_benefit();
        } else if compressed {
            self.record_cost();
        }
    }

    /// Classifies a miss that matched a dataless victim tag.
    pub fn on_victim_tag_miss(&mut self) {
        self.record_benefit();
    }
}

impl Default for CompressionPolicy {
    /// Paper latencies: 400-cycle memory penalty, 5-cycle decompression.
    fn default() -> Self {
        Self::new(400, 5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_compressing() {
        let p = CompressionPolicy::default();
        assert_eq!(p.decision(), CompressionDecision::Compress);
    }

    #[test]
    fn sustained_costs_disable_compression() {
        let mut p = CompressionPolicy::new(400, 5);
        // All hits land in the top of the stack on compressed lines:
        // pure cost, no benefit.
        for _ in 0..(400 * 4096 / 5 + 1) {
            p.on_hit(0, true, 4);
        }
        assert_eq!(p.decision(), CompressionDecision::StoreUncompressed);
    }

    #[test]
    fn benefits_recover_quickly() {
        let mut p = CompressionPolicy::new(400, 5);
        for _ in 0..(400 * 4096 / 5 + 1) {
            p.on_hit(0, true, 4);
        }
        assert_eq!(p.decision(), CompressionDecision::StoreUncompressed);
        // One avoided miss outweighs 80 decompressions.
        for _ in 0..(4096 / 2) {
            p.on_hit(5, true, 4);
        }
        assert_eq!(p.decision(), CompressionDecision::Compress);
    }

    #[test]
    fn deep_hits_count_as_benefit_even_uncompressed() {
        // A deep hit means compression of *other* lines kept this one in.
        let mut p = CompressionPolicy::new(400, 5);
        let before = p.counter();
        p.on_hit(4, false, 4);
        assert_eq!(p.counter(), before, "already saturated at the limit");
        p.record_cost();
        let dipped = p.counter();
        p.on_hit(4, false, 4);
        assert!(p.counter() > dipped);
    }

    #[test]
    fn shallow_uncompressed_hits_are_neutral() {
        let mut p = CompressionPolicy::new(400, 5);
        p.record_cost();
        let before = p.counter();
        p.on_hit(1, false, 4);
        assert_eq!(p.counter(), before);
    }

    #[test]
    fn victim_tag_miss_is_benefit() {
        let mut p = CompressionPolicy::new(400, 5);
        for _ in 0..10 {
            p.record_cost();
        }
        let before = p.counter();
        p.on_victim_tag_miss();
        assert_eq!(p.counter(), (before + 400).min(400 * 4096));
        assert!(p.counter() > before);
    }

    #[test]
    fn saturation_bounds() {
        let mut p = CompressionPolicy::new(10, 10);
        for _ in 0..100_000 {
            p.record_benefit();
        }
        assert_eq!(p.counter(), 10 * 4096);
        for _ in 0..200_000 {
            p.record_cost();
        }
        assert_eq!(p.counter(), -10 * 4096);
    }
}
