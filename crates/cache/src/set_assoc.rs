//! Classic set-associative cache with true-LRU replacement.
//!
//! Used for the private L1 caches (64 KB, 4-way) and the uncompressed
//! baseline L2 (4 MB, 8-way). Lines carry caller-supplied metadata `M`
//! (MSI state for L1s, a directory entry for the L2) plus the per-tag
//! *prefetch bit* the adaptive prefetcher reads (§3).

use crate::block::BlockAddr;
use crate::stats::CacheStats;

/// Static geometry of a [`SetAssocCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SetAssocConfig {
    /// Number of sets; must be a power of two.
    pub sets: usize,
    /// Associativity (lines per set).
    pub ways: usize,
}

impl SetAssocConfig {
    /// Geometry for a cache of `bytes` capacity with 64-byte lines.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly into power-of-two
    /// sets.
    pub fn with_capacity(bytes: usize, ways: usize) -> Self {
        let lines = bytes / cmpsim_fpc::LINE_BYTES;
        assert!(ways > 0 && lines % ways == 0, "capacity/ways mismatch");
        let sets = lines / ways;
        assert!(sets.is_power_of_two(), "set count {sets} must be a power of two");
        SetAssocConfig { sets, ways }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * cmpsim_fpc::LINE_BYTES
    }
}

#[derive(Debug, Clone)]
struct Line<M> {
    addr: BlockAddr,
    valid: bool,
    prefetch: bool,
    lru: u64,
    meta: M,
}

/// A line evicted by [`SetAssocCache::fill`], handed back to the
/// controller for writebacks / coherence recalls / adaptive-prefetch
/// accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvictedLine<M> {
    /// Address of the evicted line.
    pub addr: BlockAddr,
    /// Whether the line was brought in by a prefetch and never referenced.
    pub was_unused_prefetch: bool,
    /// Caller metadata (coherence state etc.).
    pub meta: M,
}

/// Classic LRU set-associative cache.
///
/// # Examples
///
/// ```
/// use cmpsim_cache::{SetAssocCache, SetAssocConfig, BlockAddr};
///
/// let mut c: SetAssocCache<()> = SetAssocCache::new(SetAssocConfig { sets: 2, ways: 2 });
/// let a = BlockAddr(0);
/// assert!(c.lookup(a).is_none());
/// c.fill(a, false, ());
/// assert!(c.lookup(a).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache<M> {
    cfg: SetAssocConfig,
    sets: Vec<Vec<Line<M>>>,
    clock: u64,
    stats: CacheStats,
}

impl<M: Clone> SetAssocCache<M> {
    /// Creates an empty cache with the given geometry.
    pub fn new(cfg: SetAssocConfig) -> Self {
        let sets = (0..cfg.sets).map(|_| Vec::with_capacity(cfg.ways)).collect();
        SetAssocCache { cfg, sets, clock: 0, stats: CacheStats::default() }
    }

    /// The cache geometry.
    pub fn config(&self) -> SetAssocConfig {
        self.cfg
    }

    /// Structural statistics accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics (e.g. at the end of warmup).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn set_of(&self, addr: BlockAddr) -> usize {
        addr.set_index(self.cfg.sets)
    }

    /// Looks up `addr`, updating LRU on hit. Returns the line's metadata.
    ///
    /// The returned tuple is `(meta, was_prefetched_first_touch)`: the
    /// second element is true exactly when this access is the *first*
    /// demand reference to a prefetched line (the prefetch bit is cleared
    /// as a side effect, per §3).
    pub fn lookup(&mut self, addr: BlockAddr) -> Option<(&mut M, bool)> {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_of(addr);
        let line = self.sets[set].iter_mut().find(|l| l.valid && l.addr == addr)?;
        line.lru = clock;
        let first_touch = line.prefetch;
        line.prefetch = false;
        self.stats.hits += 1;
        if first_touch {
            self.stats.prefetch_first_touches += 1;
        }
        Some((&mut line.meta, first_touch))
    }

    /// Peeks at `addr` without updating LRU or the prefetch bit.
    pub fn peek(&self, addr: BlockAddr) -> Option<&M> {
        let set = self.set_of(addr);
        self.sets[set].iter().find(|l| l.valid && l.addr == addr).map(|l| &l.meta)
    }

    /// Mutable peek without LRU/prefetch-bit side effects.
    pub fn peek_mut(&mut self, addr: BlockAddr) -> Option<&mut M> {
        let set = self.set_of(addr);
        self.sets[set]
            .iter_mut()
            .find(|l| l.valid && l.addr == addr)
            .map(|l| &mut l.meta)
    }

    /// Whether `addr` is present (valid) without any side effects.
    pub fn contains(&self, addr: BlockAddr) -> bool {
        self.peek(addr).is_some()
    }

    /// Whether the line at `addr` still has its prefetch bit set.
    pub fn prefetch_bit(&self, addr: BlockAddr) -> Option<bool> {
        let set = self.set_of(addr);
        self.sets[set].iter().find(|l| l.valid && l.addr == addr).map(|l| l.prefetch)
    }

    /// Inserts `addr`, evicting the LRU line if the set is full.
    ///
    /// `prefetched` sets the line's prefetch bit (a demand fill clears it).
    /// Filling an already-present line refreshes LRU and metadata instead
    /// of duplicating the tag.
    pub fn fill(&mut self, addr: BlockAddr, prefetched: bool, meta: M) -> Option<EvictedLine<M>> {
        self.clock += 1;
        let clock = self.clock;
        let ways = self.cfg.ways;
        let set_idx = self.set_of(addr);
        let set = &mut self.sets[set_idx];

        if let Some(line) = set.iter_mut().find(|l| l.valid && l.addr == addr) {
            line.lru = clock;
            line.meta = meta;
            // A demand fill of a prefetched-but-in-flight line keeps the
            // stronger (demand) classification.
            line.prefetch &= prefetched;
            return None;
        }

        self.stats.fills += 1;
        if prefetched {
            self.stats.prefetch_fills += 1;
        }

        let new_line =
            Line { addr, valid: true, prefetch: prefetched, lru: clock, meta };

        if let Some(slot) = set.iter_mut().find(|l| !l.valid) {
            *slot = new_line;
            return None;
        }
        if set.len() < ways {
            set.push(new_line);
            return None;
        }
        let victim_idx = set
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| l.lru)
            .map(|(i, _)| i)
            .expect("full set has a victim");
        let victim = std::mem::replace(&mut set[victim_idx], new_line);
        self.stats.evictions += 1;
        if victim.prefetch {
            self.stats.unused_prefetch_evictions += 1;
        }
        Some(EvictedLine {
            addr: victim.addr,
            was_unused_prefetch: victim.prefetch,
            meta: victim.meta,
        })
    }

    /// Removes `addr` (coherence invalidation / inclusion recall),
    /// returning its metadata.
    pub fn invalidate(&mut self, addr: BlockAddr) -> Option<M> {
        let set = self.set_of(addr);
        let line = self.sets[set].iter_mut().find(|l| l.valid && l.addr == addr)?;
        line.valid = false;
        self.stats.invalidations += 1;
        Some(line.meta.clone())
    }

    /// Number of valid lines currently resident.
    pub fn valid_lines(&self) -> usize {
        self.sets.iter().flatten().filter(|l| l.valid).count()
    }

    /// Calls `f` for every valid line (for assertions and debugging).
    pub fn for_each_valid(&self, mut f: impl FnMut(BlockAddr, &M)) {
        for set in &self.sets {
            for l in set {
                if l.valid {
                    f(l.addr, &l.meta);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache<u32> {
        SetAssocCache::new(SetAssocConfig { sets: 2, ways: 2 })
    }

    // Addresses mapping to set 0 of a 2-set cache: even line numbers.
    const A: BlockAddr = BlockAddr(0);
    const B: BlockAddr = BlockAddr(2);
    const C: BlockAddr = BlockAddr(4);

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(c.lookup(A).is_none());
        assert!(c.fill(A, false, 7).is_none());
        let (meta, first) = c.lookup(A).expect("hit");
        assert_eq!(*meta, 7);
        assert!(!first);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        c.fill(A, false, 0);
        c.fill(B, false, 1);
        c.lookup(A); // A is now MRU
        let victim = c.fill(C, false, 2).expect("set overflows");
        assert_eq!(victim.addr, B);
        assert!(c.contains(A) && c.contains(C) && !c.contains(B));
    }

    #[test]
    fn prefetch_bit_lifecycle() {
        let mut c = tiny();
        c.fill(A, true, 0);
        assert_eq!(c.prefetch_bit(A), Some(true));
        let (_, first) = c.lookup(A).unwrap();
        assert!(first, "first touch of prefetched line");
        assert_eq!(c.prefetch_bit(A), Some(false));
        let (_, again) = c.lookup(A).unwrap();
        assert!(!again);
    }

    #[test]
    fn unused_prefetch_detected_at_eviction() {
        let mut c = tiny();
        c.fill(A, true, 0);
        c.fill(B, false, 1);
        c.lookup(B);
        let victim = c.fill(C, false, 2).unwrap();
        assert_eq!(victim.addr, A);
        assert!(victim.was_unused_prefetch);
        assert_eq!(c.stats().unused_prefetch_evictions, 1);
    }

    #[test]
    fn refill_updates_in_place() {
        let mut c = tiny();
        c.fill(A, false, 1);
        assert!(c.fill(A, false, 9).is_none());
        assert_eq!(*c.peek(A).unwrap(), 9);
        assert_eq!(c.valid_lines(), 1);
    }

    #[test]
    fn invalidate_frees_slot() {
        let mut c = tiny();
        c.fill(A, false, 1);
        c.fill(B, false, 2);
        assert_eq!(c.invalidate(A), Some(1));
        assert!(!c.contains(A));
        // Refill should reuse the invalid slot without evicting B.
        assert!(c.fill(C, false, 3).is_none());
        assert!(c.contains(B));
    }

    #[test]
    fn capacity_constructor() {
        let cfg = SetAssocConfig::with_capacity(64 * 1024, 4);
        assert_eq!(cfg.sets, 256);
        assert_eq!(cfg.capacity_bytes(), 64 * 1024);
    }

    #[test]
    fn peek_has_no_side_effects() {
        let mut c = tiny();
        c.fill(A, true, 0);
        assert!(c.peek(A).is_some());
        assert_eq!(c.prefetch_bit(A), Some(true), "peek must not clear the bit");
    }
}
