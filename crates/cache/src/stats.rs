//! Structural cache statistics.

/// Counters a cache structure accumulates as it is operated.
///
/// Higher-level, protocol-aware counters (demand vs. prefetch misses,
/// coverage, bandwidth) live in the simulator's controllers; these are the
/// counts only the structure itself can observe.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a valid matching tag with data.
    pub hits: u64,
    /// Lines inserted.
    pub fills: u64,
    /// Fills that carried the prefetch bit.
    pub prefetch_fills: u64,
    /// Valid lines displaced to make room.
    pub evictions: u64,
    /// Evicted lines whose prefetch bit was still set (useless prefetches,
    /// §3 "useless prefetch" detection input).
    pub unused_prefetch_evictions: u64,
    /// First demand touches of prefetched lines (useful prefetches).
    pub prefetch_first_touches: u64,
    /// Lines removed by coherence invalidations or inclusion recalls.
    pub invalidations: u64,
    /// Lookups that matched a dataless victim tag (compressed/VSC cache
    /// only): the line *was* here until a recent eviction.
    pub victim_tag_hits: u64,
}

impl CacheStats {
    /// Accumulates `other` into `self` (for summing across banks).
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.fills += other.fills;
        self.prefetch_fills += other.prefetch_fills;
        self.evictions += other.evictions;
        self.unused_prefetch_evictions += other.unused_prefetch_evictions;
        self.prefetch_first_touches += other.prefetch_first_touches;
        self.invalidations += other.invalidations;
        self.victim_tag_hits += other.victim_tag_hits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = CacheStats { hits: 1, fills: 2, ..Default::default() };
        let b = CacheStats { hits: 10, evictions: 3, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.hits, 11);
        assert_eq!(a.fills, 2);
        assert_eq!(a.evictions, 3);
    }
}
