//! Cache structures for the CMP simulator.
//!
//! Two cache organizations from the paper (§2) live here:
//!
//! - [`SetAssocCache`]: a classic set-associative, LRU, write-back cache
//!   used for the private L1I/L1D caches and for the *uncompressed*
//!   baseline L2 (8-way, 4 MB).
//! - [`VscCache`]: the **decoupled variable-segment cache** used whenever
//!   cache compression (or the adaptive prefetcher, which borrows its extra
//!   tags) is enabled. Each set holds twice as many address tags as it can
//!   hold uncompressed lines; data is allocated in 8-byte segments, so
//!   compressed lines (1–7 segments) pack more densely, raising effective
//!   associativity from 4 toward 8.
//!
//! Tags evicted from the data area linger as **dataless victim tags**: they
//! keep their address and feed both the adaptive-compression cost/benefit
//! policy ([`CompressionPolicy`]) and the paper's adaptive prefetcher
//! (harmful-prefetch detection, §3).
//!
//! These structures are purely structural — hit/miss outcomes, victims and
//! LRU-stack depths. All timing is applied by the controllers in
//! `cmpsim-core`.

mod adaptive;
mod block;
mod set_assoc;
mod stats;
mod vsc;

pub use adaptive::{CompressionDecision, CompressionPolicy};
pub use block::{AccessKind, BlockAddr};
pub use set_assoc::{EvictedLine, SetAssocCache, SetAssocConfig};
pub use stats::CacheStats;
pub use vsc::{VscCache, VscConfig, VscEvicted, VscLookup};
