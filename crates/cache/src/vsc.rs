//! The decoupled variable-segment cache (VSC).
//!
//! This is the compressed L2 organization of the paper (§2), taken from
//! Alameldeen & Wood's ISCA 2004 design: each set has **8 address tags**
//! but data space for only **4 uncompressed lines**, divided into 8-byte
//! segments (32 per set — the paper's "64" is inconsistent with "data
//! space for 4 uncompressed lines"; see DESIGN.md). A compressed line
//! occupies 1–7 segments, an uncompressed one 8, so a set holds between 4
//! and 8 lines.
//!
//! Tags whose data has been evicted remain allocated as **dataless victim
//! tags** holding the replaced block's address. These extra tags are what
//! the paper's adaptive prefetcher uses to detect harmful prefetches (§3)
//! and what the adaptive compression policy uses to detect avoidable
//! misses.

use crate::block::BlockAddr;
use crate::stats::CacheStats;
use cmpsim_fpc::{LINE_BYTES, MAX_SEGMENTS};

/// Static geometry of a [`VscCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VscConfig {
    /// Number of sets; must be a power of two.
    pub sets: usize,
    /// Address tags per set (8 in the paper).
    pub tags_per_set: usize,
    /// Data segments per set (32 in the paper: 4 lines × 8 segments).
    pub segments_per_set: u32,
    /// Segments an *uncompressed* line occupies under the configured
    /// codec (8 for every shipped codec's 64-byte/8-byte-segment frame).
    /// Fill sizes and the invariant checker validate against this, not a
    /// hard-coded FPC constant.
    pub line_segments: u8,
}

impl VscConfig {
    /// The paper's compressed-L2 geometry for a given data capacity:
    /// 8 tags per set, data space for 4 uncompressed lines per set, FPC's
    /// 8-segment line frame.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` does not yield a power-of-two set count.
    pub fn compressed_l2(capacity_bytes: usize) -> Self {
        Self::compressed_l2_for(capacity_bytes, MAX_SEGMENTS)
    }

    /// [`compressed_l2`](Self::compressed_l2) generalized to a codec
    /// whose uncompressed line occupies `line_segments` segments.
    ///
    /// # Panics
    ///
    /// Panics if `line_segments` is zero or the set count is not a power
    /// of two.
    pub fn compressed_l2_for(capacity_bytes: usize, line_segments: u8) -> Self {
        assert!(line_segments > 0, "a line needs at least one segment");
        let lines = capacity_bytes / LINE_BYTES;
        let data_lines_per_set = 4;
        let sets = lines / data_lines_per_set;
        assert!(sets.is_power_of_two(), "set count {sets} must be a power of two");
        VscConfig {
            sets,
            tags_per_set: 8,
            segments_per_set: (data_lines_per_set * usize::from(line_segments)) as u32,
            line_segments,
        }
    }

    /// How many uncompressed lines fit in one set's data space.
    pub fn data_lines_per_set(&self) -> usize {
        (self.segments_per_set / u32::from(self.line_segments)) as usize
    }

    /// Total data capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.segments_per_set as usize * cmpsim_fpc::SEGMENT_BYTES
    }
}

#[derive(Debug, Clone)]
struct Tag<M> {
    addr: BlockAddr,
    /// Tag allocated: `addr` is meaningful (line present *or* victim tag).
    allocated: bool,
    /// Line data resident (`segments` valid, `meta` live).
    has_data: bool,
    /// Storage size in segments (0 when dataless).
    segments: u8,
    prefetch: bool,
    lru: u64,
    meta: M,
}

/// Outcome of [`VscCache::lookup`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VscLookup {
    /// Line present with data.
    Hit {
        /// Stored compressed (fewer than 8 segments)?
        compressed: bool,
        /// 0-based LRU-stack depth among the set's *data-holding* lines;
        /// depths ≥ `data_lines_per_set` are hits that exist only because
        /// compression packed extra lines in.
        lru_depth: usize,
        /// First demand touch of a prefetched line (prefetch bit was set
        /// and has now been cleared).
        prefetch_first_touch: bool,
    },
    /// A dataless victim tag matched: the line was here until recently.
    /// Structurally a miss, but a strong signal for the adaptive policies.
    VictimTagHit,
    /// No tag matched.
    Miss,
}

impl VscLookup {
    /// Whether data was found.
    pub fn is_hit(&self) -> bool {
        matches!(self, VscLookup::Hit { .. })
    }
}

/// A line evicted from the data area by [`VscCache::fill`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VscEvicted<M> {
    /// Address of the evicted line.
    pub addr: BlockAddr,
    /// Segments the line occupied.
    pub segments: u8,
    /// Prefetch bit still set at eviction (useless prefetch, §3).
    pub was_unused_prefetch: bool,
    /// Caller metadata (directory entry for the L2).
    pub meta: M,
}

/// The decoupled variable-segment cache structure.
///
/// # Examples
///
/// ```
/// use cmpsim_cache::{VscCache, VscConfig, BlockAddr, VscLookup};
///
/// let mut c: VscCache<()> = VscCache::new(VscConfig {
///     sets: 2, tags_per_set: 8, segments_per_set: 32, line_segments: 8,
/// });
/// let a = BlockAddr(0);
/// assert_eq!(c.lookup(a), VscLookup::Miss);
/// c.fill(a, 2, false, ());
/// assert!(c.lookup(a).is_hit());
/// ```
#[derive(Debug, Clone)]
pub struct VscCache<M> {
    cfg: VscConfig,
    sets: Vec<Vec<Tag<M>>>,
    clock: u64,
    stats: CacheStats,
}

impl<M: Clone + Default> VscCache<M> {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the data space cannot hold even one uncompressed line.
    pub fn new(cfg: VscConfig) -> Self {
        assert!(cfg.sets.is_power_of_two(), "set count must be a power of two");
        assert!(cfg.line_segments > 0, "a line needs at least one segment");
        assert!(
            cfg.segments_per_set >= u32::from(cfg.line_segments),
            "a set must hold at least one uncompressed line"
        );
        let sets = (0..cfg.sets)
            .map(|_| {
                (0..cfg.tags_per_set)
                    .map(|_| Tag {
                        addr: BlockAddr(0),
                        allocated: false,
                        has_data: false,
                        segments: 0,
                        prefetch: false,
                        lru: 0,
                        meta: M::default(),
                    })
                    .collect()
            })
            .collect();
        VscCache { cfg, sets, clock: 0, stats: CacheStats::default() }
    }

    /// The cache geometry.
    pub fn config(&self) -> VscConfig {
        self.cfg
    }

    /// Structural statistics accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics (end of warmup).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn set_of(&self, addr: BlockAddr) -> usize {
        addr.set_index(self.cfg.sets)
    }

    fn used_segments(set: &[Tag<M>]) -> u32 {
        set.iter().filter(|t| t.has_data).map(|t| u32::from(t.segments)).sum()
    }

    /// Looks up `addr`, updating LRU and clearing the prefetch bit on a
    /// data hit.
    pub fn lookup(&mut self, addr: BlockAddr) -> VscLookup {
        self.clock += 1;
        let clock = self.clock;
        let set_idx = self.set_of(addr);
        let set = &mut self.sets[set_idx];
        let Some(pos) = set.iter().position(|t| t.allocated && t.addr == addr) else {
            return VscLookup::Miss;
        };
        if !set[pos].has_data {
            self.stats.victim_tag_hits += 1;
            return VscLookup::VictimTagHit;
        }
        let my_lru = set[pos].lru;
        let lru_depth =
            set.iter().filter(|t| t.has_data && t.lru > my_lru).count();
        let tag = &mut set[pos];
        tag.lru = clock;
        let prefetch_first_touch = tag.prefetch;
        tag.prefetch = false;
        let compressed = tag.segments < self.cfg.line_segments;
        self.stats.hits += 1;
        if prefetch_first_touch {
            self.stats.prefetch_first_touches += 1;
        }
        VscLookup::Hit { compressed, lru_depth, prefetch_first_touch }
    }

    /// Read-only probe without LRU/prefetch side effects.
    pub fn peek(&self, addr: BlockAddr) -> Option<&M> {
        let set = &self.sets[self.set_of(addr)];
        set.iter().find(|t| t.has_data && t.addr == addr).map(|t| &t.meta)
    }

    /// Mutable access to a resident line's metadata (no side effects).
    pub fn meta_mut(&mut self, addr: BlockAddr) -> Option<&mut M> {
        let set_idx = self.set_of(addr);
        self.sets[set_idx]
            .iter_mut()
            .find(|t| t.has_data && t.addr == addr)
            .map(|t| &mut t.meta)
    }

    /// Whether the line is resident with data.
    pub fn contains(&self, addr: BlockAddr) -> bool {
        self.peek(addr).is_some()
    }

    /// Stored size in segments of a resident line.
    pub fn segments_of(&self, addr: BlockAddr) -> Option<u8> {
        let set = &self.sets[self.set_of(addr)];
        set.iter().find(|t| t.has_data && t.addr == addr).map(|t| t.segments)
    }

    /// Whether any *data-holding* line in `addr`'s set has its prefetch
    /// bit set (input to the harmful-prefetch rule, §3).
    pub fn any_prefetched_lines_in_set(&self, addr: BlockAddr) -> bool {
        let set = &self.sets[self.set_of(addr)];
        set.iter().any(|t| t.has_data && t.prefetch)
    }

    /// Whether a dataless victim tag matches `addr` (the other half of the
    /// harmful-prefetch rule).
    pub fn victim_tag_matches(&self, addr: BlockAddr) -> bool {
        let set = &self.sets[self.set_of(addr)];
        set.iter().any(|t| t.allocated && !t.has_data && t.addr == addr)
    }

    /// Inserts (or resizes) `addr` with `segments` of data, evicting LRU
    /// data lines as needed. Evicted lines' tags stay allocated as victim
    /// tags; evicted metadata is returned for writebacks/recalls.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is 0 or exceeds 8.
    pub fn fill(
        &mut self,
        addr: BlockAddr,
        segments: u8,
        prefetched: bool,
        meta: M,
    ) -> Vec<VscEvicted<M>> {
        assert!(
            (1..=self.cfg.line_segments).contains(&segments),
            "fill size {segments} out of range 1..={}",
            self.cfg.line_segments
        );
        self.clock += 1;
        let clock = self.clock;
        let cfg = self.cfg;
        let set_idx = self.set_of(addr);
        let set = &mut self.sets[set_idx];
        let mut evicted = Vec::new();

        // Locate or allocate the tag for `addr`.
        let existing = set.iter().position(|t| t.allocated && t.addr == addr);
        let had_data = existing.map(|i| set[i].has_data).unwrap_or(false);

        // Segments already charged to this address (resize case).
        let my_current: u32 =
            existing.filter(|&i| set[i].has_data).map(|i| u32::from(set[i].segments)).unwrap_or(0);

        // Evict LRU data lines until the new size fits.
        while Self::used_segments(set) - my_current + u32::from(segments)
            > cfg.segments_per_set
        {
            let victim_idx = set
                .iter()
                .enumerate()
                .filter(|(i, t)| t.has_data && Some(*i) != existing)
                .min_by_key(|(_, t)| t.lru)
                .map(|(i, _)| i)
                .expect("over-full set must contain an evictable line");
            let v = &mut set[victim_idx];
            evicted.push(VscEvicted {
                addr: v.addr,
                segments: v.segments,
                was_unused_prefetch: v.prefetch,
                meta: std::mem::take(&mut v.meta),
            });
            v.has_data = false;
            v.segments = 0;
            v.prefetch = false;
            self.stats.evictions += 1;
        }
        self.stats.unused_prefetch_evictions +=
            evicted.iter().filter(|e| e.was_unused_prefetch).count() as u64;

        // Choose the tag slot.
        let slot = match existing {
            Some(i) => i,
            None => {
                // Prefer an unallocated tag, then the LRU dataless tag,
                // then (all 8 tags holding data) evict the LRU data line.
                if let Some(i) = set.iter().position(|t| !t.allocated) {
                    i
                } else if let Some(i) = set
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| !t.has_data)
                    .min_by_key(|(_, t)| t.lru)
                    .map(|(i, _)| i)
                {
                    i
                } else {
                    let i = set
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, t)| t.lru)
                        .map(|(i, _)| i)
                        .expect("set has tags");
                    let v = &mut set[i];
                    evicted.push(VscEvicted {
                        addr: v.addr,
                        segments: v.segments,
                        was_unused_prefetch: v.prefetch,
                        meta: std::mem::take(&mut v.meta),
                    });
                    if v.prefetch {
                        self.stats.unused_prefetch_evictions += 1;
                    }
                    v.has_data = false;
                    v.segments = 0;
                    v.prefetch = false;
                    self.stats.evictions += 1;
                    i
                }
            }
        };

        let tag = &mut set[slot];
        tag.addr = addr;
        tag.allocated = true;
        tag.has_data = true;
        tag.segments = segments;
        tag.lru = clock;
        tag.meta = meta;
        if had_data {
            // Resize/update keeps the stronger (demand) classification.
            tag.prefetch &= prefetched;
        } else {
            tag.prefetch = prefetched;
            self.stats.fills += 1;
            if prefetched {
                self.stats.prefetch_fills += 1;
            }
        }

        debug_assert!(Self::used_segments(set) <= cfg.segments_per_set);
        evicted
    }

    /// Removes a resident line (inclusion recall / invalidation), keeping
    /// its address as a victim tag. Returns `(meta, segments)`.
    pub fn invalidate(&mut self, addr: BlockAddr) -> Option<(M, u8)> {
        let set_idx = self.set_of(addr);
        let tag = self.sets[set_idx]
            .iter_mut()
            .find(|t| t.has_data && t.addr == addr)?;
        tag.has_data = false;
        let segs = tag.segments;
        tag.segments = 0;
        tag.prefetch = false;
        self.stats.invalidations += 1;
        Some((std::mem::take(&mut tag.meta), segs))
    }

    /// Number of lines resident with data.
    pub fn valid_lines(&self) -> usize {
        self.sets.iter().flatten().filter(|t| t.has_data).count()
    }

    /// Total data segments in use.
    pub fn used_segments_total(&self) -> u64 {
        self.sets
            .iter()
            .map(|s| u64::from(Self::used_segments(s)))
            .sum()
    }

    /// Effective-capacity ratio: how much line data is resident per byte
    /// of data storage actually used, capped at the 2× the tag array
    /// allows. On a warm, full cache this equals the paper's Table 3
    /// "compression ratio" (average effective cache size over 4 MB); on a
    /// partially-filled cache it still reports the achieved packing
    /// density rather than an artifact of emptiness.
    pub fn effective_capacity_ratio(&self) -> f64 {
        let used = self.used_segments_total();
        if used == 0 {
            return 1.0;
        }
        let resident_segments = self.valid_lines() as u64 * u64::from(self.cfg.line_segments);
        let tag_cap = self.cfg.tags_per_set as f64 / self.cfg.data_lines_per_set() as f64;
        (resident_segments as f64 / used as f64).min(tag_cap)
    }

    /// Checks the structural invariants of the segment accounting, for
    /// the simulator's opt-in invariant checker (`CMPSIM_CHECK=1`):
    ///
    /// - each set's resident lines occupy at most `segments_per_set`
    ///   segments,
    /// - every data-holding tag is allocated and sized within the
    ///   configured codec geometry (`1..=line_segments` segments),
    /// - every dataless tag (victim tag or free) charges 0 segments and
    ///   carries no prefetch bit.
    ///
    /// # Errors
    ///
    /// Returns a description naming the first offending set.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (si, set) in self.sets.iter().enumerate() {
            let used = Self::used_segments(set);
            if used > self.cfg.segments_per_set {
                return Err(format!(
                    "set {si}: {used} segments in use exceed capacity {}",
                    self.cfg.segments_per_set
                ));
            }
            for (ti, t) in set.iter().enumerate() {
                if t.has_data {
                    if !t.allocated {
                        return Err(format!(
                            "set {si} tag {ti}: data resident on an unallocated tag"
                        ));
                    }
                    if !(1..=self.cfg.line_segments).contains(&t.segments) {
                        return Err(format!(
                            "set {si} tag {ti} (addr {:#x}): stored size {} segments \
                             out of the configured codec geometry 1..={}",
                            t.addr.0, t.segments, self.cfg.line_segments
                        ));
                    }
                } else {
                    if t.segments != 0 {
                        return Err(format!(
                            "set {si} tag {ti}: dataless tag charges {} segments",
                            t.segments
                        ));
                    }
                    if t.prefetch {
                        return Err(format!(
                            "set {si} tag {ti}: dataless tag carries a prefetch bit"
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Calls `f` for every data-resident line.
    pub fn for_each_valid(&self, mut f: impl FnMut(BlockAddr, &M, u8)) {
        for set in &self.sets {
            for t in set {
                if t.has_data {
                    f(t.addr, &t.meta, t.segments);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> VscCache<u32> {
        // 1 set, 8 tags, 32 segments (4 uncompressed lines).
        VscCache::new(VscConfig {
            sets: 1,
            tags_per_set: 8,
            segments_per_set: 32,
            line_segments: 8,
        })
    }

    #[test]
    fn eight_compressed_lines_fit() {
        let mut c = tiny();
        for i in 0..8 {
            let ev = c.fill(BlockAddr(i), 4, false, i as u32);
            assert!(ev.is_empty(), "8 half-size lines fit without eviction");
        }
        assert_eq!(c.valid_lines(), 8);
        assert_eq!(c.used_segments_total(), 32);
    }

    #[test]
    fn only_four_uncompressed_lines_fit() {
        let mut c = tiny();
        for i in 0..4 {
            assert!(c.fill(BlockAddr(i), 8, false, 0).is_empty());
        }
        let ev = c.fill(BlockAddr(4), 8, false, 0);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].addr, BlockAddr(0), "LRU line evicted");
        assert_eq!(c.valid_lines(), 4);
    }

    #[test]
    fn victim_tags_survive_eviction() {
        let mut c = tiny();
        for i in 0..5 {
            c.fill(BlockAddr(i), 8, false, 0);
        }
        // Block 0 was evicted; its tag should match as a victim tag.
        assert!(!c.contains(BlockAddr(0)));
        assert!(c.victim_tag_matches(BlockAddr(0)));
        assert_eq!(c.lookup(BlockAddr(0)), VscLookup::VictimTagHit);
        assert_eq!(c.stats().victim_tag_hits, 1);
    }

    #[test]
    fn lru_depth_reports_compression_benefit() {
        let mut c = tiny();
        for i in 0..8 {
            c.fill(BlockAddr(i), 4, false, 0);
        }
        // Touch lines 1..8, leaving 0 deepest.
        for i in 1..8 {
            assert!(c.lookup(BlockAddr(i)).is_hit());
        }
        match c.lookup(BlockAddr(0)) {
            VscLookup::Hit { lru_depth, compressed, .. } => {
                assert_eq!(lru_depth, 7, "line 0 is at the bottom of the stack");
                assert!(compressed);
            }
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn resize_grow_evicts_as_needed() {
        let mut c = tiny();
        for i in 0..8 {
            c.fill(BlockAddr(i), 4, false, 0);
        }
        // Grow line 7 from 4 to 8 segments: 32 - 4 + 8 = 36 > 32 → evict.
        let ev = c.fill(BlockAddr(7), 8, false, 0);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].addr, BlockAddr(0));
        assert_eq!(c.segments_of(BlockAddr(7)), Some(8));
        assert!(c.used_segments_total() <= 32);
    }

    #[test]
    fn resize_shrink_frees_segments() {
        let mut c = tiny();
        c.fill(BlockAddr(0), 8, false, 0);
        c.fill(BlockAddr(0), 2, false, 0);
        assert_eq!(c.segments_of(BlockAddr(0)), Some(2));
        assert_eq!(c.used_segments_total(), 2);
        assert_eq!(c.valid_lines(), 1, "resize must not duplicate the tag");
    }

    #[test]
    fn tag_pressure_evicts_even_with_free_segments() {
        let mut c = tiny();
        // 8 tiny lines occupy all 8 tags but only 8 of 32 segments.
        for i in 0..8 {
            c.fill(BlockAddr(i), 1, false, 0);
        }
        let ev = c.fill(BlockAddr(8), 1, false, 0);
        assert_eq!(ev.len(), 1, "9th line needs a tag: LRU data line evicted");
        assert_eq!(ev[0].addr, BlockAddr(0));
        assert_eq!(c.valid_lines(), 8);
    }

    #[test]
    fn prefetch_bit_and_useless_detection() {
        let mut c = tiny();
        c.fill(BlockAddr(0), 8, true, 0);
        for i in 1..4 {
            c.fill(BlockAddr(i), 8, false, 0);
        }
        let ev = c.fill(BlockAddr(4), 8, false, 0);
        assert_eq!(ev.len(), 1);
        assert!(ev[0].was_unused_prefetch, "untouched prefetched line evicted");
    }

    #[test]
    fn harmful_prefetch_inputs() {
        let mut c = tiny();
        for i in 0..4 {
            c.fill(BlockAddr(i), 8, false, 0);
        }
        // A prefetch displaces line 0.
        c.fill(BlockAddr(9), 8, true, 0);
        assert!(c.victim_tag_matches(BlockAddr(0)));
        assert!(c.any_prefetched_lines_in_set(BlockAddr(0)));
    }

    #[test]
    fn invalidate_keeps_victim_tag() {
        let mut c = tiny();
        c.fill(BlockAddr(0), 4, false, 42);
        let (meta, segs) = c.invalidate(BlockAddr(0)).unwrap();
        assert_eq!((meta, segs), (42, 4));
        assert!(!c.contains(BlockAddr(0)));
        assert!(c.victim_tag_matches(BlockAddr(0)));
        assert_eq!(c.used_segments_total(), 0);
    }

    #[test]
    fn effective_capacity_ratio() {
        let mut c = tiny();
        for i in 0..8 {
            c.fill(BlockAddr(i), 4, false, 0);
        }
        // 8 lines × 64 B resident in 32 segments × 8 B = 256 B physical.
        assert!((c.effective_capacity_ratio() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn invariants_hold_under_stress() {
        // Adversarial mix of fills, resizes and invalidations; the
        // accounting invariants must hold after every operation.
        let mut c = tiny();
        assert_eq!(c.check_invariants(), Ok(()));
        let mut x = 0x9E3779B97F4A7C15u64;
        for step in 0..2000u64 {
            // xorshift64* — deterministic operation mix.
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            let addr = BlockAddr(x % 24);
            match x % 5 {
                0..=2 => {
                    let segs = (x / 7 % 8 + 1) as u8;
                    c.fill(addr, segs, x % 2 == 0, step as u32);
                }
                3 => {
                    c.invalidate(addr);
                }
                _ => {
                    c.lookup(addr);
                }
            }
            assert_eq!(c.check_invariants(), Ok(()), "violated at step {step}");
        }
    }

    #[test]
    fn paper_geometry() {
        let cfg = VscConfig::compressed_l2(4 * 1024 * 1024);
        assert_eq!(cfg.sets, 16384);
        assert_eq!(cfg.tags_per_set, 8);
        assert_eq!(cfg.segments_per_set, 32);
        assert_eq!(cfg.line_segments, 8);
        assert_eq!(cfg.data_lines_per_set(), 4);
        assert_eq!(cfg.capacity_bytes(), 4 * 1024 * 1024);
    }

    #[test]
    fn codec_geometry_bounds_fills_and_invariants() {
        // A narrower codec frame (hypothetical 4-segment lines): the fill
        // assert and the invariant checker both track the configured
        // geometry, not FPC's constant.
        let mut c: VscCache<u32> = VscCache::new(VscConfig {
            sets: 1,
            tags_per_set: 8,
            segments_per_set: 16,
            line_segments: 4,
        });
        assert_eq!(c.config().data_lines_per_set(), 4);
        for i in 0..4 {
            c.fill(BlockAddr(i), 4, false, 0);
        }
        assert_eq!(c.check_invariants(), Ok(()));
        match c.lookup(BlockAddr(0)) {
            VscLookup::Hit { compressed, .. } => {
                assert!(!compressed, "4 segments is uncompressed in this frame");
            }
            other => panic!("expected hit, got {other:?}"),
        }
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            c.fill(BlockAddr(9), 5, false, 0);
        }));
        assert!(r.is_err(), "fill beyond the codec frame must panic");
    }
}
