//! Property tests: classic set-associative cache vs. a naive LRU model
//! (cmpsim-harness port — same reference-model invariant).

use cmpsim_cache::{BlockAddr, SetAssocCache, SetAssocConfig};
use cmpsim_harness::{gen, prop::check, prop_assert_eq};
use std::collections::VecDeque;

/// Naive per-set LRU model.
#[derive(Default)]
struct ModelSet {
    order: VecDeque<BlockAddr>, // front = LRU, back = MRU
}

impl ModelSet {
    fn touch(&mut self, a: BlockAddr) -> bool {
        if let Some(pos) = self.order.iter().position(|x| *x == a) {
            self.order.remove(pos);
            self.order.push_back(a);
            true
        } else {
            false
        }
    }
    fn fill(&mut self, a: BlockAddr, ways: usize) -> Option<BlockAddr> {
        if self.touch(a) {
            return None;
        }
        let victim = if self.order.len() == ways { self.order.pop_front() } else { None };
        self.order.push_back(a);
        victim
    }
}

#[test]
fn matches_reference_lru() {
    let ops = gen::vec_of(gen::pair(gen::u64s(0..48), gen::bools()), 1..400);
    check("matches_reference_lru", &ops, |ops| {
        const SETS: usize = 4;
        const WAYS: usize = 4;
        let mut c: SetAssocCache<()> =
            SetAssocCache::new(SetAssocConfig { sets: SETS, ways: WAYS });
        let mut model: Vec<ModelSet> = (0..SETS).map(|_| ModelSet::default()).collect();

        for &(line, is_fill) in ops {
            let addr = BlockAddr(line);
            let set = addr.set_index(SETS);
            if is_fill {
                let victim = c.fill(addr, false, ());
                let model_victim = model[set].fill(addr, WAYS);
                prop_assert_eq!(victim.map(|v| v.addr), model_victim);
            } else {
                let hit = c.lookup(addr).is_some();
                let model_hit = model[set].touch(addr);
                prop_assert_eq!(hit, model_hit);
            }
        }
        Ok(())
    });
}
