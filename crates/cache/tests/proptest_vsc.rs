//! Property tests: VSC structural invariants under random operation
//! streams (cmpsim-harness port — same invariants as the proptest suite:
//! segment accounting never exceeds capacity, no duplicate residents,
//! model agreement, clean invalidation).

use cmpsim_cache::{BlockAddr, VscCache, VscConfig, VscLookup};
use cmpsim_harness::{gen, prop::check, prop_assert, prop_assert_eq};
use std::collections::HashMap;

const SETS: usize = 4;
const SEGMENTS: u32 = 32;
const TAGS: usize = 8;

fn new_cache() -> VscCache<u64> {
    VscCache::new(VscConfig {
        sets: SETS,
        tags_per_set: TAGS,
        segments_per_set: SEGMENTS,
        line_segments: 8,
    })
}

fn check_invariants(c: &VscCache<u64>, model: &HashMap<BlockAddr, u8>) -> Result<(), String> {
    // 1. Segment accounting: total used == sum of per-line sizes.
    let mut total = 0u64;
    let mut seen = Vec::new();
    c.for_each_valid(|addr, _, segs| {
        total += u64::from(segs);
        seen.push((addr, segs));
        assert!((1..=8).contains(&segs));
    });
    prop_assert_eq!(total, c.used_segments_total());

    // 2. No duplicate resident addresses.
    let mut addrs: Vec<_> = seen.iter().map(|(a, _)| *a).collect();
    addrs.sort();
    addrs.dedup();
    prop_assert_eq!(addrs.len(), seen.len(), "duplicate resident address");

    // 3. Every resident line matches what the model last wrote.
    for (addr, segs) in &seen {
        prop_assert_eq!(model.get(addr), Some(segs), "stale size for {addr}");
    }

    // 4. Per-set capacity bounds (valid_lines <= tags, segments <= cap)
    //    hold globally.
    prop_assert!(c.valid_lines() <= SETS * TAGS);
    prop_assert!(c.used_segments_total() <= (SETS as u64) * u64::from(SEGMENTS));
    Ok(())
}

#[test]
fn random_fills_preserve_invariants() {
    let ops = gen::vec_of(
        gen::triple(gen::u64s(0..64), gen::u8s(1..=8), gen::bools()),
        1..300,
    );
    check("random_fills_preserve_invariants", &ops, |ops| {
        let mut c = new_cache();
        let mut model: HashMap<BlockAddr, u8> = HashMap::new();
        for &(line, segs, prefetched) in ops {
            let addr = BlockAddr(line);
            let evicted = c.fill(addr, segs, prefetched, line);
            for e in &evicted {
                prop_assert!(e.addr != addr, "fill must never evict itself");
                model.remove(&e.addr);
            }
            model.insert(addr, segs);
            check_invariants(&c, &model)?;
        }
        Ok(())
    });
}

#[test]
fn lookup_agrees_with_model() {
    let cases = gen::pair(
        gen::vec_of(gen::pair(gen::u64s(0..32), gen::u8s(1..=8)), 1..200),
        gen::vec_of(gen::u64s(0..32), 1..50),
    );
    check("lookup_agrees_with_model", &cases, |(ops, probes)| {
        let mut c = new_cache();
        let mut model: HashMap<BlockAddr, u8> = HashMap::new();
        for &(line, segs) in ops {
            let addr = BlockAddr(line);
            for e in c.fill(addr, segs, false, line) {
                model.remove(&e.addr);
            }
            model.insert(addr, segs);
        }
        for &line in probes {
            let addr = BlockAddr(line);
            let hit = c.lookup(addr).is_hit();
            prop_assert_eq!(hit, model.contains_key(&addr),
                "lookup/model disagree at {}", addr);
        }
        Ok(())
    });
}

#[test]
fn invalidate_then_miss() {
    let lines = gen::vec_of(gen::u64s(0..32), 1..50);
    check("invalidate_then_miss", &lines, |lines| {
        let mut c = new_cache();
        for &line in lines {
            c.fill(BlockAddr(line), 4, false, line);
        }
        for &line in lines {
            c.invalidate(BlockAddr(line));
            prop_assert!(!c.lookup(BlockAddr(line)).is_hit());
        }
        prop_assert_eq!(c.used_segments_total(), 0);
        prop_assert_eq!(c.valid_lines(), 0);
        Ok(())
    });
}

#[test]
fn victim_tag_then_refill_promotes() {
    let mut c: VscCache<u64> = VscCache::new(VscConfig {
        sets: 1, tags_per_set: 8, segments_per_set: 32, line_segments: 8,
    });
    for i in 0..5 {
        c.fill(BlockAddr(i), 8, false, i);
    }
    assert_eq!(c.lookup(BlockAddr(0)), VscLookup::VictimTagHit);
    c.fill(BlockAddr(0), 8, false, 0);
    assert!(c.lookup(BlockAddr(0)).is_hit());
    assert_eq!(c.valid_lines(), 4);
}
