//! Adaptive prefetching in action: jbb is the paper's pathological case —
//! naive stride prefetching wrecks it, and the §3 throttle (driven by
//! compression's spare cache tags) rescues it.
//!
//! ```sh
//! cargo run --release --example adaptive_prefetch_tuning [workload]
//! ```

use cmpsim::report::{pct, Table};
use cmpsim::{workload, SimLength, System, SystemConfig, Variant};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "jbb".to_string());
    let spec = workload(&name).unwrap_or_else(|| {
        eprintln!("unknown workload '{name}'");
        std::process::exit(1);
    });
    let base = SystemConfig::paper_default(8);
    let len = SimLength::standard();

    let mut t = Table::new(&[
        "configuration",
        "speedup",
        "L2 MPKI",
        "pf issued/1k",
        "useless evictions",
        "harmful detections",
    ]);
    let mut base_runtime = 0u64;
    for v in [Variant::Base, Variant::Prefetch, Variant::AdaptivePrefetch] {
        let mut sys = System::new(v.apply(base.clone()), &spec);
        let r = sys.run(len.warmup, len.measure).expect("simulation failed");
        if v == Variant::Base {
            base_runtime = r.runtime();
        }
        let i = r.stats.instructions;
        t.row(&[
            v.label().into(),
            pct((base_runtime as f64 / r.runtime() as f64 - 1.0) * 100.0),
            format!("{:.2}", r.stats.l2.mpki(i)),
            format!("{:.1}", r.stats.l2.prefetch_rate(i)),
            r.stats.l2.useless_prefetch_evictions.to_string(),
            r.stats.harmful_prefetch_detections.to_string(),
        ]);
    }
    t.print(&format!("{name}: the adaptive throttle at work"));
    println!(
        "\nThe throttle counts useful prefetches (+1), useless evictions (-1)\n\
         and harmful victim-tag matches (-1); at zero it disables the\n\
         prefetcher entirely (paper §3)."
    );
}
