//! Service-metrics inertness + SLO gate (`scripts/ci.sh`).
//!
//! Runs the smoke grid cold then warm through `run_grid_parallel_store`
//! with metrics **armed** and asserts the tentpole contract from three
//! sides:
//!
//! - **bit-inertness** — both armed runs produce the exact
//!   `grid_digest` golden (`tests/golden/grid_digest.txt`): recording
//!   counters and latency histograms changes nothing the simulator
//!   computes;
//! - **accounting** — the registry agrees with the store's own
//!   `StoreStats` (hits/misses/published), the compute-latency
//!   histogram counted exactly the computed cells, the warm run is all
//!   cache (`grid_cells_cached == cells`, `grid_cells_computed == 0`)
//!   and the queue-depth gauge drains back to 0;
//! - **export** — the flat-JSON snapshot parses under the repo's own
//!   flat-JSON framing with every required key, and the Prometheus text
//!   export carries counter and `_bucket{le=...}` lines.
//!
//! Writes `target/bench/service_metrics.json` (snapshot/export costs
//! plus headline service numbers) for CI to track as
//! `BENCH_service_metrics.json`.
//!
//! Usage:
//!   CMPSIM_STORE=$(mktemp -d) cargo run --release --example metrics_gate

use cmpsim::core::flatjson::parse_flat;
use cmpsim::core::store::ResultStore;
use cmpsim::{all_workloads, report, run_grid_parallel_store, SimLength, SystemConfig, Variant};
use cmpsim_harness::bench::Runner;
use cmpsim_harness::metrics;
use std::time::Instant;

const VARIANTS: [Variant; 4] = [
    Variant::Base,
    Variant::BothCompression,
    Variant::Prefetch,
    Variant::PrefetchCompression,
];

const GOLDEN_PATH: &str = "tests/golden/grid_digest.txt";

/// Every key the `{"metrics":1}` snapshot line must carry for the
/// serve-daemon contract: store, driver and histogram coverage.
const REQUIRED_KEYS: [&str; 12] = [
    "store_hits",
    "store_misses",
    "store_published",
    "store_corrupt_skipped",
    "store_evicted_files",
    "store_resident_bytes",
    "grid_cells_computed",
    "grid_cells_cached",
    "grid_queue_depth",
    "grid_cell_compute_nanos_count",
    "grid_cell_compute_nanos_p95",
    "store_lease_wait_nanos_count",
];

fn main() {
    if !metrics::enabled() {
        eprintln!("metrics gate: CMPSIM_METRICS=0 — this gate needs armed metrics");
        std::process::exit(1);
    }
    let base = SystemConfig::paper_default(4).with_seed(11);
    let len = SimLength { warmup: 5_000, measure: 20_000 };
    let specs = all_workloads();
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .unwrap_or_else(|e| panic!("cannot read {GOLDEN_PATH}: {e}"));
    let golden = golden.trim();

    let dir = std::env::var("CMPSIM_STORE")
        .unwrap_or_else(|_| "target/metrics-gate-store".to_string());
    let _ = std::fs::remove_dir_all(&dir);

    let t0 = Instant::now();
    let cold_store = ResultStore::open(&dir);
    let cold = run_grid_parallel_store(&specs, &base, &VARIANTS, len, 4, &cold_store)
        .expect("cold smoke grid simulates");
    let cold_digest = report::grid_digest(&cold);
    let cold_stats = cold_store.stats();
    let cold_snap = metrics::global().snapshot();
    let cold_secs = t0.elapsed().as_secs_f64();
    println!(
        "cold: {} cells in {cold_secs:.2}s, compute histogram count {}",
        cold.len(),
        cold_snap.histogram("grid_cell_compute_nanos").map_or(0, |h| h.count),
    );

    // Fresh counters for the warm phase so its accounting gates read the
    // warm run alone (registered handles stay live across the reset).
    metrics::global().reset();
    let t1 = Instant::now();
    let warm_store = ResultStore::open(&dir);
    let warm = run_grid_parallel_store(&specs, &base, &VARIANTS, len, 4, &warm_store)
        .expect("warm smoke grid resolves");
    let warm_digest = report::grid_digest(&warm);
    let warm_stats = warm_store.stats();
    warm_store.resident_bytes();
    let warm_snap = metrics::global().snapshot();
    let warm_secs = t1.elapsed().as_secs_f64();
    println!(
        "warm: {} cells in {warm_secs:.2}s, hit rate {:.1}%",
        warm.len(),
        warm_stats.hit_rate_pct(),
    );

    let flat = warm_snap.to_flat_json();
    let prom = warm_snap.to_prometheus();

    let mut ok = true;
    let mut gate = |label: &str, pass: bool| {
        if pass {
            println!("metrics gate: {label}: ok");
        } else {
            eprintln!("metrics gate: {label}: FAILED");
            ok = false;
        }
    };

    gate("armed cold digest matches golden", cold_digest == golden);
    gate("armed warm digest matches golden", warm_digest == golden);
    gate(
        "cold histogram counted every computed cell",
        cold_snap.histogram("grid_cell_compute_nanos").map_or(0, |h| h.count)
            == cold_stats.published,
    );
    gate(
        "registry agrees with StoreStats (warm)",
        warm_snap.counter("store_hits") == Some(warm_stats.hits)
            && warm_snap.counter("store_misses") == Some(warm_stats.misses)
            && warm_snap.counter("store_published") == Some(warm_stats.published),
    );
    gate(
        "warm run is all cache",
        warm_snap.counter("grid_cells_cached") == Some(warm.len() as u64)
            && warm_snap.counter("grid_cells_computed") == Some(0)
            && warm_stats.misses == 0,
    );
    gate(
        "no corrupt records in either phase",
        cold_stats.corrupt_skipped == 0 && warm_stats.corrupt_skipped == 0,
    );
    gate("queue depth drained to 0", warm_snap.gauge("grid_queue_depth") == Some(0));
    gate(
        "flat-JSON snapshot parses under the repo framing",
        parse_flat(&flat).is_some(),
    );
    gate(
        "flat-JSON snapshot carries every required key",
        REQUIRED_KEYS.iter().all(|k| flat.contains(&format!("\"{k}\":"))),
    );
    gate(
        "prometheus export has counter and bucket lines",
        prom.contains("cmpsim_store_hits ")
            && prom.contains("cmpsim_grid_cell_compute_nanos_bucket{le=")
            && prom.contains("# TYPE"),
    );

    // Artifact: the cost of the observability itself plus the headline
    // service numbers, tracked as BENCH_service_metrics.json.
    let mut runner = Runner::new("service_metrics", 2, 20);
    runner.bench("metrics/registry_snapshot", || metrics::global().snapshot());
    runner.bench("metrics/flat_json_export", || {
        metrics::global().snapshot().to_flat_json()
    });
    runner.bench("metrics/prometheus_export", || {
        metrics::global().snapshot().to_prometheus()
    });
    runner.metric("cold_cells", cold.len() as f64);
    runner.metric("cold_wall_s", cold_secs);
    runner.metric("warm_wall_s", warm_secs);
    runner.metric("warm_hit_rate_pct", warm_stats.hit_rate_pct());
    runner.metric(
        "compute_p50_ns",
        cold_snap.histogram("grid_cell_compute_nanos").map_or(0, |h| h.quantile(0.50)) as f64,
    );
    runner.metric(
        "compute_p95_ns",
        cold_snap.histogram("grid_cell_compute_nanos").map_or(0, |h| h.quantile(0.95)) as f64,
    );
    runner.metric(
        "compute_p99_ns",
        cold_snap.histogram("grid_cell_compute_nanos").map_or(0, |h| h.quantile(0.99)) as f64,
    );
    runner.metric(
        "store_resident_bytes",
        warm_snap.gauge("store_resident_bytes").unwrap_or(0) as f64,
    );
    runner.write_json().expect("write service_metrics.json");

    if !ok {
        eprintln!(
            "cold digest {cold_digest}, warm digest {warm_digest}, golden {golden} \
             (store dir: {dir})\nsnapshot: {flat}"
        );
        std::process::exit(1);
    }
}
