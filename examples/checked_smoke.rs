//! One small grid cell with every runtime safety net armed — the CI
//! smoke run for the supervision layer (`scripts/ci.sh`).
//!
//! Runs zeus under compression + prefetching with the forward-progress
//! watchdog and the sampled invariant checker enabled (the latter is
//! also on whenever `CMPSIM_CHECK=1`), and fails loudly if either trips
//! on a healthy configuration.

use cmpsim::{workload, System, SystemConfig, Variant};

fn main() {
    let spec = workload("zeus").expect("known workload");
    let cfg = Variant::PrefetchCompression
        .apply(SystemConfig::paper_default(2).with_seed(11))
        .with_invariant_checks(true);
    let mut sys = System::new(cfg, &spec);
    match sys.run(5_000, 20_000) {
        Ok(result) => {
            println!(
                "checked smoke OK: {} instructions, IPC {:.2}, invariants held",
                result.stats.instructions,
                result.ipc()
            );
        }
        Err(e) => {
            eprintln!("checked smoke FAILED: {e}");
            std::process::exit(1);
        }
    }
}
