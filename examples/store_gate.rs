//! Result-store bit-inertness gate (`scripts/ci.sh`).
//!
//! Runs the same smoke grid as `examples/grid_digest.rs` twice through
//! `run_grid_parallel_store` against one result store: cold (empty
//! store — every cell computed and published) and warm (fresh store
//! handle over the same directory — every cell served back). The gate
//! asserts the store is *bit-inert* and actually *working*:
//!
//! - the warm run computes **0 cells** (misses = 0, published = 0) and
//!   its hit rate is 100% (CI requires ≥ 95%),
//! - no record was skipped for a CRC/framing failure in either run,
//! - both runs produce the exact `grid_digest` golden recorded from the
//!   seed engine (`tests/golden/grid_digest.txt`) — the store changed
//!   *when* results were computed, never *what* they are.
//!
//! Usage:
//!   CMPSIM_STORE=$(mktemp -d) cargo run --release --example store_gate

use cmpsim::core::store::ResultStore;
use cmpsim::{all_workloads, report, run_grid_parallel_store, SimLength, SystemConfig, Variant};
use std::time::Instant;

const VARIANTS: [Variant; 4] = [
    Variant::Base,
    Variant::BothCompression,
    Variant::Prefetch,
    Variant::PrefetchCompression,
];

const GOLDEN_PATH: &str = "tests/golden/grid_digest.txt";

fn main() {
    let base = SystemConfig::paper_default(4).with_seed(11);
    let len = SimLength { warmup: 5_000, measure: 20_000 };
    let specs = all_workloads();
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .unwrap_or_else(|e| panic!("cannot read {GOLDEN_PATH}: {e}"));
    let golden = golden.trim();

    // The gate owns its store directory: CMPSIM_STORE if the caller set
    // one (ci.sh passes a mktemp dir), else a scratch path under target/.
    // Either way it starts empty so "cold" means cold.
    let dir = std::env::var("CMPSIM_STORE")
        .unwrap_or_else(|_| "target/store-gate".to_string());
    let _ = std::fs::remove_dir_all(&dir);

    let t0 = Instant::now();
    let cold_store = ResultStore::open(&dir);
    let cold = run_grid_parallel_store(&specs, &base, &VARIANTS, len, 4, &cold_store)
        .expect("cold smoke grid simulates");
    let cold_stats = cold_store.stats();
    let cold_digest = report::grid_digest(&cold);
    println!(
        "cold: {} cells computed in {:.2}s ({} hits, {} misses, {} published)",
        cold.len(),
        t0.elapsed().as_secs_f64(),
        cold_stats.hits,
        cold_stats.misses,
        cold_stats.published,
    );

    let t1 = Instant::now();
    let warm_store = ResultStore::open(&dir);
    let warm = run_grid_parallel_store(&specs, &base, &VARIANTS, len, 4, &warm_store)
        .expect("warm smoke grid resolves");
    let warm_stats = warm_store.stats();
    let warm_digest = report::grid_digest(&warm);
    println!(
        "warm: {} cells served in {:.2}s ({} hits, {} misses, hit rate {:.1}%)",
        warm.len(),
        t1.elapsed().as_secs_f64(),
        warm_stats.hits,
        warm_stats.misses,
        warm_stats.hit_rate_pct(),
    );

    let mut ok = true;
    let mut gate = |label: &str, pass: bool| {
        if pass {
            println!("store gate: {label}: ok");
        } else {
            eprintln!("store gate: {label}: FAILED");
            ok = false;
        }
    };
    gate(
        "cold run computed every cell",
        cold_stats.published == cold.len() as u64 && cold_stats.hits == 0,
    );
    gate(
        "warm run computed 0 cells",
        warm_stats.misses == 0 && warm_stats.published == 0,
    );
    gate(
        "warm hit rate >= 95%",
        warm_stats.hits == warm.len() as u64 && warm_stats.hit_rate_pct() >= 95.0,
    );
    gate(
        "no store CRC/framing errors",
        cold_stats.corrupt_skipped == 0 && warm_stats.corrupt_skipped == 0,
    );
    gate("cold digest matches golden", cold_digest == golden);
    gate("warm digest bit-identical to golden", warm_digest == golden);
    if !ok {
        eprintln!(
            "cold digest {cold_digest}, warm digest {warm_digest}, golden {golden} \
             (store dir: {dir})"
        );
        std::process::exit(1);
    }
}
