//! Live ASCII ops dashboard over the service-metric registry.
//!
//! Drives a continuous stream of smoke sweeps against a result store on
//! a background thread (one cold round, then warm rounds — the steady
//! state of a serve daemon with a hot store) while the foreground
//! renders the registry as a terminal dashboard: store throughput
//! (ops/s), hit ratio, cell compute latency p50/p95/p99, queue depth
//! and on-disk store occupancy. Everything shown is read from the same
//! `cmpsim_harness::metrics` registry the serve daemon exports, so the
//! dashboard doubles as a visual check of the whole pipeline.
//!
//! Usage:
//!   cargo run --release --example ops_dashboard            # live view
//!   cargo run --release --example ops_dashboard -- --check # CI mode
//!
//! Flags:
//!   --rounds <n>       sweep rounds to drive (default 8)
//!   --refresh-ms <ms>  frame interval (default 500)
//!   --check            two plain frames, no ANSI, assert the registry
//!                      is live and consistent, exit nonzero on failure

use cmpsim::core::store::ResultStore;
use cmpsim::{all_workloads, run_grid_parallel_store, SimLength, SystemConfig, Variant};
use cmpsim_harness::metrics::{self, MetricsSnapshot};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const VARIANTS: [Variant; 4] = [
    Variant::Base,
    Variant::BothCompression,
    Variant::Prefetch,
    Variant::PrefetchCompression,
];

/// One dashboard frame, rendered from two registry snapshots a known
/// interval apart (rates are deltas over that interval).
fn render(prev: &MetricsSnapshot, cur: &MetricsSnapshot, dt: f64, elapsed: f64) -> String {
    let c = |name: &str| cur.counter(name).unwrap_or(0);
    let d = |name: &str| c(name).saturating_sub(prev.counter(name).unwrap_or(0));
    let hits = c("store_hits");
    let misses = c("store_misses");
    let served = hits + misses;
    let hit_pct = if served == 0 { 0.0 } else { hits as f64 * 100.0 / served as f64 };
    let ops_rate = (d("store_hits") + d("store_misses")) as f64 / dt.max(1e-9);
    let cell_rate = (d("grid_cells_computed") + d("grid_cells_cached")) as f64 / dt.max(1e-9);
    let q = |h: Option<&cmpsim_harness::metrics::HistogramSnapshot>, p: f64| {
        h.map_or(0.0, |h| h.quantile(p) as f64 / 1e6)
    };
    let lat = cur.histogram("grid_cell_compute_nanos");
    let occupancy = cur.gauge("store_resident_bytes").unwrap_or(0);
    let depth = cur.gauge("grid_queue_depth").unwrap_or(0);

    let bar = |pct: f64| {
        let filled = (pct / 100.0 * 24.0).round() as usize;
        format!("[{}{}]", "#".repeat(filled.min(24)), "-".repeat(24 - filled.min(24)))
    };
    let mut s = String::new();
    s.push_str(&format!(
        "cmpsim ops dashboard                                 t+{elapsed:6.1}s\n"
    ));
    s.push_str("------------------------------------------------------------\n");
    s.push_str(&format!(
        "store ops     {ops_rate:8.1}/s   cells {cell_rate:8.1}/s   queue {depth:4}\n"
    ));
    s.push_str(&format!(
        "hit ratio     {:5.1}% {}  ({hits} hits / {misses} misses)\n",
        hit_pct,
        bar(hit_pct),
    ));
    s.push_str(&format!(
        "compute ms    p50 {:8.2}   p95 {:8.2}   p99 {:8.2}   (n={})\n",
        q(lat, 0.50),
        q(lat, 0.95),
        q(lat, 0.99),
        lat.map_or(0, |h| h.count),
    ));
    s.push_str(&format!(
        "store         {:8.1} KiB resident   published {}   evicted {}\n",
        occupancy as f64 / 1024.0,
        c("store_published"),
        c("store_evicted_files"),
    ));
    s.push_str(&format!(
        "grid          computed {}   cached {}   failed {}   retries {}\n",
        c("grid_cells_computed"),
        c("grid_cells_cached"),
        c("grid_cells_failed"),
        c("grid_retries"),
    ));
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut check = false;
    let mut rounds = 8usize;
    let mut refresh_ms = 500u64;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--check" => check = true,
            "--rounds" => {
                rounds = it.next().and_then(|v| v.parse().ok()).unwrap_or(rounds);
            }
            "--refresh-ms" => {
                refresh_ms = it.next().and_then(|v| v.parse().ok()).unwrap_or(refresh_ms);
            }
            other => {
                eprintln!("unknown flag {other}; see the example's doc header");
                std::process::exit(2);
            }
        }
    }
    if !metrics::enabled() {
        eprintln!("ops dashboard: CMPSIM_METRICS=0 — nothing to display");
        std::process::exit(1);
    }
    if check {
        rounds = 2;
        refresh_ms = refresh_ms.min(100);
    }

    let dir = std::env::var("CMPSIM_STORE")
        .unwrap_or_else(|_| "target/ops-dashboard-store".to_string());
    let _ = std::fs::remove_dir_all(&dir);
    let store = ResultStore::open(&dir);
    let done = Arc::new(AtomicBool::new(false));

    // The workload driver: cold round populates the store, warm rounds
    // replay it — the daemon steady state the dashboard visualizes.
    let driver = {
        let store = Arc::clone(&store);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let base = SystemConfig::paper_default(4).with_seed(11);
            let len = SimLength { warmup: 5_000, measure: 20_000 };
            let specs = all_workloads();
            for _ in 0..rounds {
                if run_grid_parallel_store(&specs, &base, &VARIANTS, len, 4, &store).is_err() {
                    break;
                }
            }
            done.store(true, Ordering::SeqCst);
        })
    };

    let t0 = Instant::now();
    let mut prev = metrics::global().snapshot();
    let mut prev_t = t0;
    let mut frames = 0u32;
    loop {
        std::thread::sleep(Duration::from_millis(refresh_ms));
        store.resident_bytes();
        let cur = metrics::global().snapshot();
        let now = Instant::now();
        let frame = render(
            &prev,
            &cur,
            now.duration_since(prev_t).as_secs_f64(),
            t0.elapsed().as_secs_f64(),
        );
        if check {
            println!("{frame}");
        } else {
            // Repaint in place: clear screen, home the cursor.
            print!("\x1b[2J\x1b[H{frame}");
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
        }
        frames += 1;
        prev = cur;
        prev_t = now;
        if done.load(Ordering::SeqCst) {
            break;
        }
    }
    driver.join().expect("driver thread");

    // Final frame over the completed run.
    store.resident_bytes();
    let last = metrics::global().snapshot();
    let frame = render(&prev, &last, prev_t.elapsed().as_secs_f64(), t0.elapsed().as_secs_f64());
    println!("{frame}");

    if check {
        let total = rounds as u64 * 32; // 8 workloads x 4 variants per round
        let computed = last.counter("grid_cells_computed").unwrap_or(0);
        let cached = last.counter("grid_cells_cached").unwrap_or(0);
        let mut ok = true;
        let mut gate = |label: &str, pass: bool| {
            if pass {
                println!("ops dashboard check: {label}: ok");
            } else {
                eprintln!("ops dashboard check: {label}: FAILED");
                ok = false;
            }
        };
        gate("rendered at least two frames", frames >= 2);
        gate("every cell accounted", computed + cached == total);
        gate("second round was warm", cached >= 32);
        gate(
            "latency histogram live",
            last.histogram("grid_cell_compute_nanos").map_or(0, |h| h.count) == computed,
        );
        gate("store occupancy visible", last.gauge("store_resident_bytes").unwrap_or(0) > 0);
        if !ok {
            std::process::exit(1);
        }
    }
}
