//! Quickstart: simulate one workload under the four headline
//! configurations and print the paper's core comparison.
//!
//! ```sh
//! cargo run --release --example quickstart [workload]
//! ```

use cmpsim::report::{pct, Table};
use cmpsim::{workload, SimLength, SystemConfig, Variant, VariantGrid};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "zeus".to_string());
    let spec = workload(&name).unwrap_or_else(|| {
        eprintln!("unknown workload '{name}'; pick one of apache zeus oltp jbb art apsi fma3d mgrid");
        std::process::exit(1);
    });

    let base = SystemConfig::paper_default(8);
    let variants = [
        Variant::Base,
        Variant::BothCompression,
        Variant::Prefetch,
        Variant::AdaptivePrefetch,
        Variant::PrefetchCompression,
        Variant::AdaptivePrefetchCompression,
    ];
    println!("simulating {name} on an 8-core CMP (this takes a few seconds per config)…");
    let grid = VariantGrid::run(&spec, &base, &variants, SimLength::standard())
        .expect("simulation failed");

    let mut t = Table::new(&["configuration", "runtime (cycles)", "IPC", "L2 MPKI", "GB/s", "speedup"]);
    for v in variants {
        let r = grid.get(v);
        t.row(&[
            v.label().into(),
            r.runtime().to_string(),
            format!("{:.2}", r.ipc()),
            format!("{:.2}", r.stats.l2.mpki(r.stats.instructions)),
            format!("{:.1}", r.bandwidth_gbps()),
            pct(grid.speedup_pct(v)),
        ]);
    }
    t.print(&format!("{name}: compression × prefetching"));

    println!(
        "\nInteraction(Pf, Compr) = {:+.1}%  (EQ 5; positive means the\n\
         techniques reinforce each other, the paper's central result)",
        grid.pf_compr_interaction() * 100.0
    );
}
