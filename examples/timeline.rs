//! Renders a cycle-sampled telemetry artifact (`target/telemetry/*.jsonl`,
//! produced by running any simulation with `CMPSIM_TRACE=1`) as an ASCII
//! timeline, and exports it as Chrome `trace_event` JSON so Perfetto /
//! `chrome://tracing` can plot the same series interactively.
//!
//! ```sh
//! CMPSIM_TRACE=1 cargo run --release --example quickstart
//! cargo run --release --example timeline                  # newest artifact
//! cargo run --release --example timeline -- path/to/run.jsonl
//! cargo run --release --example timeline -- --check       # CI schema gate
//! ```
//!
//! `--check` validates the artifact against the `cmpsim-telemetry-v1`
//! schema (header fields, per-row numeric fields, monotonic sample
//! times) and exits nonzero on any violation, printing nothing but the
//! verdict — the CI hook for telemetry artifacts.

use std::path::{Path, PathBuf};

/// Extracts the raw text of `"key":<value>` from a flat JSON line
/// (objects one level deep, arrays allowed as values).
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let mut depth = 0usize;
    let mut in_str = false;
    let mut prev_escape = false;
    for (i, c) in rest.char_indices() {
        if in_str {
            if prev_escape {
                prev_escape = false;
            } else if c == '\\' {
                prev_escape = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '[' | '{' => depth += 1,
            ']' | '}' if depth > 0 => depth -= 1,
            ',' | '}' if depth == 0 => return Some(rest[..i].trim()),
            _ => {}
        }
    }
    Some(rest.trim())
}

/// A numeric field; JSON `null` (a non-finite sample) comes back as NaN.
fn num(line: &str, key: &str) -> Option<f64> {
    let v = field(line, key)?;
    if v == "null" {
        return Some(f64::NAN);
    }
    v.parse().ok()
}

fn str_field(line: &str, key: &str) -> Option<String> {
    let v = field(line, key)?;
    let v = v.strip_prefix('"')?.strip_suffix('"')?;
    Some(v.replace("\\\"", "\"").replace("\\\\", "\\"))
}

/// One parsed telemetry row.
struct Sample {
    t: f64,
    series: Vec<f64>,
}

/// The metrics the timeline plots, with their row extractors.
const METRICS: [&str; 6] = [
    "l2_capacity_ratio",
    "compression_ratio",
    "link_utilization_pct",
    "core_mshr_entries",
    "l2_fetches_in_flight",
    "ipc",
];

fn parse_rows(lines: &[&str]) -> Result<Vec<Sample>, String> {
    let mut out = Vec::new();
    let mut last_t = 0.0f64;
    for (i, line) in lines.iter().enumerate() {
        let row = i + 2; // 1-based, after the header line
        let t = num(line, "t")
            .filter(|v| v.is_finite())
            .ok_or_else(|| format!("row {row}: missing numeric \"t\""))?;
        if t < last_t {
            return Err(format!("row {row}: sample time {t} goes backwards (after {last_t})"));
        }
        last_t = t;
        let mut series = Vec::with_capacity(METRICS.len());
        for key in &METRICS[..5] {
            series.push(
                num(line, key).ok_or_else(|| format!("row {row}: missing field \"{key}\""))?,
            );
        }
        // Aggregate IPC from the per-core vector.
        let ipcs = field(line, "core_ipc")
            .and_then(|v| v.strip_prefix('['))
            .and_then(|v| v.strip_suffix(']'))
            .ok_or_else(|| format!("row {row}: missing array \"core_ipc\""))?;
        let mut total = 0.0;
        for part in ipcs.split(',').filter(|p| !p.trim().is_empty()) {
            let v: f64 = part
                .trim()
                .parse()
                .or_else(|_| if part.trim() == "null" { Ok(f64::NAN) } else { Err(()) })
                .map_err(|()| format!("row {row}: bad core_ipc entry '{part}'"))?;
            if v.is_finite() {
                total += v;
            }
        }
        series.push(total);
        out.push(Sample { t, series });
    }
    Ok(out)
}

fn check_header(header: &str) -> Result<(), String> {
    match str_field(header, "schema") {
        Some(s) if s == "cmpsim-telemetry-v1" => {}
        Some(s) => return Err(format!("unknown schema '{s}'")),
        None => return Err("header missing \"schema\"".to_string()),
    }
    for key in ["workload", "prefetch"] {
        if str_field(header, key).is_none() {
            return Err(format!("header missing \"{key}\""));
        }
    }
    for key in ["cores", "seed", "sample_period", "clock_ghz", "ring_dropped"] {
        if num(header, key).is_none() {
            return Err(format!("header missing numeric \"{key}\""));
        }
    }
    Ok(())
}

/// Down-samples `samples` of one metric into `width` buckets (mean per
/// bucket) and renders them on a density ramp.
fn sparkline(samples: &[Sample], metric: usize, width: usize) -> String {
    const RAMP: [char; 8] = [' ', '.', ':', '-', '=', '+', '*', '#'];
    let mut buckets = vec![(0.0f64, 0usize); width];
    for (i, s) in samples.iter().enumerate() {
        let b = i * width / samples.len();
        let v = s.series[metric];
        if v.is_finite() {
            buckets[b].0 += v;
            buckets[b].1 += 1;
        }
    }
    let means: Vec<Option<f64>> =
        buckets.iter().map(|&(sum, n)| (n > 0).then(|| sum / n as f64)).collect();
    let max = means.iter().flatten().fold(0.0f64, |a, &b| a.max(b));
    means
        .iter()
        .map(|m| match m {
            None => ' ',
            Some(v) if max <= 0.0 => if *v > 0.0 { RAMP[7] } else { RAMP[0] },
            Some(v) => RAMP[((v / max) * 7.0).round().clamp(0.0, 7.0) as usize],
        })
        .collect()
}

/// Writes the samples as Chrome `trace_event` counter events (one
/// counter track per metric, `ts` = simulated cycle) for Perfetto.
fn write_trace_json(path: &Path, workload: &str, samples: &[Sample]) -> std::io::Result<()> {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    let mut first = true;
    for s in samples {
        for (mi, name) in METRICS.iter().enumerate() {
            let v = s.series[mi];
            if !v.is_finite() {
                continue;
            }
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"{name}\",\"cat\":\"telemetry\",\"ph\":\"C\",\"ts\":{},\
                 \"pid\":0,\"tid\":0,\"args\":{{\"{workload}\":{v}}}}}",
                s.t
            ));
        }
    }
    out.push_str("\n]}\n");
    std::fs::write(path, out)
}

fn newest_artifact(dir: &Path) -> Option<PathBuf> {
    let mut best: Option<(std::time::SystemTime, PathBuf)> = None;
    for entry in std::fs::read_dir(dir).ok()?.flatten() {
        let p = entry.path();
        if p.extension().is_some_and(|e| e == "jsonl") {
            let mtime = entry.metadata().and_then(|m| m.modified()).ok()?;
            if best.as_ref().is_none_or(|(t, _)| mtime > *t) {
                best = Some((mtime, p));
            }
        }
    }
    best.map(|(_, p)| p)
}

fn fail(msg: &str) -> ! {
    eprintln!("timeline: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let explicit = args.iter().find(|a| !a.starts_with("--"));

    let path = match explicit {
        Some(p) => PathBuf::from(p),
        None => {
            let dir = cmpsim_harness::telemetry::telemetry_dir();
            newest_artifact(&dir).unwrap_or_else(|| {
                fail(&format!(
                    "no .jsonl artifacts under {} — run a simulation with CMPSIM_TRACE=1 first",
                    dir.display()
                ))
            })
        }
    };
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", path.display())));
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().unwrap_or_else(|| fail("artifact is empty"));
    let rows: Vec<&str> = lines.collect();

    if let Err(e) = check_header(header) {
        fail(&format!("{}: {e}", path.display()));
    }
    let samples = match parse_rows(&rows) {
        Ok(s) => s,
        Err(e) => fail(&format!("{}: {e}", path.display())),
    };
    if check {
        println!(
            "timeline: {} ok — schema cmpsim-telemetry-v1, {} samples",
            path.display(),
            samples.len()
        );
        return;
    }
    if samples.is_empty() {
        fail("artifact has a header but no samples");
    }

    let workload = str_field(header, "workload").unwrap_or_else(|| "?".to_string());
    let period = num(header, "sample_period").unwrap_or(f64::NAN);
    let span = samples.last().map(|s| s.t).unwrap_or(0.0);
    println!(
        "{} — workload {workload}, {} samples every {period} cycles, {span} cycles covered",
        path.display(),
        samples.len()
    );

    let width = 64usize.min(samples.len().max(1));
    let label_w = METRICS.iter().map(|m| m.len()).max().unwrap_or(0);
    for (mi, name) in METRICS.iter().enumerate() {
        let finite: Vec<f64> =
            samples.iter().map(|s| s.series[mi]).filter(|v| v.is_finite()).collect();
        let max = finite.iter().fold(0.0f64, |a, &b| a.max(b));
        let last = finite.last().copied().unwrap_or(f64::NAN);
        println!(
            "{name:>label_w$} |{}| max {max:.3} last {last:.3}",
            sparkline(&samples, mi, width)
        );
    }

    let trace_path = path.with_extension("trace.json");
    match write_trace_json(&trace_path, &workload, &samples) {
        Ok(()) => println!(
            "\nwrote {} — load it in https://ui.perfetto.dev or chrome://tracing",
            trace_path.display()
        ),
        Err(e) => fail(&format!("cannot write {}: {e}", trace_path.display())),
    }
}
