//! One grid cell under an armed chaos plan, with the per-site fault
//! table — the CI smoke run for the chaos engine (`scripts/ci.sh`).
//!
//! Arms `CMPSIM_CHAOS` (defaulting to `7:0.02` when unset), runs one
//! compression + prefetching cell, asserts the run is bit-reproducible
//! at 1, 2 and 8 worker threads, and prints what was injected and how
//! the system degraded. Output is fully deterministic for a given plan,
//! so CI diffs two invocations byte-for-byte.

use cmpsim::{run_grid_parallel, run_grid_serial, workload, FaultPlan, SimLength, SystemConfig,
    Variant};

fn main() {
    let raw = std::env::var("CMPSIM_CHAOS").unwrap_or_else(|_| "7:0.02".to_string());
    let plan = match FaultPlan::parse(&raw) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("chaos smoke FAILED: bad CMPSIM_CHAOS {raw:?}: {e}");
            std::process::exit(1);
        }
    };
    std::env::set_var("CMPSIM_CHAOS", &raw);

    let specs = vec![workload("zeus").expect("known workload")];
    let variants = [Variant::PrefetchCompression];
    let base = SystemConfig::paper_default(2).with_seed(11);
    let len = SimLength { warmup: 5_000, measure: 20_000 };

    let serial = match run_grid_serial(&specs, &base, &variants, len) {
        Ok(cells) => cells,
        Err(e) => {
            eprintln!("chaos smoke FAILED: {e}");
            std::process::exit(1);
        }
    };
    for threads in [1, 2, 8] {
        let par = run_grid_parallel(&specs, &base, &variants, len, threads)
            .expect("armed grid re-runs");
        assert_eq!(serial, par, "chaos run diverged at {threads} threads");
    }

    let r = &serial[0].result;
    let f = &r.stats.faults;
    println!(
        "chaos smoke: zeus/{} seed={} rate={} ({} instructions, IPC {:.2})",
        Variant::PrefetchCompression,
        plan.seed(),
        plan.rate(),
        r.stats.instructions,
        r.ipc()
    );
    println!("{:<14}{:>10}{:>10}{:>11}", "site", "injected", "detected", "recovered");
    println!(
        "{:<14}{:>10}{:>10}{:>11}   ({} line(s) quarantined to uncompressed)",
        "codec-line",
        f.codec_faults_injected,
        f.codec_faults_detected,
        f.fault_recoveries,
        f.lines_quarantined
    );
    println!(
        "{:<14}{:>10}{:>10}{:>11}",
        "link-drop",
        r.stats.link.dropped_messages,
        r.stats.link.dropped_messages,
        r.stats.link.dropped_messages
    );
    println!(
        "{:<14}{:>10}{:>10}{:>11}",
        "link-corrupt",
        r.stats.link.corrupted_messages,
        r.stats.link.corrupted_messages,
        r.stats.link.corrupted_messages
    );
    println!(
        "{:<14}{:>10}{:>10}{:>11}   ({} stall cycles absorbed)",
        "mem-stall",
        f.mem_stall_bursts,
        f.mem_stall_bursts,
        f.mem_stall_bursts,
        f.mem_stall_cycles
    );
    println!(
        "{:<14}{:>10}{:>10}{:>11}",
        "dir-message", f.dir_messages_lost, f.dir_messages_lost, f.dir_retries
    );
    assert_eq!(
        f.link_retransmits,
        r.stats.link.dropped_messages + r.stats.link.corrupted_messages,
        "a completed run recovered every injected link fault"
    );
    println!("chaos smoke OK: bit-identical at 1/2/8 threads");
}
