//! Compression explorer: what FPC does to different kinds of data, and
//! what that means for each benchmark's cache and link behavior.
//!
//! ```sh
//! cargo run --release --example compression_explorer
//! ```

use cmpsim::fpc::{compress, LINE_BYTES};
use cmpsim::report::Table;
use cmpsim::trace::all_workloads;

fn show_line(t: &mut Table, label: &str, line: &[u8; LINE_BYTES]) {
    let c = compress(line);
    t.row(&[
        label.into(),
        c.bits().to_string(),
        c.segments().to_string(),
        format!("{:.2}x", 8.0 / f64::from(c.segments())),
        if c.is_compressible() { "yes".into() } else { "no".into() },
    ]);
}

fn main() {
    // Hand-built lines demonstrating each FPC pattern class.
    let mut t = Table::new(&["data", "bits", "segments", "gain", "compressible"]);

    show_line(&mut t, "all zeros", &[0u8; LINE_BYTES]);

    let mut small = [0u8; LINE_BYTES];
    for (i, w) in small.chunks_exact_mut(4).enumerate() {
        w.copy_from_slice(&(i as u32 % 100).to_le_bytes());
    }
    show_line(&mut t, "small counters", &small);

    let mut ptrs = [0u8; LINE_BYTES];
    for (i, q) in ptrs.chunks_exact_mut(8).enumerate() {
        q.copy_from_slice(&(0x7f3a_1000u64 + i as u64 * 64).to_le_bytes());
    }
    show_line(&mut t, "heap pointers", &ptrs);

    let mut fp = [0u8; LINE_BYTES];
    for (i, w) in fp.chunks_exact_mut(4).enumerate() {
        let bits = (1.0f32 / (i as f32 + 1.137)).to_bits();
        w.copy_from_slice(&bits.to_le_bytes());
    }
    show_line(&mut t, "float mantissas", &fp);

    let mut rnd = [0u8; LINE_BYTES];
    let mut x = 0x243F_6A88u32;
    for b in rnd.iter_mut() {
        x = x.wrapping_mul(1664525).wrapping_add(1013904223);
        *b = (x >> 24) as u8 | 0x80;
    }
    show_line(&mut t, "high entropy", &rnd);

    t.print("FPC on different data (64-byte lines)");

    // Benchmark value models → Table 3 ratios.
    let mut w = Table::new(&["benchmark", "expected L2 ratio", "family"]);
    for spec in all_workloads() {
        w.row(&[
            spec.name.into(),
            format!("{:.2}", spec.value_profile(7).expected_ratio(4000)),
            format!("{:?}", spec.class),
        ]);
    }
    w.print("Benchmark value mixtures (calibrated to the paper's Table 3)");
}
