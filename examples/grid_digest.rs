//! Bit-identity gate for engine optimizations (`scripts/ci.sh`).
//!
//! Runs a fixed smoke grid (the paper's 8 workloads x 4 headline
//! variants, 4 cores, seed 11) through `run_grid_serial` and folds every
//! *model-output* counter of every cell into one FNV-1a digest. The
//! digest over this grid was recorded from the seed engine (before the
//! fast-path maps, the recycled event pool and the word-parallel FPC
//! sizing landed) into `tests/golden/grid_digest.txt`; any engine change
//! that alters simulated behavior — rather than just how fast it is
//! computed — changes the digest and fails the gate.
//!
//! Only fields that existed in the seed `RunResult` participate, so the
//! digest stays comparable across PRs that add host-side measurement
//! fields (wall-clock, dispatched-event counts). The `f64` field is
//! folded as its IEEE-754 bit pattern, making the comparison bit-exact.
//!
//! Usage:
//!   cargo run --release --example grid_digest           # compare
//!   CMPSIM_WRITE_GOLDEN=1 cargo run ... grid_digest     # (re)record

use cmpsim::{all_workloads, run_grid_serial, GridCell, SimLength, SystemConfig, Variant};
use std::time::Instant;

const VARIANTS: [Variant; 4] = [
    Variant::Base,
    Variant::BothCompression,
    Variant::Prefetch,
    Variant::PrefetchCompression,
];

const GOLDEN_PATH: &str = "tests/golden/grid_digest.txt";

fn fnv1a(h: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// Digests the seed-era fields of one cell (see module docs for why new
/// fields are deliberately excluded).
fn digest_cell(h: &mut u64, cell: &GridCell) {
    for b in cell.workload.bytes() {
        fnv1a(h, u64::from(b));
    }
    for b in cell.variant.label().bytes() {
        fnv1a(h, u64::from(b));
    }
    fnv1a(h, cell.seed);
    let r = &cell.result;
    fnv1a(h, r.cycles);
    fnv1a(h, u64::from(r.clock_ghz));
    let s = &r.stats;
    fnv1a(h, s.instructions);
    for l in [&s.l1i, &s.l1d, &s.l2] {
        for v in [
            l.accesses,
            l.hits,
            l.demand_misses,
            l.prefetch_hits,
            l.prefetches_issued,
            l.prefetch_fills,
            l.useless_prefetch_evictions,
        ] {
            fnv1a(h, v);
        }
    }
    for v in [
        s.l2_compressed_hits,
        s.l2_hit_latency_sum,
        s.l2_hit_latency_count,
        s.l2_victim_tag_hits,
        s.harmful_prefetch_detections,
        s.capacity_ratio_sum.to_bits(),
        s.capacity_ratio_samples,
        s.link.total_bytes,
        s.link.data_bytes,
        s.link.prefetch_bytes,
        s.link.messages,
        s.link.queue_delay_cycles,
        s.link.busy_cycles,
        s.mem_reads,
        s.mem_writes,
        s.coherence.invalidations,
        s.coherence.recalls,
        s.coherence.upgrades,
        s.coherence.inclusion_recalls,
        s.dropped_prefetches,
    ] {
        fnv1a(h, v);
    }
}

fn main() {
    let specs = all_workloads();
    let base = SystemConfig::paper_default(4).with_seed(11);
    let len = SimLength { warmup: 5_000, measure: 20_000 };

    let t0 = Instant::now();
    let cells =
        run_grid_serial(&specs, &base, &VARIANTS, len).expect("smoke grid simulates");
    let elapsed = t0.elapsed();

    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for cell in &cells {
        digest_cell(&mut h, cell);
    }
    let digest = format!("{h:016x}");
    println!(
        "grid digest: {digest}  ({} cells in {:.2}s)",
        cells.len(),
        elapsed.as_secs_f64()
    );

    if std::env::var("CMPSIM_WRITE_GOLDEN").is_ok() {
        std::fs::create_dir_all("tests/golden").expect("create tests/golden");
        std::fs::write(GOLDEN_PATH, format!("{digest}\n")).expect("write golden");
        println!("recorded golden digest to {GOLDEN_PATH}");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .unwrap_or_else(|e| panic!("cannot read {GOLDEN_PATH}: {e}"));
    let golden = golden.trim();
    if digest != golden {
        eprintln!(
            "grid digest MISMATCH: got {digest}, golden {golden}\n\
             the engine's simulated behavior diverged from the seed path \
             (run with CMPSIM_WRITE_GOLDEN=1 only for an intentional model change)"
        );
        std::process::exit(1);
    }
    println!("grid digest matches the seed-engine golden ({GOLDEN_PATH})");
}
