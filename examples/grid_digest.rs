//! Bit-identity gate for engine optimizations (`scripts/ci.sh`).
//!
//! Runs a fixed smoke grid (the paper's 8 workloads x 4 headline
//! variants, 4 cores, seed 11) through `run_grid_serial` and folds every
//! *model-output* counter of every cell into one FNV-1a digest. The
//! digest over this grid was recorded from the seed engine (before the
//! fast-path maps, the recycled event pool and the word-parallel FPC
//! sizing landed) into `tests/golden/grid_digest.txt`; any engine change
//! that alters simulated behavior — rather than just how fast it is
//! computed — changes the digest and fails the gate.
//!
//! Two companion gates pin the non-default codecs: the same 8 workloads
//! under the two compression-bearing variants with BDI and ZCA selected,
//! recorded when the pluggable codec suite landed
//! (`tests/golden/grid_digest_bdi.txt` / `grid_digest_zca.txt`). The FPC
//! digest doubles as the proof that routing every call site through the
//! `Codec` trait left the default model bit-identical.
//!
//! Only fields that existed in the seed `RunResult` participate, so the
//! digest stays comparable across PRs that add host-side measurement
//! fields (wall-clock, dispatched-event counts). The `f64` field is
//! folded as its IEEE-754 bit pattern, making the comparison bit-exact.
//!
//! Usage:
//!   cargo run --release --example grid_digest           # compare
//!   CMPSIM_WRITE_GOLDEN=1 cargo run ... grid_digest     # (re)record

use cmpsim::{all_workloads, report, run_grid_serial, CodecKind, SimLength, SystemConfig, Variant};
use std::time::Instant;

const VARIANTS: [Variant; 4] = [
    Variant::Base,
    Variant::BothCompression,
    Variant::Prefetch,
    Variant::PrefetchCompression,
];

/// Codec smoke grids only need the variants where the codec matters.
const CODEC_VARIANTS: [Variant; 2] = [Variant::BothCompression, Variant::PrefetchCompression];

const GOLDEN_PATH: &str = "tests/golden/grid_digest.txt";

fn digest_grid(base: &SystemConfig, variants: &[Variant], len: SimLength) -> (String, usize) {
    let specs = all_workloads();
    let cells = run_grid_serial(&specs, base, variants, len).expect("smoke grid simulates");
    // The digest itself lives in `report::grid_digest` so the store gate
    // (examples/store_gate.rs) folds the exact same fields.
    (report::grid_digest(&cells), cells.len())
}

/// Compares (or records, under `CMPSIM_WRITE_GOLDEN=1`) one digest
/// against its golden file. Returns whether the gate passed.
fn gate(label: &str, digest: &str, path: &str, record: bool) -> bool {
    if record {
        std::fs::write(path, format!("{digest}\n")).expect("write golden");
        println!("{label}: recorded golden digest to {path}");
        return true;
    }
    let golden = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let golden = golden.trim();
    if digest != golden {
        eprintln!(
            "{label} digest MISMATCH: got {digest}, golden {golden}\n\
             the engine's simulated behavior diverged from the recorded model \
             (run with CMPSIM_WRITE_GOLDEN=1 only for an intentional model change)"
        );
        return false;
    }
    println!("{label}: digest matches golden ({path})");
    true
}

fn main() {
    let base = SystemConfig::paper_default(4).with_seed(11);
    let len = SimLength { warmup: 5_000, measure: 20_000 };
    let record = std::env::var("CMPSIM_WRITE_GOLDEN").is_ok();
    if record {
        std::fs::create_dir_all("tests/golden").expect("create tests/golden");
    }

    let t0 = Instant::now();
    let (fpc_digest, cells) = digest_grid(&base, &VARIANTS, len);
    println!(
        "grid digest: {fpc_digest}  ({cells} cells in {:.2}s)",
        t0.elapsed().as_secs_f64()
    );
    let mut ok = gate("fpc grid", &fpc_digest, GOLDEN_PATH, record);

    for (codec, path) in [
        (CodecKind::Bdi, "tests/golden/grid_digest_bdi.txt"),
        (CodecKind::Zca, "tests/golden/grid_digest_zca.txt"),
    ] {
        let cfg = base.clone().with_codec(codec);
        let (digest, cells) = digest_grid(&cfg, &CODEC_VARIANTS, len);
        println!("{codec} grid digest: {digest}  ({cells} cells)");
        ok &= gate(&format!("{codec} grid"), &digest, path, record);
    }

    if !ok {
        std::process::exit(1);
    }
}
