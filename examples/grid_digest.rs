//! Bit-identity gate for engine optimizations (`scripts/ci.sh`).
//!
//! Runs a fixed smoke grid (the paper's 8 workloads x 4 headline
//! variants, 4 cores, seed 11) through `run_grid_serial` and folds every
//! *model-output* counter of every cell into one FNV-1a digest. The
//! digest over this grid was recorded from the seed engine (before the
//! fast-path maps, the recycled event pool and the word-parallel FPC
//! sizing landed) into `tests/golden/grid_digest.txt`; any engine change
//! that alters simulated behavior — rather than just how fast it is
//! computed — changes the digest and fails the gate.
//!
//! Two companion gates pin the non-default codecs: the same 8 workloads
//! under the two compression-bearing variants with BDI and ZCA selected,
//! recorded when the pluggable codec suite landed
//! (`tests/golden/grid_digest_bdi.txt` / `grid_digest_zca.txt`). The FPC
//! digest doubles as the proof that routing every call site through the
//! `Codec` trait left the default model bit-identical.
//!
//! Only fields that existed in the seed `RunResult` participate, so the
//! digest stays comparable across PRs that add host-side measurement
//! fields (wall-clock, dispatched-event counts). The `f64` field is
//! folded as its IEEE-754 bit pattern, making the comparison bit-exact.
//!
//! Usage:
//!   cargo run --release --example grid_digest           # compare
//!   CMPSIM_WRITE_GOLDEN=1 cargo run ... grid_digest     # (re)record

use cmpsim::{
    all_workloads, run_grid_serial, CodecKind, GridCell, SimLength, SystemConfig, Variant,
};
use std::time::Instant;

const VARIANTS: [Variant; 4] = [
    Variant::Base,
    Variant::BothCompression,
    Variant::Prefetch,
    Variant::PrefetchCompression,
];

/// Codec smoke grids only need the variants where the codec matters.
const CODEC_VARIANTS: [Variant; 2] = [Variant::BothCompression, Variant::PrefetchCompression];

const GOLDEN_PATH: &str = "tests/golden/grid_digest.txt";

fn fnv1a(h: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// Digests the seed-era fields of one cell (see module docs for why new
/// fields are deliberately excluded).
fn digest_cell(h: &mut u64, cell: &GridCell) {
    for b in cell.workload.bytes() {
        fnv1a(h, u64::from(b));
    }
    for b in cell.variant.label().bytes() {
        fnv1a(h, u64::from(b));
    }
    fnv1a(h, cell.seed);
    let r = &cell.result;
    fnv1a(h, r.cycles);
    fnv1a(h, u64::from(r.clock_ghz));
    let s = &r.stats;
    fnv1a(h, s.instructions);
    for l in [&s.l1i, &s.l1d, &s.l2] {
        for v in [
            l.accesses,
            l.hits,
            l.demand_misses,
            l.prefetch_hits,
            l.prefetches_issued,
            l.prefetch_fills,
            l.useless_prefetch_evictions,
        ] {
            fnv1a(h, v);
        }
    }
    for v in [
        s.l2_compressed_hits,
        s.l2_hit_latency_sum,
        s.l2_hit_latency_count,
        s.l2_victim_tag_hits,
        s.harmful_prefetch_detections,
        s.capacity_ratio_sum.to_bits(),
        s.capacity_ratio_samples,
        s.link.total_bytes,
        s.link.data_bytes,
        s.link.prefetch_bytes,
        s.link.messages,
        s.link.queue_delay_cycles,
        s.link.busy_cycles,
        s.mem_reads,
        s.mem_writes,
        s.coherence.invalidations,
        s.coherence.recalls,
        s.coherence.upgrades,
        s.coherence.inclusion_recalls,
        s.dropped_prefetches,
    ] {
        fnv1a(h, v);
    }
}

fn digest_grid(base: &SystemConfig, variants: &[Variant], len: SimLength) -> (String, usize) {
    let specs = all_workloads();
    let cells = run_grid_serial(&specs, base, variants, len).expect("smoke grid simulates");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for cell in &cells {
        digest_cell(&mut h, cell);
    }
    (format!("{h:016x}"), cells.len())
}

/// Compares (or records, under `CMPSIM_WRITE_GOLDEN=1`) one digest
/// against its golden file. Returns whether the gate passed.
fn gate(label: &str, digest: &str, path: &str, record: bool) -> bool {
    if record {
        std::fs::write(path, format!("{digest}\n")).expect("write golden");
        println!("{label}: recorded golden digest to {path}");
        return true;
    }
    let golden = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let golden = golden.trim();
    if digest != golden {
        eprintln!(
            "{label} digest MISMATCH: got {digest}, golden {golden}\n\
             the engine's simulated behavior diverged from the recorded model \
             (run with CMPSIM_WRITE_GOLDEN=1 only for an intentional model change)"
        );
        return false;
    }
    println!("{label}: digest matches golden ({path})");
    true
}

fn main() {
    let base = SystemConfig::paper_default(4).with_seed(11);
    let len = SimLength { warmup: 5_000, measure: 20_000 };
    let record = std::env::var("CMPSIM_WRITE_GOLDEN").is_ok();
    if record {
        std::fs::create_dir_all("tests/golden").expect("create tests/golden");
    }

    let t0 = Instant::now();
    let (fpc_digest, cells) = digest_grid(&base, &VARIANTS, len);
    println!(
        "grid digest: {fpc_digest}  ({cells} cells in {:.2}s)",
        t0.elapsed().as_secs_f64()
    );
    let mut ok = gate("fpc grid", &fpc_digest, GOLDEN_PATH, record);

    for (codec, path) in [
        (CodecKind::Bdi, "tests/golden/grid_digest_bdi.txt"),
        (CodecKind::Zca, "tests/golden/grid_digest_zca.txt"),
    ] {
        let cfg = base.clone().with_codec(codec);
        let (digest, cells) = digest_grid(&cfg, &CODEC_VARIANTS, len);
        println!("{codec} grid digest: {digest}  ({cells} cells)");
        ok &= gate(&format!("{codec} grid"), &digest, path, record);
    }

    if !ok {
        std::process::exit(1);
    }
}
