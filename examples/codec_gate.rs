//! CI gate for the codec-throughput artifact: compares the fresh
//! `target/bench/codec_throughput.json` against the committed
//! `BENCH_codec_throughput.json` baseline, prints the PR-over-PR delta
//! table, and fails on
//!
//! - any throughput metric (`*_mwps` / `*_gbps`) regressing by more than
//!   2x versus the baseline (noise-tolerant: machine-to-machine and
//!   run-to-run jitter passes, a lost fast path does not), or
//! - the FPC fast decoder losing its ≥2x speedup over the in-tree scalar
//!   reference on the zero-heavy class (`fpc/zero/decode_speedup`), the
//!   acceptance bar of the decode fast-path work.
//!
//! ```sh
//! cargo run --release --example codec_gate [baseline.json] [fresh.json]
//! ```

use cmpsim::report::Table;
use std::collections::BTreeMap;
use std::path::Path;

/// Regression tolerance: a metric may halve before the gate trips.
const MAX_REGRESSION: f64 = 2.0;

/// Required fast-vs-reference decode speedup on the zero-heavy class.
const REQUIRED_ZERO_SPEEDUP: f64 = 2.0;
const SPEEDUP_KEY: &str = "fpc/zero/decode_speedup";

/// Parses the flat `"metrics": {"name": value, ...}` object the bench
/// runner writes. Hand-rolled on purpose: the workspace is hermetic (no
/// serde), the writer is ours, and its keys never contain escapes, commas
/// or nested braces.
fn metrics_of(path: &Path) -> BTreeMap<String, f64> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let at = text.find("\"metrics\"").unwrap_or_else(|| {
        panic!("{}: no \"metrics\" object (not a bench artifact?)", path.display())
    });
    let open = at + text[at..].find('{').expect("metrics object opens");
    let close = open + text[open..].find('}').expect("metrics object closes");
    let mut out = BTreeMap::new();
    for pair in text[open + 1..close].split(',') {
        let pair = pair.trim();
        if pair.is_empty() {
            continue;
        }
        let (key, value) = pair.split_once(':').expect("metric is a key: value pair");
        let key = key.trim().trim_matches('"').to_string();
        let value: f64 = value.trim().parse().expect("metric value parses as f64");
        out.insert(key, value);
    }
    assert!(!out.is_empty(), "{}: empty metrics object", path.display());
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let baseline_path = args.get(1).map_or("BENCH_codec_throughput.json", String::as_str);
    let fresh_path = args.get(2).map_or("target/bench/codec_throughput.json", String::as_str);
    let baseline = metrics_of(Path::new(baseline_path));
    let fresh = metrics_of(Path::new(fresh_path));

    let mut t = Table::new(&["metric", "baseline", "fresh", "delta", "gate"]);
    let mut failures = Vec::new();
    for (key, &base) in &baseline {
        let Some(&now) = fresh.get(key) else {
            failures.push(format!("{key}: present in baseline but missing from fresh run"));
            continue;
        };
        // Only absolute throughput rates are gated; *_speedup ratios and
        // any future bookkeeping metrics are reported ungated (the
        // acceptance speedup below is checked on the fresh run alone,
        // where it is meaningful regardless of what machine recorded the
        // baseline).
        let gated = key.ends_with("_mwps") || key.ends_with("_gbps");
        let regressed = gated && base.is_finite() && base > 0.0 && now * MAX_REGRESSION < base;
        let delta = if base > 0.0 { format!("{:+.1}%", (now / base - 1.0) * 100.0) } else { "-".into() };
        let verdict = if !gated {
            "info"
        } else if regressed {
            "FAIL"
        } else {
            "ok"
        };
        t.row(&[key.clone(), format!("{base:.1}"), format!("{now:.1}"), delta, verdict.into()]);
        if regressed {
            failures.push(format!(
                "{key}: {now:.1} is more than {MAX_REGRESSION}x below baseline {base:.1}"
            ));
        }
    }
    t.print(&format!(
        "codec throughput vs committed baseline ({baseline_path}); \
         gate trips below 1/{MAX_REGRESSION:.0}x"
    ));

    match fresh.get(SPEEDUP_KEY) {
        Some(&s) if s >= REQUIRED_ZERO_SPEEDUP => {
            println!("{SPEEDUP_KEY}: {s:.2}x >= required {REQUIRED_ZERO_SPEEDUP:.1}x");
        }
        Some(&s) => failures.push(format!(
            "{SPEEDUP_KEY}: {s:.2}x below the required {REQUIRED_ZERO_SPEEDUP:.1}x — the \
             dispatch-table decoder no longer beats the scalar reference on zero-heavy lines"
        )),
        None => failures.push(format!("{SPEEDUP_KEY}: missing from fresh artifact")),
    }

    if failures.is_empty() {
        println!("codec gate: OK ({} metrics compared)", baseline.len());
    } else {
        eprintln!("codec gate: FAILED");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}
