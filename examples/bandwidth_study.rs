//! Pin-bandwidth sensitivity: how the value of compression+prefetching
//! changes as the off-chip link grows from scarce to plentiful
//! (the paper's §5.5).
//!
//! ```sh
//! cargo run --release --example bandwidth_study [workload]
//! ```

use cmpsim::report::{pct, Table};
use cmpsim::{workload, LinkBandwidth, SimLength, SystemConfig, Variant, VariantGrid};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "apache".to_string());
    let spec = workload(&name).unwrap_or_else(|| {
        eprintln!("unknown workload '{name}'");
        std::process::exit(1);
    });
    let len = SimLength::standard();

    let mut t = Table::new(&["link", "pf", "compr", "pf+compr", "interaction"]);
    for bw in [10u32, 20, 40, 80] {
        let base = SystemConfig::paper_default(8).with_link(LinkBandwidth::GBps(bw));
        let grid = VariantGrid::run(
            &spec,
            &base,
            &[
                Variant::Base,
                Variant::Prefetch,
                Variant::BothCompression,
                Variant::PrefetchCompression,
            ],
            len,
        ).expect("simulation failed");
        t.row(&[
            format!("{bw} GB/s"),
            pct(grid.speedup_pct(Variant::Prefetch)),
            pct(grid.speedup_pct(Variant::BothCompression)),
            pct(grid.speedup_pct(Variant::PrefetchCompression)),
            pct(grid.pf_compr_interaction() * 100.0),
        ]);
    }
    t.print(&format!("{name}: sensitivity to available pin bandwidth"));
}
