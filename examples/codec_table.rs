//! Codec × workload comparison table: how FPC, BDI and ZCA trade off on
//! each benchmark's value mixture, alongside the paper's Table 3 view.
//!
//! For every workload and codec this prints the *expected* L2 compression
//! ratio from the value model (the analog of Table 3, which the paper
//! reports for FPC only), the *measured* effective-capacity ratio from a
//! smoke simulation with cache+link compression enabled, and the speedup
//! of that configuration over the uncompressed baseline.
//!
//! ```sh
//! cargo run --release --example codec_table
//! ```

use cmpsim::report::Table;
use cmpsim::{
    metrics, run_variant, CodecKind, SimLength, SystemConfig, Variant,
};
use cmpsim::trace::all_workloads;

fn main() {
    let base = SystemConfig::paper_default(4).with_seed(11);
    let len = SimLength { warmup: 20_000, measure: 60_000 };

    let mut t = Table::new(&[
        "benchmark",
        "fpc exp",
        "bdi exp",
        "zca exp",
        "fpc ratio",
        "bdi ratio",
        "zca ratio",
        "fpc speedup",
        "bdi speedup",
        "zca speedup",
    ]);

    for spec in all_workloads() {
        let profile = spec.value_profile(base.seed);
        let baseline = run_variant(&spec, &base, Variant::Base, len)
            .expect("baseline simulates");

        let mut expected = Vec::new();
        let mut measured = Vec::new();
        let mut speedups = Vec::new();
        for codec in CodecKind::all() {
            expected.push(format!("{:.2}", profile.expected_ratio_with(codec, 4000)));
            let cfg = base.clone().with_codec(codec);
            let r = run_variant(&spec, &cfg, Variant::BothCompression, len)
                .expect("compressed cell simulates");
            measured.push(format!("{:.2}", r.stats.compression_ratio()));
            speedups.push(format!("{:+.1}%", metrics::speedup_pct(&baseline, &r)));
        }

        let mut row = vec![spec.name.to_string()];
        row.extend(expected);
        row.extend(measured);
        row.extend(speedups);
        t.row(&row);
    }

    t.print(
        "Codec x workload: expected L2 ratio (value model), measured \
         effective-capacity ratio, and speedup of cache+link compression \
         over Base (4 cores, seed 11, smoke length)",
    );
}
