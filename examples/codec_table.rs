//! Codec × workload comparison table: how FPC, BDI and ZCA trade off on
//! each benchmark's value mixture, alongside the paper's Table 3 view.
//!
//! For every workload and codec this prints the *expected* L2 compression
//! ratio from the value model (the analog of Table 3, which the paper
//! reports for FPC only), the *measured* effective-capacity ratio from a
//! smoke simulation with cache+link compression enabled, the speedup of
//! that configuration over the uncompressed baseline, and the host-side
//! decode throughput (millions of 32-bit words/sec and GB/s of line
//! bytes) of each codec's fast decoder over that workload's value
//! mixture.
//!
//! ```sh
//! cargo run --release --example codec_table
//! ```

use cmpsim::report::{measure_codec_throughput, Table};
use cmpsim::{
    metrics, run_variant, CodecKind, SimLength, SystemConfig, Variant,
};
use cmpsim::trace::all_workloads;

/// Lines sampled from each workload's value model for the decode-rate
/// columns, and timed passes over that batch. The 977 stride matches
/// `expected_ratio_with`, so the rate columns see the same line mixture
/// as the expected-ratio columns.
const THROUGHPUT_LINES: u64 = 128;
const THROUGHPUT_ITERS: u32 = 50;

fn main() {
    let base = SystemConfig::paper_default(4).with_seed(11);
    let len = SimLength { warmup: 20_000, measure: 60_000 };

    let mut t = Table::new(&[
        "benchmark",
        "fpc exp",
        "bdi exp",
        "zca exp",
        "fpc ratio",
        "bdi ratio",
        "zca ratio",
        "fpc speedup",
        "bdi speedup",
        "zca speedup",
        "fpc dec MW/s",
        "bdi dec MW/s",
        "zca dec MW/s",
        "fpc dec GB/s",
        "bdi dec GB/s",
        "zca dec GB/s",
    ]);

    for spec in all_workloads() {
        let profile = spec.value_profile(base.seed);
        let baseline = run_variant(&spec, &base, Variant::Base, len)
            .expect("baseline simulates");
        let lines: Vec<_> =
            (0..THROUGHPUT_LINES).map(|i| profile.line_bytes(i * 977)).collect();

        let mut expected = Vec::new();
        let mut measured = Vec::new();
        let mut speedups = Vec::new();
        let mut dec_mwps = Vec::new();
        let mut dec_gbps = Vec::new();
        for codec in CodecKind::all() {
            expected.push(format!("{:.2}", profile.expected_ratio_with(codec, 4000)));
            let cfg = base.clone().with_codec(codec);
            let r = run_variant(&spec, &cfg, Variant::BothCompression, len)
                .expect("compressed cell simulates");
            measured.push(format!("{:.2}", r.stats.compression_ratio()));
            speedups.push(format!("{:+.1}%", metrics::speedup_pct(&baseline, &r)));
            let rate = measure_codec_throughput(codec, spec.name, &lines, THROUGHPUT_ITERS);
            dec_mwps.push(format!("{:.0}", rate.decompress_mwps));
            dec_gbps.push(format!("{:.1}", rate.decompress_gbps));
        }

        let mut row = vec![spec.name.to_string()];
        row.extend(expected);
        row.extend(measured);
        row.extend(speedups);
        row.extend(dec_mwps);
        row.extend(dec_gbps);
        t.row(&row);
    }

    t.print(
        "Codec x workload: expected L2 ratio (value model), measured \
         effective-capacity ratio, speedup of cache+link compression \
         over Base (4 cores, seed 11, smoke length), and fast-decoder \
         throughput over each workload's value mixture",
    );
}
