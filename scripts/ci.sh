#!/usr/bin/env bash
# Tier-1 CI: build + test the whole workspace fully offline, then verify
# no crate manifest has reintroduced a registry dependency.
#
# The workspace is hermetic by construction — every dependency is a
# path dependency on a sibling crate, and the test/bench harness lives
# in crates/harness — so `--offline` must always succeed. Run from
# anywhere inside the repo.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== tier-1: offline build =="
cargo build --release --offline

echo "== tier-1: offline tests (whole workspace) =="
cargo test -q --offline --workspace

echo "== supervision + determinism suites =="
# Named explicitly (they also run as part of --workspace above) so a
# failure in the resilience contract is unmissable in the CI log.
cargo test -q --offline -p cmpsim-harness supervise
cargo test -q --offline --test determinism --test resilience --test chaos

echo "== codec conformance + differential oracle suites =="
# Cross-codec law kit (round-trip, sizing agreement, zero-fill
# monotonicity, never-expands) against FPC/BDI/ZCA, plus the oracle test
# pinning trait-routed FPC byte-for-byte to the historical fast path
# (including the exhaustive 2^16 zero-mask sweep).
cargo test -q --offline --test codecs
cargo test -q --offline -p cmpsim-fpc --test codec_oracle

echo "== invariant-checked smoke cell (CMPSIM_CHECK=1) =="
CMPSIM_CHECK=1 cargo run -q --release --offline --example checked_smoke

echo "== hot-path bit-identity gate (run_grid_serial vs seed golden) =="
# The smoke grid's FNV-1a digest over every seed-era result field must
# match tests/golden/grid_digest.txt, recorded from the pre-optimization
# engine: the hot-path data structures (fastmap, event-pool free list,
# word-parallel FPC sizing) must never change simulation results. The
# same run also gates the BDI/ZCA smoke grids against the goldens
# recorded when the pluggable codec suite landed.
cargo run -q --release --offline --example grid_digest

echo "== tracing-inertness gate (grid digest under CMPSIM_TRACE=1) =="
# The flight recorder and cycle sampler must be observe-only: the same
# digest gate, re-run with tracing armed, must match the golden recorded
# without tracing. Telemetry artifacts land in a scratch dir and one is
# schema-checked by the timeline consumer.
trace_dir=$(mktemp -d)
CMPSIM_TRACE=1 CMPSIM_TELEMETRY_DIR="$trace_dir" \
    cargo run -q --release --offline --example grid_digest
ls "$trace_dir"/*.jsonl > /dev/null || {
    echo "traced grid left no telemetry artifacts in $trace_dir" >&2
    exit 1
}
cargo run -q --release --offline --example timeline -- --check \
    "$(ls "$trace_dir"/*.jsonl | head -1)"
rm -rf "$trace_dir"

echo "== chaos gates: disarmed inertness + seeded bit-reproducibility =="
# Disarmed inertness is already pinned by the digest gates above: the
# chaos engine is compiled in but unarmed there, and the goldens predate
# it — any leak of fault machinery into a disarmed run churns the
# digest. Armed runs must be bit-reproducible from the seed alone, so
# the chaos smoke (which also asserts 1/2/8-thread invariance and
# prints the per-site fault table) is run twice and diffed byte-for-byte.
chaos_a=$(mktemp) chaos_b=$(mktemp)
CMPSIM_CHAOS=7:0.02 cargo run -q --release --offline --example chaos_smoke > "$chaos_a"
CMPSIM_CHAOS=7:0.02 cargo run -q --release --offline --example chaos_smoke > "$chaos_b"
diff "$chaos_a" "$chaos_b" || {
    echo "armed chaos run is not bit-reproducible from its seed" >&2
    exit 1
}
rm -f "$chaos_a" "$chaos_b"

echo "== throughput baseline (smoke grid, JSON artifact) =="
# Engine events/sec and committed MIPS per variant on the smoke grid;
# the artifact lands in target/bench/throughput.json so CI runs leave a
# comparable record (see DESIGN.md, Performance).
CMPSIM_BENCH_WARMUP=1 CMPSIM_BENCH_ITERS=3 \
    cargo bench -q --offline -p cmpsim-bench --bench throughput
test -s target/bench/throughput.json || {
    echo "throughput bench artifact missing" >&2
    exit 1
}

echo "== codec-throughput gate (vs BENCH_codec_throughput.json baseline) =="
# The bench stage above also re-measured per-codec compress/decompress
# rates into target/bench/codec_throughput.json. Compare against the
# committed baseline: print the PR-over-PR delta table, fail on any
# >2x throughput regression, and require the FPC dispatch-table decoder
# to keep its >=2x speedup over the in-tree scalar reference on
# zero-heavy lines. The fresh artifact then becomes the new committed
# baseline, so each PR's CI run records the rates the next PR is
# compared against.
test -s target/bench/codec_throughput.json || {
    echo "codec throughput bench artifact missing" >&2
    exit 1
}
cargo run -q --release --offline --example codec_gate
cp target/bench/codec_throughput.json BENCH_codec_throughput.json

echo "== result-store gate (cold -> warm: 0 recomputes, digest unchanged) =="
# The smoke grid runs twice against one store: the cold pass computes and
# publishes every cell, the warm pass must compute 0 cells with a >=95%
# hit rate (it achieves 100%), zero CRC/framing errors, and both passes
# must produce the exact grid_digest golden — the store changes *when*
# results are computed, never *what* they are.
store_dir=$(mktemp -d)
CMPSIM_STORE="$store_dir" cargo run -q --release --offline --example store_gate

echo "== store warm-rerun speedup (JSON artifact) =="
# Cold-vs-warm wall-clock for the same grid, recorded to
# target/bench/store_warm.json (speedup, hit rate, recomputed cells).
cargo bench -q --offline -p cmpsim-bench --bench store_warm
test -s target/bench/store_warm.json || {
    echo "store warm-rerun bench artifact missing" >&2
    exit 1
}

echo "== serve daemon smoke (two sweeps on stdin share the store) =="
# Two identical sweep requests through the daemon: the first computes,
# the second must be served entirely from the store (0 misses) with a
# 100% hit rate and no corrupt records. A {"metrics":1} query on the
# same stream must answer one flat-JSON registry snapshot covering all
# three instrumented layers (store_*, grid_*, serve_*), and the access
# log must come back as a sealed JSONL artifact.
access_log=$(mktemp -u)
serve_out=$(printf '%s\n' \
    '{"sweep":"ci-cold","workloads":"apsi,mgrid","variants":"base,pf","cores":2,"warmup":2000,"measure":8000,"threads":2}' \
    '{"sweep":"ci-warm","workloads":"apsi,mgrid","variants":"base,pf","cores":2,"warmup":2000,"measure":8000,"threads":2}' \
    '{"metrics":1}' \
    | CMPSIM_STORE="$store_dir" CMPSIM_ACCESS_LOG="$access_log" \
        cargo run -q --release --offline -p cmpsim-bench --bin serve)
echo "$serve_out" | grep '"sweep":"ci-warm","done":1' \
        | grep '"store_misses":0' | grep -q '"corrupt_skipped":0' || {
    echo "serve daemon warm sweep was not served from the store:" >&2
    echo "$serve_out" >&2
    exit 1
}
metrics_line=$(echo "$serve_out" | grep '^{"metrics":1')
for key in store_hits store_misses store_resident_bytes grid_cells_computed \
        grid_cells_cached serve_requests serve_sweeps serve_request_nanos_p99; do
    echo "$metrics_line" | grep -q "\"$key\":" || {
        echo "serve metrics snapshot is missing \"$key\":" >&2
        echo "$metrics_line" >&2
        exit 1
    }
done
echo "$metrics_line" | grep -q '"serve_sweeps":2' || {
    echo "serve metrics snapshot did not count both sweeps: $metrics_line" >&2
    exit 1
}
head -1 "$access_log" | grep -q '{"cmpsim_log":1}' || {
    echo "serve access log is not a sealed JSONL artifact" >&2
    exit 1
}
rm -f "$access_log"
rm -rf "$store_dir"

echo "== metrics gates: armed inertness + accounting + export schema =="
# The same digest gate as above, re-run with service metrics explicitly
# armed: counters and latency histograms are observe-only, so the golden
# must not move. metrics_gate then asserts the registry agrees with
# StoreStats, the warm pass is all cache, the flat-JSON snapshot parses
# under the repo framing with every required key, and the Prometheus
# export is well-formed; it also writes the tracked
# target/bench/service_metrics.json artifact. ops_dashboard --check
# drives the same registry through the live dashboard renderer.
CMPSIM_METRICS=1 cargo run -q --release --offline --example grid_digest
metrics_store=$(mktemp -d)
CMPSIM_STORE="$metrics_store" CMPSIM_METRICS=1 \
    cargo run -q --release --offline --example metrics_gate
rm -rf "$metrics_store"
test -s target/bench/service_metrics.json || {
    echo "service metrics bench artifact missing" >&2
    exit 1
}
cp target/bench/service_metrics.json BENCH_service_metrics.json
dashboard_store=$(mktemp -d)
CMPSIM_STORE="$dashboard_store" \
    cargo run -q --release --offline --example ops_dashboard -- --check > /dev/null
rm -rf "$dashboard_store"

echo "== hermeticity gate: no registry dependencies =="
# A registry dependency in a manifest is one whose spec carries a
# `version` requirement (string or inline-table form) instead of being a
# pure `path`/`workspace = true` reference. The workspace-level versions
# of the cmpsim-* crates live in [workspace.dependencies] with `path`
# keys; anything else is a regression.
violations=$(
    find . -name Cargo.toml -not -path './target/*' -print0 \
        | xargs -0 awk '
            /^\[/ { in_deps = ($0 ~ /dependencies/) }
            in_deps && /^[[:space:]]*[A-Za-z0-9_-]+[[:space:]]*=/ \
                && !/path[[:space:]]*=/ && !/workspace[[:space:]]*=/ {
                print FILENAME ":" FNR ": " $0
            }
        '
)
if [ -n "$violations" ]; then
    echo "registry dependencies found in Cargo.toml manifests:" >&2
    echo "$violations" >&2
    exit 1
fi

# Belt and braces: the resolved dependency graph must contain only
# workspace crates (all paths under this repo, no registry sources).
if cargo tree --offline --workspace --prefix none 2>/dev/null \
        | grep -vE '^\s*$' | grep -v '(/' | grep -q .; then
    echo "cargo tree reports crates outside the workspace:" >&2
    cargo tree --offline --workspace --prefix none | grep -v '(/' >&2
    exit 1
fi

echo "CI OK: offline build + tests passed, dependency graph is workspace-only"
